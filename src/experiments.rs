//! One function per table and figure of the paper's evaluation.
//!
//! Each function runs the necessary simulations at a caller-chosen
//! [`Scale`] and returns a [`Table`] whose rows mirror the paper's
//! presentation, so output can be compared side by side with the original
//! (see `EXPERIMENTS.md` at the workspace root). The regeneration binaries
//! in `crates/bench/src/bin/` are thin wrappers over these functions.
//!
//! # Cells and the engine
//!
//! Every builder is split into two phases: a `*_cells` function *declares*
//! the simulation [cells](CellSpec) the table needs — (workload, config,
//! budget, seed) tuples — and the builder itself *assembles* rows from the
//! memoized results held by an [`Engine`]. The engine computes each
//! distinct cell exactly once (on `--workers N` threads) and shares it
//! across tables: the window-256 CI run, for example, feeds Tables 2-4,
//! Figure 8 and the distributions table but is simulated a single time per
//! run. Because cells are pure functions of their specs and assembly is
//! serial, rendered output is byte-identical for every worker count.
//!
//! Absolute IPC numbers differ from the paper (different ISA, workload
//! substitutes and memory system); the comparisons of interest — who wins,
//! by roughly what factor, where the crossovers are — are the reproduction
//! targets.

use ci_core::{CompletionModel, PipelineConfig, Preemption, ReconStrategy, RepredictMode, Stats};
use ci_ideal::ModelKind;
use ci_obs::{Histogram, MetricsProbe};
use ci_report::{f, pct, Table};
use ci_runner::{CellSpec, Engine};
use ci_workloads::Workload;

/// The window sweep of Figure 3.
pub const FIGURE3_WINDOWS: [usize; 5] = [32, 64, 128, 256, 512];

/// The window sweep of Figures 5 and 6.
pub const FIGURE5_WINDOWS: [usize; 3] = [128, 256, 512];

/// How much dynamic work each experiment simulates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Scale {
    /// Target dynamic instructions per workload run.
    pub instructions: u64,
    /// Workload data seed.
    pub seed: u64,
}

impl Scale {
    /// The default experiment scale (fast enough for the whole suite to run
    /// in minutes).
    #[must_use]
    pub fn default_scale() -> Scale {
        Scale {
            instructions: 60_000,
            seed: 0x5EED,
        }
    }

    /// Build a scale from the raw textual values of the
    /// `CI_REPRO_INSTRUCTIONS` / `CI_REPRO_SEED` environment variables
    /// (`None` = unset, keep the default). The instruction count must be a
    /// positive decimal integer; the seed accepts decimal or `0x`-prefixed
    /// hex.
    ///
    /// # Errors
    /// A malformed value is an error, never a silent fallback — a typo'd
    /// scale would otherwise quietly run the wrong experiment.
    pub fn parse(instructions: Option<&str>, seed: Option<&str>) -> Result<Scale, String> {
        let mut s = Scale::default_scale();
        if let Some(v) = instructions {
            s.instructions = v
                .trim()
                .parse::<u64>()
                .ok()
                .filter(|&n| n > 0)
                .ok_or_else(|| {
                    format!(
                        "CI_REPRO_INSTRUCTIONS: `{v}` is not a valid instruction count \
                         (expected a positive decimal integer)"
                    )
                })?;
        }
        if let Some(v) = seed {
            let t = v.trim();
            let parsed = match t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
                Some(hex) => u64::from_str_radix(hex, 16).ok(),
                None => t.parse::<u64>().ok(),
            };
            s.seed = parsed.ok_or_else(|| {
                format!(
                    "CI_REPRO_SEED: `{v}` is not a valid seed \
                     (expected a decimal or 0x-prefixed hex integer)"
                )
            })?;
        }
        Ok(s)
    }

    /// Read the scale from the `CI_REPRO_INSTRUCTIONS` / `CI_REPRO_SEED`
    /// environment variables, falling back to the default when unset.
    ///
    /// # Errors
    /// Malformed (or non-UTF-8) values are rejected with a descriptive
    /// message — see [`Scale::parse`].
    pub fn from_env() -> Result<Scale, String> {
        let read = |name: &str| -> Result<Option<String>, String> {
            match std::env::var(name) {
                Ok(v) => Ok(Some(v)),
                Err(std::env::VarError::NotPresent) => Ok(None),
                Err(std::env::VarError::NotUnicode(_)) => {
                    Err(format!("{name}: value is not valid UTF-8"))
                }
            }
        };
        let instructions = read("CI_REPRO_INSTRUCTIONS")?;
        let seed = read("CI_REPRO_SEED")?;
        Scale::parse(instructions.as_deref(), seed.as_deref())
    }

    /// [`Scale::from_env`] for binaries: print the error and exit 2.
    #[must_use]
    pub fn from_env_or_exit() -> Scale {
        Scale::from_env().unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(2);
        })
    }
}

impl Default for Scale {
    fn default() -> Self {
        Scale::default_scale()
    }
}

/// A detailed-pipeline cell at this scale.
fn dcell(w: Workload, config: PipelineConfig, scale: &Scale) -> CellSpec {
    CellSpec::Detailed {
        workload: w,
        config,
        instructions: scale.instructions,
        seed: scale.seed,
    }
}

/// An idealized-model cell at this scale.
fn icell(w: Workload, model: ModelKind, window: usize, scale: &Scale) -> CellSpec {
    CellSpec::Ideal {
        workload: w,
        model,
        window,
        instructions: scale.instructions,
        seed: scale.seed,
    }
}

/// A study-input summary cell at this scale.
fn scell(w: Workload, scale: &Scale) -> CellSpec {
    CellSpec::Study {
        workload: w,
        instructions: scale.instructions,
        seed: scale.seed,
    }
}

fn stats(eng: &Engine, w: Workload, config: PipelineConfig, scale: &Scale) -> Stats {
    eng.stats(w, config, scale.instructions, scale.seed)
}

fn probed(
    eng: &Engine,
    w: Workload,
    config: PipelineConfig,
    scale: &Scale,
) -> (Stats, MetricsProbe) {
    eng.probed(w, config, scale.instructions, scale.seed)
}

/// Cells for [`table1`].
#[must_use]
pub fn table1_cells(scale: &Scale) -> Vec<CellSpec> {
    Workload::ALL.into_iter().map(|w| scell(w, scale)).collect()
}

/// Table 1: benchmark information (dynamic instruction counts and
/// misprediction rates under the paper's predictor configuration).
#[must_use]
pub fn table1(eng: &Engine, scale: &Scale) -> Table {
    eng.prefetch(&table1_cells(scale));
    let mut t = Table::new("TABLE 1. Benchmark information.");
    t.headers(&[
        "benchmark",
        "instruction count",
        "misprediction rate",
        "paper",
    ]);
    let paper = ["8.3%", "16.7%", "9.1%", "6.8%", "1.4%"];
    for (w, paper_rate) in Workload::ALL.into_iter().zip(paper) {
        let (len, predictions, mispredictions) = eng.study(w, scale.instructions, scale.seed);
        let rate = if predictions == 0 {
            0.0
        } else {
            mispredictions as f64 / predictions as f64
        };
        t.row(vec![
            w.name().to_owned(),
            len.to_string(),
            pct(rate),
            paper_rate.to_owned(),
        ]);
    }
    t
}

const FIGURE3_MODELS: [ModelKind; 6] = [
    ModelKind::Oracle,
    ModelKind::NwrNfd,
    ModelKind::NwrFd,
    ModelKind::WrNfd,
    ModelKind::WrFd,
    ModelKind::Base,
];

/// Cells for [`figure3`] over `windows`.
#[must_use]
pub fn figure3_cells(scale: &Scale, windows: &[usize]) -> Vec<CellSpec> {
    let mut cells = Vec::new();
    for w in Workload::ALL {
        for &window in windows {
            for model in FIGURE3_MODELS {
                cells.push(icell(w, model, window, scale));
            }
        }
    }
    cells
}

/// Figure 3: IPC of the six idealized models as a function of window size.
#[must_use]
pub fn figure3(eng: &Engine, scale: &Scale, windows: &[usize]) -> Table {
    eng.prefetch(&figure3_cells(scale, windows));
    let mut t = Table::new("FIGURE 3. Performance of the six control independence models (IPC).");
    t.headers(&[
        "benchmark",
        "window",
        "oracle",
        "nWR-nFD",
        "nWR-FD",
        "WR-nFD",
        "WR-FD",
        "base",
    ]);
    for w in Workload::ALL {
        for &window in windows {
            let mut row = vec![w.name().to_owned(), window.to_string()];
            for model in FIGURE3_MODELS {
                let r = eng.ideal(w, model, window, scale.instructions, scale.seed);
                row.push(f(r.ipc(), 2));
            }
            t.row(row);
        }
    }
    t
}

/// Cells for [`figure5_6`] over `windows`.
#[must_use]
pub fn figure5_6_cells(scale: &Scale, windows: &[usize]) -> Vec<CellSpec> {
    let mut cells = Vec::new();
    for w in Workload::ALL {
        for &window in windows {
            cells.push(dcell(w, PipelineConfig::base(window), scale));
            cells.push(dcell(w, PipelineConfig::ci(window), scale));
            cells.push(dcell(w, PipelineConfig::ci_instant(window), scale));
        }
    }
    cells
}

/// Figures 5 and 6: BASE vs CI vs CI-I IPC for several window sizes, and the
/// percentage improvement of CI over BASE.
#[must_use]
pub fn figure5_6(eng: &Engine, scale: &Scale, windows: &[usize]) -> (Table, Table) {
    eng.prefetch(&figure5_6_cells(scale, windows));
    let mut ipc = Table::new("FIGURE 5. Performance with and without control independence (IPC).");
    ipc.headers(&["benchmark", "window", "BASE", "CI", "CI-I"]);
    let mut imp = Table::new("FIGURE 6. Percent improvement in IPC due to control independence.");
    imp.headers(&["benchmark", "window", "CI vs BASE", "CI-I vs CI"]);
    for w in Workload::ALL {
        for &window in windows {
            let b = stats(eng, w, PipelineConfig::base(window), scale);
            let c = stats(eng, w, PipelineConfig::ci(window), scale);
            let i = stats(eng, w, PipelineConfig::ci_instant(window), scale);
            ipc.row(vec![
                w.name().to_owned(),
                window.to_string(),
                f(b.ipc(), 2),
                f(c.ipc(), 2),
                f(i.ipc(), 2),
            ]);
            imp.row(vec![
                w.name().to_owned(),
                window.to_string(),
                pct(c.ipc() / b.ipc() - 1.0),
                pct(i.ipc() / c.ipc() - 1.0),
            ]);
        }
    }
    (ipc, imp)
}

/// Cells for [`table2`].
#[must_use]
pub fn table2_cells(scale: &Scale) -> Vec<CellSpec> {
    Workload::ALL
        .into_iter()
        .map(|w| dcell(w, PipelineConfig::ci(256), scale))
        .collect()
}

/// Table 2: restart/redispatch sequence statistics (window 256).
#[must_use]
pub fn table2(eng: &Engine, scale: &Scale) -> Table {
    eng.prefetch(&table2_cells(scale));
    let mut t = Table::new("TABLE 2. Statistics for restart/redispatch sequences (window 256).");
    t.headers(&[
        "benchmark",
        "% reconverge",
        "avg removed",
        "avg inserted",
        "avg CI instr",
        "avg CI renamed",
        "restart p50",
        "restart p90",
    ]);
    for w in Workload::ALL {
        let (s, probe) = probed(eng, w, PipelineConfig::ci(256), scale);
        t.row(vec![
            w.name().to_owned(),
            pct(s.reconvergence_rate()),
            f(s.avg_removed(), 1),
            f(s.avg_inserted(), 1),
            f(s.avg_ci(), 1),
            f(s.avg_ci_renamed(), 2),
            probe.restart_length.quantile(0.5).to_string(),
            probe.restart_length.quantile(0.9).to_string(),
        ]);
    }
    t
}

/// Cells for [`table3`].
#[must_use]
pub fn table3_cells(scale: &Scale) -> Vec<CellSpec> {
    table2_cells(scale) // the same window-256 CI runs
}

/// Table 3: work saved by control independence, as fractions of retired
/// instructions (window 256).
#[must_use]
pub fn table3(eng: &Engine, scale: &Scale) -> Table {
    eng.prefetch(&table3_cells(scale));
    let mut t = Table::new("TABLE 3. Work saved by exploiting control independence (window 256).");
    t.headers(&[
        "benchmark",
        "fetch saved",
        "work saved",
        "work discarded",
        "had only fetched",
    ]);
    for w in Workload::ALL {
        let s = stats(eng, w, PipelineConfig::ci(256), scale);
        let (fs, ws, wd, of) = s.work_saved_fractions();
        t.row(vec![
            w.name().to_owned(),
            pct(fs),
            pct(ws),
            pct(wd),
            pct(of),
        ]);
    }
    t
}

/// Cells for [`table4`].
#[must_use]
pub fn table4_cells(scale: &Scale) -> Vec<CellSpec> {
    let mut cells = Vec::new();
    for w in Workload::ALL {
        cells.push(dcell(w, PipelineConfig::base(256), scale));
        cells.push(dcell(w, PipelineConfig::ci(256), scale));
    }
    cells
}

/// Table 4: instruction issues per retired instruction, with and without
/// control independence (window 256).
#[must_use]
pub fn table4(eng: &Engine, scale: &Scale) -> Table {
    eng.prefetch(&table4_cells(scale));
    let mut t = Table::new("TABLE 4. Instruction issues per retired instruction (window 256).");
    t.headers(&[
        "benchmark",
        "base total",
        "base mem",
        "CI total",
        "CI mem",
        "CI reg",
        "CI max issues",
    ]);
    for w in Workload::ALL {
        let b = stats(eng, w, PipelineConfig::base(256), scale);
        let (c, probe) = probed(eng, w, PipelineConfig::ci(256), scale);
        // `reissues` records (issues - 1) per retired instruction, so the
        // worst-case issue count is its maximum plus the original issue.
        let max_issues = if probe.reissues.is_empty() {
            0
        } else {
            probe.reissues.max() + 1
        };
        t.row(vec![
            w.name().to_owned(),
            f(b.issues_per_retired(), 2),
            f(b.mem_violations_per_retired(), 3),
            f(c.issues_per_retired(), 2),
            f(c.mem_violations_per_retired(), 3),
            f(c.reg_violations_per_retired(), 3),
            max_issues.to_string(),
        ]);
    }
    t
}

fn figure8_configs() -> [(Preemption, PipelineConfig); 2] {
    [
        (
            Preemption::Simple,
            PipelineConfig {
                preemption: Preemption::Simple,
                ..PipelineConfig::ci(256)
            },
        ),
        (
            Preemption::Optimal,
            PipelineConfig {
                preemption: Preemption::Optimal,
                ..PipelineConfig::ci(256)
            },
        ),
    ]
}

/// Cells for [`figure8`].
#[must_use]
pub fn figure8_cells(scale: &Scale) -> Vec<CellSpec> {
    let mut cells = Vec::new();
    for w in Workload::ALL {
        for (_, cfg) in figure8_configs() {
            cells.push(dcell(w, cfg, scale));
        }
    }
    cells
}

/// Figure 8: simple vs optimal preemption of restart sequences (window 256).
#[must_use]
pub fn figure8(eng: &Engine, scale: &Scale) -> Table {
    eng.prefetch(&figure8_cells(scale));
    let mut t = Table::new("FIGURE 8. Simple vs optimal preemption (window 256).");
    t.headers(&[
        "benchmark",
        "simple IPC",
        "optimal IPC",
        "optimal gain",
        "avg restart cycles",
    ]);
    let [(_, simple_cfg), (_, optimal_cfg)] = figure8_configs();
    for w in Workload::ALL {
        let s = stats(eng, w, simple_cfg, scale);
        let o = stats(eng, w, optimal_cfg, scale);
        t.row(vec![
            w.name().to_owned(),
            f(s.ipc(), 2),
            f(o.ipc(), 2),
            pct(o.ipc() / s.ipc() - 1.0),
            f(s.avg_restart_cycles(), 1),
        ]);
    }
    t
}

const FIGURE9_MODELS: [(CompletionModel, bool); 7] = [
    (CompletionModel::NonSpec, false),
    (CompletionModel::SpecD, false),
    (CompletionModel::SpecD, true),
    (CompletionModel::SpecC, false),
    (CompletionModel::SpecC, true),
    (CompletionModel::Spec, false),
    (CompletionModel::Spec, true),
];

fn figure9_config(completion: CompletionModel, hfm: bool) -> PipelineConfig {
    PipelineConfig {
        completion,
        hide_false_mispredictions: hfm,
        ..PipelineConfig::ci(256)
    }
}

/// Cells for [`figure9`].
#[must_use]
pub fn figure9_cells(scale: &Scale) -> Vec<CellSpec> {
    let mut cells = Vec::new();
    for w in Workload::ALL {
        for (m, hfm) in FIGURE9_MODELS {
            cells.push(dcell(w, figure9_config(m, hfm), scale));
        }
    }
    cells
}

/// Figure 9: the branch completion models of Appendix A.2, with and without
/// oracle suppression of false mispredictions (window 256).
#[must_use]
pub fn figure9(eng: &Engine, scale: &Scale) -> Table {
    eng.prefetch(&figure9_cells(scale));
    let mut t = Table::new(
        "FIGURE 9. Branch completion models and false mispredictions (IPC, window 256).",
    );
    t.headers(&[
        "benchmark",
        "non-spec",
        "spec-D",
        "spec-D-HFM",
        "spec-C",
        "spec-C-HFM",
        "spec",
        "spec-HFM",
    ]);
    for w in Workload::ALL {
        let mut row = vec![w.name().to_owned()];
        for (m, hfm) in FIGURE9_MODELS {
            let s = stats(eng, w, figure9_config(m, hfm), scale);
            row.push(f(s.ipc(), 2));
        }
        t.row(row);
    }
    t
}

fn figure10_config() -> PipelineConfig {
    PipelineConfig {
        completion: CompletionModel::Spec,
        ..PipelineConfig::ci(256)
    }
}

/// Cells for [`figure10`].
#[must_use]
pub fn figure10_cells(scale: &Scale) -> Vec<CellSpec> {
    Workload::ALL
        .into_iter()
        .map(|w| dcell(w, figure10_config(), scale))
        .collect()
}

/// Figure 10: cumulative fraction of false mispredictions detectable while
/// delaying at most 10% / 20% of true mispredictions, per detection scheme.
///
/// Runs under the `spec` completion model, where false mispredictions are
/// most frequent.
#[must_use]
pub fn figure10(eng: &Engine, scale: &Scale) -> Table {
    eng.prefetch(&figure10_cells(scale));
    let mut t = Table::new(
        "FIGURE 10. Detecting false mispredictions from true/false history (spec model, window 256).",
    );
    t.headers(&[
        "benchmark",
        "true/false mispred",
        "static@10%",
        "static@20%",
        "dyn(pc)@10%",
        "dyn(pc)@20%",
        "dyn(xor)@10%",
        "dyn(xor)@20%",
    ]);
    for w in Workload::ALL {
        let s = stats(eng, w, figure10_config(), scale);
        t.row(vec![
            w.name().to_owned(),
            format!("{}/{}", s.true_mispredictions, s.false_mispredictions),
            pct(s.tfr_static.false_coverage_at(0.10)),
            pct(s.tfr_static.false_coverage_at(0.20)),
            pct(s.tfr_dynamic_pc.false_coverage_at(0.10)),
            pct(s.tfr_dynamic_pc.false_coverage_at(0.20)),
            pct(s.tfr_dynamic_xor.false_coverage_at(0.10)),
            pct(s.tfr_dynamic_xor.false_coverage_at(0.20)),
        ]);
    }
    t
}

fn figure12_oracle_config() -> PipelineConfig {
    PipelineConfig {
        oracle_ghr: true,
        ..PipelineConfig::ci(256)
    }
}

/// Cells for [`figure12`].
#[must_use]
pub fn figure12_cells(scale: &Scale) -> Vec<CellSpec> {
    let mut cells = Vec::new();
    for w in Workload::ALL {
        cells.push(dcell(w, PipelineConfig::ci(256), scale));
        cells.push(dcell(w, figure12_oracle_config(), scale));
    }
    cells
}

/// Figure 12: impact of predicting with the architecturally correct
/// ("oracle") global branch history (window 256).
#[must_use]
pub fn figure12(eng: &Engine, scale: &Scale) -> Table {
    eng.prefetch(&figure12_cells(scale));
    let mut t = Table::new("FIGURE 12. Impact of oracle global branch history (window 256).");
    t.headers(&["benchmark", "CI IPC", "CI + oracle GHR", "delta"]);
    for w in Workload::ALL {
        let c = stats(eng, w, PipelineConfig::ci(256), scale);
        let o = stats(eng, w, figure12_oracle_config(), scale);
        t.row(vec![
            w.name().to_owned(),
            f(c.ipc(), 2),
            f(o.ipc(), 2),
            pct(o.ipc() / c.ipc() - 1.0),
        ]);
    }
    t
}

const FIGURE13_MODES: [RepredictMode; 3] = [
    RepredictMode::None,
    RepredictMode::Heuristic,
    RepredictMode::Oracle,
];

fn figure13_config(repredict: RepredictMode) -> PipelineConfig {
    PipelineConfig {
        repredict,
        ..PipelineConfig::ci(256)
    }
}

/// Cells for [`figure13`].
#[must_use]
pub fn figure13_cells(scale: &Scale) -> Vec<CellSpec> {
    let mut cells = Vec::new();
    for w in Workload::ALL {
        cells.push(dcell(w, PipelineConfig::base(256), scale));
        for rp in FIGURE13_MODES {
            cells.push(dcell(w, figure13_config(rp), scale));
        }
    }
    cells
}

/// Figure 13: the value of re-predict sequences — BASE, CI with no
/// re-prediction (CI-NR), the CI heuristic, and oracle re-prediction (CI-OR)
/// (window 256).
#[must_use]
pub fn figure13(eng: &Engine, scale: &Scale) -> Table {
    eng.prefetch(&figure13_cells(scale));
    let mut t = Table::new("FIGURE 13. Evaluation of re-predictions (IPC, window 256).");
    t.headers(&["benchmark", "base", "CI-NR", "CI", "CI-OR"]);
    for w in Workload::ALL {
        let b = stats(eng, w, PipelineConfig::base(256), scale);
        let mut row = vec![w.name().to_owned(), f(b.ipc(), 2)];
        for rp in FIGURE13_MODES {
            let s = stats(eng, w, figure13_config(rp), scale);
            row.push(f(s.ipc(), 2));
        }
        t.row(row);
    }
    t
}

const FIGURE14_SEGMENTS: [usize; 3] = [1, 4, 16];

fn figure14_config(segment: usize) -> PipelineConfig {
    PipelineConfig {
        segment,
        ..PipelineConfig::ci(256)
    }
}

/// Cells for [`figure14`].
#[must_use]
pub fn figure14_cells(scale: &Scale) -> Vec<CellSpec> {
    let mut cells = Vec::new();
    for w in Workload::ALL {
        cells.push(dcell(w, PipelineConfig::base(256), scale));
        for seg in FIGURE14_SEGMENTS {
            cells.push(dcell(w, figure14_config(seg), scale));
        }
    }
    cells
}

/// Figure 14: ROB segment size (1/4/16 instructions, 256-instruction window).
#[must_use]
pub fn figure14(eng: &Engine, scale: &Scale) -> Table {
    eng.prefetch(&figure14_cells(scale));
    let mut t = Table::new("FIGURE 14. Varying ROB segment size (window 256).");
    t.headers(&[
        "benchmark",
        "base",
        "seg=1",
        "seg=4",
        "seg=16",
        "imp@1",
        "imp@4",
        "imp@16",
    ]);
    for w in Workload::ALL {
        let b = stats(eng, w, PipelineConfig::base(256), scale);
        let ipcs: Vec<f64> = FIGURE14_SEGMENTS
            .into_iter()
            .map(|seg| stats(eng, w, figure14_config(seg), scale).ipc())
            .collect();
        t.row(vec![
            w.name().to_owned(),
            f(b.ipc(), 2),
            f(ipcs[0], 2),
            f(ipcs[1], 2),
            f(ipcs[2], 2),
            pct(ipcs[0] / b.ipc() - 1.0),
            pct(ipcs[1] / b.ipc() - 1.0),
            pct(ipcs[2] / b.ipc() - 1.0),
        ]);
    }
    t
}

const FIGURE17_COMBOS: [(&str, ReconStrategy); 7] = [
    ("return", ReconStrategy::hardware(true, false, false)),
    ("loop", ReconStrategy::hardware(false, true, false)),
    ("ltb", ReconStrategy::hardware(false, false, true)),
    ("return/loop", ReconStrategy::hardware(true, true, false)),
    ("return/ltb", ReconStrategy::hardware(true, false, true)),
    ("loop/ltb", ReconStrategy::hardware(false, true, true)),
    ("all", ReconStrategy::hardware(true, true, true)),
];

fn figure17_config(recon: ReconStrategy) -> PipelineConfig {
    PipelineConfig {
        recon,
        ..PipelineConfig::ci(256)
    }
}

/// Cells for [`figure17`].
#[must_use]
pub fn figure17_cells(scale: &Scale) -> Vec<CellSpec> {
    let mut cells = Vec::new();
    for w in Workload::ALL {
        cells.push(dcell(w, PipelineConfig::base(256), scale));
        for (_, recon) in FIGURE17_COMBOS {
            cells.push(dcell(w, figure17_config(recon), scale));
        }
        cells.push(dcell(w, PipelineConfig::ci(256), scale));
    }
    cells
}

/// Figure 17: hardware heuristics for identifying reconvergent points,
/// as percentage IPC improvement over the BASE machine (window 256).
#[must_use]
pub fn figure17(eng: &Engine, scale: &Scale) -> Table {
    eng.prefetch(&figure17_cells(scale));
    let mut t = Table::new(
        "FIGURE 17. Instruction-type heuristics for reconvergent points (% IPC improvement over base, window 256).",
    );
    t.headers(&[
        "benchmark",
        "return",
        "loop",
        "ltb",
        "return/loop",
        "return/ltb",
        "loop/ltb",
        "all",
        "CI (postdom)",
    ]);
    for w in Workload::ALL {
        let b = stats(eng, w, PipelineConfig::base(256), scale);
        let mut row = vec![w.name().to_owned()];
        for (_, recon) in FIGURE17_COMBOS {
            let s = stats(eng, w, figure17_config(recon), scale);
            row.push(pct(s.ipc() / b.ipc() - 1.0));
        }
        let sw = stats(eng, w, PipelineConfig::ci(256), scale);
        row.push(pct(sw.ipc() / b.ipc() - 1.0));
        t.row(row);
    }
    t
}

/// Cells for [`distributions`].
#[must_use]
pub fn distributions_cells(scale: &Scale) -> Vec<CellSpec> {
    table2_cells(scale) // the same window-256 CI runs
}

/// Distribution summaries from the observability layer: restart-sequence
/// length, distance to the reconvergent point, window occupancy and reissue
/// counts, per workload (CI machine, window 256).
///
/// These go beyond the paper's averages — the per-event histograms expose
/// the long tails that the means in Tables 2 and 4 hide.
#[must_use]
pub fn distributions(eng: &Engine, scale: &Scale) -> Table {
    eng.prefetch(&distributions_cells(scale));
    let mut t = Table::new(
        "DISTRIBUTIONS. Restart, reconvergence, occupancy and reissue histograms (CI, window 256).",
    );
    t.headers(&["benchmark", "metric", "n", "mean", "p50", "p90", "max"]);
    for w in Workload::ALL {
        let (_, probe) = probed(eng, w, PipelineConfig::ci(256), scale);
        let metrics: [(&str, &Histogram); 4] = [
            ("restart length (cycles)", &probe.restart_length),
            ("recon distance (instr)", &probe.recon_distance),
            ("window occupancy", &probe.occupancy),
            ("reissues per retired", &probe.reissues),
        ];
        for (name, h) in metrics {
            t.row(vec![
                w.name().to_owned(),
                name.to_owned(),
                h.count().to_string(),
                f(h.mean(), 2),
                h.quantile(0.5).to_string(),
                h.quantile(0.9).to_string(),
                h.max().to_string(),
            ]);
        }
    }
    t
}

/// Every cell of the full evaluation ([`run_all`]) at this scale, duplicates
/// included (the engine dedups).
#[must_use]
pub fn all_experiment_cells(scale: &Scale) -> Vec<CellSpec> {
    let mut cells = Vec::new();
    cells.extend(table1_cells(scale));
    cells.extend(figure3_cells(scale, &FIGURE3_WINDOWS));
    cells.extend(figure5_6_cells(scale, &FIGURE5_WINDOWS));
    cells.extend(table2_cells(scale));
    cells.extend(table3_cells(scale));
    cells.extend(table4_cells(scale));
    cells.extend(figure8_cells(scale));
    cells.extend(figure9_cells(scale));
    cells.extend(figure10_cells(scale));
    cells.extend(figure12_cells(scale));
    cells.extend(figure13_cells(scale));
    cells.extend(figure14_cells(scale));
    cells.extend(figure17_cells(scale));
    cells.extend(distributions_cells(scale));
    cells
}

/// Every table/figure name accepted by [`request_cells`], in publication
/// order, plus the `"all"` union. These are the request names understood by
/// the `ci-serve` daemon's `table` requests.
pub const REQUEST_NAMES: [&str; 17] = [
    "table1",
    "figure3",
    "figure5_6",
    "table2",
    "table3",
    "table4",
    "figure8",
    "figure9",
    "figure10",
    "figure12",
    "figure13",
    "figure14",
    "figure17",
    "distributions",
    "all",
    "smoke",
    "explore_smoke",
];

/// The cells behind a named table or figure, for callers (like the
/// `ci-serve` daemon) that address experiments by name rather than by
/// builder function. Returns `None` for unknown names; see
/// [`REQUEST_NAMES`] for the accepted set. `"smoke"` is a deliberately tiny
/// single-cell request for health checks and load generation.
#[must_use]
pub fn request_cells(name: &str, scale: &Scale) -> Option<Vec<CellSpec>> {
    Some(match name {
        "table1" => table1_cells(scale),
        "figure3" => figure3_cells(scale, &FIGURE3_WINDOWS),
        "figure5_6" => figure5_6_cells(scale, &FIGURE5_WINDOWS),
        "table2" => table2_cells(scale),
        "table3" => table3_cells(scale),
        "table4" => table4_cells(scale),
        "figure8" => figure8_cells(scale),
        "figure9" => figure9_cells(scale),
        "figure10" => figure10_cells(scale),
        "figure12" => figure12_cells(scale),
        "figure13" => figure13_cells(scale),
        "figure14" => figure14_cells(scale),
        "figure17" => figure17_cells(scale),
        "distributions" => distributions_cells(scale),
        "all" => all_experiment_cells(scale),
        "smoke" => vec![CellSpec::Study {
            workload: Workload::CompressLike,
            instructions: scale.instructions.min(2_000),
            seed: scale.seed,
        }],
        // The explorer's smoke grid (3 windows × 3 widths × BASE/CI),
        // capped at 10k instructions — the same grid the golden test and
        // the CI `explore` job run.
        "explore_smoke" => ci_explore::Sweep::parse("smoke-grid")
            .expect("smoke-grid preset must parse")
            .expand(scale.instructions.min(10_000), scale.seed),
        _ => return None,
    })
}

/// The full evaluation: every table and figure, in publication order.
///
/// Prefetches the union of all cells first so the engine's workers see one
/// big batch (maximum overlap, cross-table sharing), then assembles each
/// table from the cache. Output is byte-identical for every worker count.
#[must_use]
pub fn run_all(eng: &Engine, scale: &Scale) -> Vec<Table> {
    eng.prefetch(&all_experiment_cells(scale));
    let (fig5, fig6) = figure5_6(eng, scale, &FIGURE5_WINDOWS);
    vec![
        table1(eng, scale),
        figure3(eng, scale, &FIGURE3_WINDOWS),
        fig5,
        fig6,
        table2(eng, scale),
        table3(eng, scale),
        table4(eng, scale),
        figure8(eng, scale),
        figure9(eng, scale),
        figure10(eng, scale),
        figure12(eng, scale),
        figure13(eng, scale),
        figure14(eng, scale),
        figure17(eng, scale),
        distributions(eng, scale),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Scale {
        Scale {
            instructions: 4_000,
            seed: 7,
        }
    }

    #[test]
    fn table1_has_five_rows() {
        let t = table1(&Engine::serial(), &tiny());
        assert_eq!(t.len(), 5);
    }

    #[test]
    fn figure3_covers_models_and_windows() {
        let t = figure3(&Engine::serial(), &tiny(), &[32, 64]);
        assert_eq!(t.len(), 10);
    }

    #[test]
    fn figure5_6_consistent() {
        let (ipc, imp) = figure5_6(&Engine::serial(), &tiny(), &[64]);
        assert_eq!(ipc.len(), 5);
        assert_eq!(imp.len(), 5);
    }

    #[test]
    fn table2_reports_restart_quantiles() {
        let t = table2(&Engine::serial(), &tiny());
        assert_eq!(t.len(), 5);
        assert_eq!(t.header_cells().len(), 8);
        let row = &t.data_rows()[0];
        let p50: u64 = row[6].parse().expect("p50 is integral");
        let p90: u64 = row[7].parse().expect("p90 is integral");
        assert!(p90 >= p50);
    }

    #[test]
    fn distributions_covers_all_workloads_and_metrics() {
        let t = distributions(&Engine::serial(), &tiny());
        assert_eq!(t.len(), 5 * 4);
        assert!(t.data_rows().iter().all(|r| r.len() == 7));
    }

    #[test]
    fn shared_cells_are_computed_once_across_tables() {
        let eng = Engine::serial();
        let scale = tiny();
        // Tables 2, 3 and the distributions table all reference the same
        // five window-256 CI cells.
        let t2 = table2(&eng, &scale);
        let computed_after_t2 = eng.cells_computed();
        let t3 = table3(&eng, &scale);
        let d = distributions(&eng, &scale);
        assert_eq!(t2.len(), 5);
        assert_eq!(t3.len(), 5);
        assert_eq!(d.len(), 20);
        assert_eq!(
            eng.cells_computed(),
            computed_after_t2,
            "table3/distributions must reuse table2's cells"
        );
    }

    #[test]
    fn request_cells_covers_every_name() {
        let scale = tiny();
        for name in REQUEST_NAMES {
            let cells = request_cells(name, &scale)
                .unwrap_or_else(|| panic!("{name} must resolve to cells"));
            assert!(!cells.is_empty(), "{name} resolved to an empty cell list");
        }
        assert!(request_cells("table9", &scale).is_none());
        assert_eq!(
            request_cells("all", &scale).unwrap(),
            all_experiment_cells(&scale)
        );
    }

    #[test]
    fn scale_from_env_defaults() {
        // The test runner does not set the scale variables, so the default
        // comes back.
        let s = Scale::from_env().expect("absent variables are not an error");
        assert!(s.instructions > 0);
    }

    #[test]
    fn scale_parse_accepts_valid_values() {
        let s = Scale::parse(Some("150000"), Some("42")).unwrap();
        assert_eq!(s.instructions, 150_000);
        assert_eq!(s.seed, 42);
        let s = Scale::parse(Some(" 5000 "), Some("0x5EED")).unwrap();
        assert_eq!(s.instructions, 5_000);
        assert_eq!(s.seed, 0x5EED);
        let s = Scale::parse(None, Some("0XFF")).unwrap();
        assert_eq!(s.instructions, Scale::default_scale().instructions);
        assert_eq!(s.seed, 0xFF);
    }

    #[test]
    fn scale_parse_defaults_when_absent() {
        assert_eq!(Scale::parse(None, None).unwrap(), Scale::default_scale());
    }

    #[test]
    fn scale_parse_rejects_malformed_values() {
        for bad in ["abc", "", "12x", "-5", "1.5", "0x10"] {
            let e = Scale::parse(Some(bad), None).unwrap_err();
            assert!(
                e.contains("CI_REPRO_INSTRUCTIONS") && e.contains(bad),
                "unhelpful error: {e}"
            );
        }
        assert!(Scale::parse(Some("0"), None)
            .unwrap_err()
            .contains("positive"));
        for bad in ["seed", "", "0x", "0xZZ", "-1", "3.7"] {
            let e = Scale::parse(None, Some(bad)).unwrap_err();
            assert!(e.contains("CI_REPRO_SEED"), "unhelpful error: {e}");
        }
    }
}
