//! One function per table and figure of the paper's evaluation.
//!
//! Each function runs the necessary simulations at a caller-chosen
//! [`Scale`] and returns a [`Table`] whose rows mirror the paper's
//! presentation, so output can be compared side by side with the original
//! (see `EXPERIMENTS.md` at the workspace root). The regeneration binaries
//! in `crates/bench/src/bin/` are thin wrappers over these functions.
//!
//! Absolute IPC numbers differ from the paper (different ISA, workload
//! substitutes and memory system); the comparisons of interest — who wins,
//! by roughly what factor, where the crossovers are — are the reproduction
//! targets.

use ci_core::{
    simulate, simulate_probed, CompletionModel, PipelineConfig, Preemption, ReconStrategy,
    RepredictMode, Stats,
};
use ci_ideal::{simulate as simulate_ideal, IdealConfig, ModelKind, StudyInput};
use ci_isa::Program;
use ci_obs::{Histogram, MetricsProbe};
use ci_report::{f, pct, Table};
use ci_workloads::{Workload, WorkloadParams};

/// How much dynamic work each experiment simulates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Scale {
    /// Target dynamic instructions per workload run.
    pub instructions: u64,
    /// Workload data seed.
    pub seed: u64,
}

impl Scale {
    /// The default experiment scale (fast enough for the whole suite to run
    /// in minutes).
    #[must_use]
    pub fn default_scale() -> Scale {
        Scale {
            instructions: 60_000,
            seed: 0x5EED,
        }
    }

    /// Read the scale from `CI_REPRO_INSTRUCTIONS` / `CI_REPRO_SEED`
    /// environment variables, falling back to the default.
    #[must_use]
    pub fn from_env() -> Scale {
        let mut s = Scale::default_scale();
        if let Some(v) = std::env::var_os("CI_REPRO_INSTRUCTIONS") {
            if let Ok(n) = v.to_string_lossy().parse() {
                s.instructions = n;
            }
        }
        if let Some(v) = std::env::var_os("CI_REPRO_SEED") {
            if let Ok(n) = v.to_string_lossy().parse() {
                s.seed = n;
            }
        }
        s
    }
}

impl Default for Scale {
    fn default() -> Self {
        Scale::default_scale()
    }
}

fn program_for(w: Workload, scale: &Scale) -> Program {
    w.build(&WorkloadParams {
        scale: w.scale_for(scale.instructions),
        seed: scale.seed,
    })
}

fn run(p: &Program, cfg: PipelineConfig, scale: &Scale) -> Stats {
    simulate(p, cfg, scale.instructions).expect("workloads are valid programs")
}

/// Run with a [`MetricsProbe`] attached, for the tables that report
/// distributions (restart-length quantiles, reissue maxima) on top of the
/// aggregate [`Stats`].
fn run_probed(p: &Program, cfg: PipelineConfig, scale: &Scale) -> (Stats, MetricsProbe) {
    simulate_probed(p, cfg, scale.instructions, MetricsProbe::new())
        .expect("workloads are valid programs")
}

/// Table 1: benchmark information (dynamic instruction counts and
/// misprediction rates under the paper's predictor configuration).
#[must_use]
pub fn table1(scale: &Scale) -> Table {
    let mut t = Table::new("TABLE 1. Benchmark information.");
    t.headers(&[
        "benchmark",
        "instruction count",
        "misprediction rate",
        "paper",
    ]);
    let paper = ["8.3%", "16.7%", "9.1%", "6.8%", "1.4%"];
    for (w, paper_rate) in Workload::ALL.into_iter().zip(paper) {
        let p = program_for(w, scale);
        let input = StudyInput::build(&p, scale.instructions).expect("valid program");
        t.row(vec![
            w.name().to_owned(),
            input.len().to_string(),
            pct(input.misprediction_rate()),
            paper_rate.to_owned(),
        ]);
    }
    t
}

/// Figure 3: IPC of the six idealized models as a function of window size.
#[must_use]
pub fn figure3(scale: &Scale, windows: &[usize]) -> Table {
    let mut t = Table::new("FIGURE 3. Performance of the six control independence models (IPC).");
    t.headers(&[
        "benchmark",
        "window",
        "oracle",
        "nWR-nFD",
        "nWR-FD",
        "WR-nFD",
        "WR-FD",
        "base",
    ]);
    for w in Workload::ALL {
        let p = program_for(w, scale);
        let input = StudyInput::build(&p, scale.instructions).expect("valid program");
        for &window in windows {
            let mut row = vec![w.name().to_owned(), window.to_string()];
            for model in [
                ModelKind::Oracle,
                ModelKind::NwrNfd,
                ModelKind::NwrFd,
                ModelKind::WrNfd,
                ModelKind::WrFd,
                ModelKind::Base,
            ] {
                let r = simulate_ideal(
                    &input,
                    &IdealConfig {
                        model,
                        window,
                        ..IdealConfig::default()
                    },
                );
                row.push(f(r.ipc(), 2));
            }
            t.row(row);
        }
    }
    t
}

/// Figures 5 and 6: BASE vs CI vs CI-I IPC for several window sizes, and the
/// percentage improvement of CI over BASE.
#[must_use]
pub fn figure5_6(scale: &Scale, windows: &[usize]) -> (Table, Table) {
    let mut ipc = Table::new("FIGURE 5. Performance with and without control independence (IPC).");
    ipc.headers(&["benchmark", "window", "BASE", "CI", "CI-I"]);
    let mut imp = Table::new("FIGURE 6. Percent improvement in IPC due to control independence.");
    imp.headers(&["benchmark", "window", "CI vs BASE", "CI-I vs CI"]);
    for w in Workload::ALL {
        let p = program_for(w, scale);
        for &window in windows {
            let b = run(&p, PipelineConfig::base(window), scale);
            let c = run(&p, PipelineConfig::ci(window), scale);
            let i = run(&p, PipelineConfig::ci_instant(window), scale);
            ipc.row(vec![
                w.name().to_owned(),
                window.to_string(),
                f(b.ipc(), 2),
                f(c.ipc(), 2),
                f(i.ipc(), 2),
            ]);
            imp.row(vec![
                w.name().to_owned(),
                window.to_string(),
                pct(c.ipc() / b.ipc() - 1.0),
                pct(i.ipc() / c.ipc() - 1.0),
            ]);
        }
    }
    (ipc, imp)
}

/// Table 2: restart/redispatch sequence statistics (window 256).
#[must_use]
pub fn table2(scale: &Scale) -> Table {
    let mut t = Table::new("TABLE 2. Statistics for restart/redispatch sequences (window 256).");
    t.headers(&[
        "benchmark",
        "% reconverge",
        "avg removed",
        "avg inserted",
        "avg CI instr",
        "avg CI renamed",
        "restart p50",
        "restart p90",
    ]);
    for w in Workload::ALL {
        let p = program_for(w, scale);
        let (s, probe) = run_probed(&p, PipelineConfig::ci(256), scale);
        t.row(vec![
            w.name().to_owned(),
            pct(s.reconvergence_rate()),
            f(s.avg_removed(), 1),
            f(s.avg_inserted(), 1),
            f(s.avg_ci(), 1),
            f(s.avg_ci_renamed(), 2),
            probe.restart_length.quantile(0.5).to_string(),
            probe.restart_length.quantile(0.9).to_string(),
        ]);
    }
    t
}

/// Table 3: work saved by control independence, as fractions of retired
/// instructions (window 256).
#[must_use]
pub fn table3(scale: &Scale) -> Table {
    let mut t = Table::new("TABLE 3. Work saved by exploiting control independence (window 256).");
    t.headers(&[
        "benchmark",
        "fetch saved",
        "work saved",
        "work discarded",
        "had only fetched",
    ]);
    for w in Workload::ALL {
        let p = program_for(w, scale);
        let s = run(&p, PipelineConfig::ci(256), scale);
        let (fs, ws, wd, of) = s.work_saved_fractions();
        t.row(vec![
            w.name().to_owned(),
            pct(fs),
            pct(ws),
            pct(wd),
            pct(of),
        ]);
    }
    t
}

/// Table 4: instruction issues per retired instruction, with and without
/// control independence (window 256).
#[must_use]
pub fn table4(scale: &Scale) -> Table {
    let mut t = Table::new("TABLE 4. Instruction issues per retired instruction (window 256).");
    t.headers(&[
        "benchmark",
        "base total",
        "base mem",
        "CI total",
        "CI mem",
        "CI reg",
        "CI max issues",
    ]);
    for w in Workload::ALL {
        let p = program_for(w, scale);
        let b = run(&p, PipelineConfig::base(256), scale);
        let (c, probe) = run_probed(&p, PipelineConfig::ci(256), scale);
        // `reissues` records (issues - 1) per retired instruction, so the
        // worst-case issue count is its maximum plus the original issue.
        let max_issues = if probe.reissues.is_empty() {
            0
        } else {
            probe.reissues.max() + 1
        };
        t.row(vec![
            w.name().to_owned(),
            f(b.issues_per_retired(), 2),
            f(b.mem_violations_per_retired(), 3),
            f(c.issues_per_retired(), 2),
            f(c.mem_violations_per_retired(), 3),
            f(c.reg_violations_per_retired(), 3),
            max_issues.to_string(),
        ]);
    }
    t
}

/// Figure 8: simple vs optimal preemption of restart sequences (window 256).
#[must_use]
pub fn figure8(scale: &Scale) -> Table {
    let mut t = Table::new("FIGURE 8. Simple vs optimal preemption (window 256).");
    t.headers(&[
        "benchmark",
        "simple IPC",
        "optimal IPC",
        "optimal gain",
        "avg restart cycles",
    ]);
    for w in Workload::ALL {
        let p = program_for(w, scale);
        let s = run(
            &p,
            PipelineConfig {
                preemption: Preemption::Simple,
                ..PipelineConfig::ci(256)
            },
            scale,
        );
        let o = run(
            &p,
            PipelineConfig {
                preemption: Preemption::Optimal,
                ..PipelineConfig::ci(256)
            },
            scale,
        );
        t.row(vec![
            w.name().to_owned(),
            f(s.ipc(), 2),
            f(o.ipc(), 2),
            pct(o.ipc() / s.ipc() - 1.0),
            f(s.avg_restart_cycles(), 1),
        ]);
    }
    t
}

/// Figure 9: the branch completion models of Appendix A.2, with and without
/// oracle suppression of false mispredictions (window 256).
#[must_use]
pub fn figure9(scale: &Scale) -> Table {
    let mut t = Table::new(
        "FIGURE 9. Branch completion models and false mispredictions (IPC, window 256).",
    );
    t.headers(&[
        "benchmark",
        "non-spec",
        "spec-D",
        "spec-D-HFM",
        "spec-C",
        "spec-C-HFM",
        "spec",
        "spec-HFM",
    ]);
    for w in Workload::ALL {
        let p = program_for(w, scale);
        let mut row = vec![w.name().to_owned()];
        for (m, hfm) in [
            (CompletionModel::NonSpec, false),
            (CompletionModel::SpecD, false),
            (CompletionModel::SpecD, true),
            (CompletionModel::SpecC, false),
            (CompletionModel::SpecC, true),
            (CompletionModel::Spec, false),
            (CompletionModel::Spec, true),
        ] {
            let s = run(
                &p,
                PipelineConfig {
                    completion: m,
                    hide_false_mispredictions: hfm,
                    ..PipelineConfig::ci(256)
                },
                scale,
            );
            row.push(f(s.ipc(), 2));
        }
        t.row(row);
    }
    t
}

/// Figure 10: cumulative fraction of false mispredictions detectable while
/// delaying at most 10% / 20% of true mispredictions, per detection scheme.
///
/// Runs under the `spec` completion model, where false mispredictions are
/// most frequent.
#[must_use]
pub fn figure10(scale: &Scale) -> Table {
    let mut t = Table::new(
        "FIGURE 10. Detecting false mispredictions from true/false history (spec model, window 256).",
    );
    t.headers(&[
        "benchmark",
        "true/false mispred",
        "static@10%",
        "static@20%",
        "dyn(pc)@10%",
        "dyn(pc)@20%",
        "dyn(xor)@10%",
        "dyn(xor)@20%",
    ]);
    for w in Workload::ALL {
        let p = program_for(w, scale);
        let s = run(
            &p,
            PipelineConfig {
                completion: CompletionModel::Spec,
                ..PipelineConfig::ci(256)
            },
            scale,
        );
        t.row(vec![
            w.name().to_owned(),
            format!("{}/{}", s.true_mispredictions, s.false_mispredictions),
            pct(s.tfr_static.false_coverage_at(0.10)),
            pct(s.tfr_static.false_coverage_at(0.20)),
            pct(s.tfr_dynamic_pc.false_coverage_at(0.10)),
            pct(s.tfr_dynamic_pc.false_coverage_at(0.20)),
            pct(s.tfr_dynamic_xor.false_coverage_at(0.10)),
            pct(s.tfr_dynamic_xor.false_coverage_at(0.20)),
        ]);
    }
    t
}

/// Figure 12: impact of predicting with the architecturally correct
/// ("oracle") global branch history (window 256).
#[must_use]
pub fn figure12(scale: &Scale) -> Table {
    let mut t = Table::new("FIGURE 12. Impact of oracle global branch history (window 256).");
    t.headers(&["benchmark", "CI IPC", "CI + oracle GHR", "delta"]);
    for w in Workload::ALL {
        let p = program_for(w, scale);
        let c = run(&p, PipelineConfig::ci(256), scale);
        let o = run(
            &p,
            PipelineConfig {
                oracle_ghr: true,
                ..PipelineConfig::ci(256)
            },
            scale,
        );
        t.row(vec![
            w.name().to_owned(),
            f(c.ipc(), 2),
            f(o.ipc(), 2),
            pct(o.ipc() / c.ipc() - 1.0),
        ]);
    }
    t
}

/// Figure 13: the value of re-predict sequences — BASE, CI with no
/// re-prediction (CI-NR), the CI heuristic, and oracle re-prediction (CI-OR)
/// (window 256).
#[must_use]
pub fn figure13(scale: &Scale) -> Table {
    let mut t = Table::new("FIGURE 13. Evaluation of re-predictions (IPC, window 256).");
    t.headers(&["benchmark", "base", "CI-NR", "CI", "CI-OR"]);
    for w in Workload::ALL {
        let p = program_for(w, scale);
        let b = run(&p, PipelineConfig::base(256), scale);
        let mut row = vec![w.name().to_owned(), f(b.ipc(), 2)];
        for rp in [
            RepredictMode::None,
            RepredictMode::Heuristic,
            RepredictMode::Oracle,
        ] {
            let s = run(
                &p,
                PipelineConfig {
                    repredict: rp,
                    ..PipelineConfig::ci(256)
                },
                scale,
            );
            row.push(f(s.ipc(), 2));
        }
        t.row(row);
    }
    t
}

/// Figure 14: ROB segment size (1/4/16 instructions, 256-instruction window).
#[must_use]
pub fn figure14(scale: &Scale) -> Table {
    let mut t = Table::new("FIGURE 14. Varying ROB segment size (window 256).");
    t.headers(&[
        "benchmark",
        "base",
        "seg=1",
        "seg=4",
        "seg=16",
        "imp@1",
        "imp@4",
        "imp@16",
    ]);
    for w in Workload::ALL {
        let p = program_for(w, scale);
        let b = run(&p, PipelineConfig::base(256), scale);
        let mut ipcs = Vec::new();
        for seg in [1usize, 4, 16] {
            let s = run(
                &p,
                PipelineConfig {
                    segment: seg,
                    ..PipelineConfig::ci(256)
                },
                scale,
            );
            ipcs.push(s.ipc());
        }
        t.row(vec![
            w.name().to_owned(),
            f(b.ipc(), 2),
            f(ipcs[0], 2),
            f(ipcs[1], 2),
            f(ipcs[2], 2),
            pct(ipcs[0] / b.ipc() - 1.0),
            pct(ipcs[1] / b.ipc() - 1.0),
            pct(ipcs[2] / b.ipc() - 1.0),
        ]);
    }
    t
}

/// Figure 17: hardware heuristics for identifying reconvergent points,
/// as percentage IPC improvement over the BASE machine (window 256).
#[must_use]
pub fn figure17(scale: &Scale) -> Table {
    let mut t = Table::new(
        "FIGURE 17. Instruction-type heuristics for reconvergent points (% IPC improvement over base, window 256).",
    );
    t.headers(&[
        "benchmark",
        "return",
        "loop",
        "ltb",
        "return/loop",
        "return/ltb",
        "loop/ltb",
        "all",
        "CI (postdom)",
    ]);
    let combos: [(&str, ReconStrategy); 7] = [
        ("return", ReconStrategy::hardware(true, false, false)),
        ("loop", ReconStrategy::hardware(false, true, false)),
        ("ltb", ReconStrategy::hardware(false, false, true)),
        ("return/loop", ReconStrategy::hardware(true, true, false)),
        ("return/ltb", ReconStrategy::hardware(true, false, true)),
        ("loop/ltb", ReconStrategy::hardware(false, true, true)),
        ("all", ReconStrategy::hardware(true, true, true)),
    ];
    for w in Workload::ALL {
        let p = program_for(w, scale);
        let b = run(&p, PipelineConfig::base(256), scale);
        let mut row = vec![w.name().to_owned()];
        for (_, recon) in combos {
            let s = run(
                &p,
                PipelineConfig {
                    recon,
                    ..PipelineConfig::ci(256)
                },
                scale,
            );
            row.push(pct(s.ipc() / b.ipc() - 1.0));
        }
        let sw = run(&p, PipelineConfig::ci(256), scale);
        row.push(pct(sw.ipc() / b.ipc() - 1.0));
        t.row(row);
    }
    t
}

/// Distribution summaries from the observability layer: restart-sequence
/// length, distance to the reconvergent point, window occupancy and reissue
/// counts, per workload (CI machine, window 256).
///
/// These go beyond the paper's averages — the per-event histograms expose
/// the long tails that the means in Tables 2 and 4 hide.
#[must_use]
pub fn distributions(scale: &Scale) -> Table {
    let mut t = Table::new(
        "DISTRIBUTIONS. Restart, reconvergence, occupancy and reissue histograms (CI, window 256).",
    );
    t.headers(&["benchmark", "metric", "n", "mean", "p50", "p90", "max"]);
    for w in Workload::ALL {
        let p = program_for(w, scale);
        let (_, probe) = run_probed(&p, PipelineConfig::ci(256), scale);
        let metrics: [(&str, &Histogram); 4] = [
            ("restart length (cycles)", &probe.restart_length),
            ("recon distance (instr)", &probe.recon_distance),
            ("window occupancy", &probe.occupancy),
            ("reissues per retired", &probe.reissues),
        ];
        for (name, h) in metrics {
            t.row(vec![
                w.name().to_owned(),
                name.to_owned(),
                h.count().to_string(),
                f(h.mean(), 2),
                h.quantile(0.5).to_string(),
                h.quantile(0.9).to_string(),
                h.max().to_string(),
            ]);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Scale {
        Scale {
            instructions: 4_000,
            seed: 7,
        }
    }

    #[test]
    fn table1_has_five_rows() {
        let t = table1(&tiny());
        assert_eq!(t.len(), 5);
    }

    #[test]
    fn figure3_covers_models_and_windows() {
        let t = figure3(&tiny(), &[32, 64]);
        assert_eq!(t.len(), 10);
    }

    #[test]
    fn figure5_6_consistent() {
        let (ipc, imp) = figure5_6(&tiny(), &[64]);
        assert_eq!(ipc.len(), 5);
        assert_eq!(imp.len(), 5);
    }

    #[test]
    fn table2_reports_restart_quantiles() {
        let t = table2(&tiny());
        assert_eq!(t.len(), 5);
        assert_eq!(t.header_cells().len(), 8);
        let row = &t.data_rows()[0];
        let p50: u64 = row[6].parse().expect("p50 is integral");
        let p90: u64 = row[7].parse().expect("p90 is integral");
        assert!(p90 >= p50);
    }

    #[test]
    fn distributions_covers_all_workloads_and_metrics() {
        let t = distributions(&tiny());
        assert_eq!(t.len(), 5 * 4);
        assert!(t.data_rows().iter().all(|r| r.len() == 7));
    }

    #[test]
    fn scale_from_env_defaults() {
        let s = Scale::from_env();
        assert!(s.instructions > 0);
    }
}
