//! Reproduction of *"A Study of Control Independence in Superscalar
//! Processors"* (Rotenberg, Jacobson & Smith, HPCA 1999) as a Rust workspace.
//!
//! This facade crate re-exports every layer of the suite and provides the
//! [`experiments`] module: one function per table and figure of the paper,
//! each returning ready-to-print [`ci_report::Table`]s. The member crates:
//!
//! - [`ci_isa`]: the RISC-style ISA, programs, assembler.
//! - [`ci_emu`]: functional emulation, wrong-path forks, traces.
//! - [`ci_bpred`]: gshare / CTB / RAS / confidence / TFR predictors.
//! - [`ci_cfg`]: CFG recovery, post-dominators, reconvergence maps.
//! - [`ci_workloads`]: the five SPEC95-analogue synthetic benchmarks.
//! - [`ci_ideal`]: the six idealized machine models of Section 2.
//! - [`ci_core`]: the detailed execution-driven CI superscalar simulator.
//! - [`ci_obs`]: observability — pipeline event probes, metrics/histograms,
//!   JSON-lines export, flight recorder, timeline.
//! - [`ci_report`]: text table rendering (+ JSON-lines export).
//!
//! # Quickstart
//!
//! ```
//! use control_independence::prelude::*;
//!
//! let program = Workload::GoLike.build(&WorkloadParams { scale: 200, seed: 1 });
//! let base = simulate(&program, PipelineConfig::base(256), 30_000).unwrap();
//! let ci = simulate(&program, PipelineConfig::ci(256), 30_000).unwrap();
//! println!("BASE {:.2} IPC → CI {:.2} IPC", base.ipc(), ci.ipc());
//! assert!(ci.ipc() >= base.ipc() * 0.95);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use ci_bpred;
pub use ci_cfg;
pub use ci_core;
pub use ci_emu;
pub use ci_explore;
pub use ci_ideal;
pub use ci_isa;
pub use ci_obs;
pub use ci_report;
pub use ci_runner;
pub use ci_workloads;

pub mod experiments;

/// Convenient re-exports for typical use.
pub mod prelude {
    pub use ci_core::{
        simulate, simulate_probed, simulate_profiled, CacheModel, CompletionModel, CycleActivity,
        Pipeline, PipelineConfig, Preemption, ProfiledRun, ReconStrategy, RedispatchMode,
        RepredictMode, SquashMode, Stats,
    };
    pub use ci_emu::{run_trace, Emulator, Trace};
    pub use ci_ideal::{
        simulate as simulate_ideal, IdealConfig, IdealResult, ModelKind, StudyInput,
    };
    pub use ci_isa::{Addr, Asm, Inst, InstClass, Pc, Program, Reg};
    pub use ci_obs::{
        Event, EventKind, FlightRecorder, Histogram, MetricsProbe, NoopProbe, NoopProfiler, Probe,
        Profiler, Registry, SpanProfiler, TimelineProbe,
    };
    pub use ci_report::Table;
    pub use ci_runner::{CellOutput, CellSpec, Engine, EngineOptions, RunMetrics};
    pub use ci_workloads::{random_program, Workload, WorkloadParams};
}
