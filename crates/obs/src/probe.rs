//! The pipeline event stream: [`Event`], the [`Probe`] sink trait, and the
//! statically-monomorphized no-op sink.

use std::fmt;

/// Why an instruction was forced to issue again.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReissueKind {
    /// Memory-ordering violation (load issued ahead of a conflicting store).
    Memory,
    /// Redispatch changed a source register name.
    Register,
    /// A producer completed after the consumer issued under a stale value.
    Value,
}

impl ReissueKind {
    /// Short lowercase label.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ReissueKind::Memory => "mem",
            ReissueKind::Register => "reg",
            ReissueKind::Value => "value",
        }
    }
}

/// One pipeline event. Program counters are carried as raw `u32` words so
/// this crate stays dependency-free; they are the same values the ISA
/// crate's `Pc` wraps.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Event {
    /// An instruction was fetched at `pc`.
    Fetch {
        /// Fetch program counter.
        pc: u32,
    },
    /// A fetched instruction was renamed and entered the window.
    Dispatch {
        /// Program counter of the dispatched instruction.
        pc: u32,
    },
    /// An instruction was selected and began execution.
    Issue {
        /// Program counter of the issuing instruction.
        pc: u32,
        /// True when this is not the instruction's first issue.
        reissue: bool,
    },
    /// An instruction finished execution and wrote back.
    Complete {
        /// Program counter of the completing instruction.
        pc: u32,
    },
    /// An instruction retired (left the window architecturally).
    Retire {
        /// Program counter of the retiring instruction.
        pc: u32,
        /// Total times it issued (1 = never reissued).
        issues: u32,
    },
    /// An instruction was squashed out of the window.
    Squash {
        /// Program counter of the squashed instruction.
        pc: u32,
    },
    /// A misprediction recovery began (the span opens).
    RestartBegin {
        /// Program counter of the mispredicted branch.
        branch_pc: u32,
        /// Corrected next PC.
        redirect_pc: u32,
        /// Whether a reconvergent point was found in the window.
        reconverged: bool,
        /// Incorrect control-dependent instructions selectively removed
        /// (the distance to reconvergence along the squashed path).
        removed: u32,
    },
    /// A restart sequence finished filling its gap (the span closes).
    RestartEnd {
        /// Program counter of the recovering branch.
        branch_pc: u32,
        /// Correct-path instructions inserted by the restart.
        inserted: u64,
        /// Cycles the restart sequence occupied the sequencer.
        cycles: u64,
    },
    /// A control-independent instruction was walked by a redispatch
    /// sequence.
    Redispatch {
        /// Program counter of the redispatched instruction.
        pc: u32,
        /// Whether redispatch changed one of its source register names.
        renamed: bool,
    },
    /// An issued instruction was invalidated and will issue again.
    Reissue {
        /// Program counter of the invalidated instruction.
        pc: u32,
        /// Invalidation cause.
        kind: ReissueKind,
    },
    /// End-of-cycle marker carrying window occupancy.
    CycleEnd {
        /// Instructions resident in the window this cycle.
        occupancy: u32,
    },
}

/// Discriminant-only view of [`Event`] for counting.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// [`Event::Fetch`].
    Fetch,
    /// [`Event::Dispatch`].
    Dispatch,
    /// [`Event::Issue`].
    Issue,
    /// [`Event::Complete`].
    Complete,
    /// [`Event::Retire`].
    Retire,
    /// [`Event::Squash`].
    Squash,
    /// [`Event::RestartBegin`].
    RestartBegin,
    /// [`Event::RestartEnd`].
    RestartEnd,
    /// [`Event::Redispatch`].
    Redispatch,
    /// [`Event::Reissue`].
    Reissue,
    /// [`Event::CycleEnd`].
    CycleEnd,
}

impl EventKind {
    /// Every kind, in declaration order (the indexing order of
    /// [`crate::EventCounters`]).
    pub const ALL: [EventKind; 11] = [
        EventKind::Fetch,
        EventKind::Dispatch,
        EventKind::Issue,
        EventKind::Complete,
        EventKind::Retire,
        EventKind::Squash,
        EventKind::RestartBegin,
        EventKind::RestartEnd,
        EventKind::Redispatch,
        EventKind::Reissue,
        EventKind::CycleEnd,
    ];

    /// Stable snake_case name (used as the JSON metric key).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            EventKind::Fetch => "fetch",
            EventKind::Dispatch => "dispatch",
            EventKind::Issue => "issue",
            EventKind::Complete => "complete",
            EventKind::Retire => "retire",
            EventKind::Squash => "squash",
            EventKind::RestartBegin => "restart_begin",
            EventKind::RestartEnd => "restart_end",
            EventKind::Redispatch => "redispatch",
            EventKind::Reissue => "reissue",
            EventKind::CycleEnd => "cycle_end",
        }
    }

    pub(crate) fn index(self) -> usize {
        self as usize
    }
}

impl Event {
    /// The event's kind.
    #[must_use]
    pub fn kind(&self) -> EventKind {
        match self {
            Event::Fetch { .. } => EventKind::Fetch,
            Event::Dispatch { .. } => EventKind::Dispatch,
            Event::Issue { .. } => EventKind::Issue,
            Event::Complete { .. } => EventKind::Complete,
            Event::Retire { .. } => EventKind::Retire,
            Event::Squash { .. } => EventKind::Squash,
            Event::RestartBegin { .. } => EventKind::RestartBegin,
            Event::RestartEnd { .. } => EventKind::RestartEnd,
            Event::Redispatch { .. } => EventKind::Redispatch,
            Event::Reissue { .. } => EventKind::Reissue,
            Event::CycleEnd { .. } => EventKind::CycleEnd,
        }
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Event::Fetch { pc } => write!(f, "fetch pc={pc}"),
            Event::Dispatch { pc } => write!(f, "dispatch pc={pc}"),
            Event::Issue { pc, reissue } => {
                write!(f, "issue pc={pc}{}", if reissue { " (reissue)" } else { "" })
            }
            Event::Complete { pc } => write!(f, "complete pc={pc}"),
            Event::Retire { pc, issues } => write!(f, "retire pc={pc} issues={issues}"),
            Event::Squash { pc } => write!(f, "squash pc={pc}"),
            Event::RestartBegin { branch_pc, redirect_pc, reconverged, removed } => write!(
                f,
                "restart-begin branch={branch_pc} redirect={redirect_pc} reconverged={reconverged} removed={removed}"
            ),
            Event::RestartEnd { branch_pc, inserted, cycles } => {
                write!(f, "restart-end branch={branch_pc} inserted={inserted} cycles={cycles}")
            }
            Event::Redispatch { pc, renamed } => {
                write!(f, "redispatch pc={pc} renamed={renamed}")
            }
            Event::Reissue { pc, kind } => write!(f, "reissue pc={pc} cause={}", kind.name()),
            Event::CycleEnd { occupancy } => write!(f, "cycle-end occupancy={occupancy}"),
        }
    }
}

/// A sink for pipeline events.
///
/// The pipeline is generic over its probe and monomorphized, so with the
/// default [`NoopProbe`] every `record` call inlines to nothing — the hot
/// path pays no branch, no indirect call, and no allocation when
/// observability is disabled (`benches/obs_overhead.rs` tracks this).
pub trait Probe {
    /// Observe one event at `cycle`. The default implementation discards it.
    #[inline(always)]
    fn record(&mut self, cycle: u64, event: Event) {
        let _ = (cycle, event);
    }

    /// Render whatever post-mortem state the probe holds (the flight
    /// recorder's tail). `None` when the probe keeps no replayable state.
    fn dump(&self) -> Option<String> {
        None
    }
}

/// The default sink: discards every event at zero cost.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NoopProbe;

impl Probe for NoopProbe {}

/// Probes compose: a pair fans every event out to both members.
impl<A: Probe, B: Probe> Probe for (A, B) {
    #[inline(always)]
    fn record(&mut self, cycle: u64, event: Event) {
        self.0.record(cycle, event);
        self.1.record(cycle, event);
    }

    fn dump(&self) -> Option<String> {
        match (self.0.dump(), self.1.dump()) {
            (Some(a), Some(b)) => Some(format!("{a}\n{b}")),
            (a, b) => a.or(b),
        }
    }
}

/// Mutable references forward, so a caller can keep ownership of its probe
/// while the pipeline drives it.
impl<P: Probe> Probe for &mut P {
    #[inline(always)]
    fn record(&mut self, cycle: u64, event: Event) {
        (**self).record(cycle, event);
    }

    fn dump(&self) -> Option<String> {
        (**self).dump()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_cover_events_and_names_are_stable() {
        let events = [
            Event::Fetch { pc: 1 },
            Event::Dispatch { pc: 1 },
            Event::Issue {
                pc: 1,
                reissue: false,
            },
            Event::Complete { pc: 1 },
            Event::Retire { pc: 1, issues: 1 },
            Event::Squash { pc: 1 },
            Event::RestartBegin {
                branch_pc: 1,
                redirect_pc: 2,
                reconverged: true,
                removed: 3,
            },
            Event::RestartEnd {
                branch_pc: 1,
                inserted: 4,
                cycles: 5,
            },
            Event::Redispatch {
                pc: 1,
                renamed: true,
            },
            Event::Reissue {
                pc: 1,
                kind: ReissueKind::Memory,
            },
            Event::CycleEnd { occupancy: 9 },
        ];
        for (e, k) in events.iter().zip(EventKind::ALL) {
            assert_eq!(e.kind(), k);
            assert!(!e.to_string().is_empty());
            assert!(!k.name().is_empty());
        }
    }

    #[test]
    fn noop_probe_is_zero_sized_and_silent() {
        assert_eq!(std::mem::size_of::<NoopProbe>(), 0);
        let mut p = NoopProbe;
        p.record(1, Event::Fetch { pc: 0 });
        assert!(p.dump().is_none());
    }

    #[test]
    fn pair_probe_fans_out() {
        #[derive(Default)]
        struct Count(u64);
        impl Probe for Count {
            fn record(&mut self, _c: u64, _e: Event) {
                self.0 += 1;
            }
            fn dump(&self) -> Option<String> {
                Some(format!("count={}", self.0))
            }
        }
        let mut pair = (Count::default(), Count::default());
        pair.record(1, Event::Fetch { pc: 0 });
        pair.record(2, Event::Squash { pc: 0 });
        assert_eq!(pair.0 .0, 2);
        assert_eq!(pair.1 .0, 2);
        assert_eq!(pair.dump().unwrap(), "count=2\ncount=2");
        let mut c = Count::default();
        let mut by_ref = &mut c;
        Probe::record(&mut by_ref, 1, Event::Fetch { pc: 0 });
        assert_eq!(Probe::dump(&&mut c).unwrap(), "count=1");
    }
}
