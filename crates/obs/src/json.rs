//! Hand-rolled JSON: a small value model, a writer, and a strict parser.
//!
//! The library crates stay dependency-free, so instead of `serde` this
//! module provides exactly what the suite needs: building JSON-lines
//! records for export and parsing them back in tests and the inspector.

use std::fmt;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (emitted without a decimal point).
    I64(i64),
    /// A float. Non-finite values render as `null` (JSON has no NaN).
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, JsonValue)>),
}

impl From<bool> for JsonValue {
    fn from(v: bool) -> JsonValue {
        JsonValue::Bool(v)
    }
}
impl From<i64> for JsonValue {
    fn from(v: i64) -> JsonValue {
        JsonValue::I64(v)
    }
}
impl From<u64> for JsonValue {
    fn from(v: u64) -> JsonValue {
        i64::try_from(v).map_or(JsonValue::F64(v as f64), JsonValue::I64)
    }
}
impl From<u32> for JsonValue {
    fn from(v: u32) -> JsonValue {
        JsonValue::I64(i64::from(v))
    }
}
impl From<usize> for JsonValue {
    fn from(v: usize) -> JsonValue {
        JsonValue::from(v as u64)
    }
}
impl From<f64> for JsonValue {
    fn from(v: f64) -> JsonValue {
        JsonValue::F64(v)
    }
}
impl From<&str> for JsonValue {
    fn from(v: &str) -> JsonValue {
        JsonValue::Str(v.to_owned())
    }
}
impl From<String> for JsonValue {
    fn from(v: String) -> JsonValue {
        JsonValue::Str(v)
    }
}

impl JsonValue {
    /// Build an object from `(key, value)` pairs.
    pub fn obj<K: Into<String>, V: Into<JsonValue>>(
        pairs: impl IntoIterator<Item = (K, V)>,
    ) -> JsonValue {
        JsonValue::Obj(
            pairs
                .into_iter()
                .map(|(k, v)| (k.into(), v.into()))
                .collect(),
        )
    }

    /// Object field lookup (first match).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric view: integers and floats both convert.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            JsonValue::I64(v) => Some(v as f64),
            JsonValue::F64(v) => Some(v),
            _ => None,
        }
    }

    /// Integer view (floats only when they are exactly integral).
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            JsonValue::I64(v) => Some(v),
            JsonValue::F64(v) if v.fract() == 0.0 && v.abs() < 9e15 => Some(v as i64),
            _ => None,
        }
    }

    /// Boolean view.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            JsonValue::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// Array view.
    #[must_use]
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Render to compact JSON text.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Append compact JSON text to `out`.
    pub fn write(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(true) => out.push_str("true"),
            JsonValue::Bool(false) => out.push_str("false"),
            JsonValue::I64(v) => out.push_str(&v.to_string()),
            JsonValue::F64(v) => {
                if v.is_finite() {
                    // Guarantee a numeric token round-trips as a float or
                    // integer; Rust's Display for f64 is shortest-roundtrip.
                    out.push_str(&v.to_string());
                } else {
                    out.push_str("null");
                }
            }
            JsonValue::Str(s) => write_escaped(s, out),
            JsonValue::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            JsonValue::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl fmt::Display for JsonValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// Append `s` as a quoted, escaped JSON string.
pub fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure: byte offset and message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub msg: &'static str,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parse one JSON document (trailing whitespace allowed, nothing else).
///
/// # Errors
/// Returns [`ParseError`] on malformed input.
pub fn parse(text: &str) -> Result<JsonValue, ParseError> {
    let bytes = text.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &'static str) -> ParseError {
        ParseError { at: self.pos, msg }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8, msg: &'static str) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(msg))
        }
    }

    fn lit(&mut self, s: &str, v: JsonValue) -> Result<JsonValue, ParseError> {
        if self.bytes[self.pos..].starts_with(s.as_bytes()) {
            self.pos += s.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<JsonValue, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.lit("true", JsonValue::Bool(true)),
            Some(b'f') => self.lit("false", JsonValue::Bool(false)),
            Some(b'n') => self.lit("null", JsonValue::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self) -> Result<JsonValue, ParseError> {
        self.eat(b'{', "expected '{'")?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected ':'")?;
            self.skip_ws();
            let v = self.value()?;
            pairs.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, ParseError> {
        self.eat(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"', "expected '\"'")?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Consume a run of plain bytes.
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' || c < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{08}'),
                        b'f' => s.push('\u{0c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            s.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => return Err(self.err("control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(v) = text.parse::<i64>() {
                return Ok(JsonValue::I64(v));
            }
        }
        text.parse::<f64>()
            .map(JsonValue::F64)
            .map_err(|_| ParseError {
                at: start,
                msg: "invalid number",
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_round_trips() {
        let nasty = "he said \"hi\\there\"\n\tcol\u{0}umn\r\u{0c}\u{08}€";
        let v = JsonValue::obj([("k", nasty)]);
        let text = v.render();
        let back = parse(&text).unwrap();
        assert_eq!(back.get("k").unwrap().as_str().unwrap(), nasty);
    }

    #[test]
    fn escapes_are_standard() {
        let mut out = String::new();
        write_escaped("a\"b\\c\nd\u{01}", &mut out);
        assert_eq!(out, r#""a\"b\\c\nd\u0001""#);
    }

    #[test]
    fn every_control_character_escapes_and_round_trips() {
        // All 32 C0 control characters, as both values and object keys.
        for cp in 0u32..0x20 {
            let c = char::from_u32(cp).unwrap();
            let s = format!("a{c}b");
            let v = JsonValue::obj([(s.as_str(), s.as_str())]);
            let text = v.render();
            // The raw control byte must never appear in the output.
            assert!(
                text.bytes().all(|b| b >= 0x20),
                "raw control byte 0x{cp:02x} leaked into: {text:?}"
            );
            let back = parse(&text).unwrap();
            assert_eq!(
                back.get(&s).unwrap().as_str(),
                Some(s.as_str()),
                "cp=0x{cp:02x}"
            );
        }
    }

    #[test]
    fn control_characters_use_short_escapes_where_standard() {
        // The named two-character escapes, not \u00XX.
        for (c, esc) in [
            ('\u{08}', r"\b"),
            ('\t', r"\t"),
            ('\n', r"\n"),
            ('\u{0c}', r"\f"),
            ('\r', r"\r"),
        ] {
            let mut out = String::new();
            write_escaped(&c.to_string(), &mut out);
            assert_eq!(out, format!("\"{esc}\""));
        }
        // Everything else in C0 uses \u00XX.
        let mut out = String::new();
        write_escaped("\u{1f}", &mut out);
        assert_eq!(out, "\"\\u001f\"");
        // Parser rejects raw (unescaped) control characters in strings.
        assert!(parse("\"a\u{01}b\"").is_err());
    }

    #[test]
    fn numbers() {
        assert_eq!(JsonValue::from(42u64).render(), "42");
        assert_eq!(JsonValue::from(-7i64).render(), "-7");
        assert_eq!(JsonValue::from(1.5f64).render(), "1.5");
        assert_eq!(JsonValue::F64(f64::NAN).render(), "null");
        assert_eq!(
            JsonValue::from(u64::MAX).render(),
            (u64::MAX as f64).to_string()
        );
        assert_eq!(parse("42").unwrap(), JsonValue::I64(42));
        assert_eq!(parse("-1.5e3").unwrap(), JsonValue::F64(-1500.0));
        assert_eq!(
            parse("9999999999999999999999").unwrap(),
            JsonValue::F64(1e22)
        );
        assert_eq!(JsonValue::I64(3).as_i64(), Some(3));
        assert_eq!(JsonValue::F64(3.0).as_i64(), Some(3));
        assert_eq!(JsonValue::F64(3.5).as_i64(), None);
    }

    #[test]
    fn structures_round_trip() {
        let v = JsonValue::obj([
            ("s", JsonValue::from("x")),
            ("n", JsonValue::Null),
            ("b", JsonValue::from(true)),
            (
                "a",
                JsonValue::Arr(vec![1u64.into(), "two".into(), JsonValue::Arr(vec![])]),
            ),
            ("o", JsonValue::obj([("inner", 2.25f64)])),
        ]);
        let text = v.render();
        assert_eq!(parse(&text).unwrap(), v);
        assert_eq!(v.get("b").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(
            v.get("o").unwrap().get("inner").unwrap().as_f64(),
            Some(2.25)
        );
        assert!(v.get("missing").is_none());
        assert_eq!(v.to_string(), text);
    }

    #[test]
    fn parse_rejects_malformed() {
        for bad in [
            "",
            "{",
            "}",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "\"unterminated",
            "tru",
            "1 2",
            "{\"a\":1,}",
            "\"bad\\q\"",
            "\"\\u12\"",
        ] {
            assert!(parse(bad).is_err(), "should reject: {bad}");
        }
    }

    #[test]
    fn parse_accepts_whitespace_and_unicode_escapes() {
        let v = parse(" { \"a\" : [ 1 , \"\\u0041\" ] } ").unwrap();
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[1].as_str(),
            Some("A")
        );
    }
}
