//! A lightweight hierarchical span profiler for the simulator's *own*
//! performance: [`Profiler`] is the enter/exit seam, [`NoopProfiler`] the
//! statically-monomorphized free default (the same zero-cost idiom as
//! [`crate::NoopProbe`]), and [`SpanProfiler`] the real sink that aggregates
//! named scopes into a call tree with host-time totals and call counts.
//!
//! The aggregated tree exports three ways:
//!
//! * [`SpanProfiler::text_summary`] — a flame-style indented text report
//!   (total time, share of the root, self time, call count per node);
//! * [`SpanProfiler::to_json`] — the nested tree through the hand-rolled
//!   [`crate::json`] writer, for machine-readable reports;
//! * [`SpanProfiler::chrome_trace`] — a Chrome `trace_event` document
//!   (`chrome://tracing` / Perfetto). Because the profiler stores
//!   *aggregates*, not raw events, timestamps are synthesized: each node is
//!   laid out as one complete (`"ph":"X"`) event whose children occupy
//!   consecutive sub-ranges — a flame chart of where host time went, not a
//!   timeline of when.
//!
//! Spans measure **host** (wall-clock) time spent inside the simulator's
//! code, never simulated cycles; they exist to attribute the cost of the
//! cycle loop to pipeline stages, which is what the data-oriented core
//! rewrite will be judged against.

use crate::json::JsonValue;
use std::time::{Duration, Instant};

/// A sink for hierarchical enter/exit scope events.
///
/// Like [`crate::Probe`], implementors are statically monomorphized into
/// the instrumented code: with the default [`NoopProfiler`] every
/// `enter`/`exit` pair inlines to nothing, so the cycle loop pays no branch
/// and no timestamp when profiling is off (`benches/obs_overhead.rs` tracks
/// this).
pub trait Profiler {
    /// Open a named scope. The default implementation discards it.
    #[inline(always)]
    fn enter(&mut self, name: &'static str) {
        let _ = name;
    }

    /// Close the innermost open scope. The default implementation does
    /// nothing.
    #[inline(always)]
    fn exit(&mut self) {}
}

/// The default profiler: discards every scope at zero cost.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NoopProfiler;

impl Profiler for NoopProfiler {}

/// Mutable references forward, so a caller can keep ownership of its
/// profiler while the instrumented code drives it.
impl<F: Profiler> Profiler for &mut F {
    #[inline(always)]
    fn enter(&mut self, name: &'static str) {
        (**self).enter(name);
    }

    #[inline(always)]
    fn exit(&mut self) {
        (**self).exit();
    }
}

/// One aggregated node of the span tree.
#[derive(Clone, Debug)]
struct Node {
    name: &'static str,
    children: Vec<usize>,
    calls: u64,
    /// Total time inside this scope (including children), in nanoseconds.
    total_ns: u64,
}

/// Aggregating span profiler: records enter/exit of named scopes and folds
/// them into a call tree keyed by (parent, name).
///
/// Re-entering the same name under the same parent accumulates into one
/// node (the cycle loop enters `"issue"` once per cycle; the tree holds a
/// single `issue` node with `calls` = cycles). Recursion is supported —
/// a name nested under itself is a distinct child node.
#[derive(Clone, Debug)]
pub struct SpanProfiler {
    /// Node 0 is the synthetic root; it never has a timestamp of its own.
    nodes: Vec<Node>,
    /// Open scopes: (node index, enter time).
    stack: Vec<(usize, Instant)>,
    /// Exits with an empty stack (always a bug in the instrumentation).
    unbalanced_exits: u64,
}

impl SpanProfiler {
    /// An empty profiler.
    #[must_use]
    pub fn new() -> SpanProfiler {
        SpanProfiler {
            nodes: vec![Node {
                name: "",
                children: Vec::new(),
                calls: 0,
                total_ns: 0,
            }],
            stack: Vec::new(),
            unbalanced_exits: 0,
        }
    }

    /// Whether every entered scope has been exited.
    #[must_use]
    pub fn is_balanced(&self) -> bool {
        self.stack.is_empty() && self.unbalanced_exits == 0
    }

    /// Total recorded time across the top-level scopes.
    #[must_use]
    pub fn total(&self) -> Duration {
        Duration::from_nanos(
            self.nodes[0]
                .children
                .iter()
                .map(|&c| self.nodes[c].total_ns)
                .sum(),
        )
    }

    /// Sum of total time over every node named `name`, wherever it appears
    /// in the tree.
    #[must_use]
    pub fn total_of(&self, name: &str) -> Duration {
        Duration::from_nanos(
            self.nodes
                .iter()
                .filter(|n| n.name == name)
                .map(|n| n.total_ns)
                .sum(),
        )
    }

    /// Sum of call counts over every node named `name`.
    #[must_use]
    pub fn calls_of(&self, name: &str) -> u64 {
        self.nodes
            .iter()
            .filter(|n| n.name == name)
            .map(|n| n.calls)
            .sum()
    }

    /// `(name, total, calls)` for each top-level scope, in first-entry
    /// order.
    #[must_use]
    pub fn roots(&self) -> Vec<(&'static str, Duration, u64)> {
        self.nodes[0]
            .children
            .iter()
            .map(|&c| {
                let n = &self.nodes[c];
                (n.name, Duration::from_nanos(n.total_ns), n.calls)
            })
            .collect()
    }

    fn self_ns(&self, idx: usize) -> u64 {
        let n = &self.nodes[idx];
        let child_sum: u64 = n.children.iter().map(|&c| self.nodes[c].total_ns).sum();
        n.total_ns.saturating_sub(child_sum)
    }

    /// Flame-style indented text report. Each line shows the node's total
    /// time, its share of the whole recording, its self time (total minus
    /// children), and its call count.
    #[must_use]
    pub fn text_summary(&self) -> String {
        let whole = self.total().as_nanos().max(1) as f64;
        let mut out = format!(
            "span tree (total {:.1}ms):\n",
            self.total().as_secs_f64() * 1e3
        );
        let mut work: Vec<(usize, usize)> = self.nodes[0]
            .children
            .iter()
            .rev()
            .map(|&c| (c, 0))
            .collect();
        while let Some((idx, depth)) = work.pop() {
            let n = &self.nodes[idx];
            out.push_str(&format!(
                "{:indent$}{:<width$} {:>9.1}ms {:>5.1}%  self {:>9.1}ms  calls {}\n",
                "",
                n.name,
                n.total_ns as f64 / 1e6,
                100.0 * n.total_ns as f64 / whole,
                self.self_ns(idx) as f64 / 1e6,
                n.calls,
                indent = 2 * depth,
                width = 24usize.saturating_sub(2 * depth),
            ));
            for &c in n.children.iter().rev() {
                work.push((c, depth + 1));
            }
        }
        if !self.is_balanced() {
            out.push_str(&format!(
                "warning: unbalanced spans ({} still open, {} stray exits)\n",
                self.stack.len(),
                self.unbalanced_exits
            ));
        }
        out
    }

    fn node_json(&self, idx: usize) -> JsonValue {
        let n = &self.nodes[idx];
        let children: Vec<JsonValue> = n.children.iter().map(|&c| self.node_json(c)).collect();
        JsonValue::obj([
            ("name", JsonValue::from(n.name)),
            ("calls", n.calls.into()),
            ("total_us", (n.total_ns / 1_000).into()),
            ("self_us", (self.self_ns(idx) / 1_000).into()),
            ("children", JsonValue::Arr(children)),
        ])
    }

    /// The aggregated tree as nested JSON:
    /// `{"total_us":..,"spans":[{name,calls,total_us,self_us,children},..]}`.
    #[must_use]
    pub fn to_json(&self) -> JsonValue {
        let spans: Vec<JsonValue> = self.nodes[0]
            .children
            .iter()
            .map(|&c| self.node_json(c))
            .collect();
        JsonValue::obj([
            ("total_us", JsonValue::from(self.total().as_micros() as u64)),
            ("spans", JsonValue::Arr(spans)),
        ])
    }

    /// A Chrome `trace_event` document of the aggregated tree.
    ///
    /// One complete (`"ph":"X"`) event per node; children are laid out
    /// sequentially inside their parent's range starting at the parent's
    /// synthesized timestamp, so the result renders as a flame chart of
    /// aggregate host time. Load via `chrome://tracing` or Perfetto.
    #[must_use]
    pub fn chrome_trace(&self) -> JsonValue {
        let mut events = Vec::new();
        // (node, synthesized start in µs)
        let mut work: Vec<(usize, u64)> = Vec::new();
        let mut cursor = 0u64;
        for &c in &self.nodes[0].children {
            work.push((c, cursor));
            cursor += self.nodes[c].total_ns / 1_000;
        }
        while let Some((idx, ts)) = work.pop() {
            let n = &self.nodes[idx];
            events.push(JsonValue::obj([
                ("name", JsonValue::from(n.name)),
                ("ph", "X".into()),
                ("ts", ts.into()),
                ("dur", (n.total_ns / 1_000).into()),
                ("pid", 1u64.into()),
                ("tid", 1u64.into()),
                (
                    "args",
                    JsonValue::obj([
                        ("calls", JsonValue::from(n.calls)),
                        ("self_us", JsonValue::from(self.self_ns(idx) / 1_000)),
                    ]),
                ),
            ]));
            let mut child_ts = ts;
            for &c in &n.children {
                work.push((c, child_ts));
                child_ts += self.nodes[c].total_ns / 1_000;
            }
        }
        JsonValue::obj([
            ("traceEvents", JsonValue::Arr(events)),
            ("displayTimeUnit", JsonValue::from("ms")),
        ])
    }
}

impl Default for SpanProfiler {
    fn default() -> Self {
        SpanProfiler::new()
    }
}

impl Profiler for SpanProfiler {
    #[inline]
    fn enter(&mut self, name: &'static str) {
        let parent = self.stack.last().map_or(0, |&(idx, _)| idx);
        // Linear scan: stage trees are a handful of children wide, and the
        // pointer comparison catches the common static-str case first.
        let found = self.nodes[parent].children.iter().copied().find(|&c| {
            let n = self.nodes[c].name;
            std::ptr::eq(n.as_ptr(), name.as_ptr()) || n == name
        });
        let idx = match found {
            Some(idx) => idx,
            None => {
                let idx = self.nodes.len();
                self.nodes.push(Node {
                    name,
                    children: Vec::new(),
                    calls: 0,
                    total_ns: 0,
                });
                self.nodes[parent].children.push(idx);
                idx
            }
        };
        self.stack.push((idx, Instant::now()));
    }

    #[inline]
    fn exit(&mut self) {
        match self.stack.pop() {
            Some((idx, started)) => {
                let n = &mut self.nodes[idx];
                n.calls += 1;
                n.total_ns += u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
            }
            None => self.unbalanced_exits += 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    fn busy(prof: &mut SpanProfiler, name: &'static str) {
        prof.enter(name);
        std::hint::black_box((0..100).sum::<u64>());
        prof.exit();
    }

    #[test]
    fn noop_profiler_is_zero_sized_and_silent() {
        assert_eq!(std::mem::size_of::<NoopProfiler>(), 0);
        let mut p = NoopProfiler;
        p.enter("x");
        p.exit();
        p.exit(); // unbalanced exit is also free
    }

    #[test]
    fn mut_ref_forwards() {
        let mut p = SpanProfiler::new();
        let mut by_ref = &mut p;
        Profiler::enter(&mut by_ref, "a");
        Profiler::exit(&mut by_ref);
        assert_eq!(p.calls_of("a"), 1);
        assert!(p.is_balanced());
    }

    #[test]
    fn aggregates_repeated_scopes_into_one_node() {
        let mut p = SpanProfiler::new();
        for _ in 0..10 {
            p.enter("cycle");
            busy(&mut p, "issue");
            busy(&mut p, "retire");
            p.exit();
        }
        assert!(p.is_balanced());
        assert_eq!(p.calls_of("cycle"), 10);
        assert_eq!(p.calls_of("issue"), 10);
        assert_eq!(p.roots().len(), 1);
        // Parent time includes children.
        assert!(p.total_of("cycle") >= p.total_of("issue") + p.total_of("retire"));
        assert_eq!(p.total(), p.total_of("cycle"));
    }

    #[test]
    fn recursion_nests_rather_than_cycling() {
        let mut p = SpanProfiler::new();
        p.enter("f");
        p.enter("f"); // recursive call: child node, not the same node
        p.exit();
        p.exit();
        assert_eq!(p.calls_of("f"), 2);
        let roots = p.roots();
        assert_eq!(roots.len(), 1);
        assert_eq!(roots[0].2, 1); // outer f called once
    }

    #[test]
    fn unbalanced_exits_are_counted_not_fatal() {
        let mut p = SpanProfiler::new();
        p.exit();
        assert!(!p.is_balanced());
        assert!(p.text_summary().contains("unbalanced"));
    }

    #[test]
    fn text_summary_is_shaped() {
        let mut p = SpanProfiler::new();
        p.enter("run");
        busy(&mut p, "fetch");
        busy(&mut p, "issue");
        p.exit();
        let text = p.text_summary();
        assert!(text.contains("span tree"));
        for name in ["run", "fetch", "issue"] {
            assert!(text.contains(name), "missing {name} in:\n{text}");
        }
        // Children are indented under the parent.
        let fetch_line = text.lines().find(|l| l.contains("fetch")).unwrap();
        assert!(fetch_line.starts_with("  "));
    }

    #[test]
    fn json_tree_round_trips_and_nests() {
        let mut p = SpanProfiler::new();
        p.enter("run");
        busy(&mut p, "fetch");
        p.exit();
        let v = p.to_json();
        let back = parse(&v.render()).expect("tree JSON parses");
        let spans = back.get("spans").unwrap().as_array().unwrap();
        assert_eq!(spans[0].get("name").unwrap().as_str(), Some("run"));
        let kids = spans[0].get("children").unwrap().as_array().unwrap();
        assert_eq!(kids[0].get("name").unwrap().as_str(), Some("fetch"));
        assert_eq!(kids[0].get("calls").unwrap().as_i64(), Some(1));
    }

    #[test]
    fn chrome_trace_round_trips_and_is_well_formed() {
        let mut p = SpanProfiler::new();
        p.enter("run");
        for _ in 0..3 {
            busy(&mut p, "fetch");
            busy(&mut p, "issue");
        }
        p.exit();
        busy(&mut p, "report");
        let doc = p.chrome_trace();
        let text = doc.render();
        let back = parse(&text).expect("emitted Chrome trace parses back");
        let events = back.get("traceEvents").unwrap().as_array().unwrap();
        // One event per tree node: run, fetch, issue, report.
        assert_eq!(events.len(), 4);
        let find = |name: &str| {
            events
                .iter()
                .find(|e| e.get("name").unwrap().as_str() == Some(name))
                .unwrap_or_else(|| panic!("no event named {name}"))
        };
        for e in events {
            assert_eq!(e.get("ph").unwrap().as_str(), Some("X"));
            assert!(e.get("ts").unwrap().as_i64().unwrap() >= 0);
            assert!(e.get("dur").unwrap().as_i64().unwrap() >= 0);
        }
        // Children lie inside the parent's [ts, ts+dur] range.
        let run = find("run");
        let run_ts = run.get("ts").unwrap().as_i64().unwrap();
        let run_end = run_ts + run.get("dur").unwrap().as_i64().unwrap();
        for child in ["fetch", "issue"] {
            let c = find(child);
            let ts = c.get("ts").unwrap().as_i64().unwrap();
            let end = ts + c.get("dur").unwrap().as_i64().unwrap();
            assert!(ts >= run_ts && end <= run_end, "{child} outside parent");
        }
        assert_eq!(
            find("fetch")
                .get("args")
                .unwrap()
                .get("calls")
                .unwrap()
                .as_i64(),
            Some(3)
        );
        // Siblings at the top level do not overlap.
        let report_ts = find("report").get("ts").unwrap().as_i64().unwrap();
        assert!(report_ts >= run_end);
    }
}
