//! A bounded "flight recorder": ring buffer of the most recent pipeline
//! events, dumped when a simulation dies so the post-mortem shows what the
//! machine was doing in its final cycles.

use crate::probe::{Event, Probe};
use std::collections::VecDeque;

/// Retains the last `max_events` events spanning at most `max_cycles`
/// distinct cycles. Cheap enough to leave on during debugging runs; the
/// ring never reallocates after warm-up.
#[derive(Clone, Debug)]
pub struct FlightRecorder {
    ring: VecDeque<(u64, Event)>,
    max_events: usize,
    max_cycles: u64,
    dropped: u64,
}

impl FlightRecorder {
    /// Default event capacity (events, not cycles).
    pub const DEFAULT_EVENTS: usize = 4096;
    /// Default cycle span retained.
    pub const DEFAULT_CYCLES: u64 = 64;

    /// A recorder with the default bounds.
    #[must_use]
    pub fn new() -> FlightRecorder {
        FlightRecorder::with_capacity(
            FlightRecorder::DEFAULT_EVENTS,
            FlightRecorder::DEFAULT_CYCLES,
        )
    }

    /// A recorder retaining at most `max_events` events from the last
    /// `max_cycles` cycles. Both bounds are clamped to at least 1.
    #[must_use]
    pub fn with_capacity(max_events: usize, max_cycles: u64) -> FlightRecorder {
        FlightRecorder {
            ring: VecDeque::with_capacity(max_events.clamp(1, 1 << 20)),
            max_events: max_events.max(1),
            max_cycles: max_cycles.max(1),
            dropped: 0,
        }
    }

    /// Events currently retained.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// True when nothing has been recorded (or everything aged out).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Events evicted so far (by either bound).
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = (u64, Event)> + '_ {
        self.ring.iter().copied()
    }

    fn evict_for(&mut self, cycle: u64) {
        let floor = cycle.saturating_sub(self.max_cycles - 1);
        while let Some(&(c, _)) = self.ring.front() {
            if c >= floor && self.ring.len() < self.max_events {
                break;
            }
            self.ring.pop_front();
            self.dropped += 1;
        }
    }

    /// Render the retained tail as a cycle-grouped transcript.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        if self.ring.is_empty() {
            out.push_str("flight recorder: empty\n");
            return out;
        }
        let first = self.ring.front().map(|&(c, _)| c).unwrap_or(0);
        let last = self.ring.back().map(|&(c, _)| c).unwrap_or(0);
        out.push_str(&format!(
            "flight recorder: {} events, cycles {first}..={last} ({} older events dropped)\n",
            self.ring.len(),
            self.dropped
        ));
        let mut current = u64::MAX;
        for &(cycle, event) in &self.ring {
            if cycle != current {
                out.push_str(&format!("  cycle {cycle}:\n"));
                current = cycle;
            }
            out.push_str(&format!("    {event}\n"));
        }
        out
    }
}

impl Default for FlightRecorder {
    fn default() -> FlightRecorder {
        FlightRecorder::new()
    }
}

impl Probe for FlightRecorder {
    #[inline]
    fn record(&mut self, cycle: u64, event: Event) {
        self.evict_for(cycle);
        self.ring.push_back((cycle, event));
    }

    fn dump(&self) -> Option<String> {
        Some(self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_bound_is_enforced() {
        let mut fr = FlightRecorder::with_capacity(4, u64::MAX);
        for i in 0..10u64 {
            fr.record(i, Event::Fetch { pc: i as u32 });
        }
        assert_eq!(fr.len(), 4);
        assert_eq!(fr.dropped(), 6);
        let cycles: Vec<u64> = fr.events().map(|(c, _)| c).collect();
        assert_eq!(cycles, vec![6, 7, 8, 9]);
    }

    #[test]
    fn cycle_bound_ages_out_old_events() {
        let mut fr = FlightRecorder::with_capacity(1000, 3);
        for i in 0..10u64 {
            fr.record(
                i,
                Event::CycleEnd {
                    occupancy: i as u32,
                },
            );
        }
        // Cycles 7, 8, 9 survive a 3-cycle window ending at 9.
        let cycles: Vec<u64> = fr.events().map(|(c, _)| c).collect();
        assert_eq!(cycles, vec![7, 8, 9]);
        assert_eq!(fr.dropped(), 7);
    }

    #[test]
    fn render_groups_by_cycle() {
        let mut fr = FlightRecorder::new();
        assert!(fr.render().contains("empty"));
        fr.record(5, Event::Fetch { pc: 0 });
        fr.record(5, Event::Dispatch { pc: 0 });
        fr.record(
            6,
            Event::Issue {
                pc: 0,
                reissue: false,
            },
        );
        let text = fr.render();
        assert_eq!(text.matches("cycle 5:").count(), 1);
        assert_eq!(text.matches("cycle 6:").count(), 1);
        assert!(text.contains("fetch pc=0"));
        assert!(fr.dump().is_some());
    }
}
