//! Behavioural coverage extraction from the pipeline event stream.
//!
//! The differential fuzzing harness needs a *coverage signal*: a compact,
//! deterministic summary of which recovery paths, squash/restart
//! interleavings and suspension depths a trial exercised, so that
//! coverage-guided search can tell "this input did something new" from
//! "this input re-ran known behaviour". This module provides it without
//! leaving the zero-dependency observability layer:
//!
//! - [`CoverageSignature`] is a fixed-size bitmap ([`COVERAGE_BITS`] bits).
//!   Each bit is an **edge**: a hash bucket of one observed feature.
//! - [`CoverageRecorder`] is a [`Probe`] that folds the event stream into a
//!   signature as the simulation runs. The feature it hashes is the
//!   **event bigram with restart-depth context**: `(previous event code,
//!   current event code, open-restart depth)`, where an event code is the
//!   event kind plus a coarse bucketing of its payload (reconvergence
//!   outcome, log₂ buckets of removed/inserted/cycle counts, reissue
//!   cause, retire issue-count class). Program counters are deliberately
//!   excluded — two programs exercising the same recovery *behaviour* at
//!   different addresses should map to the same edges.
//!
//! Bigrams-with-depth rather than plain event counts because the bugs this
//! signal hunts live in *orderings*: a squash arriving while two restarts
//! are open is a different edge from the same squash at depth zero, and a
//! `RestartBegin` directly after another `RestartBegin` (a preemption or
//! suspension) is a different edge from one after a quiet retire.
//! High-frequency bookkeeping events ([`Event::Fetch`] and
//! [`Event::CycleEnd`]) are excluded: they carry no recovery information
//! and would only smear the map.
//!
//! The recorder takes a caller-supplied `salt` folded into every hash, so
//! one global map can hold several *keyed* sub-spaces (the fuzzing harness
//! salts by machine variant and recovery-handling mode).

use crate::probe::{Event, Probe, ReissueKind};

/// Size of the coverage bitmap in bits. The map must hold the *salted*
/// feature space: the fuzzing harness keys each machine × recovery-handling
/// mode into its own sub-space, so a campaign's distinct-edge count runs to
/// tens of thousands, not hundreds. 2¹⁷ bits (16 KiB) keeps a multi-hundred
/// -trial campaign well below saturation so novelty stays meaningful, while
/// merges and clones remain trivially cheap.
pub const COVERAGE_BITS: usize = 1 << 17;

const COVERAGE_WORDS: usize = COVERAGE_BITS / 64;

/// A fixed-size coverage bitmap; each set bit is one observed edge.
#[derive(Clone, PartialEq, Eq)]
pub struct CoverageSignature {
    words: [u64; COVERAGE_WORDS],
}

impl Default for CoverageSignature {
    fn default() -> Self {
        CoverageSignature {
            words: [0; COVERAGE_WORDS],
        }
    }
}

impl std::fmt::Debug for CoverageSignature {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "CoverageSignature({} edges)", self.count())
    }
}

impl CoverageSignature {
    /// An empty signature.
    #[must_use]
    pub fn new() -> CoverageSignature {
        CoverageSignature::default()
    }

    /// Set the bit addressed by `hash` (modulo the map size). Returns
    /// `true` when the bit was previously clear.
    pub fn insert(&mut self, hash: u64) -> bool {
        let bit = (hash % COVERAGE_BITS as u64) as usize;
        let (w, b) = (bit / 64, bit % 64);
        let fresh = self.words[w] & (1 << b) == 0;
        self.words[w] |= 1 << b;
        fresh
    }

    /// Whether the bit addressed by `hash` is set.
    #[must_use]
    pub fn contains(&self, hash: u64) -> bool {
        let bit = (hash % COVERAGE_BITS as u64) as usize;
        self.words[bit / 64] & (1 << (bit % 64)) != 0
    }

    /// Number of set bits (distinct edges).
    #[must_use]
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether no edge is set.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|w| *w == 0)
    }

    /// Fold `other` into `self`, returning how many of `other`'s edges
    /// were new to `self`.
    pub fn merge(&mut self, other: &CoverageSignature) -> usize {
        let mut novel = 0;
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            novel += (o & !*w).count_ones() as usize;
            *w |= o;
        }
        novel
    }

    /// How many of `self`'s edges are *not* already present in `map`.
    #[must_use]
    pub fn novel_against(&self, map: &CoverageSignature) -> usize {
        self.words
            .iter()
            .zip(&map.words)
            .map(|(s, m)| (s & !m).count_ones() as usize)
            .sum()
    }

    /// Indices of all set bits, ascending.
    #[must_use]
    pub fn bits(&self) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.count());
        for (w, word) in self.words.iter().enumerate() {
            let mut rest = *word;
            while rest != 0 {
                let b = rest.trailing_zeros();
                out.push((w * 64) as u32 + b);
                rest &= rest - 1;
            }
        }
        out
    }

    /// Rebuild a signature from bit indices (out-of-range indices are
    /// rejected).
    #[must_use]
    pub fn from_bits(bits: &[u32]) -> Option<CoverageSignature> {
        let mut sig = CoverageSignature::new();
        for &b in bits {
            if b as usize >= COVERAGE_BITS {
                return None;
            }
            sig.words[b as usize / 64] |= 1 << (b % 64);
        }
        Some(sig)
    }

    /// A stable 64-bit digest of the exact bit pattern (corpus dedup key).
    #[must_use]
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for w in &self.words {
            for byte in w.to_le_bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
        }
        h
    }
}

/// SplitMix64-style finalizer: a cheap, well-mixed hash for edge addressing.
#[inline]
#[must_use]
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Log₂ bucket of a count, capped: 0 → 0, 1 → 1, 2-3 → 2, 4-7 → 3, …,
/// everything ≥ 64 → 7.
#[inline]
fn bucket(n: u64) -> u32 {
    if n == 0 {
        0
    } else {
        (64 - n.leading_zeros()).min(7)
    }
}

/// A [`Probe`] folding the event stream into a [`CoverageSignature`].
///
/// Attach one per simulated machine; read the signature back with
/// [`CoverageRecorder::signature`]. The recorder also tracks the maximum
/// restart nesting depth it saw ([`CoverageRecorder::max_depth`]) so
/// callers can derive depth-bucket features of their own.
#[derive(Clone, Debug)]
pub struct CoverageRecorder {
    salt: u64,
    sig: CoverageSignature,
    prev: u32,
    depth: u32,
    max_depth: u32,
}

impl Default for CoverageRecorder {
    fn default() -> Self {
        CoverageRecorder::with_salt(0)
    }
}

/// Event code for the start-of-stream sentinel (no previous event).
const CODE_START: u32 = 0;

impl CoverageRecorder {
    /// A recorder whose every edge hash folds in `salt`.
    #[must_use]
    pub fn with_salt(salt: u64) -> CoverageRecorder {
        CoverageRecorder {
            salt,
            sig: CoverageSignature::new(),
            prev: CODE_START,
            depth: 0,
            max_depth: 0,
        }
    }

    /// The signature accumulated so far.
    #[must_use]
    pub fn signature(&self) -> &CoverageSignature {
        &self.sig
    }

    /// Consume the recorder, returning its signature.
    #[must_use]
    pub fn into_signature(self) -> CoverageSignature {
        self.sig
    }

    /// Deepest restart nesting observed (0 = no recovery at all).
    #[must_use]
    pub fn max_depth(&self) -> u32 {
        self.max_depth
    }

    /// Event code: kind plus coarse payload buckets. `None` for events
    /// excluded from coverage (fetch, cycle-end).
    fn code(event: &Event) -> Option<u32> {
        Some(match *event {
            Event::Fetch { .. } | Event::CycleEnd { .. } => return None,
            Event::Dispatch { .. } => 1,
            Event::Issue { reissue, .. } => 2 + u32::from(reissue),
            Event::Complete { .. } => 4,
            // Retire: first-issue retires, single-reissue retires, and
            // many-reissue retires are different behaviours.
            Event::Retire { issues, .. } => 5 + issues.min(3),
            Event::Squash { .. } => 10,
            Event::RestartBegin {
                reconverged,
                removed,
                ..
            } => 16 + 2 * bucket(u64::from(removed)) + u32::from(reconverged),
            Event::RestartEnd {
                inserted, cycles, ..
            } => 32 + 8 * bucket(inserted) + bucket(cycles),
            Event::Redispatch { renamed, .. } => 96 + u32::from(renamed),
            Event::Reissue { kind, .. } => {
                100 + match kind {
                    ReissueKind::Memory => 0,
                    ReissueKind::Register => 1,
                    ReissueKind::Value => 2,
                }
            }
        })
    }
}

impl Probe for CoverageRecorder {
    #[inline]
    fn record(&mut self, _cycle: u64, event: Event) {
        let Some(code) = Self::code(&event) else {
            return;
        };
        // Depth context uses the state *before* this event takes effect,
        // so a RestartBegin at depth 1 (a preemption/suspension) hashes
        // differently from a top-level one.
        let depth_ctx = self.depth.min(7);
        let feature = self
            .salt
            .wrapping_mul(0x1000_0000_0000_003F)
            .wrapping_add(u64::from(self.prev) << 20 | u64::from(code) << 4 | u64::from(depth_ctx));
        self.sig.insert(mix64(feature));
        self.prev = code;
        match event {
            Event::RestartBegin { .. } => {
                self.depth += 1;
                self.max_depth = self.max_depth.max(self.depth);
            }
            Event::RestartEnd { .. } => self.depth = self.depth.saturating_sub(1),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_signature_is_empty() {
        let s = CoverageSignature::new();
        assert!(s.is_empty());
        assert_eq!(s.count(), 0);
        assert_eq!(s.bits(), Vec::<u32>::new());
    }

    #[test]
    fn insert_merge_and_novelty() {
        let mut a = CoverageSignature::new();
        assert!(a.insert(1));
        assert!(!a.insert(1));
        assert!(!a.insert(COVERAGE_BITS as u64 + 1)); // same bucket as 1
        assert!(a.insert(2));
        assert_eq!(a.count(), 2);
        assert!(a.contains(1) && a.contains(2) && !a.contains(3));

        let mut b = CoverageSignature::new();
        b.insert(2);
        b.insert(3);
        assert_eq!(b.novel_against(&a), 1);
        assert_eq!(a.merge(&b), 1);
        assert_eq!(a.count(), 3);
        assert_eq!(a.merge(&b), 0);
    }

    #[test]
    fn bits_round_trip() {
        let mut s = CoverageSignature::new();
        for h in [0u64, 63, 64, 8191, 12345, 999_999] {
            s.insert(h);
        }
        let bits = s.bits();
        let back = CoverageSignature::from_bits(&bits).unwrap();
        assert_eq!(s, back);
        assert_eq!(back.bits(), bits);
        assert!(CoverageSignature::from_bits(&[COVERAGE_BITS as u32]).is_none());
    }

    #[test]
    fn digest_distinguishes_patterns() {
        let mut a = CoverageSignature::new();
        let mut b = CoverageSignature::new();
        a.insert(7);
        b.insert(8);
        assert_ne!(a.digest(), b.digest());
        let mut c = CoverageSignature::new();
        c.insert(7);
        assert_eq!(a.digest(), c.digest());
    }

    fn replay(salt: u64, events: &[Event]) -> CoverageRecorder {
        let mut r = CoverageRecorder::with_salt(salt);
        for (i, e) in events.iter().enumerate() {
            r.record(i as u64, *e);
        }
        r
    }

    #[test]
    fn recorder_is_deterministic_and_salt_sensitive() {
        let events = [
            Event::Dispatch { pc: 4 },
            Event::Issue {
                pc: 4,
                reissue: false,
            },
            Event::RestartBegin {
                branch_pc: 4,
                redirect_pc: 8,
                reconverged: true,
                removed: 3,
            },
            Event::Squash { pc: 12 },
            Event::RestartEnd {
                branch_pc: 4,
                inserted: 2,
                cycles: 5,
            },
            Event::Retire { pc: 4, issues: 1 },
        ];
        let a = replay(1, &events);
        let b = replay(1, &events);
        let c = replay(2, &events);
        assert_eq!(a.signature(), b.signature());
        assert_ne!(a.signature(), c.signature());
        assert!(a.signature().count() >= events.len() - 1);
    }

    #[test]
    fn depth_context_distinguishes_nested_restarts() {
        let begin = Event::RestartBegin {
            branch_pc: 1,
            redirect_pc: 2,
            reconverged: false,
            removed: 0,
        };
        let end = Event::RestartEnd {
            branch_pc: 1,
            inserted: 0,
            cycles: 1,
        };
        // Two sequential restarts vs two nested ones: same multiset of
        // events, different interleaving, different coverage.
        let sequential = replay(0, &[begin, end, begin, end]);
        let nested = replay(0, &[begin, begin, end, end]);
        assert_ne!(sequential.signature(), nested.signature());
        assert_eq!(sequential.max_depth(), 1);
        assert_eq!(nested.max_depth(), 2);
    }

    #[test]
    fn noise_events_are_excluded() {
        let r = replay(
            0,
            &[Event::Fetch { pc: 0 }, Event::CycleEnd { occupancy: 3 }],
        );
        assert!(r.signature().is_empty());
        assert_eq!(r.max_depth(), 0);
    }

    #[test]
    fn pcs_do_not_affect_coverage() {
        let a = replay(
            0,
            &[
                Event::Dispatch { pc: 0 },
                Event::Retire { pc: 0, issues: 1 },
            ],
        );
        let b = replay(
            0,
            &[
                Event::Dispatch { pc: 400 },
                Event::Retire { pc: 400, issues: 1 },
            ],
        );
        assert_eq!(a.signature(), b.signature());
    }
}
