//! Cycle-accurate observability for the control-independence simulation
//! suite.
//!
//! The pipeline in `ci-core` is generic over a [`Probe`] — a sink that
//! receives one [`Event`] per pipeline action (fetch, dispatch, issue,
//! writeback, retire, squash, restart spans, redispatch, reissue, and an
//! end-of-cycle occupancy marker). The default [`NoopProbe`] is a zero-sized
//! type whose `record` inlines to nothing, so instrumentation costs nothing
//! unless a real probe is plugged in.
//!
//! Bundled sinks:
//!
//! * [`MetricsProbe`] — event counters plus fixed-bucket histograms of
//!   restart-sequence length, distance to reconvergence, per-cycle window
//!   occupancy, and per-instruction reissue counts, exported through a
//!   [`Registry`].
//! * [`FlightRecorder`] — bounded ring buffer of the most recent events,
//!   rendered as a cycle-grouped transcript when a run dies.
//! * [`TimelineProbe`] — per-cycle activity records powering the `inspect`
//!   binary's pipeline timeline.
//! * [`CoverageRecorder`] — fixed-size bitmap of event-bigram ×
//!   restart-depth edges, the coverage signal driving `ci-difftest`'s
//!   corpus-guided fuzzing.
//!
//! The [`json`] module is a dependency-free JSON-lines writer/parser used
//! by the exporters; nothing in this crate links outside `std`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;

mod coverage;
mod flight;
mod metrics;
mod probe;
mod profile;
mod timeline;

pub use coverage::{mix64, CoverageRecorder, CoverageSignature, COVERAGE_BITS};
pub use flight::FlightRecorder;
pub use json::JsonValue;
pub use metrics::{EventCounters, Histogram, MetricsProbe, Registry};
pub use probe::{Event, EventKind, NoopProbe, Probe, ReissueKind};
pub use profile::{NoopProfiler, Profiler, SpanProfiler};
pub use timeline::{CycleRecord, TimelineProbe};
