//! Per-cycle pipeline occupancy timeline, for the `inspect` post-mortem
//! binary: how many instructions were fetched / issued / completed /
//! retired / squashed each cycle, plus window occupancy.

use crate::probe::{Event, Probe};

/// Aggregate pipeline activity for one cycle.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CycleRecord {
    /// Cycle number.
    pub cycle: u64,
    /// Instructions fetched this cycle.
    pub fetched: u32,
    /// Instructions that began (or re-began) execution this cycle.
    pub issued: u32,
    /// Instructions that wrote back this cycle.
    pub completed: u32,
    /// Instructions retired this cycle.
    pub retired: u32,
    /// Instructions squashed out of the window this cycle.
    pub squashed: u32,
    /// Restart sequences begun this cycle.
    pub restarts: u32,
    /// Window occupancy at end of cycle.
    pub occupancy: u32,
    /// Cumulative retired count through the end of this cycle.
    pub retired_cum: u64,
}

/// Records one [`CycleRecord`] per simulated cycle. Memory grows linearly
/// with simulated cycles, so this probe is for inspection runs, not
/// full-length experiments.
#[derive(Clone, Debug, Default)]
pub struct TimelineProbe {
    cycles: Vec<CycleRecord>,
    current: CycleRecord,
    retired_total: u64,
    started: bool,
}

impl TimelineProbe {
    /// An empty timeline.
    #[must_use]
    pub fn new() -> TimelineProbe {
        TimelineProbe::default()
    }

    fn flush_through(&mut self, cycle: u64) {
        if self.started && self.current.cycle < cycle {
            let mut done = self.current;
            done.retired_cum = self.retired_total;
            self.cycles.push(done);
            self.current = CycleRecord {
                cycle,
                ..CycleRecord::default()
            };
        } else if !self.started {
            self.started = true;
            self.current = CycleRecord {
                cycle,
                ..CycleRecord::default()
            };
        }
    }

    /// All finished cycle records (call after the run completes; the
    /// in-flight cycle is included once a later cycle or [`Self::finish`]
    /// closes it).
    #[must_use]
    pub fn cycles(&self) -> &[CycleRecord] {
        &self.cycles
    }

    /// Close the in-flight cycle. Idempotent.
    pub fn finish(&mut self) {
        if self.started {
            let mut done = self.current;
            done.retired_cum = self.retired_total;
            self.cycles.push(done);
            self.started = false;
        }
    }

    /// The slice of cycles during which retired-instruction indices
    /// `[first, last]` (0-based) left the machine, with `margin` extra
    /// cycles of context on each side.
    #[must_use]
    pub fn cycles_for_retired_range(&self, first: u64, last: u64, margin: usize) -> &[CycleRecord] {
        let begin = self.cycles.partition_point(|c| c.retired_cum <= first);
        let end = self
            .cycles
            .partition_point(|c| c.retired_cum <= last.saturating_add(1));
        let begin = begin.saturating_sub(margin);
        let end = (end + 1 + margin).min(self.cycles.len());
        &self.cycles[begin.min(end)..end]
    }

    /// Render a fixed-width table of the given records, with a bar chart of
    /// window occupancy scaled to `window` slots.
    #[must_use]
    pub fn render(records: &[CycleRecord], window: u32) -> String {
        const BAR: usize = 32;
        let mut out = String::new();
        out.push_str(&format!(
            "{:>8} {:>4} {:>4} {:>4} {:>4} {:>4} {:>4} {:>5}  occupancy\n",
            "cycle", "fet", "iss", "wb", "ret", "sq", "rst", "occ"
        ));
        for r in records {
            let filled = if window == 0 {
                0
            } else {
                (r.occupancy.min(window) as usize * BAR).div_ceil(window as usize)
            };
            out.push_str(&format!(
                "{:>8} {:>4} {:>4} {:>4} {:>4} {:>4} {:>4} {:>5}  |{}{}|\n",
                r.cycle,
                r.fetched,
                r.issued,
                r.completed,
                r.retired,
                r.squashed,
                r.restarts,
                r.occupancy,
                "#".repeat(filled),
                " ".repeat(BAR - filled),
            ));
        }
        out
    }
}

impl Probe for TimelineProbe {
    #[inline]
    fn record(&mut self, cycle: u64, event: Event) {
        self.flush_through(cycle);
        match event {
            Event::Fetch { .. } => self.current.fetched += 1,
            Event::Issue { .. } => self.current.issued += 1,
            Event::Complete { .. } => self.current.completed += 1,
            Event::Retire { .. } => {
                self.current.retired += 1;
                self.retired_total += 1;
            }
            Event::Squash { .. } => self.current.squashed += 1,
            Event::RestartBegin { .. } => self.current.restarts += 1,
            Event::CycleEnd { occupancy } => self.current.occupancy = occupancy,
            Event::Dispatch { .. }
            | Event::RestartEnd { .. }
            | Event::Redispatch { .. }
            | Event::Reissue { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn retire(p: &mut TimelineProbe, cycle: u64, n: u32) {
        for i in 0..n {
            p.record(cycle, Event::Retire { pc: i, issues: 1 });
        }
        p.record(cycle, Event::CycleEnd { occupancy: 8 });
    }

    #[test]
    fn cycles_aggregate_and_accumulate() {
        let mut p = TimelineProbe::new();
        p.record(0, Event::Fetch { pc: 0 });
        p.record(0, Event::Fetch { pc: 4 });
        p.record(0, Event::CycleEnd { occupancy: 2 });
        retire(&mut p, 1, 2);
        retire(&mut p, 3, 1); // cycle 2 had no events at all
        p.finish();
        p.finish(); // idempotent
        let c = p.cycles();
        assert_eq!(c.len(), 3);
        assert_eq!(
            (c[0].cycle, c[0].fetched, c[0].occupancy, c[0].retired_cum),
            (0, 2, 2, 0)
        );
        assert_eq!((c[1].cycle, c[1].retired, c[1].retired_cum), (1, 2, 2));
        assert_eq!((c[2].cycle, c[2].retired, c[2].retired_cum), (3, 1, 3));
    }

    #[test]
    fn retired_range_selects_cycles() {
        let mut p = TimelineProbe::new();
        for cycle in 0..10u64 {
            retire(&mut p, cycle, 2); // 2 retires per cycle
        }
        p.finish();
        // Retired indices 4..=5 leave during cycle 2 (cum goes 2,4,6,...).
        let sel = p.cycles_for_retired_range(4, 5, 0);
        assert!(sel.iter().any(|c| c.cycle == 2));
        assert!(sel.len() <= 3);
        let with_margin = p.cycles_for_retired_range(4, 5, 2);
        assert!(with_margin.len() > sel.len());
    }

    #[test]
    fn render_is_shaped() {
        let mut p = TimelineProbe::new();
        retire(&mut p, 0, 3);
        p.finish();
        let text = TimelineProbe::render(p.cycles(), 16);
        assert!(text.contains("occupancy"));
        assert!(text.contains('|'));
        assert_eq!(text.lines().count(), 2);
        // Zero window must not panic.
        let _ = TimelineProbe::render(p.cycles(), 0);
    }
}
