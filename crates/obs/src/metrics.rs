//! Counters, fixed-bucket histograms, a named metrics registry, and the
//! standard [`MetricsProbe`] that distills the event stream into the
//! distributions the paper's tables summarize.

use crate::json::JsonValue;
use crate::probe::{Event, EventKind, Probe};
use std::collections::BTreeMap;

/// Per-[`EventKind`] event counts.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EventCounters {
    counts: [u64; EventKind::ALL.len()],
}

impl EventCounters {
    /// Count one event.
    #[inline]
    pub fn bump(&mut self, kind: EventKind) {
        self.counts[kind.index()] += 1;
    }

    /// Events of `kind` seen so far.
    #[must_use]
    pub fn get(&self, kind: EventKind) -> u64 {
        self.counts[kind.index()]
    }

    /// `(kind, count)` pairs in declaration order.
    pub fn iter(&self) -> impl Iterator<Item = (EventKind, u64)> + '_ {
        EventKind::ALL.into_iter().map(|k| (k, self.get(k)))
    }

    /// The raw counts in [`EventKind::ALL`] declaration order.
    #[must_use]
    pub fn raw_counts(&self) -> &[u64] {
        &self.counts
    }

    /// Rebuild counters from [`EventCounters::raw_counts`] output. Returns
    /// `None` if `counts` has the wrong length.
    #[must_use]
    pub fn from_raw_counts(counts: &[u64]) -> Option<EventCounters> {
        let counts: [u64; EventKind::ALL.len()] = counts.try_into().ok()?;
        Some(EventCounters { counts })
    }
}

/// A histogram over `u64` values with caller-fixed bucket bounds.
///
/// Bucket `i` counts values `v` with `v <= bounds[i]` (and greater than the
/// previous bound); values above the last bound land in an implicit
/// overflow bucket. Exact min/max/sum are tracked alongside, so `mean` and
/// the extreme quantiles do not suffer bucket quantization.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    bounds: Vec<u64>,
    counts: Vec<u64>,
    total: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Histogram {
    /// A histogram with the given strictly-increasing upper bucket bounds.
    ///
    /// # Panics
    /// Panics if `bounds` is empty or not strictly increasing.
    #[must_use]
    pub fn new(bounds: &[u64]) -> Histogram {
        assert!(
            !bounds.is_empty(),
            "histogram needs at least one bucket bound"
        );
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "bounds must strictly increase"
        );
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            total: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Power-of-two bounds `0, 1, 2, 4, … , 2^max_pow2`.
    #[must_use]
    pub fn exponential(max_pow2: u32) -> Histogram {
        let mut bounds = vec![0u64];
        bounds.extend((0..=max_pow2).map(|p| 1u64 << p));
        Histogram::new(&bounds)
    }

    /// `n` linear bounds `step, 2*step, … , n*step`.
    #[must_use]
    pub fn linear(step: u64, n: usize) -> Histogram {
        assert!(step > 0 && n > 0);
        let bounds: Vec<u64> = (1..=n as u64).map(|i| i * step).collect();
        Histogram::new(&bounds)
    }

    /// Record one observation.
    #[inline]
    pub fn record(&mut self, v: u64) {
        let i = self.bounds.partition_point(|&b| b < v);
        self.counts[i] += 1;
        self.total += 1;
        self.sum += u128::from(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Observations recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Whether nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Smallest observation (0 when empty).
    #[must_use]
    pub fn min(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest observation (0 when empty).
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean (0.0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// The upper bound of the bucket containing the `q`-quantile
    /// (`0.0 ..= 1.0`). The overflow bucket reports the exact maximum, and
    /// the answer is clamped to the exact observed min/max so a quantile is
    /// never outside the observed range. Returns 0 when empty.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the target observation, 1-based ceil like classic
        // nearest-rank definition (q=0 → first observation).
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let bucket_top = self.bounds.get(i).copied().unwrap_or(self.max);
                return bucket_top.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// The complete internal state as
    /// `(bounds, counts, total, sum, min, max)` — `counts` includes the
    /// overflow bucket. Together with [`Histogram::from_raw_parts`] this
    /// round-trips a histogram losslessly.
    #[must_use]
    pub fn raw_parts(&self) -> (&[u64], &[u64], u64, u128, u64, u64) {
        (
            &self.bounds,
            &self.counts,
            self.total,
            self.sum,
            self.min,
            self.max,
        )
    }

    /// Rebuild a histogram from [`Histogram::raw_parts`] output. Returns
    /// `None` if the parts are structurally inconsistent (bad bounds, wrong
    /// count vector length, or a total that disagrees with the counts).
    #[must_use]
    pub fn from_raw_parts(
        bounds: &[u64],
        counts: &[u64],
        total: u64,
        sum: u128,
        min: u64,
        max: u64,
    ) -> Option<Histogram> {
        if bounds.is_empty()
            || !bounds.windows(2).all(|w| w[0] < w[1])
            || counts.len() != bounds.len() + 1
            || counts.iter().sum::<u64>() != total
        {
            return None;
        }
        Some(Histogram {
            bounds: bounds.to_vec(),
            counts: counts.to_vec(),
            total,
            sum,
            min,
            max,
        })
    }

    /// `(upper_bound, count)` pairs including the overflow bucket, whose
    /// bound is reported as `u64::MAX`.
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.bounds
            .iter()
            .copied()
            .chain(std::iter::once(u64::MAX))
            .zip(self.counts.iter().copied())
    }

    /// Compact one-line summary: `n=.. mean=.. p50=.. p90=.. p99=.. max=..`.
    #[must_use]
    pub fn summary(&self) -> String {
        format!(
            "n={} mean={:.2} p50={} p90={} p99={} max={}",
            self.total,
            self.mean(),
            self.quantile(0.50),
            self.quantile(0.90),
            self.quantile(0.99),
            self.max()
        )
    }

    /// JSON object with the summary statistics and non-empty buckets.
    #[must_use]
    pub fn to_json(&self) -> JsonValue {
        let buckets: Vec<JsonValue> = self
            .buckets()
            .filter(|&(_, c)| c > 0)
            .map(|(le, c)| {
                JsonValue::obj([
                    (
                        "le",
                        if le == u64::MAX {
                            JsonValue::Str("inf".into())
                        } else {
                            le.into()
                        },
                    ),
                    ("count", c.into()),
                ])
            })
            .collect();
        JsonValue::obj([
            ("count", self.total.into()),
            ("mean", self.mean().into()),
            ("min", self.min().into()),
            ("p50", self.quantile(0.50).into()),
            ("p90", self.quantile(0.90).into()),
            ("p99", self.quantile(0.99).into()),
            ("max", self.max().into()),
            ("buckets", JsonValue::Arr(buckets)),
        ])
    }
}

/// A named collection of counters and histograms, exportable as JSON lines.
#[derive(Clone, Debug, Default)]
pub struct Registry {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
}

impl Registry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Add `by` to the named counter (created at zero on first use).
    pub fn inc(&mut self, name: &str, by: u64) {
        *self.counters.entry(name.to_owned()).or_insert(0) += by;
    }

    /// Record an observation in the named histogram, creating it with
    /// `bounds` on first use.
    pub fn observe(&mut self, name: &str, bounds: &[u64], v: u64) {
        self.histograms
            .entry(name.to_owned())
            .or_insert_with(|| Histogram::new(bounds))
            .record(v);
    }

    /// Insert a pre-built histogram under `name` (replacing any existing).
    pub fn insert_histogram(&mut self, name: &str, h: Histogram) {
        self.histograms.insert(name.to_owned(), h);
    }

    /// Value of a counter (0 when absent).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The named histogram, if present.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// One JSON line per metric: counters as
    /// `{"metric":name,"type":"counter","value":v}` and histograms as
    /// `{"metric":name,"type":"histogram", ...summary}`. Extra `labels`
    /// pairs are attached to every line.
    #[must_use]
    pub fn to_jsonl(&self, labels: &[(&str, &str)]) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            let mut fields: Vec<(&str, JsonValue)> = vec![
                ("metric", JsonValue::Str(name.clone())),
                ("type", "counter".into()),
                ("value", (*v).into()),
            ];
            fields.extend(labels.iter().map(|&(k, v)| (k, JsonValue::from(v))));
            out.push_str(&JsonValue::obj(fields).render());
            out.push('\n');
        }
        for (name, h) in &self.histograms {
            let mut fields: Vec<(&str, JsonValue)> = vec![
                ("metric", JsonValue::Str(name.clone())),
                ("type", "histogram".into()),
                ("histogram", h.to_json()),
            ];
            fields.extend(labels.iter().map(|&(k, v)| (k, JsonValue::from(v))));
            out.push_str(&JsonValue::obj(fields).render());
            out.push('\n');
        }
        out
    }
}

/// The standard metrics sink: counts every event kind and accumulates the
/// paper's distributional quantities.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MetricsProbe {
    /// Event counts by kind.
    pub counters: EventCounters,
    /// Cycles each completed restart sequence occupied the sequencer.
    pub restart_length: Histogram,
    /// Correct-path instructions inserted per completed restart.
    pub restart_inserted: Histogram,
    /// Incorrect control-dependent instructions removed per reconverged
    /// recovery — the distance to the reconvergent point along the wrong
    /// path.
    pub recon_distance: Histogram,
    /// Window occupancy sampled every cycle.
    pub occupancy: Histogram,
    /// Reissues per retired instruction (`issues - 1`; 0 for the common
    /// case of exactly one issue).
    pub reissues: Histogram,
}

impl MetricsProbe {
    /// A probe with the standard bucket layout.
    #[must_use]
    pub fn new() -> MetricsProbe {
        MetricsProbe {
            counters: EventCounters::default(),
            restart_length: Histogram::exponential(12),
            restart_inserted: Histogram::exponential(10),
            recon_distance: Histogram::exponential(10),
            occupancy: Histogram::linear(16, 64),
            reissues: Histogram::exponential(8),
        }
    }

    /// Export everything as a named [`Registry`].
    #[must_use]
    pub fn registry(&self) -> Registry {
        let mut r = Registry::new();
        for (k, v) in self.counters.iter() {
            r.inc(&format!("events.{}", k.name()), v);
        }
        r.insert_histogram("restart_length_cycles", self.restart_length.clone());
        r.insert_histogram("restart_inserted", self.restart_inserted.clone());
        r.insert_histogram("recon_distance", self.recon_distance.clone());
        r.insert_histogram("window_occupancy", self.occupancy.clone());
        r.insert_histogram("reissues_per_retired", self.reissues.clone());
        r
    }
}

impl Default for MetricsProbe {
    fn default() -> Self {
        MetricsProbe::new()
    }
}

impl Probe for MetricsProbe {
    #[inline]
    fn record(&mut self, _cycle: u64, event: Event) {
        self.counters.bump(event.kind());
        match event {
            Event::Retire { issues, .. } => {
                self.reissues.record(u64::from(issues.saturating_sub(1)))
            }
            Event::RestartBegin {
                reconverged: true,
                removed,
                ..
            } => {
                self.recon_distance.record(u64::from(removed));
            }
            Event::RestartEnd {
                inserted, cycles, ..
            } => {
                self.restart_length.record(cycles);
                self.restart_inserted.record(inserted);
            }
            Event::CycleEnd { occupancy } => self.occupancy.record(u64::from(occupancy)),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probe::ReissueKind;

    #[test]
    fn bucket_edges_are_inclusive_upper_bounds() {
        let mut h = Histogram::new(&[0, 1, 4, 16]);
        for v in [0, 1, 2, 4, 5, 16, 17, 1000] {
            h.record(v);
        }
        let counts: Vec<(u64, u64)> = h.buckets().collect();
        assert_eq!(counts[0], (0, 1)); // v=0
        assert_eq!(counts[1], (1, 1)); // v=1
        assert_eq!(counts[2], (4, 2)); // v=2,4
        assert_eq!(counts[3], (16, 2)); // v=5,16
        assert_eq!(counts[4], (u64::MAX, 2)); // v=17,1000 overflow
        assert_eq!(h.count(), 8);
        assert_eq!(h.max(), 1000);
        assert_eq!(h.min(), 0);
    }

    #[test]
    fn empty_histogram_is_safe() {
        let h = Histogram::new(&[1, 2]);
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert!(h.summary().contains("n=0"));
    }

    #[test]
    fn single_sample_histogram_quantiles_all_return_the_sample() {
        let mut h = Histogram::new(&[10, 100, 1000]);
        h.record(42);
        for q in [0.0, 0.01, 0.25, 0.5, 0.75, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 42, "q={q}");
        }
        assert_eq!(h.min(), 42);
        assert_eq!(h.max(), 42);
        assert_eq!(h.mean(), 42.0);
        assert_eq!(h.count(), 1);
        // Out-of-range q clamps rather than panicking.
        assert_eq!(h.quantile(-1.0), 42);
        assert_eq!(h.quantile(2.0), 42);
        assert_eq!(h.quantile(f64::NAN), 42);
    }

    #[test]
    fn quantiles_clamp_to_observed_range() {
        let mut h = Histogram::new(&[10, 100, 1000]);
        h.record(7); // bucket bound 10, but observed max is 7
        assert_eq!(h.quantile(0.0), 7);
        assert_eq!(h.quantile(0.5), 7);
        assert_eq!(h.quantile(1.0), 7);
        // Overflow values report the exact maximum.
        h.record(5000);
        assert_eq!(h.quantile(1.0), 5000);
    }

    #[test]
    fn quantiles_walk_buckets() {
        let mut h = Histogram::new(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10]);
        for v in 1..=10 {
            h.record(v);
        }
        assert_eq!(h.quantile(0.1), 1);
        assert_eq!(h.quantile(0.5), 5);
        assert_eq!(h.quantile(0.9), 9);
        assert_eq!(h.quantile(1.0), 10);
        assert!((h.mean() - 5.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "strictly increase")]
    fn non_monotone_bounds_rejected() {
        let _ = Histogram::new(&[3, 3]);
    }

    #[test]
    fn constructors() {
        let e = Histogram::exponential(3); // 0,1,2,4,8
        assert_eq!(e.buckets().count(), 6);
        let l = Histogram::linear(5, 3); // 5,10,15
        assert_eq!(
            l.buckets().map(|(b, _)| b).take(3).collect::<Vec<_>>(),
            vec![5, 10, 15]
        );
    }

    #[test]
    fn metrics_probe_accumulates() {
        let mut m = MetricsProbe::new();
        m.record(1, Event::Fetch { pc: 4 });
        m.record(1, Event::Retire { pc: 4, issues: 3 });
        m.record(
            1,
            Event::RestartBegin {
                branch_pc: 4,
                redirect_pc: 8,
                reconverged: true,
                removed: 6,
            },
        );
        m.record(
            1,
            Event::RestartBegin {
                branch_pc: 4,
                redirect_pc: 8,
                reconverged: false,
                removed: 0,
            },
        );
        m.record(
            9,
            Event::RestartEnd {
                branch_pc: 4,
                inserted: 5,
                cycles: 7,
            },
        );
        m.record(9, Event::CycleEnd { occupancy: 33 });
        m.record(
            9,
            Event::Reissue {
                pc: 4,
                kind: ReissueKind::Memory,
            },
        );
        assert_eq!(m.counters.get(EventKind::Fetch), 1);
        assert_eq!(m.counters.get(EventKind::RestartBegin), 2);
        assert_eq!(m.reissues.count(), 1);
        assert_eq!(m.reissues.max(), 2);
        assert_eq!(m.recon_distance.count(), 1); // only the reconverged one
        assert_eq!(m.restart_length.max(), 7);
        assert_eq!(m.restart_inserted.max(), 5);
        assert_eq!(m.occupancy.max(), 33);

        let r = m.registry();
        assert_eq!(r.counter("events.fetch"), 1);
        assert_eq!(r.counter("events.reissue"), 1);
        assert_eq!(r.histogram("window_occupancy").unwrap().count(), 1);
        let jsonl = r.to_jsonl(&[("workload", "go")]);
        assert!(jsonl.lines().count() >= 5);
        for line in jsonl.lines() {
            assert!(crate::json::parse(line).is_ok(), "invalid line: {line}");
        }
    }

    #[test]
    fn registry_observe_and_defaults() {
        let mut r = Registry::new();
        r.inc("a", 2);
        r.inc("a", 3);
        r.observe("h", &[1, 10], 4);
        r.observe("h", &[1, 10], 40);
        assert_eq!(r.counter("a"), 5);
        assert_eq!(r.counter("missing"), 0);
        assert!(r.histogram("missing").is_none());
        assert_eq!(r.histogram("h").unwrap().count(), 2);
    }
}
