use ci_ideal::{simulate, IdealConfig, ModelKind, StudyInput};
use ci_workloads::{Workload, WorkloadParams};
use std::time::Instant;

fn main() {
    for w in Workload::ALL {
        let scale = w.scale_for(120_000);
        let p = w.build(&WorkloadParams {
            scale,
            seed: 0x5EED,
        });
        let t0 = Instant::now();
        let input = StudyInput::build(&p, 150_000).unwrap();
        let build_t = t0.elapsed();
        print!(
            "{:<9} n={} mr={:.1}% build={:?} ",
            w.name(),
            input.len(),
            100.0 * input.misprediction_rate(),
            build_t
        );
        for m in ModelKind::ALL {
            let t0 = Instant::now();
            let r = simulate(
                &input,
                &IdealConfig {
                    model: m,
                    window: 256,
                    ..Default::default()
                },
            );
            print!("{}={:.2}({:?}) ", m.name(), r.ipc(), t0.elapsed());
        }
        println!();
    }
}
