//! Property tests: the idealized models complete and respect dominance
//! relations on random structured programs.

use ci_ideal::{simulate, IdealConfig, ModelKind, StudyInput};
use ci_workloads::random_program;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    #[test]
    fn all_models_retire_everything(seed in 0u64..2_000, size in 8usize..100) {
        let p = random_program(seed, size);
        let input = StudyInput::build(&p, 20_000).unwrap();
        for model in ModelKind::ALL {
            for window in [24usize, 128] {
                let r = simulate(&input, &IdealConfig { model, window, ..IdealConfig::default() });
                prop_assert_eq!(r.retired, input.len() as u64, "{} w{}", model, window);
            }
        }
    }

    #[test]
    fn oracle_is_fastest_and_base_is_slowest_ci(seed in 0u64..2_000) {
        let p = random_program(seed, 80);
        let input = StudyInput::build(&p, 20_000).unwrap();
        let cycles = |m| {
            simulate(&input, &IdealConfig { model: m, window: 128, ..IdealConfig::default() }).cycles
        };
        let oracle = cycles(ModelKind::Oracle);
        let base = cycles(ModelKind::Base);
        prop_assert!(oracle <= base, "oracle {oracle} > base {base}");
        // nWR-nFD can only beat base (more information, same constraints),
        // modulo the fetch-reordering exception the paper notes — allow 5%.
        let nwr = cycles(ModelKind::NwrNfd);
        prop_assert!(nwr as f64 <= base as f64 * 1.05, "nWR-nFD {nwr} vs base {base}");
    }
}
