//! Model selection and results.

use ci_isa::LatencyModel;
use std::fmt;

/// Which of the paper's six idealized machine models to simulate.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ModelKind {
    /// Oracle branch prediction: no mispredictions (Figure 2a).
    Oracle,
    /// Complete squash at every misprediction (Figure 2f).
    Base,
    /// No wasted resources, no false dependences (Figure 2b).
    NwrNfd,
    /// No wasted resources, false dependences modelled (Figure 2c).
    NwrFd,
    /// Wasted resources modelled, false dependences hidden (Figure 2d).
    WrNfd,
    /// Both factors modelled — the upper bound for a real implementation
    /// (Figure 2e).
    WrFd,
}

impl ModelKind {
    /// All six models in the paper's presentation order.
    pub const ALL: [ModelKind; 6] = [
        ModelKind::Oracle,
        ModelKind::NwrNfd,
        ModelKind::NwrFd,
        ModelKind::WrNfd,
        ModelKind::WrFd,
        ModelKind::Base,
    ];

    /// Whether incorrect control-dependent instructions consume fetch and
    /// window resources in this model.
    #[must_use]
    pub fn wastes_resources(self) -> bool {
        matches!(self, ModelKind::WrNfd | ModelKind::WrFd)
    }

    /// Whether false data dependences created by the incorrect path delay
    /// control-independent instructions in this model.
    #[must_use]
    pub fn false_deps(self) -> bool {
        matches!(self, ModelKind::NwrFd | ModelKind::WrFd)
    }

    /// Whether control independence is exploited at all.
    #[must_use]
    pub fn exploits_ci(self) -> bool {
        !matches!(self, ModelKind::Oracle | ModelKind::Base)
    }

    /// The paper's label for the model.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ModelKind::Oracle => "oracle",
            ModelKind::Base => "base",
            ModelKind::NwrNfd => "nWR-nFD",
            ModelKind::NwrFd => "nWR-FD",
            ModelKind::WrNfd => "WR-nFD",
            ModelKind::WrFd => "WR-FD",
        }
    }
}

impl fmt::Display for ModelKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Configuration for one idealized simulation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IdealConfig {
    /// Which model to run.
    pub model: ModelKind,
    /// Instruction window size (paper sweeps 32…512).
    pub window: usize,
    /// Machine width: peak fetch/issue/retire rate (paper: 16).
    pub width: usize,
    /// Execution latencies.
    pub latencies: LatencyModel,
    /// Perfect-cache access latency in cycles (paper's ideal study: 1).
    pub cache_latency: u64,
}

impl Default for IdealConfig {
    fn default() -> Self {
        IdealConfig {
            model: ModelKind::WrFd,
            window: 256,
            width: 16,
            latencies: LatencyModel::new(),
            cache_latency: 1,
        }
    }
}

/// Results of one idealized simulation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IdealResult {
    /// Cycles simulated.
    pub cycles: u64,
    /// Correct-path instructions retired.
    pub retired: u64,
    /// Mispredicted control instructions encountered (0 for `Oracle`).
    pub mispredictions: u64,
    /// Wrong-path instructions fetched (0 unless the model wastes resources).
    pub wrong_path_fetched: u64,
    /// Control-independent instructions whose eviction (youngest-first
    /// squash) was forced by a restart needing window space.
    pub evictions: u64,
}

impl IdealResult {
    /// Retired instructions per cycle.
    #[must_use]
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.retired as f64 / self.cycles as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_match_names() {
        assert!(ModelKind::WrFd.wastes_resources());
        assert!(ModelKind::WrFd.false_deps());
        assert!(!ModelKind::NwrNfd.wastes_resources());
        assert!(!ModelKind::NwrNfd.false_deps());
        assert!(ModelKind::NwrFd.false_deps());
        assert!(!ModelKind::Base.exploits_ci());
        assert!(!ModelKind::Oracle.exploits_ci());
        assert!(ModelKind::WrNfd.exploits_ci());
        assert_eq!(ModelKind::ALL.len(), 6);
        assert_eq!(ModelKind::NwrFd.to_string(), "nWR-FD");
    }

    #[test]
    fn ipc_division() {
        let r = IdealResult {
            cycles: 10,
            retired: 45,
            ..Default::default()
        };
        assert!((r.ipc() - 4.5).abs() < 1e-12);
        assert_eq!(IdealResult::default().ipc(), 0.0);
    }

    #[test]
    fn default_config_is_papers() {
        let c = IdealConfig::default();
        assert_eq!(c.width, 16);
        assert_eq!(c.window, 256);
        assert_eq!(c.cache_latency, 1);
    }
}
