//! The six idealized control-independence machine models of Section 2.
//!
//! The paper isolates three factors that limit control independence — true
//! data dependences with the correct control-dependent path, false data
//! dependences created by the incorrect control-dependent path, and machine
//! resources wasted on the incorrect path — by simulating six models over the
//! same dynamic instruction stream:
//!
//! | Model | Wrong path fetched? | False dependences? |
//! |-------|--------------------|--------------------|
//! | [`ModelKind::Oracle`]  | no mispredictions at all | — |
//! | [`ModelKind::Base`]    | no (complete squash: fetch stalls to resolution) | — |
//! | [`ModelKind::NwrNfd`]  | no (skips straight to the reconvergent point) | no |
//! | [`ModelKind::NwrFd`]   | no | yes |
//! | [`ModelKind::WrNfd`]   | yes | no |
//! | [`ModelKind::WrFd`]    | yes | yes |
//!
//! All six share one cycle-driven engine ([`simulate`]) with width-16
//! fetch/issue/retire, a bounded instruction window, unlimited renaming,
//! oracle memory disambiguation, a perfect 1-cycle data cache, and — exactly
//! as the paper's idealized study (and Lam & Wilson's) assumes — branch
//! predictions made under the architecturally correct global history.
//!
//! Unlike Lam & Wilson's trace-driven study, wrong paths here are *executed*
//! (via [`ci_emu::WrongPathEmu`]), so the false data dependences the `FD`
//! models charge for are the real ones.
//!
//! # Example
//!
//! ```
//! use ci_ideal::{simulate, IdealConfig, ModelKind, StudyInput};
//! use ci_workloads::{Workload, WorkloadParams};
//!
//! let program = Workload::JpegLike.build(&WorkloadParams { scale: 30, seed: 1 });
//! let input = StudyInput::build(&program, 50_000).unwrap();
//! let base = simulate(&input, &IdealConfig { model: ModelKind::Base, ..Default::default() });
//! let oracle = simulate(&input, &IdealConfig { model: ModelKind::Oracle, ..Default::default() });
//! assert!(oracle.ipc() >= base.ipc());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod input;
mod model;
mod sim;

pub use input::{MispredictEvent, StudyInput};
pub use model::{IdealConfig, IdealResult, ModelKind};
pub use sim::{simulate, simulate_probed, simulate_profiled};
