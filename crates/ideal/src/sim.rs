//! The shared cycle-driven engine behind all six idealized models.
//!
//! # Model mechanics
//!
//! Every dynamic instruction gets a 64-bit *logical key*: correct-path
//! instruction `i` has key `i << 11`; the `j`-th wrong-path instruction of the
//! misprediction at `i` has key `(i << 11) | (j + 1)`, placing the incorrect
//! control-dependent path between its branch and the branch's logical
//! successor. The window is a key-ordered map; fetch always takes the lowest
//! *available* unfetched key, where availability encodes the model:
//!
//! - `base`: nothing past an unresolved misprediction is available.
//! - `nWR-*`: the correct control-dependent region is deferred to resolution,
//!   control-independent keys (at/after the reconvergent instruction) are
//!   available immediately.
//! - `WR-*`: wrong-path keys are available until resolution; control
//!   independent keys become available once the wrong path has been fully
//!   fetched (the fetch unit reaches the reconvergent point *via* the wrong
//!   path, as in hardware).
//!
//! `FD` models additionally hold back a control-independent instruction whose
//! source register (or load address) was written by an in-flight wrong path
//! and whose true producer is older than the mispredicted branch; the repair
//! completes one cycle after resolution, the best a real redispatch could do.
//!
//! If a restart needs window space (more correct control-dependent
//! instructions than incorrect ones), the youngest instructions are evicted
//! and refetched later, as Section 3.2.2 of the paper requires. Eviction does
//! not cascade to already-issued consumers: the evicted instruction's value
//! was genuinely computed and broadcast before the squash, and recomputation
//! yields the same value on the correct path.
//!
//! Approximations (documented deviations from a hypothetical perfect model):
//! wrong-path *loads* do not chain through wrong-path stores (address
//! generation plus cache latency only), branches *inside* a wrong path do not
//! spawn nested wrong paths, and the `base` model does not charge issue
//! bandwidth for wrong-path work (a slight advantage to `base`, i.e. a
//! conservative estimate of control-independence benefit).

use crate::input::{StudyInput, WpDep};
use crate::model::{IdealConfig, IdealResult, ModelKind};
use ci_isa::InstClass;
use ci_obs::{Event, NoopProbe, Probe};
use std::collections::{BTreeMap, BTreeSet};

const KEY_SHIFT: u64 = 11;

fn ckey(i: u32) -> u64 {
    u64::from(i) << KEY_SHIFT
}

fn wkey(branch: u32, j: u32) -> u64 {
    (u64::from(branch) << KEY_SHIFT) | u64::from(j + 1)
}

#[derive(Clone, Copy, Debug)]
enum Item {
    Correct(u32),
    Wrong { ev: u32, j: u32 },
}

#[derive(Clone, Copy, Debug)]
struct Slot {
    item: Item,
    fetch_cycle: u64,
    issued: bool,
}

#[derive(Clone, Debug, Default)]
struct EvState {
    active: bool,
    wp_fetched: u32,
    resolve_at: Option<u64>,
}

struct Sim<'a, P: Probe> {
    probe: P,
    input: &'a StudyInput,
    cfg: &'a IdealConfig,
    window: BTreeMap<u64, Slot>,
    /// Completion cycle per correct instruction (`u64::MAX` = not executed).
    comp: Vec<u64>,
    /// Completion cycle per (event, wrong-path index).
    wcomp: Vec<Vec<u64>>,
    ev: Vec<EvState>,
    /// Event indices with `active == true` (small).
    active: Vec<u32>,
    /// Unfetched correct indices below the frontier (deferred CD + evicted).
    pending: BTreeSet<u32>,
    /// Next never-scheduled correct index.
    frontier: u32,
    next_retire: u32,
    now: u64,
    retired: u64,
    wrong_fetched: u64,
    evictions: u64,
    /// Reusable key buffers so the cycle loop is allocation-free in steady
    /// state (mirrors the detailed pipeline's scratch pools).
    scratch_issue: Vec<u64>,
    scratch_keys: Vec<u64>,
}

/// Run one idealized model over `input`.
///
/// See the crate-level docs for the model semantics and the
/// [`ModelKind`] table.
///
/// # Panics
/// Panics if the simulation fails to make forward progress (an internal bug,
/// guarded by a generous cycle cap).
#[must_use]
pub fn simulate(input: &StudyInput, config: &IdealConfig) -> IdealResult {
    simulate_probed(input, config, NoopProbe).0
}

/// Like [`simulate`], but with an observability probe attached: the engine
/// reports fetch, issue, retire, squash, and end-of-cycle occupancy events
/// (this engine has no rename/redispatch machinery, so the restart-sequence
/// events of the detailed pipeline never fire). Wrong-path instructions
/// carry their mispredicted branch's PC — the idealized input does not
/// record per-wrong-instruction PCs.
///
/// # Panics
/// Panics if the simulation fails to make forward progress (an internal
/// bug, guarded by a generous cycle cap).
pub fn simulate_probed<P: Probe>(
    input: &StudyInput,
    config: &IdealConfig,
    probe: P,
) -> (IdealResult, P) {
    let (result, probe, _prof) = simulate_profiled(input, config, probe, ci_obs::NoopProfiler);
    (result, probe)
}

/// Like [`simulate_probed`], but with the engine's host wall time recorded
/// under an `"ideal_run"` span on `prof` (this engine is far cheaper than
/// the detailed pipeline, so one coarse span suffices for attributing a
/// run's time between models).
///
/// # Panics
/// Panics if the simulation fails to make forward progress (an internal
/// bug, guarded by a generous cycle cap).
pub fn simulate_profiled<P: Probe, F: ci_obs::Profiler>(
    input: &StudyInput,
    config: &IdealConfig,
    probe: P,
    mut prof: F,
) -> (IdealResult, P, F) {
    let n = input.len() as u32;
    if n == 0 {
        return (IdealResult::default(), probe, prof);
    }
    let mut sim = Sim {
        probe,
        input,
        cfg: config,
        window: BTreeMap::new(),
        comp: vec![u64::MAX; n as usize],
        wcomp: input
            .events
            .iter()
            .map(|e| vec![u64::MAX; e.wrong_path.len()])
            .collect(),
        ev: vec![EvState::default(); input.events.len()],
        active: Vec::new(),
        pending: BTreeSet::new(),
        frontier: 0,
        next_retire: 0,
        now: 0,
        retired: 0,
        wrong_fetched: 0,
        evictions: 0,
        scratch_issue: Vec::new(),
        scratch_keys: Vec::new(),
    };
    prof.enter("ideal_run");
    sim.run();
    prof.exit();
    let result = IdealResult {
        cycles: sim.now,
        retired: sim.retired,
        mispredictions: if config.model == ModelKind::Oracle {
            0
        } else {
            input.mispredictions()
        },
        wrong_path_fetched: sim.wrong_fetched,
        evictions: sim.evictions,
    };
    (result, sim.probe, prof)
}

impl<P: Probe> Sim<'_, P> {
    fn run(&mut self) {
        let n = self.input.len() as u64;
        let cap = 200 * n + 1_000_000;
        while self.retired < n {
            self.now += 1;
            assert!(self.now < cap, "ideal model failed to make progress");
            self.resolve_events();
            self.retire();
            self.issue();
            self.fetch();
            self.probe.record(
                self.now,
                Event::CycleEnd {
                    occupancy: self.window.len() as u32,
                },
            );
        }
    }

    /// The PC reported for a window item: the instruction's own PC for
    /// correct-path items, the mispredicted branch's PC for wrong-path ones.
    fn item_pc(&self, item: Item) -> u32 {
        match item {
            Item::Correct(i) => self.input.trace[i as usize].pc.0,
            Item::Wrong { ev, .. } => {
                let b = self.input.events[ev as usize].branch_idx;
                self.input.trace[b as usize].pc.0
            }
        }
    }

    /// Process events whose mispredicted branch completed on a previous
    /// cycle: squash the wrong path and release the event's constraints.
    fn resolve_events(&mut self) {
        let mut i = 0;
        while i < self.active.len() {
            let e = self.active[i] as usize;
            match self.ev[e].resolve_at {
                Some(c) if c < self.now => {
                    self.ev[e].active = false;
                    self.active.swap_remove(i);
                    // Squash the event's wrong path from the window.
                    let b = self.input.events[e].branch_idx;
                    let lo = wkey(b, 0);
                    let hi = ckey(b + 1);
                    let mut keys = std::mem::take(&mut self.scratch_keys);
                    keys.extend(self.window.range(lo..hi).map(|(k, _)| *k));
                    for &k in &keys {
                        if let Some(slot) = self.window.remove(&k) {
                            let pc = self.item_pc(slot.item);
                            self.probe.record(self.now, Event::Squash { pc });
                        }
                    }
                    keys.clear();
                    self.scratch_keys = keys;
                }
                _ => i += 1,
            }
        }
    }

    fn retire(&mut self) {
        for _ in 0..self.cfg.width {
            let Some((&k, slot)) = self.window.first_key_value() else {
                break;
            };
            let Item::Correct(i) = slot.item else { break };
            if i != self.next_retire || k != ckey(i) {
                break;
            }
            let c = self.comp[i as usize];
            if c >= self.now {
                break;
            }
            self.window.pop_first();
            self.probe.record(
                self.now,
                Event::Retire {
                    pc: self.input.trace[i as usize].pc.0,
                    issues: 1,
                },
            );
            self.next_retire += 1;
            self.retired += 1;
        }
    }

    fn issue(&mut self) {
        let mut issued = 0;
        let mut to_issue = std::mem::take(&mut self.scratch_issue);
        for (&k, slot) in &self.window {
            if issued >= self.cfg.width {
                break;
            }
            if slot.issued || self.now < slot.fetch_cycle + 2 {
                continue;
            }
            if self.ready(slot.item) {
                to_issue.push(k);
                issued += 1;
            }
        }
        for &k in &to_issue {
            let slot = self.window.get_mut(&k).expect("slot present");
            slot.issued = true;
            let item = slot.item;
            let pc = self.item_pc(item);
            self.probe
                .record(self.now, Event::Issue { pc, reissue: false });
            // Completion = last execution cycle; a dependent instruction can
            // issue (with full bypassing) the following cycle, so 1-cycle ops
            // chain back-to-back.
            let comp = self.now + self.exec_latency(item) - 1;
            match item {
                Item::Correct(i) => {
                    self.comp[i as usize] = comp;
                    // A mispredicted branch resolves at completion.
                    if self.cfg.model != ModelKind::Oracle {
                        if let Some(e) = self.input.event_at.get(&i) {
                            self.ev[*e as usize].resolve_at = Some(comp);
                        }
                    }
                }
                Item::Wrong { ev, j } => {
                    self.wcomp[ev as usize][j as usize] = comp;
                }
            }
        }
        to_issue.clear();
        self.scratch_issue = to_issue;
    }

    fn exec_latency(&self, item: Item) -> u64 {
        let class = match item {
            Item::Correct(i) => self.input.trace[i as usize].class(),
            Item::Wrong { ev, j } => self.input.events[ev as usize].wrong_path[j as usize].class,
        };
        let base = self.cfg.latencies.execute(class);
        if class == InstClass::Load {
            base + self.cfg.cache_latency
        } else {
            base
        }
    }

    fn ready(&self, item: Item) -> bool {
        match item {
            Item::Correct(i) => {
                let deps = &self.input.deps[i as usize];
                for src in deps.srcs.iter().flatten() {
                    if let (_, Some(p)) = src {
                        if self.comp[*p as usize] >= self.now {
                            return false;
                        }
                    }
                }
                if let Some(p) = deps.mem {
                    if self.comp[p as usize] >= self.now {
                        return false;
                    }
                }
                if self.cfg.model.false_deps() && !self.false_dep_clear(i) {
                    return false;
                }
                true
            }
            Item::Wrong { ev, j } => {
                let w = &self.input.events[ev as usize].wrong_path[j as usize];
                for dep in w.deps.iter().flatten() {
                    let ok = match dep {
                        WpDep::Correct(p) => self.comp[*p as usize] < self.now,
                        WpDep::Wrong(jj) => self.wcomp[ev as usize][*jj as usize] < self.now,
                    };
                    if !ok {
                        return false;
                    }
                }
                true
            }
        }
    }

    /// FD models: is `i` free of false data dependences from in-flight wrong
    /// paths? (Repair completes one cycle after resolution; resolved events
    /// have already left `active` by then.)
    fn false_dep_clear(&self, i: u32) -> bool {
        for &e in &self.active {
            let ev = &self.input.events[e as usize];
            let b = ev.branch_idx;
            let Some(r) = ev.recon_idx else { continue };
            if i < r || b >= i {
                continue; // not control independent w.r.t. this event
            }
            let deps = &self.input.deps[i as usize];
            for src in deps.srcs.iter().flatten() {
                let (reg, prod) = *src;
                if ev.wrong_writes(reg) && prod.is_none_or(|p| p <= b) {
                    return false;
                }
            }
            let d = &self.input.trace[i as usize];
            if d.class() == InstClass::Load {
                let a = d.addr.expect("load has addr");
                if ev.wrong_stores_to(a) && deps.mem.is_none_or(|p| p <= b) {
                    return false;
                }
            }
        }
        true
    }

    /// Is correct index `i` fetchable right now given in-flight
    /// mispredictions?
    fn correct_available(&self, i: u32) -> bool {
        for &e in &self.active {
            let ev = &self.input.events[e as usize];
            let b = ev.branch_idx;
            if i <= b {
                continue;
            }
            if !self.cfg.model.exploits_ci() {
                return false;
            }
            match ev.recon_idx {
                None => return false,
                Some(r) => {
                    if i < r {
                        return false; // deferred correct CD
                    }
                    if self.cfg.model.wastes_resources()
                        && (self.ev[e as usize].wp_fetched as usize) < ev.wrong_path.len()
                    {
                        return false; // fetch hasn't walked the wrong path yet
                    }
                }
            }
        }
        true
    }

    /// Lowest fetchable item, if any.
    fn next_fetch_item(&self) -> Option<(u64, Item)> {
        // Best correct candidate: scan pending (deferred/evicted) first.
        let mut best: Option<(u64, Item)> = None;
        for &i in &self.pending {
            if self.correct_available(i) {
                best = Some((ckey(i), Item::Correct(i)));
                break;
            }
        }
        if best.is_none() && self.frontier < self.input.len() as u32 {
            let f = self.frontier;
            if self.correct_available(f) {
                best = Some((ckey(f), Item::Correct(f)));
            }
        }
        // Wrong-path candidates (WR models): lowest partial wrong path.
        if self.cfg.model.wastes_resources() {
            for &e in &self.active {
                let ev = &self.input.events[e as usize];
                let f = self.ev[e as usize].wp_fetched;
                if (f as usize) < ev.wrong_path.len() {
                    let k = wkey(ev.branch_idx, f);
                    if best.is_none_or(|(bk, _)| k < bk) {
                        best = Some((k, Item::Wrong { ev: e, j: f }));
                    }
                }
            }
        }
        best
    }

    fn fetch(&mut self) {
        for _ in 0..self.cfg.width {
            let Some((k, item)) = self.next_fetch_item() else {
                break;
            };
            // Window capacity: evict the youngest entry if it is younger than
            // the incoming instruction (a restart overflowing the window);
            // otherwise stall.
            if self.window.len() >= self.cfg.window {
                let (&maxk, _) = self.window.last_key_value().expect("window non-empty");
                if maxk <= k {
                    break;
                }
                let victim = self.window.remove(&maxk).expect("present");
                let vpc = self.item_pc(victim.item);
                self.probe.record(self.now, Event::Squash { pc: vpc });
                match victim.item {
                    Item::Correct(vi) => {
                        self.comp[vi as usize] = u64::MAX;
                        self.pending.insert(vi);
                        self.evictions += 1;
                    }
                    Item::Wrong { .. } => {
                        // Squashed outright; wrong-path work is never refetched.
                    }
                }
            }

            self.probe.record(
                self.now,
                Event::Fetch {
                    pc: self.item_pc(item),
                },
            );
            self.window.insert(
                k,
                Slot {
                    item,
                    fetch_cycle: self.now,
                    issued: false,
                },
            );

            match item {
                Item::Correct(i) => {
                    self.pending.remove(&i);
                    if i == self.frontier {
                        self.frontier += 1;
                    }
                    // Activate the misprediction event, defer its correct CD
                    // region, and jump the frontier to the reconvergent point.
                    if self.cfg.model != ModelKind::Oracle {
                        if let Some(&e) = self.input.event_at.get(&i) {
                            self.ev[e as usize].active = true;
                            self.active.push(e);
                            if self.cfg.model.exploits_ci() {
                                if let Some(r) = self.input.events[e as usize].recon_idx {
                                    for cd in (i + 1)..r {
                                        if cd >= self.frontier {
                                            self.pending.insert(cd);
                                        }
                                    }
                                    self.frontier = self.frontier.max(r);
                                }
                            }
                        }
                    }
                }
                Item::Wrong { ev, .. } => {
                    self.ev[ev as usize].wp_fetched += 1;
                    self.wrong_fetched += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StudyInput;
    use ci_isa::{Asm, Program, Reg};
    use ci_workloads::{random_program, Workload, WorkloadParams};

    fn run(input: &StudyInput, model: ModelKind, window: usize) -> IdealResult {
        simulate(
            input,
            &IdealConfig {
                model,
                window,
                ..IdealConfig::default()
            },
        )
    }

    fn straight_line() -> Program {
        let mut a = Asm::new();
        for _ in 0..64 {
            a.addi(Reg::R1, Reg::R1, 1);
        }
        a.halt();
        a.assemble().unwrap()
    }

    #[test]
    fn serial_chain_is_one_per_cycle() {
        // 64 dependent addis: issue is fully serial; IPC ≈ 1 regardless of
        // model (no branches at all).
        let p = straight_line();
        let input = StudyInput::build(&p, 1000).unwrap();
        for model in ModelKind::ALL {
            let r = run(&input, model, 256);
            assert_eq!(r.retired, 65);
            assert!(
                (60..=80).contains(&r.cycles),
                "{model}: {} cycles",
                r.cycles
            );
        }
    }

    #[test]
    fn independent_ops_reach_width() {
        // 16 independent chains: should approach the machine width.
        let mut a = Asm::new();
        for rep in 0..64 {
            for i in 1..=16u8 {
                let r = Reg::try_from(i).unwrap();
                a.addi(r, r, i64::from(rep));
            }
        }
        a.halt();
        let p = a.assemble().unwrap();
        let input = StudyInput::build(&p, 10_000).unwrap();
        let r = run(&input, ModelKind::Oracle, 512);
        assert!(r.ipc() > 8.0, "ipc {}", r.ipc());
    }

    #[test]
    fn all_instructions_retire_on_every_model_and_window() {
        for seed in [1, 2, 3] {
            let p = random_program(seed, 60);
            let input = StudyInput::build(&p, 50_000).unwrap();
            for model in ModelKind::ALL {
                for window in [16, 64, 256] {
                    let r = run(&input, model, window);
                    assert_eq!(
                        r.retired,
                        input.len() as u64,
                        "seed {seed} {model} w{window}"
                    );
                }
            }
        }
    }

    #[test]
    fn model_dominance_relations() {
        // oracle >= nWR-nFD >= nWR-FD >= base (roughly; allow tiny slack for
        // the legitimate case where out-of-order fetch beats oracle, which
        // the paper notes can happen).
        let p = Workload::GoLike.build(&WorkloadParams {
            scale: 300,
            seed: 9,
        });
        let input = StudyInput::build(&p, 50_000).unwrap();
        let ipc = |m| run(&input, m, 256).ipc();
        let oracle = ipc(ModelKind::Oracle);
        let nwr_nfd = ipc(ModelKind::NwrNfd);
        let nwr_fd = ipc(ModelKind::NwrFd);
        let wr_fd = ipc(ModelKind::WrFd);
        let base = ipc(ModelKind::Base);
        assert!(
            oracle >= nwr_nfd * 0.98,
            "oracle {oracle} nwr_nfd {nwr_nfd}"
        );
        assert!(
            nwr_nfd >= nwr_fd * 0.999,
            "nwr_nfd {nwr_nfd} nwr_fd {nwr_fd}"
        );
        assert!(nwr_fd >= base * 0.999, "nwr_fd {nwr_fd} base {base}");
        assert!(wr_fd >= base * 0.999, "wr_fd {wr_fd} base {base}");
        assert!(oracle > base, "mispredictions must cost something");
    }

    #[test]
    fn oracle_monotonic_in_window() {
        let p = Workload::JpegLike.build(&WorkloadParams { scale: 60, seed: 4 });
        let input = StudyInput::build(&p, 50_000).unwrap();
        let mut last = 0.0;
        for w in [32, 64, 128, 256] {
            let ipc = run(&input, ModelKind::Oracle, w).ipc();
            assert!(ipc >= last * 0.999, "window {w}: {ipc} < {last}");
            last = ipc;
        }
    }

    #[test]
    fn wrong_path_fetch_only_in_wr_models() {
        let p = Workload::GoLike.build(&WorkloadParams {
            scale: 200,
            seed: 5,
        });
        let input = StudyInput::build(&p, 30_000).unwrap();
        assert!(input.mispredictions() > 0);
        assert_eq!(run(&input, ModelKind::NwrNfd, 256).wrong_path_fetched, 0);
        assert_eq!(run(&input, ModelKind::Base, 256).wrong_path_fetched, 0);
        assert!(run(&input, ModelKind::WrFd, 256).wrong_path_fetched > 0);
    }

    #[test]
    fn empty_input() {
        let mut a = Asm::new();
        a.halt();
        let p = a.assemble().unwrap();
        let input = StudyInput::build(&p, 0).unwrap();
        let r = run(&input, ModelKind::WrFd, 64);
        assert_eq!(r.retired, 0);
    }
}
