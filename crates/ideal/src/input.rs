//! Study input: the dynamic instruction stream, its dependence graph, and
//! per-misprediction wrong-path excerpts.

use ci_bpred::{PredictorConfig, PredictorSuite};
use ci_cfg::ReconvergenceMap;
use ci_emu::{DynInst, EmuError, Emulator, Trace};
use ci_isa::{Addr, InstClass, Program, Reg};
use std::collections::HashMap;

/// A register source with its producing instruction (`None` = initial state).
pub(crate) type RegDep = (Reg, Option<u32>);

/// Dependences of one correct-path instruction.
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct Deps {
    /// Up to two register sources with their correct-path producers.
    pub srcs: [Option<RegDep>; 2],
    /// For loads: the correct-path store that produced the loaded value
    /// (oracle memory disambiguation).
    pub mem: Option<u32>,
}

/// A dependence of a wrong-path instruction.
#[derive(Clone, Copy, Debug)]
pub(crate) enum WpDep {
    /// A correct-path instruction (older than the mispredicted branch).
    Correct(u32),
    /// An earlier instruction on the same wrong path.
    Wrong(u32),
}

/// One wrong-path instruction (class + dependences only; timing models do not
/// need its values).
#[derive(Clone, Debug)]
pub(crate) struct WrongInst {
    pub class: InstClass,
    pub deps: [Option<WpDep>; 2],
}

/// One branch misprediction with everything the idealized models need:
/// the reconvergent point on the correct path (if any) and the executed
/// wrong path (the incorrect control-dependent instructions).
#[derive(Clone, Debug)]
pub struct MispredictEvent {
    pub(crate) branch_idx: u32,
    pub(crate) recon_idx: Option<u32>,
    pub(crate) wrong_path: Vec<WrongInst>,
    pub(crate) wrong_writes_mask: u32,
    pub(crate) wrong_store_addrs: Vec<Addr>,
}

impl MispredictEvent {
    /// Index (in the correct-path trace) of the mispredicted instruction.
    #[must_use]
    pub fn branch_index(&self) -> usize {
        self.branch_idx as usize
    }

    /// Index of the reconvergent instruction on the correct path, if the
    /// wrong path reached the branch's reconvergent point.
    #[must_use]
    pub fn reconvergent_index(&self) -> Option<usize> {
        self.recon_idx.map(|i| i as usize)
    }

    /// Number of incorrect control-dependent instructions executed.
    #[must_use]
    pub fn wrong_path_len(&self) -> usize {
        self.wrong_path.len()
    }

    pub(crate) fn wrong_writes(&self, r: Reg) -> bool {
        self.wrong_writes_mask & (1 << r.number()) != 0
    }

    pub(crate) fn wrong_stores_to(&self, a: Addr) -> bool {
        self.wrong_store_addrs.binary_search(&a).is_ok()
    }
}

/// Everything the idealized models consume: the correct-path [`Trace`], its
/// oracle dependence graph, and one [`MispredictEvent`] per mispredicted
/// control instruction (under the paper's retirement-order gshare/CTB/RAS
/// prediction).
#[derive(Clone, Debug)]
pub struct StudyInput {
    pub(crate) trace: Trace,
    pub(crate) deps: Vec<Deps>,
    pub(crate) events: Vec<MispredictEvent>,
    pub(crate) event_at: HashMap<u32, u32>,
    predictions: u64,
}

/// How far a wrong path is followed (must exceed the largest window so a
/// non-reconverging wrong path can fill it, as in hardware).
const WRONG_PATH_LIMIT: usize = 600;

/// How far past the branch the correct path is scanned for the reconvergent
/// instruction.
const RECON_SCAN_LIMIT: usize = 4096;

impl StudyInput {
    /// Build the study input for `program`, tracing up to `max_insts`
    /// dynamic instructions, with the paper's predictor configuration.
    ///
    /// # Errors
    /// Propagates [`EmuError`] if correct-path control flow leaves the
    /// program.
    pub fn build(program: &Program, max_insts: u64) -> Result<StudyInput, EmuError> {
        StudyInput::build_with(program, max_insts, PredictorConfig::paper_default())
    }

    /// [`StudyInput::build`] with an explicit predictor configuration.
    ///
    /// # Errors
    /// Propagates [`EmuError`] if correct-path control flow leaves the
    /// program.
    pub fn build_with(
        program: &Program,
        max_insts: u64,
        predictor: PredictorConfig,
    ) -> Result<StudyInput, EmuError> {
        let recon_map = ReconvergenceMap::compute(program);
        let mut emu = Emulator::new(program);
        let mut suite = PredictorSuite::new(predictor);

        let mut insts: Vec<DynInst> = Vec::new();
        let mut deps: Vec<Deps> = Vec::new();
        let mut events: Vec<MispredictEvent> = Vec::new();
        let mut event_recon_pc: Vec<Option<ci_isa::Pc>> = Vec::new();
        let mut event_at: HashMap<u32, u32> = HashMap::new();
        let mut predictions = 0u64;

        let mut last_writer: [Option<u32>; Reg::COUNT] = [None; Reg::COUNT];
        let mut last_store: HashMap<Addr, u32> = HashMap::new();

        while !emu.halted() && (insts.len() as u64) < max_insts {
            let pc = emu.pc();
            let Some(d) = emu.step()? else { break };
            let i = insts.len() as u32;

            // Oracle dependence edges (pre-update state).
            let mut dd = Deps::default();
            for (k, r) in d.sources().enumerate() {
                dd.srcs[k] = Some((r, last_writer[r.number() as usize]));
            }
            if d.class() == InstClass::Load {
                dd.mem = last_store.get(&d.addr.expect("load has addr")).copied();
            }

            // Update producer maps (the instruction's own effects).
            if let Some(rd) = d.dest() {
                last_writer[rd.number() as usize] = Some(i);
            }
            if d.class() == InstClass::Store {
                last_store.insert(d.addr.expect("store has addr"), i);
            }

            // Prediction in retirement order with correct global history —
            // the idealization shared with Lam & Wilson's study. The suite
            // observes every instruction (calls must push the RAS even though
            // they need no prediction).
            let pred = suite.step(pc, &d.inst, d.next_pc, d.taken);
            if d.needs_prediction() {
                predictions += 1;
                if pred.next_pc != d.next_pc {
                    let recon_pc = recon_map.reconvergent_point(pc);
                    // Execute the wrong path from the (already executed)
                    // branch: only the next PC differs between the paths.
                    let mut wp = emu.fork_wrong_path(pred.next_pc);
                    let (wp_insts, reached) = match recon_pc {
                        Some(r) => wp.run_until(|p| p == r, WRONG_PATH_LIMIT),
                        None => wp.run_until(|_| false, WRONG_PATH_LIMIT),
                    };

                    // Wrong-path dependences, overlaying wrong-path writers
                    // on the correct-path producer map.
                    let mut wl: Vec<Option<WpDep>> =
                        last_writer.iter().map(|o| o.map(WpDep::Correct)).collect();
                    let mut mask = 0u32;
                    let mut store_addrs = Vec::new();
                    let mut wrong_path = Vec::with_capacity(wp_insts.len());
                    for (j, wd) in wp_insts.iter().enumerate() {
                        let mut wdeps = [None, None];
                        for (k, r) in wd.sources().enumerate() {
                            wdeps[k] = wl[r.number() as usize];
                        }
                        if wd.class() == InstClass::Store {
                            store_addrs.push(wd.addr.expect("store has addr"));
                        }
                        if let Some(rd) = wd.dest() {
                            wl[rd.number() as usize] = Some(WpDep::Wrong(j as u32));
                            mask |= 1 << rd.number();
                        }
                        wrong_path.push(WrongInst {
                            class: wd.class(),
                            deps: wdeps,
                        });
                    }
                    store_addrs.sort_unstable();
                    store_addrs.dedup();

                    event_at.insert(i, events.len() as u32);
                    event_recon_pc.push(if reached { recon_pc } else { None });
                    events.push(MispredictEvent {
                        branch_idx: i,
                        recon_idx: None, // resolved in the post-pass below
                        wrong_path,
                        wrong_writes_mask: mask,
                        wrong_store_addrs: store_addrs,
                    });
                }
            }

            insts.push(d);
            deps.push(dd);
        }

        // Post-pass: locate each event's reconvergent instruction on the
        // correct path.
        for (ev, recon_pc) in events.iter_mut().zip(event_recon_pc) {
            let Some(rpc) = recon_pc else { continue };
            let start = ev.branch_idx as usize + 1;
            let end = (start + RECON_SCAN_LIMIT).min(insts.len());
            ev.recon_idx = insts[start..end]
                .iter()
                .position(|d| d.pc == rpc)
                .map(|off| (start + off) as u32);
        }

        Ok(StudyInput {
            trace: Trace::from_parts(insts, emu.halted()),
            deps,
            events,
            event_at,
            predictions,
        })
    }

    /// The correct-path trace.
    #[must_use]
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Number of correct-path dynamic instructions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.trace.len()
    }

    /// Whether the trace is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.trace.is_empty()
    }

    /// Control instructions that required prediction.
    #[must_use]
    pub fn predictions(&self) -> u64 {
        self.predictions
    }

    /// Mispredicted control instructions.
    #[must_use]
    pub fn mispredictions(&self) -> u64 {
        self.events.len() as u64
    }

    /// Misprediction rate over predicted control instructions.
    #[must_use]
    pub fn misprediction_rate(&self) -> f64 {
        if self.predictions == 0 {
            0.0
        } else {
            self.events.len() as f64 / self.predictions as f64
        }
    }

    /// The misprediction events, in program order.
    #[must_use]
    pub fn events(&self) -> &[MispredictEvent] {
        &self.events
    }

    /// The event (if any) whose mispredicted branch is trace index `i`.
    #[must_use]
    pub fn event_at(&self, i: usize) -> Option<&MispredictEvent> {
        self.event_at
            .get(&(i as u32))
            .map(|&e| &self.events[e as usize])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ci_isa::{Asm, Pc};

    /// A loop whose final iteration mispredicts: classic diamond inside.
    fn diamond_loop() -> Program {
        let mut a = Asm::new();
        // r1 = loop counter; r2 = data selector alternating via r1 low bit
        a.li(Reg::R1, 40);
        a.label("top").unwrap();
        a.andi(Reg::R2, Reg::R1, 1);
        a.beq(Reg::R2, Reg::R0, "even"); // alternates: learnable
        a.addi(Reg::R3, Reg::R3, 5);
        a.jump("join");
        a.label("even").unwrap();
        a.addi(Reg::R3, Reg::R3, 9);
        a.label("join").unwrap();
        a.addi(Reg::R1, Reg::R1, -1);
        a.bne(Reg::R1, Reg::R0, "top");
        a.halt();
        a.assemble().unwrap()
    }

    #[test]
    fn builds_and_finds_reconvergence() {
        let p = diamond_loop();
        let input = StudyInput::build(&p, 100_000).unwrap();
        assert!(input.trace().completed());
        assert!(input.predictions() > 0);
        assert!(
            input.mispredictions() > 0,
            "cold-start mispredictions expected"
        );
        // Every diamond-branch event must reconverge at the join.
        let join = p.label("join").unwrap();
        let diamond_branch = Pc(2);
        for ev in input.events() {
            let b = &input.trace()[ev.branch_index()];
            if b.pc == diamond_branch {
                let r = ev.reconvergent_index().expect("diamond reconverges");
                assert_eq!(input.trace()[r].pc, join);
                assert!(ev.wrong_path_len() >= 1);
            }
        }
    }

    #[test]
    fn wrong_path_writes_recorded() {
        let p = diamond_loop();
        let input = StudyInput::build(&p, 100_000).unwrap();
        let ev = input
            .events()
            .iter()
            .find(|e| input.trace()[e.branch_index()].pc == Pc(2))
            .expect("diamond event");
        // Both arms write r3, so the wrong path writes r3.
        assert!(ev.wrong_writes(Reg::R3));
        assert!(!ev.wrong_writes(Reg::R9));
        assert!(!ev.wrong_stores_to(Addr(0)));
    }

    #[test]
    fn misprediction_rate_between_zero_and_one() {
        let p = diamond_loop();
        let input = StudyInput::build(&p, 100_000).unwrap();
        let r = input.misprediction_rate();
        assert!((0.0..=1.0).contains(&r));
        assert!(input.event_at(0).is_none());
    }

    #[test]
    fn oracle_style_history_learns_alternation() {
        // After warmup the alternating diamond should be predicted well:
        // mispredictions should be a small fraction.
        let p = diamond_loop();
        let input = StudyInput::build(&p, 100_000).unwrap();
        assert!(
            input.misprediction_rate() < 0.5,
            "rate {}",
            input.misprediction_rate()
        );
    }
}
