//! Serve-side counters: what the daemon did, independent of what the
//! engine computed.
//!
//! [`ServeMetrics`] is a bag of atomics shared by the acceptor, reader
//! threads, workers and the degraded-mode executor. A `status` request
//! snapshots it (schema `serve_metrics/v1`) next to the engine's own
//! [`RunMetrics`](ci_runner::RunMetrics), so one response answers both
//! "what did the service do" and "what did the simulations cost".

use ci_obs::JsonValue;
use std::sync::atomic::{AtomicU64, Ordering};

/// Shared counters for one daemon lifetime. All operations are relaxed —
/// these are observability counters, not synchronization.
#[derive(Debug, Default)]
pub struct ServeMetrics {
    /// Connections accepted.
    pub connections: AtomicU64,
    /// Connections that ended (EOF, error, or disconnect).
    pub disconnects: AtomicU64,
    /// Requests admitted to the queue (or run degraded).
    pub accepted: AtomicU64,
    /// Requests refused at admission (queue/client quota full, closed).
    pub rejected: AtomicU64,
    /// Bulk requests shed under overload.
    pub shed: AtomicU64,
    /// Requests that hit their deadline.
    pub deadlines: AtomicU64,
    /// Requests that completed successfully.
    pub done: AtomicU64,
    /// Requests that failed permanently (retries exhausted, bad name).
    pub failed: AtomicU64,
    /// Cell result lines streamed to clients.
    pub cells_served: AtomicU64,
    /// Compute attempts retried after a caught panic.
    pub retries: AtomicU64,
    /// Panics caught by the supervision layer.
    pub panics_caught: AtomicU64,
    /// Serve workers lost to injected kills.
    pub workers_lost: AtomicU64,
    /// Requests executed serially in degraded mode (no workers left).
    pub degraded: AtomicU64,
    /// Response lines that failed to reach their client (client gone).
    pub send_failures: AtomicU64,
}

impl ServeMetrics {
    /// Increment a counter by one.
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Read a counter.
    #[must_use]
    pub fn read(counter: &AtomicU64) -> u64 {
        counter.load(Ordering::Relaxed)
    }

    /// Snapshot as one JSON object (schema `serve_metrics/v1`).
    #[must_use]
    pub fn to_json(&self) -> JsonValue {
        JsonValue::obj([
            ("schema", JsonValue::from("serve_metrics/v1")),
            ("connections", Self::read(&self.connections).into()),
            ("disconnects", Self::read(&self.disconnects).into()),
            ("accepted", Self::read(&self.accepted).into()),
            ("rejected", Self::read(&self.rejected).into()),
            ("shed", Self::read(&self.shed).into()),
            ("deadlines", Self::read(&self.deadlines).into()),
            ("done", Self::read(&self.done).into()),
            ("failed", Self::read(&self.failed).into()),
            ("cells_served", Self::read(&self.cells_served).into()),
            ("retries", Self::read(&self.retries).into()),
            ("panics_caught", Self::read(&self.panics_caught).into()),
            ("workers_lost", Self::read(&self.workers_lost).into()),
            ("degraded", Self::read(&self.degraded).into()),
            ("send_failures", Self::read(&self.send_failures).into()),
        ])
    }

    /// Every admitted request must end in exactly one terminal outcome;
    /// the difference between admissions and outcomes is the in-flight
    /// count (0 once the daemon has drained).
    #[must_use]
    pub fn in_flight(&self) -> i64 {
        let outcomes = Self::read(&self.done)
            + Self::read(&self.failed)
            + Self::read(&self.deadlines)
            + Self::read(&self.shed);
        Self::read(&self.accepted) as i64 - outcomes as i64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_shape_and_accounting() {
        let m = ServeMetrics::default();
        ServeMetrics::bump(&m.accepted);
        ServeMetrics::bump(&m.accepted);
        ServeMetrics::bump(&m.done);
        assert_eq!(m.in_flight(), 1);
        ServeMetrics::bump(&m.shed);
        assert_eq!(m.in_flight(), 0);
        let v = ci_obs::json::parse(&m.to_json().render()).unwrap();
        assert_eq!(v.get("schema").unwrap().as_str(), Some("serve_metrics/v1"));
        assert_eq!(v.get("accepted").unwrap().as_i64(), Some(2));
        assert_eq!(v.get("done").unwrap().as_i64(), Some(1));
    }
}
