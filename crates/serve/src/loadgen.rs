//! Deterministic load generator for `ci-serve`.
//!
//! Replays a many-client request mix — seeded, so two runs generate the
//! identical request stream — while optionally misbehaving on purpose:
//! an active [`FaultPlan`] makes selected clients stall mid-conversation
//! ([`FaultSite::ClientStall`]) or drop their connection right after
//! sending ([`FaultSite::ClientDisconnect`]) and reconnect.
//!
//! The generator is also the verifier. It asserts, per request, that the
//! response stream is well-formed (contiguous `seq`, exactly one terminal
//! line), and across *all* requests and clients that every occurrence of a
//! cell key carries a byte-identical payload. The soak suite additionally
//! compares those payloads against a direct in-process [`Engine`] run.
//!
//! [`Engine`]: ci_runner::Engine

use crate::client::Client;
use crate::proto::{Class, Request};
use ci_obs::JsonValue;
use ci_runner::fault::mix;
use ci_runner::{CellSpec, FaultPlan, FaultSite};
use ci_workloads::Workload;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// What load to generate and against which daemon.
#[derive(Clone, Debug)]
pub struct LoadConfig {
    /// Daemon address.
    pub addr: String,
    /// Concurrent client connections.
    pub clients: usize,
    /// Requests each client sends.
    pub requests_per_client: usize,
    /// Seed for the deterministic request mix.
    pub seed: u64,
    /// Instruction budget of generated cells/tables (keep small).
    pub instructions: u64,
    /// Client-side misbehaviour plan (stalls, disconnects); `None` for a
    /// well-behaved fleet.
    pub faults: Option<Arc<FaultPlan>>,
    /// Send a `shutdown` request after the run.
    pub send_shutdown: bool,
}

impl Default for LoadConfig {
    fn default() -> LoadConfig {
        LoadConfig {
            addr: String::new(),
            clients: 4,
            requests_per_client: 8,
            seed: 0x10AD,
            instructions: 400,
            faults: None,
            send_shutdown: false,
        }
    }
}

/// Aggregated outcome of a load run. A healthy run has `lost == 0`,
/// `malformed == 0` and `nondeterministic == 0`; everything else is a
/// legitimate terminal outcome the server chose.
#[derive(Debug, Default)]
pub struct LoadReport {
    /// Requests sent and tracked (abandoned ones excluded).
    pub sent: u64,
    /// Requests deliberately abandoned by injected client disconnects.
    pub abandoned: u64,
    /// Requests that ended `done`.
    pub done: u64,
    /// Requests that ended `shed`.
    pub shed: u64,
    /// Requests that ended `deadline`.
    pub deadline: u64,
    /// Requests that ended `rejected`.
    pub rejected: u64,
    /// Requests that ended `error`.
    pub errors: u64,
    /// Tracked requests with **no** terminal response — must be zero.
    pub lost: u64,
    /// Responses with gaps or out-of-order `seq` — must be zero.
    pub malformed: u64,
    /// Cell keys observed with differing payloads — must be zero.
    pub nondeterministic: u64,
    /// Total `ok` cell lines received.
    pub cells: u64,
    /// Injected client stalls performed.
    pub stalls: u64,
    /// Every cell payload seen, keyed by cell key (rendered JSON object,
    /// identical across all observations by construction).
    pub payloads: HashMap<String, String>,
    /// Wall time of the whole run.
    pub wall: Duration,
}

impl LoadReport {
    /// Whether the run proves the service healthy.
    #[must_use]
    pub fn healthy(&self) -> bool {
        self.lost == 0 && self.malformed == 0 && self.nondeterministic == 0
    }

    /// Render as one JSON object (schema `load_report/v1`).
    #[must_use]
    pub fn to_json(&self) -> JsonValue {
        JsonValue::obj([
            ("schema", JsonValue::from("load_report/v1")),
            ("sent", self.sent.into()),
            ("abandoned", self.abandoned.into()),
            ("done", self.done.into()),
            ("shed", self.shed.into()),
            ("deadline", self.deadline.into()),
            ("rejected", self.rejected.into()),
            ("errors", self.errors.into()),
            ("lost", self.lost.into()),
            ("malformed", self.malformed.into()),
            ("nondeterministic", self.nondeterministic.into()),
            ("cells", self.cells.into()),
            ("stalls", self.stalls.into()),
            ("distinct_cells", self.payloads.len().into()),
            ("healthy", self.healthy().into()),
            (
                "wall_us",
                u64::try_from(self.wall.as_micros())
                    .unwrap_or(u64::MAX)
                    .into(),
            ),
        ])
    }

    fn absorb(&mut self, other: LoadReport) {
        self.sent += other.sent;
        self.abandoned += other.abandoned;
        self.done += other.done;
        self.shed += other.shed;
        self.deadline += other.deadline;
        self.rejected += other.rejected;
        self.errors += other.errors;
        self.lost += other.lost;
        self.malformed += other.malformed;
        self.nondeterministic += other.nondeterministic;
        self.cells += other.cells;
        self.stalls += other.stalls;
        for (key, payload) in other.payloads {
            match self.payloads.get(&key) {
                Some(seen) if *seen != payload => self.nondeterministic += 1,
                Some(_) => {}
                None => {
                    self.payloads.insert(key, payload);
                }
            }
        }
    }
}

/// The deterministic request for client `c`, request `i`.
#[must_use]
pub fn nth_request(cfg: &LoadConfig, c: usize, i: usize) -> Request {
    let h = mix(cfg.seed ^ ((c as u64) << 32 | i as u64));
    let id = format!("c{c}-r{i}");
    let workload = Workload::ALL[(h % 5) as usize];
    match h % 10 {
        0..=5 => Request::Cell {
            id,
            spec: CellSpec::Study {
                workload,
                instructions: cfg.instructions,
                seed: cfg.seed % 1024,
            },
            class: Class::Interactive,
            deadline_ms: None,
        },
        6..=7 => Request::Table {
            id,
            name: "smoke".to_owned(),
            instructions: cfg.instructions,
            seed: cfg.seed % 1024,
            class: Class::Interactive,
            deadline_ms: None,
        },
        _ => Request::Table {
            id,
            name: "table1".to_owned(),
            instructions: cfg.instructions,
            seed: cfg.seed % 1024,
            class: Class::Bulk,
            deadline_ms: None,
        },
    }
}

/// Every *distinct* cell the generated mix can request, for replaying the
/// same work directly against an in-process engine.
#[must_use]
pub fn expected_cells(cfg: &LoadConfig) -> Vec<CellSpec> {
    let scale = control_independence::experiments::Scale {
        instructions: cfg.instructions,
        seed: cfg.seed % 1024,
    };
    let mut cells: Vec<CellSpec> = Workload::ALL
        .into_iter()
        .map(|workload| CellSpec::Study {
            workload,
            instructions: cfg.instructions,
            seed: cfg.seed % 1024,
        })
        .collect();
    for name in ["smoke", "table1"] {
        cells.extend(
            control_independence::experiments::request_cells(name, &scale)
                .expect("known experiment names"),
        );
    }
    cells
}

fn record_response(report: &mut LoadReport, lines: &[JsonValue]) {
    let mut expect_seq = 0_i64;
    for v in lines {
        match v.get("status").and_then(JsonValue::as_str) {
            Some("ok") => {
                report.cells += 1;
                if v.get("seq").and_then(JsonValue::as_i64) != Some(expect_seq) {
                    report.malformed += 1;
                }
                expect_seq += 1;
                let cell = v.get("cell");
                let key = cell
                    .and_then(|c| c.get("key"))
                    .and_then(JsonValue::as_str)
                    .map(str::to_owned);
                match (key, cell) {
                    (Some(key), Some(cell)) => {
                        let payload = cell.render();
                        match report.payloads.get(&key) {
                            Some(seen) if *seen != payload => report.nondeterministic += 1,
                            Some(_) => {}
                            None => {
                                report.payloads.insert(key, payload);
                            }
                        }
                    }
                    _ => report.malformed += 1,
                }
            }
            Some("done") => report.done += 1,
            Some("shed") => report.shed += 1,
            Some("deadline") => report.deadline += 1,
            Some("rejected") => report.rejected += 1,
            Some("error") => report.errors += 1,
            _ => report.malformed += 1,
        }
    }
}

fn client_loop(cfg: &LoadConfig, c: usize) -> LoadReport {
    let mut report = LoadReport::default();
    let mut conn: Option<Client> = None;
    for i in 0..cfg.requests_per_client {
        let req = nth_request(cfg, c, i);
        let key = format!("c{c}-r{i}");
        if let Some(f) = &cfg.faults {
            if f.fire(FaultSite::ClientStall, &key) {
                report.stalls += 1;
                std::thread::sleep(f.delay(FaultSite::ClientStall));
            }
        }
        let disconnect = cfg
            .faults
            .as_ref()
            .is_some_and(|f| f.fire(FaultSite::ClientDisconnect, &key));
        // (Re)connect lazily — also covers recovery after a disconnect.
        if conn.is_none() {
            match Client::connect(&cfg.addr) {
                Ok(cl) => conn = Some(cl),
                Err(_) => {
                    report.sent += 1;
                    report.lost += 1;
                    continue;
                }
            }
        }
        let client = conn.as_mut().expect("connected above");
        if disconnect {
            // Send, then hang up without reading: the request is
            // deliberately abandoned, not lost.
            let _ = client.send(&req);
            conn = None;
            report.abandoned += 1;
            continue;
        }
        report.sent += 1;
        match client.request(&req) {
            Ok(lines) => record_response(&mut report, &lines),
            Err(_) => {
                // Connection died mid-request; the response is gone.
                report.lost += 1;
                conn = None;
            }
        }
    }
    report
}

/// Run the configured load and return the merged report.
#[must_use]
pub fn run(cfg: &LoadConfig) -> LoadReport {
    let start = Instant::now();
    let mut merged = LoadReport::default();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..cfg.clients)
            .map(|c| scope.spawn(move || client_loop(cfg, c)))
            .collect();
        for h in handles {
            match h.join() {
                Ok(report) => merged.absorb(report),
                Err(_) => merged.lost += 1,
            }
        }
    });
    if cfg.send_shutdown {
        if let Ok(mut cl) = Client::connect(&cfg.addr) {
            let _ = cl.request(&Request::Shutdown {
                id: "shutdown".into(),
            });
        }
    }
    merged.wall = start.elapsed();
    merged
}
