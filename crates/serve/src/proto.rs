//! The JSONL wire protocol between `ci-serve` and its clients.
//!
//! Every message — in both directions — is one JSON object per line,
//! rendered and parsed by the `ci-obs` JSON layer. Requests carry a
//! client-chosen `id` that every response line echoes, so a client can
//! multiplex requests over one connection.
//!
//! # Requests
//!
//! ```json
//! {"kind":"cell","id":"c1","cell":{"type":"study","workload":"gcc","instructions":4000,"seed":7}}
//! {"kind":"table","id":"t1","name":"table2","instructions":4000,"seed":7,"class":"bulk"}
//! {"kind":"status","id":"s1"}
//! {"kind":"shutdown","id":"x1"}
//! ```
//!
//! Optional request fields: `deadline_ms` (per-request deadline, server
//! default otherwise) and `class` (`"interactive"` or `"bulk"`; cells
//! default to interactive, tables to bulk). Under overload the server sheds
//! bulk work first — see [`crate::server`].
//!
//! # Responses
//!
//! A cell/table request streams one `"ok"` line per cell, in spec order,
//! followed by exactly one terminal line (`done`, `error`, `shed`,
//! `deadline` or `rejected`). `"ok"` lines embed the cell in the disk-cache
//! line format (`key`/`spec`/`check`/`output`), so payloads are
//! **byte-identical** to a direct [`Engine`](ci_runner::Engine) run and to
//! every other request for the same cell — the soak suite pins this.
//! Terminal lines carry no timing, for the same reason.

use ci_core::PipelineConfig;
use ci_ideal::ModelKind;
use ci_obs::{json, JsonValue};
use ci_runner::engine::render_cache_line;
use ci_runner::{CellOutput, CellSpec};
use ci_workloads::Workload;

/// Scheduling class of a request: under overload, bulk work is shed first.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Class {
    /// Latency-sensitive; shed only as a last resort.
    Interactive,
    /// Throughput work (whole tables, prefetch warming); first to go.
    Bulk,
}

impl Class {
    /// Wire name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Class::Interactive => "interactive",
            Class::Bulk => "bulk",
        }
    }

    /// Parse a wire name.
    pub fn parse(s: &str) -> Result<Class, String> {
        match s {
            "interactive" => Ok(Class::Interactive),
            "bulk" => Ok(Class::Bulk),
            other => Err(format!("unknown class `{other}`")),
        }
    }
}

/// One parsed client request.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Compute one cell.
    Cell {
        /// Client-chosen correlation id, echoed on every response line.
        id: String,
        /// The cell to compute.
        spec: CellSpec,
        /// Scheduling class (default interactive).
        class: Class,
        /// Per-request deadline in milliseconds (server default if absent).
        deadline_ms: Option<u64>,
    },
    /// Compute every cell behind a named table or figure
    /// (see [`control_independence::experiments::request_cells`]).
    Table {
        /// Client-chosen correlation id.
        id: String,
        /// Experiment name (`table1` … `distributions`, `all`, `smoke`).
        name: String,
        /// Dynamic instruction budget per workload run.
        instructions: u64,
        /// Workload data seed.
        seed: u64,
        /// Scheduling class (default bulk).
        class: Class,
        /// Per-request deadline in milliseconds.
        deadline_ms: Option<u64>,
    },
    /// Report server metrics; answered immediately, never queued.
    Status {
        /// Client-chosen correlation id.
        id: String,
    },
    /// Drain queued work and stop the daemon.
    Shutdown {
        /// Client-chosen correlation id.
        id: String,
    },
}

impl Request {
    /// The request's correlation id.
    #[must_use]
    pub fn id(&self) -> &str {
        match self {
            Request::Cell { id, .. }
            | Request::Table { id, .. }
            | Request::Status { id }
            | Request::Shutdown { id } => id,
        }
    }

    /// Render the request as one wire line (no trailing newline).
    #[must_use]
    pub fn to_line(&self) -> String {
        match self {
            Request::Cell {
                id,
                spec,
                class,
                deadline_ms,
            } => {
                let mut pairs = vec![
                    ("kind", JsonValue::from("cell")),
                    ("id", JsonValue::Str(id.clone())),
                    ("cell", spec_to_json(spec)),
                    ("class", class.name().into()),
                ];
                if let Some(ms) = deadline_ms {
                    pairs.push(("deadline_ms", (*ms).into()));
                }
                JsonValue::obj(pairs).render()
            }
            Request::Table {
                id,
                name,
                instructions,
                seed,
                class,
                deadline_ms,
            } => {
                let mut pairs = vec![
                    ("kind", JsonValue::from("table")),
                    ("id", JsonValue::Str(id.clone())),
                    ("name", JsonValue::Str(name.clone())),
                    ("instructions", (*instructions).into()),
                    ("seed", (*seed).into()),
                    ("class", class.name().into()),
                ];
                if let Some(ms) = deadline_ms {
                    pairs.push(("deadline_ms", (*ms).into()));
                }
                JsonValue::obj(pairs).render()
            }
            Request::Status { id } => JsonValue::obj([
                ("kind", JsonValue::from("status")),
                ("id", JsonValue::Str(id.clone())),
            ])
            .render(),
            Request::Shutdown { id } => JsonValue::obj([
                ("kind", JsonValue::from("shutdown")),
                ("id", JsonValue::Str(id.clone())),
            ])
            .render(),
        }
    }

    /// Parse one wire line into a request.
    pub fn parse_line(line: &str) -> Result<Request, String> {
        let v = json::parse(line).map_err(|e| format!("malformed JSON: {e}"))?;
        let id = v
            .get("id")
            .and_then(JsonValue::as_str)
            .ok_or("missing `id`")?
            .to_owned();
        let kind = v
            .get("kind")
            .and_then(JsonValue::as_str)
            .ok_or("missing `kind`")?;
        let deadline_ms = match v.get("deadline_ms") {
            None => None,
            Some(d) => Some(
                d.as_i64()
                    .and_then(|ms| u64::try_from(ms).ok())
                    .ok_or("`deadline_ms` must be a non-negative integer")?,
            ),
        };
        let class = |default: Class| -> Result<Class, String> {
            match v.get("class").and_then(JsonValue::as_str) {
                None => Ok(default),
                Some(s) => Class::parse(s),
            }
        };
        match kind {
            "cell" => Ok(Request::Cell {
                id,
                spec: spec_from_json(v.get("cell").ok_or("missing `cell`")?)?,
                class: class(Class::Interactive)?,
                deadline_ms,
            }),
            "table" => Ok(Request::Table {
                id,
                name: v
                    .get("name")
                    .and_then(JsonValue::as_str)
                    .ok_or("missing `name`")?
                    .to_owned(),
                instructions: field_u64(&v, "instructions")?,
                seed: field_u64(&v, "seed")?,
                class: class(Class::Bulk)?,
                deadline_ms,
            }),
            "status" => Ok(Request::Status { id }),
            "shutdown" => Ok(Request::Shutdown { id }),
            other => Err(format!("unknown kind `{other}`")),
        }
    }
}

fn field_u64(v: &JsonValue, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(JsonValue::as_i64)
        .and_then(|n| u64::try_from(n).ok())
        .ok_or_else(|| format!("`{key}` must be a non-negative integer"))
}

/// Encode a [`CellSpec`] as its wire object.
///
/// Detailed cells are expressible only through the named configuration
/// presets (`base`, `ci`, `ci_instant`) — the full [`PipelineConfig`]
/// surface stays server-side, which keeps the wire vocabulary closed under
/// the experiments the paper defines.
#[must_use]
pub fn spec_to_json(spec: &CellSpec) -> JsonValue {
    match spec {
        CellSpec::Study {
            workload,
            instructions,
            seed,
        } => JsonValue::obj([
            ("type", JsonValue::from("study")),
            ("workload", workload.name().into()),
            ("instructions", (*instructions).into()),
            ("seed", (*seed).into()),
        ]),
        CellSpec::Ideal {
            workload,
            model,
            window,
            instructions,
            seed,
        } => JsonValue::obj([
            ("type", JsonValue::from("ideal")),
            ("workload", workload.name().into()),
            ("model", model.name().into()),
            ("window", (*window).into()),
            ("instructions", (*instructions).into()),
            ("seed", (*seed).into()),
        ]),
        CellSpec::Detailed {
            workload,
            config,
            instructions,
            seed,
        } => {
            let window = config.window;
            let preset = if *config == PipelineConfig::base(window) {
                "base"
            } else if *config == PipelineConfig::ci(window) {
                "ci"
            } else if *config == PipelineConfig::ci_instant(window) {
                "ci_instant"
            } else {
                "custom"
            };
            JsonValue::obj([
                ("type", JsonValue::from("detailed")),
                ("workload", workload.name().into()),
                ("config", preset.into()),
                ("window", window.into()),
                ("instructions", (*instructions).into()),
                ("seed", (*seed).into()),
            ])
        }
    }
}

/// Decode a wire object into a [`CellSpec`]; inverse of [`spec_to_json`]
/// for every preset-expressible spec.
pub fn spec_from_json(v: &JsonValue) -> Result<CellSpec, String> {
    let workload_name = v
        .get("workload")
        .and_then(JsonValue::as_str)
        .ok_or("missing `workload`")?;
    let workload = Workload::ALL
        .into_iter()
        .find(|w| w.name() == workload_name)
        .ok_or_else(|| format!("unknown workload `{workload_name}`"))?;
    let instructions = field_u64(v, "instructions")?;
    let seed = field_u64(v, "seed")?;
    match v.get("type").and_then(JsonValue::as_str) {
        Some("study") => Ok(CellSpec::Study {
            workload,
            instructions,
            seed,
        }),
        Some("ideal") => {
            let model_name = v
                .get("model")
                .and_then(JsonValue::as_str)
                .ok_or("missing `model`")?;
            let model = ModelKind::ALL
                .into_iter()
                .find(|m| m.name() == model_name)
                .ok_or_else(|| format!("unknown model `{model_name}`"))?;
            let window = usize::try_from(field_u64(v, "window")?)
                .map_err(|_| "window out of range".to_owned())?;
            Ok(CellSpec::Ideal {
                workload,
                model,
                window,
                instructions,
                seed,
            })
        }
        Some("detailed") => {
            let window = usize::try_from(field_u64(v, "window")?)
                .map_err(|_| "window out of range".to_owned())?;
            let config = match v.get("config").and_then(JsonValue::as_str) {
                Some("base") => PipelineConfig::base(window),
                Some("ci") => PipelineConfig::ci(window),
                Some("ci_instant") => PipelineConfig::ci_instant(window),
                Some(other) => return Err(format!("unknown config preset `{other}`")),
                None => return Err("missing `config`".to_owned()),
            };
            Ok(CellSpec::Detailed {
                workload,
                config,
                instructions,
                seed,
            })
        }
        Some(other) => Err(format!("unknown cell type `{other}`")),
        None => Err("missing cell `type`".to_owned()),
    }
}

/// Build one `"ok"` response line for a computed cell (no trailing
/// newline). The `cell` field is the parsed disk-cache line for the cell —
/// the same lossless `key`/`spec`/`check`/`output` object
/// [`render_cache_line`] persists — so payloads are byte-comparable with a
/// direct engine run.
#[must_use]
pub fn ok_line(id: &str, seq: usize, of: usize, spec: &CellSpec, output: &CellOutput) -> String {
    let cache = render_cache_line(&spec.canonical(), output);
    let cell = json::parse(&cache).expect("render_cache_line emits valid JSON");
    JsonValue::obj([
        ("id", JsonValue::Str(id.to_owned())),
        ("seq", seq.into()),
        ("of", of.into()),
        ("status", "ok".into()),
        ("cell", cell),
    ])
    .render()
}

/// Build a terminal response line (no trailing newline). `status` is one of
/// `done`, `error`, `shed`, `deadline`, `rejected` or `bye`; `detail`
/// becomes an `error` field when present.
#[must_use]
pub fn terminal_line(id: &str, status: &str, cells: usize, detail: Option<&str>) -> String {
    let mut pairs = vec![
        ("id", JsonValue::Str(id.to_owned())),
        ("status", status.into()),
        ("cells", cells.into()),
    ];
    if let Some(d) = detail {
        pairs.push(("error", JsonValue::Str(d.to_owned())));
    }
    JsonValue::obj(pairs).render()
}

/// Whether a response line is terminal — the last line of its request.
#[must_use]
pub fn is_terminal(status: &str) -> bool {
    matches!(
        status,
        "done" | "error" | "shed" | "deadline" | "rejected" | "bye" | "status"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn specs() -> Vec<CellSpec> {
        vec![
            CellSpec::Study {
                workload: Workload::GccLike,
                instructions: 4_000,
                seed: 7,
            },
            CellSpec::Ideal {
                workload: Workload::VortexLike,
                model: ModelKind::WrFd,
                window: 256,
                instructions: 9_000,
                seed: 0x5EED,
            },
            CellSpec::Detailed {
                workload: Workload::CompressLike,
                config: PipelineConfig::ci(128),
                instructions: 2_500,
                seed: 1,
            },
            CellSpec::Detailed {
                workload: Workload::JpegLike,
                config: PipelineConfig::ci_instant(64),
                instructions: 2_500,
                seed: 2,
            },
            CellSpec::Detailed {
                workload: Workload::GoLike,
                config: PipelineConfig::base(512),
                instructions: 2_500,
                seed: 3,
            },
        ]
    }

    #[test]
    fn spec_json_round_trips() {
        for spec in specs() {
            let back = spec_from_json(&spec_to_json(&spec)).unwrap();
            assert_eq!(back, spec, "round trip changed {}", spec.canonical());
        }
    }

    #[test]
    fn request_lines_round_trip() {
        let reqs = vec![
            Request::Cell {
                id: "c1".into(),
                spec: specs().remove(0),
                class: Class::Interactive,
                deadline_ms: Some(1_500),
            },
            Request::Table {
                id: "t1".into(),
                name: "table2".into(),
                instructions: 4_000,
                seed: 7,
                class: Class::Bulk,
                deadline_ms: None,
            },
            Request::Status { id: "s1".into() },
            Request::Shutdown { id: "x1".into() },
        ];
        for req in reqs {
            let back = Request::parse_line(&req.to_line()).unwrap();
            assert_eq!(back, req);
        }
    }

    #[test]
    fn request_defaults_and_rejections() {
        let r = Request::parse_line(
            r#"{"kind":"cell","id":"a","cell":{"type":"study","workload":"go","instructions":10,"seed":1}}"#,
        )
        .unwrap();
        assert!(matches!(
            r,
            Request::Cell {
                class: Class::Interactive,
                deadline_ms: None,
                ..
            }
        ));
        let r = Request::parse_line(
            r#"{"kind":"table","id":"b","name":"smoke","instructions":10,"seed":1}"#,
        )
        .unwrap();
        assert!(matches!(
            r,
            Request::Table {
                class: Class::Bulk,
                ..
            }
        ));
        for bad in [
            "not json",
            r#"{"kind":"cell"}"#,
            r#"{"kind":"mystery","id":"x"}"#,
            r#"{"kind":"cell","id":"x","cell":{"type":"study","workload":"nope","instructions":1,"seed":1}}"#,
            r#"{"kind":"cell","id":"x","cell":{"type":"ideal","workload":"go","model":"sideways","window":64,"instructions":1,"seed":1}}"#,
            r#"{"kind":"cell","id":"x","cell":{"type":"detailed","workload":"go","config":"overclocked","window":64,"instructions":1,"seed":1}}"#,
            r#"{"kind":"table","id":"x","name":"t","instructions":-4,"seed":1}"#,
        ] {
            assert!(Request::parse_line(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn terminal_statuses() {
        for s in ["done", "error", "shed", "deadline", "rejected", "bye"] {
            assert!(is_terminal(s));
        }
        assert!(!is_terminal("ok"));
        let line = terminal_line("q", "shed", 0, Some("bulk overload"));
        let v = json::parse(&line).unwrap();
        assert_eq!(v.get("status").unwrap().as_str(), Some("shed"));
        assert_eq!(v.get("error").unwrap().as_str(), Some("bulk overload"));
    }
}
