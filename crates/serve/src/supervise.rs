//! The supervision layer: every cell computation the daemon runs goes
//! through here.
//!
//! Policy (documented in `DESIGN.md`):
//!
//! - **Panic isolation** — the compute closure runs under
//!   [`catch_unwind`]; a panic poisons only the failing cell, never the
//!   worker or the daemon. (The engine's memo already unpoisons its
//!   in-flight slot on panic, so other waiters retry rather than hang.)
//! - **Bounded retry** — up to [`Supervisor::max_retries`] re-attempts per
//!   cell with exponential backoff and *deterministic* jitter derived from
//!   the cell key and attempt number ([`ci_runner::fault::mix`]), so two
//!   identical runs back off identically and replay stays byte-stable.
//! - **Cooperative deadlines** — the deadline is checked before every
//!   attempt and bounds every backoff sleep; a request never blocks past
//!   its deadline waiting to retry.

use crate::metrics::ServeMetrics;
use ci_runner::fault::mix;
use ci_runner::{CellOutput, CellSpec, Engine};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

/// Retry/backoff policy for supervised cell computation.
#[derive(Clone, Copy, Debug)]
pub struct Supervisor {
    /// Re-attempts after the first failed try (so `max_retries + 1`
    /// attempts total).
    pub max_retries: u32,
    /// First backoff step; doubles per attempt.
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_cap: Duration,
}

impl Default for Supervisor {
    fn default() -> Supervisor {
        Supervisor {
            max_retries: 3,
            backoff_base: Duration::from_millis(5),
            backoff_cap: Duration::from_millis(200),
        }
    }
}

/// Why a supervised computation did not produce an output.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CellError {
    /// The request's deadline passed (before an attempt or during backoff).
    Deadline,
    /// Every attempt panicked; `message` is the last panic payload.
    Panicked {
        /// Attempts made (1 + retries).
        attempts: u32,
        /// Last panic payload, stringified.
        message: String,
    },
}

impl Supervisor {
    /// Backoff before retry number `attempt` (1-based): exponential from
    /// [`Supervisor::backoff_base`], capped, plus deterministic jitter
    /// mixed from the cell key so identical runs sleep identically.
    #[must_use]
    pub fn backoff(&self, key_hash: u64, attempt: u32) -> Duration {
        let base = self.backoff_base.as_micros() as u64;
        let step = base.saturating_mul(1_u64 << attempt.min(16));
        let cap = self.backoff_cap.as_micros() as u64;
        let jitter = mix(key_hash ^ u64::from(attempt)) % base.max(1);
        Duration::from_micros(step.min(cap) + jitter)
    }

    /// Compute one cell under supervision. Returns the output, or a
    /// [`CellError`] once retries are exhausted or the deadline passes.
    pub fn run_cell(
        &self,
        eng: &Engine,
        spec: &CellSpec,
        deadline: Option<Instant>,
        metrics: &ServeMetrics,
    ) -> Result<CellOutput, CellError> {
        let key_hash = spec.key().0;
        let mut attempt = 0;
        loop {
            if deadline.is_some_and(|d| Instant::now() >= d) {
                return Err(CellError::Deadline);
            }
            match catch_unwind(AssertUnwindSafe(|| eng.cell(spec))) {
                Ok(out) => return Ok(out),
                Err(payload) => {
                    ServeMetrics::bump(&metrics.panics_caught);
                    let message = panic_message(payload.as_ref());
                    if attempt >= self.max_retries {
                        return Err(CellError::Panicked {
                            attempts: attempt + 1,
                            message,
                        });
                    }
                    attempt += 1;
                    ServeMetrics::bump(&metrics.retries);
                    let mut pause = self.backoff(key_hash, attempt);
                    if let Some(d) = deadline {
                        let left = d.saturating_duration_since(Instant::now());
                        if left.is_zero() {
                            return Err(CellError::Deadline);
                        }
                        pause = pause.min(left);
                    }
                    std::thread::sleep(pause);
                }
            }
        }
    }
}

/// Stringify a panic payload (panics carry `&str` or `String` in practice).
#[must_use]
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ci_runner::{EngineOptions, FaultPlan, INJECTED_PANIC};
    use ci_workloads::Workload;
    use std::sync::Arc;

    fn spec(seed: u64) -> CellSpec {
        CellSpec::Study {
            workload: Workload::CompressLike,
            instructions: 300,
            seed,
        }
    }

    fn engine_with(plan: FaultPlan) -> Engine {
        Engine::new(EngineOptions {
            workers: 1,
            cache_dir: None,
            faults: Some(Arc::new(plan)),
        })
    }

    #[test]
    fn backoff_is_deterministic_and_bounded() {
        let s = Supervisor::default();
        for attempt in 1..=8 {
            let a = s.backoff(0xABCD, attempt);
            let b = s.backoff(0xABCD, attempt);
            assert_eq!(a, b);
            assert!(a <= s.backoff_cap + s.backoff_base);
        }
        // Different keys jitter differently somewhere in the range.
        assert_ne!(s.backoff(1, 1), s.backoff(2, 1));
    }

    #[test]
    fn retries_recover_from_transient_panics() {
        // Rate 1 selects every cell; budget 2 means two panics then success.
        let eng = engine_with(FaultPlan::new(11).with_panics(1, 2));
        let m = ServeMetrics::default();
        let out = Supervisor::default()
            .run_cell(&eng, &spec(1), None, &m)
            .expect("third attempt succeeds");
        assert_eq!(out, Engine::serial().cell(&spec(1)));
        assert_eq!(ServeMetrics::read(&m.panics_caught), 2);
        assert_eq!(ServeMetrics::read(&m.retries), 2);
    }

    #[test]
    fn persistent_panics_exhaust_retries() {
        let sup = Supervisor {
            max_retries: 2,
            backoff_base: Duration::from_micros(100),
            backoff_cap: Duration::from_micros(500),
        };
        // Budget far above the retry limit: the fault never clears.
        let eng = engine_with(FaultPlan::new(11).with_panics(1, 1_000));
        let m = ServeMetrics::default();
        let err = sup.run_cell(&eng, &spec(2), None, &m).unwrap_err();
        match err {
            CellError::Panicked { attempts, message } => {
                assert_eq!(attempts, 3);
                assert!(message.contains(INJECTED_PANIC), "message: {message}");
            }
            other => panic!("expected Panicked, got {other:?}"),
        }
        assert_eq!(ServeMetrics::read(&m.panics_caught), 3);
    }

    #[test]
    fn deadline_bounds_the_whole_attempt_loop() {
        let eng = engine_with(FaultPlan::new(11).with_panics(1, 1_000));
        let m = ServeMetrics::default();
        let deadline = Instant::now() - Duration::from_millis(1);
        let err = Supervisor::default()
            .run_cell(&eng, &spec(3), Some(deadline), &m)
            .unwrap_err();
        assert_eq!(err, CellError::Deadline);
        // Expired before the first attempt: nothing was computed.
        assert_eq!(ServeMetrics::read(&m.panics_caught), 0);
    }
}
