//! The `ci-serve` daemon: a supervised TCP front-end over the experiment
//! [`Engine`].
//!
//! # Architecture
//!
//! One acceptor thread, one reader thread per connection, and a fixed pool
//! of serve workers draining a central scheduler. Requests are whole units
//! of work (one cell, or every cell of a named table); a worker computes a
//! request's cells *in spec order* and streams each result line as it
//! completes, so per-request output is deterministic byte-for-byte.
//!
//! # Admission control and fairness
//!
//! The scheduler holds one bounded queue per client and serves clients
//! round-robin, so a client flooding bulk table requests cannot starve
//! another's interactive cells. Global capacity is bounded too; under
//! overload the daemon **sheds bulk work first** (oldest bulk job is
//! evicted, its client told `shed`), and only rejects interactive work
//! when the queue is saturated with interactive requests.
//!
//! # Degradation ladder
//!
//! 1. Healthy: workers drain the scheduler, panics are retried with
//!    backoff ([`Supervisor`]), deadlines are enforced cooperatively.
//! 2. Overload: bulk shed first, then per-client quotas reject.
//! 3. Worker loss: an injected kill makes a worker requeue its job at the
//!    front of the owning client's queue (nothing is lost) and exit; the
//!    last worker to die hands the queue to a rescue drainer, and reader
//!    threads execute subsequent requests serially in-process (`degraded`
//!    counter). The daemon *slows down* instead of dropping work.
//! 4. Cache corruption: quarantined by the engine at load time; the daemon
//!    keeps serving from memo and recomputes (see `ci-runner`).

use crate::metrics::ServeMetrics;
use crate::proto::{is_terminal, ok_line, terminal_line, Class, Request};
use crate::supervise::{CellError, Supervisor};
use ci_obs::{json, JsonValue};
use ci_runner::{CellSpec, Engine, EngineOptions, FaultSite};
use control_independence::experiments::{request_cells, Scale};
use std::collections::{HashMap, VecDeque};
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Everything configurable about a daemon instance.
#[derive(Clone, Debug)]
pub struct ServerOptions {
    /// Listen address; port 0 picks a free port (see
    /// [`Server::local_addr`]).
    pub addr: String,
    /// Engine options (simulation workers, cache directory, fault plan).
    pub engine: EngineOptions,
    /// Serve worker threads draining the request scheduler.
    pub serve_workers: usize,
    /// Global bound on queued requests.
    pub queue_cap: usize,
    /// Per-client bound on queued requests.
    pub per_client_cap: usize,
    /// Retry/backoff policy for supervised computation.
    pub supervisor: Supervisor,
    /// Deadline applied when a request carries none.
    pub default_deadline: Duration,
}

impl Default for ServerOptions {
    fn default() -> ServerOptions {
        ServerOptions {
            addr: "127.0.0.1:0".to_owned(),
            engine: EngineOptions {
                workers: 1,
                cache_dir: None,
                faults: None,
            },
            serve_workers: 2,
            queue_cap: 64,
            per_client_cap: 8,
            supervisor: Supervisor::default(),
            default_deadline: Duration::from_secs(300),
        }
    }
}

/// The write half of a connection. Workers and reader threads share it;
/// a failed write marks the connection dead and later sends are dropped
/// (counted in `send_failures`) instead of wedging a worker.
struct ConnWriter {
    stream: Mutex<Option<TcpStream>>,
}

impl ConnWriter {
    fn new(stream: TcpStream) -> ConnWriter {
        ConnWriter {
            stream: Mutex::new(Some(stream)),
        }
    }

    /// Send one response line; returns whether the client got it.
    fn send_line(&self, metrics: &ServeMetrics, line: &str) -> bool {
        let mut guard = self.stream.lock().unwrap_or_else(|e| e.into_inner());
        let ok = match guard.as_mut() {
            Some(s) => s
                .write_all(line.as_bytes())
                .and_then(|()| s.write_all(b"\n"))
                .is_ok(),
            None => false,
        };
        if !ok {
            *guard = None;
            ServeMetrics::bump(&metrics.send_failures);
        }
        ok
    }
}

/// One admitted unit of work.
struct Job {
    client: u64,
    id: String,
    specs: Vec<CellSpec>,
    class: Class,
    deadline: Instant,
    /// Monotonic admission number — the shed policy evicts the *oldest*
    /// bulk job.
    seq: u64,
    conn: Arc<ConnWriter>,
}

/// Scheduler state under one mutex: per-client queues plus the round-robin
/// order of clients with pending work.
struct Sched {
    open: bool,
    queues: HashMap<u64, VecDeque<Job>>,
    order: VecDeque<u64>,
    total: usize,
    alive_workers: usize,
}

impl Sched {
    fn push_back(&mut self, job: Job) {
        let client = job.client;
        let q = self.queues.entry(client).or_default();
        if q.is_empty() && !self.order.contains(&client) {
            self.order.push_back(client);
        }
        q.push_back(job);
        self.total += 1;
    }

    fn push_front(&mut self, job: Job) {
        let client = job.client;
        let q = self.queues.entry(client).or_default();
        if q.is_empty() && !self.order.contains(&client) {
            self.order.push_front(client);
        }
        q.push_front(job);
        self.total += 1;
    }

    /// Pop the next job round-robin across clients.
    fn pop(&mut self) -> Option<Job> {
        let client = self.order.pop_front()?;
        let q = self.queues.get_mut(&client)?;
        let job = q.pop_front()?;
        if q.is_empty() {
            self.queues.remove(&client);
        } else {
            self.order.push_back(client);
        }
        self.total -= 1;
        Some(job)
    }

    /// Remove the oldest queued bulk job, if any (the shed victim).
    fn evict_oldest_bulk(&mut self) -> Option<Job> {
        let (&client, _) = self
            .queues
            .iter()
            .filter_map(|(c, q)| {
                q.iter()
                    .filter(|j| j.class == Class::Bulk)
                    .map(move |j| (c, j.seq))
                    .min_by_key(|&(_, s)| s)
            })
            .min_by_key(|&(_, s)| s)?;
        let q = self.queues.get_mut(&client)?;
        let pos = q
            .iter()
            .enumerate()
            .filter(|(_, j)| j.class == Class::Bulk)
            .min_by_key(|(_, j)| j.seq)
            .map(|(i, _)| i)?;
        let job = q.remove(pos)?;
        if q.is_empty() {
            self.queues.remove(&client);
            self.order.retain(|&c| c != client);
        }
        self.total -= 1;
        Some(job)
    }
}

struct Inner {
    engine: Engine,
    metrics: ServeMetrics,
    supervisor: Supervisor,
    default_deadline: Duration,
    queue_cap: usize,
    per_client_cap: usize,
    sched: Mutex<Sched>,
    work_ready: Condvar,
    stop: AtomicBool,
    next_seq: AtomicU64,
    next_client: AtomicU64,
}

/// Outcome of admission control for one request.
enum Admit {
    Queued,
    /// Refused outright; the reason goes on the `rejected` terminal line.
    Rejected(&'static str),
    /// The *incoming* request was shed (bulk under overload).
    ShedIncoming(&'static str),
}

impl Inner {
    /// Admit a job, possibly evicting an older bulk job to make room.
    fn submit(&self, job: Job) -> Admit {
        let victim = {
            let mut sched = self.sched.lock().unwrap_or_else(|e| e.into_inner());
            if !sched.open {
                return Admit::Rejected("server shutting down");
            }
            let client_depth = sched.queues.get(&job.client).map_or(0, VecDeque::len);
            if client_depth >= self.per_client_cap {
                return Admit::Rejected("per-client queue full");
            }
            let mut victim = None;
            if sched.total >= self.queue_cap {
                match sched.evict_oldest_bulk() {
                    Some(old) => victim = Some(old),
                    None if job.class == Class::Bulk => {
                        return Admit::ShedIncoming("overloaded: bulk work shed first");
                    }
                    None => return Admit::Rejected("queue full"),
                }
            }
            sched.push_back(job);
            self.work_ready.notify_all();
            victim
        };
        if let Some(old) = victim {
            ServeMetrics::bump(&self.metrics.shed);
            old.conn.send_line(
                &self.metrics,
                &terminal_line(
                    &old.id,
                    "shed",
                    0,
                    Some("evicted by newer work under overload"),
                ),
            );
        }
        Admit::Queued
    }

    /// Worker loop: drain the scheduler until shutdown. An injected
    /// [`FaultSite::WorkerKill`] makes the worker requeue its job (front of
    /// the owning client's queue — nothing is lost) and exit; the last
    /// worker hands off to a rescue drainer so queued work still completes.
    fn worker_loop(self: &Arc<Inner>, worker: usize) {
        loop {
            let job = {
                let mut sched = self.sched.lock().unwrap_or_else(|e| e.into_inner());
                loop {
                    if let Some(job) = sched.pop() {
                        break job;
                    }
                    if !sched.open {
                        return;
                    }
                    let (guard, _) = self
                        .work_ready
                        .wait_timeout(sched, Duration::from_millis(100))
                        .unwrap_or_else(|e| e.into_inner());
                    sched = guard;
                }
            };
            let killed = self
                .engine
                .fault_plan()
                .is_some_and(|f| f.fire(FaultSite::WorkerKill, &format!("serve-worker-{worker}")));
            if killed {
                ServeMetrics::bump(&self.metrics.workers_lost);
                let alive = {
                    let mut sched = self.sched.lock().unwrap_or_else(|e| e.into_inner());
                    sched.push_front(job);
                    sched.alive_workers -= 1;
                    self.work_ready.notify_all();
                    sched.alive_workers
                };
                if alive == 0 {
                    // Last worker down: hand the queue to a rescue drainer
                    // so already-admitted work still completes.
                    let inner = Arc::clone(self);
                    std::thread::spawn(move || inner.drain_degraded());
                }
                return;
            }
            self.process_job(&job);
        }
    }

    /// Serial in-process execution used once every worker has died.
    fn drain_degraded(&self) {
        loop {
            let job = {
                let mut sched = self.sched.lock().unwrap_or_else(|e| e.into_inner());
                if sched.alive_workers > 0 {
                    return;
                }
                match sched.pop() {
                    Some(job) => job,
                    None => return,
                }
            };
            ServeMetrics::bump(&self.metrics.degraded);
            self.process_job(&job);
        }
    }

    /// Compute a job's cells in order, streaming results, and finish with
    /// exactly one terminal line.
    fn process_job(&self, job: &Job) {
        let of = job.specs.len();
        for (seq, spec) in job.specs.iter().enumerate() {
            if Instant::now() >= job.deadline {
                ServeMetrics::bump(&self.metrics.deadlines);
                job.conn.send_line(
                    &self.metrics,
                    &terminal_line(&job.id, "deadline", seq, Some("deadline exceeded")),
                );
                return;
            }
            match self
                .supervisor
                .run_cell(&self.engine, spec, Some(job.deadline), &self.metrics)
            {
                Ok(out) => {
                    ServeMetrics::bump(&self.metrics.cells_served);
                    job.conn
                        .send_line(&self.metrics, &ok_line(&job.id, seq, of, spec, &out));
                }
                Err(CellError::Deadline) => {
                    ServeMetrics::bump(&self.metrics.deadlines);
                    job.conn.send_line(
                        &self.metrics,
                        &terminal_line(&job.id, "deadline", seq, Some("deadline exceeded")),
                    );
                    return;
                }
                Err(CellError::Panicked { attempts, message }) => {
                    ServeMetrics::bump(&self.metrics.failed);
                    let detail = format!("cell failed after {attempts} attempts: {message}");
                    job.conn.send_line(
                        &self.metrics,
                        &terminal_line(&job.id, "error", seq, Some(&detail)),
                    );
                    return;
                }
            }
        }
        ServeMetrics::bump(&self.metrics.done);
        job.conn
            .send_line(&self.metrics, &terminal_line(&job.id, "done", of, None));
    }

    /// Handle one parsed request from a reader thread.
    fn handle_request(self: &Arc<Inner>, req: Request, client: u64, conn: &Arc<ConnWriter>) {
        match req {
            Request::Status { id } => {
                let line = JsonValue::obj([
                    ("id", JsonValue::Str(id)),
                    ("status", "status".into()),
                    ("serve", self.metrics.to_json()),
                    ("engine", self.engine.run_metrics("ci-serve").to_json()),
                ])
                .render();
                conn.send_line(&self.metrics, &line);
            }
            Request::Shutdown { id } => {
                conn.send_line(&self.metrics, &terminal_line(&id, "bye", 0, None));
                self.begin_shutdown();
            }
            Request::Cell {
                id,
                spec,
                class,
                deadline_ms,
            } => {
                self.admit(client, conn, id, vec![spec], class, deadline_ms);
            }
            Request::Table {
                id,
                name,
                instructions,
                seed,
                class,
                deadline_ms,
            } => {
                let scale = Scale { instructions, seed };
                match request_cells(&name, &scale) {
                    Some(specs) => self.admit(client, conn, id, specs, class, deadline_ms),
                    None => {
                        ServeMetrics::bump(&self.metrics.rejected);
                        let detail = format!("unknown experiment `{name}`");
                        conn.send_line(
                            &self.metrics,
                            &terminal_line(&id, "error", 0, Some(&detail)),
                        );
                    }
                }
            }
        }
    }

    fn admit(
        self: &Arc<Inner>,
        client: u64,
        conn: &Arc<ConnWriter>,
        id: String,
        specs: Vec<CellSpec>,
        class: Class,
        deadline_ms: Option<u64>,
    ) {
        let deadline =
            Instant::now() + deadline_ms.map_or(self.default_deadline, Duration::from_millis);
        let job = Job {
            client,
            id: id.clone(),
            specs,
            class,
            deadline,
            seq: self.next_seq.fetch_add(1, Ordering::Relaxed),
            conn: Arc::clone(conn),
        };
        match self.submit(job) {
            Admit::Queued => {
                ServeMetrics::bump(&self.metrics.accepted);
                let degraded = {
                    let sched = self.sched.lock().unwrap_or_else(|e| e.into_inner());
                    sched.alive_workers == 0
                };
                if degraded {
                    self.drain_degraded();
                }
            }
            Admit::Rejected(reason) => {
                ServeMetrics::bump(&self.metrics.rejected);
                conn.send_line(
                    &self.metrics,
                    &terminal_line(&id, "rejected", 0, Some(reason)),
                );
            }
            Admit::ShedIncoming(reason) => {
                ServeMetrics::bump(&self.metrics.accepted);
                ServeMetrics::bump(&self.metrics.shed);
                conn.send_line(&self.metrics, &terminal_line(&id, "shed", 0, Some(reason)));
            }
        }
    }

    fn begin_shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
        let mut sched = self.sched.lock().unwrap_or_else(|e| e.into_inner());
        sched.open = false;
        self.work_ready.notify_all();
    }

    /// Reader loop for one connection: parse request lines until EOF,
    /// error, or daemon shutdown.
    fn handle_conn(self: &Arc<Inner>, stream: TcpStream) {
        ServeMetrics::bump(&self.metrics.connections);
        let client = self.next_client.fetch_add(1, Ordering::Relaxed);
        let writer = match stream.try_clone() {
            Ok(w) => Arc::new(ConnWriter::new(w)),
            Err(_) => {
                ServeMetrics::bump(&self.metrics.disconnects);
                return;
            }
        };
        // A read timeout keeps the loop responsive to shutdown; partial
        // lines accumulate in `buf` across timeouts.
        let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
        let mut reader = BufReader::new(stream);
        let mut buf = String::new();
        'conn: loop {
            buf.clear();
            loop {
                match reader.read_line(&mut buf) {
                    Ok(0) => break 'conn,
                    Ok(_) => break,
                    Err(e)
                        if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut =>
                    {
                        if self.stop.load(Ordering::SeqCst) {
                            break 'conn;
                        }
                    }
                    Err(_) => break 'conn,
                }
            }
            let line = buf.trim();
            if line.is_empty() {
                continue;
            }
            match Request::parse_line(line) {
                Ok(req) => self.handle_request(req, client, &writer),
                Err(err) => {
                    ServeMetrics::bump(&self.metrics.rejected);
                    // Salvage the id if the line was at least valid JSON.
                    let id = json::parse(line)
                        .ok()
                        .and_then(|v| v.get("id").and_then(JsonValue::as_str).map(str::to_owned))
                        .unwrap_or_default();
                    writer.send_line(
                        &self.metrics,
                        &terminal_line(&id, "rejected", 0, Some(&err)),
                    );
                }
            }
        }
        ServeMetrics::bump(&self.metrics.disconnects);
    }
}

/// A running daemon. Dropping the handle does **not** stop it; send a
/// `shutdown` request (or call [`Server::shutdown`]) and then
/// [`Server::wait`].
pub struct Server {
    inner: Arc<Inner>,
    addr: SocketAddr,
    handles: Mutex<Vec<JoinHandle<()>>>,
}

impl Server {
    /// Bind, spawn the acceptor and serve workers, and return immediately.
    pub fn start(opts: ServerOptions) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&opts.addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let serve_workers = opts.serve_workers.max(1);
        let inner = Arc::new(Inner {
            engine: Engine::new(opts.engine),
            metrics: ServeMetrics::default(),
            supervisor: opts.supervisor,
            default_deadline: opts.default_deadline,
            queue_cap: opts.queue_cap.max(1),
            per_client_cap: opts.per_client_cap.max(1),
            sched: Mutex::new(Sched {
                open: true,
                queues: HashMap::new(),
                order: VecDeque::new(),
                total: 0,
                alive_workers: serve_workers,
            }),
            work_ready: Condvar::new(),
            stop: AtomicBool::new(false),
            next_seq: AtomicU64::new(0),
            next_client: AtomicU64::new(0),
        });
        let mut handles: Vec<JoinHandle<()>> = (0..serve_workers)
            .map(|w| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("serve-worker-{w}"))
                    .spawn(move || inner.worker_loop(w))
                    .expect("spawn serve worker")
            })
            .collect();
        let acceptor = {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("serve-accept".to_owned())
                .spawn(move || loop {
                    if inner.stop.load(Ordering::SeqCst) {
                        return;
                    }
                    match listener.accept() {
                        Ok((stream, _)) => {
                            let inner = Arc::clone(&inner);
                            std::thread::Builder::new()
                                .name("serve-conn".to_owned())
                                .spawn(move || inner.handle_conn(stream))
                                .expect("spawn connection reader");
                        }
                        Err(e) if e.kind() == ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(5));
                        }
                        Err(_) => std::thread::sleep(Duration::from_millis(5)),
                    }
                })
                .expect("spawn acceptor")
        };
        handles.push(acceptor);
        Ok(Server {
            inner,
            addr,
            handles: Mutex::new(handles),
        })
    }

    /// The bound address (useful with port 0).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The daemon's serve-side counters.
    #[must_use]
    pub fn metrics(&self) -> &ServeMetrics {
        &self.inner.metrics
    }

    /// The underlying engine (cache counters, fault plan, run metrics).
    #[must_use]
    pub fn engine(&self) -> &Engine {
        &self.inner.engine
    }

    /// Trigger shutdown programmatically (equivalent to a `shutdown`
    /// request): stop accepting, drain queued work, stop workers.
    pub fn shutdown(&self) {
        self.inner.begin_shutdown();
    }

    /// Block until the daemon has shut down and every queued request has
    /// drained, then persist the engine's disk cache (if configured).
    /// Idempotent: later calls return immediately.
    pub fn wait(&self) {
        let handles: Vec<JoinHandle<()>> = {
            let mut guard = self.handles.lock().unwrap_or_else(|e| e.into_inner());
            guard.drain(..).collect()
        };
        if handles.is_empty() {
            return;
        }
        for h in handles {
            let _ = h.join();
        }
        // Workers are gone; anything still queued (e.g. admitted during
        // the final instants of shutdown) drains here.
        {
            let mut sched = self.inner.sched.lock().unwrap_or_else(|e| e.into_inner());
            sched.alive_workers = 0;
        }
        self.inner.drain_degraded();
        let _ = self.inner.engine.save_cache();
    }
}

/// `true` when a response line (parsed) is the last line of its request.
#[must_use]
pub fn line_is_terminal(v: &JsonValue) -> bool {
    v.get("status")
        .and_then(JsonValue::as_str)
        .is_some_and(is_terminal)
}
