//! Fault-tolerant simulation service for the control-independence
//! reproduction.
//!
//! `ci-serve` puts a long-running daemon in front of the experiment
//! [`Engine`](ci_runner::Engine): clients connect over TCP, submit cell
//! specs or whole table requests as JSONL, and receive streamed JSONL
//! results backed by the shared memo and disk cache. The interesting part
//! is the **supervision layer** wrapped around the engine:
//!
//! - panic isolation ([`std::panic::catch_unwind`]) poisons only the
//!   failing cell, never the daemon;
//! - bounded retry with exponential backoff and deterministic jitter
//!   ([`supervise`]);
//! - per-request deadlines enforced cooperatively between cells;
//! - admission control with a bounded queue and per-client round-robin
//!   fairness; under overload, bulk work is shed before interactive work
//!   ([`server`]);
//! - graceful degradation: if every serve worker dies, requests fall back
//!   to serial in-process execution; corrupt cache files are quarantined
//!   by the engine and service continues from memo.
//!
//! All of it is provable because faults are *injected deterministically*:
//! `ci-runner`'s [`FaultPlan`](ci_runner::FaultPlan) seeds panics,
//! latency, cache corruption, worker kills and misbehaving clients as a
//! pure function of (seed, site, key), and the soak suite replays a
//! many-client trace under an active plan asserting zero lost responses
//! and byte-identical payloads against a direct engine run.
//!
//! Everything is std-only: TCP from [`std::net`], JSON from `ci-obs`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod loadgen;
pub mod metrics;
pub mod proto;
pub mod server;
pub mod supervise;

pub use client::Client;
pub use loadgen::{LoadConfig, LoadReport};
pub use metrics::ServeMetrics;
pub use proto::{Class, Request};
pub use server::{Server, ServerOptions};
pub use supervise::{CellError, Supervisor};
