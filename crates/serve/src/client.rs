//! A minimal blocking JSONL client for `ci-serve`.

use crate::proto::Request;
use crate::server::line_is_terminal;
use ci_obs::{json, JsonValue};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

/// One connection to a daemon. Requests are written as JSONL lines;
/// responses are read line by line.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connect to a daemon.
    pub fn connect(addr: &str) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Send one request line.
    pub fn send(&mut self, req: &Request) -> std::io::Result<()> {
        self.writer.write_all(req.to_line().as_bytes())?;
        self.writer.write_all(b"\n")
    }

    /// Read one raw response line (`None` at EOF).
    pub fn recv_line(&mut self) -> std::io::Result<Option<String>> {
        let mut buf = String::new();
        let n = self.reader.read_line(&mut buf)?;
        if n == 0 {
            Ok(None)
        } else {
            Ok(Some(buf.trim_end().to_owned()))
        }
    }

    /// Read one parsed response line (`None` at EOF).
    pub fn recv(&mut self) -> std::io::Result<Option<JsonValue>> {
        match self.recv_line()? {
            None => Ok(None),
            Some(line) => json::parse(&line)
                .map(Some)
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e)),
        }
    }

    /// Send a request and collect every response line for its id, up to
    /// and including the terminal line.
    pub fn request(&mut self, req: &Request) -> std::io::Result<Vec<JsonValue>> {
        self.send(req)?;
        let want = req.id().to_owned();
        let mut lines = Vec::new();
        loop {
            let Some(v) = self.recv()? else {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    format!("connection closed before terminal line for `{want}`"),
                ));
            };
            let mine = v.get("id").and_then(JsonValue::as_str) == Some(want.as_str());
            let terminal = line_is_terminal(&v);
            if mine {
                lines.push(v);
                if terminal {
                    return Ok(lines);
                }
            }
        }
    }
}
