//! End-to-end soak of the daemon under an active fault plan.
//!
//! The contract being pinned (see `DESIGN.md`): with deterministic faults
//! injected at every layer — compute panics, artificial latency, cache
//! write failures, worker kills, stalling and disconnecting clients — the
//! service loses **zero** tracked responses, keeps response streams
//! well-formed, and serves payloads **byte-identical** to a direct
//! in-process engine run and to every other request for the same cell.

use ci_obs::json;
use ci_runner::engine::render_cache_line;
use ci_runner::{Engine, EngineOptions, FaultPlan};
use ci_serve::loadgen::{self, expected_cells, LoadConfig};
use ci_serve::metrics::ServeMetrics;
use ci_serve::proto::{Class, Request};
use ci_serve::{Client, Server, ServerOptions};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

struct TempDir(PathBuf);

impl TempDir {
    fn new(test: &str) -> TempDir {
        let dir = std::env::temp_dir().join(format!("ci-soak-{test}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create temp dir");
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn server_opts() -> ServerOptions {
    ServerOptions {
        serve_workers: 2,
        ..ServerOptions::default()
    }
}

/// What a direct, unsupervised engine run renders for every cell the load
/// mix can request: key → payload (parse→render normalized, exactly like
/// the load generator records payloads).
fn direct_payloads(cfg: &LoadConfig) -> HashMap<String, String> {
    let eng = Engine::serial();
    let mut map = HashMap::new();
    for spec in expected_cells(cfg) {
        let line = render_cache_line(&spec.canonical(), &eng.cell(&spec));
        let v = json::parse(&line).expect("cache line is valid JSON");
        let key = v.get("key").unwrap().as_str().unwrap().to_owned();
        map.insert(key, v.render());
    }
    map
}

#[test]
fn soak_replay_under_faults_loses_nothing_and_stays_deterministic() {
    let tmp = TempDir::new("replay");
    let server_faults = Arc::new(
        FaultPlan::new(0xC1)
            .with_panics(3, 2)
            .with_latency(5, 2, Duration::from_millis(1))
            .with_cache_write_faults(2, 1),
    );
    let server = Server::start(ServerOptions {
        engine: EngineOptions {
            workers: 1,
            cache_dir: Some(tmp.0.clone()),
            faults: Some(Arc::clone(&server_faults)),
        },
        ..server_opts()
    })
    .expect("bind");
    let client_faults = Arc::new(
        FaultPlan::new(0xD2)
            .with_client_stalls(4, 3, Duration::from_millis(2))
            .with_client_disconnects(5, 2),
    );
    let cfg = LoadConfig {
        addr: server.local_addr().to_string(),
        clients: 6,
        requests_per_client: 12,
        seed: 0x10AD,
        instructions: 400,
        faults: Some(client_faults),
        send_shutdown: false,
    };
    let report = loadgen::run(&cfg);

    assert_eq!(report.lost, 0, "no tracked response may be lost");
    assert_eq!(report.malformed, 0, "response streams must be well-formed");
    assert_eq!(report.nondeterministic, 0, "payloads must never differ");
    assert!(report.healthy());
    assert_eq!(
        report.sent,
        report.done + report.shed + report.deadline + report.rejected + report.errors,
        "every tracked request ends in exactly one terminal outcome"
    );
    assert!(report.done > 0, "most requests should succeed");
    assert!(report.abandoned > 0, "disconnect faults must have fired");
    assert!(report.stalls > 0, "stall faults must have fired");
    assert!(
        server_faults.injected_total() > 0,
        "server-side faults must have fired"
    );

    // Byte-identical against a direct engine run, for every observed cell.
    let expected = direct_payloads(&cfg);
    assert!(!report.payloads.is_empty());
    for (key, payload) in &report.payloads {
        let want = expected
            .get(key)
            .unwrap_or_else(|| panic!("unexpected cell key {key}"));
        assert_eq!(payload, want, "payload for {key} diverged from direct run");
    }

    // The daemon recovered from every injected panic: supervision caught
    // them, retried, and the books balance.
    let m = server.metrics();
    assert!(ServeMetrics::read(&m.panics_caught) > 0);
    server.shutdown();
    server.wait();
    assert_eq!(m.in_flight(), 0, "daemon drained every admitted request");
}

#[test]
fn worker_kills_degrade_to_serial_without_losing_requests() {
    // Rate 1 selects every worker: both serve workers die on their first
    // job, the queue is rescued, and reader threads execute serially.
    let faults = Arc::new(FaultPlan::new(7).with_worker_kills(1, 8));
    let server = Server::start(ServerOptions {
        engine: EngineOptions {
            workers: 1,
            cache_dir: None,
            faults: Some(Arc::clone(&faults)),
        },
        ..server_opts()
    })
    .expect("bind");
    let cfg = LoadConfig {
        addr: server.local_addr().to_string(),
        clients: 3,
        requests_per_client: 5,
        seed: 0xFEED,
        instructions: 300,
        faults: None,
        send_shutdown: false,
    };
    let report = loadgen::run(&cfg);
    assert!(report.healthy(), "degraded mode must not lose work");
    assert_eq!(report.done, report.sent, "every request completes");
    let m = server.metrics();
    assert_eq!(ServeMetrics::read(&m.workers_lost), 2, "both workers die");
    assert!(
        ServeMetrics::read(&m.degraded) > 0,
        "serial fallback must have executed requests"
    );
    server.shutdown();
    server.wait();
    assert_eq!(m.in_flight(), 0);
}

#[test]
fn deadlines_produce_deadline_terminals_not_hangs() {
    let server = Server::start(server_opts()).expect("bind");
    let mut client = Client::connect(&server.local_addr().to_string()).expect("connect");
    let lines = client
        .request(&Request::Table {
            id: "dl".into(),
            name: "table1".into(),
            instructions: 400,
            seed: 9,
            class: Class::Bulk,
            deadline_ms: Some(0),
        })
        .expect("response");
    let last = lines.last().unwrap();
    assert_eq!(last.get("status").unwrap().as_str(), Some("deadline"));
    assert_eq!(ServeMetrics::read(&server.metrics().deadlines), 1);
    server.shutdown();
    server.wait();
}

#[test]
fn overload_sheds_bulk_but_never_loses_requests() {
    // A tiny queue and a worker slowed by injected latency force the
    // admission path to shed bulk work. Exact shed counts depend on worker
    // timing; the invariants do not: every request gets exactly one
    // terminal line and nothing is lost or malformed.
    let faults = Arc::new(FaultPlan::new(3).with_latency(1, 64, Duration::from_millis(20)));
    let server = Server::start(ServerOptions {
        engine: EngineOptions {
            workers: 1,
            cache_dir: None,
            faults: Some(faults),
        },
        serve_workers: 1,
        queue_cap: 2,
        per_client_cap: 16,
        ..ServerOptions::default()
    })
    .expect("bind");
    let cfg = LoadConfig {
        addr: server.local_addr().to_string(),
        clients: 4,
        requests_per_client: 6,
        seed: 0x0B5E,
        instructions: 300,
        faults: None,
        send_shutdown: false,
    };
    let report = loadgen::run(&cfg);
    assert!(report.healthy());
    assert_eq!(
        report.sent,
        report.done + report.shed + report.deadline + report.rejected + report.errors
    );
    server.shutdown();
    server.wait();
    assert_eq!(server.metrics().in_flight(), 0);
}

#[test]
fn status_unknown_names_and_bad_lines_are_answered() {
    let server = Server::start(server_opts()).expect("bind");
    let addr = server.local_addr().to_string();
    let mut client = Client::connect(&addr).expect("connect");

    let lines = client
        .request(&Request::Status { id: "s1".into() })
        .expect("status");
    assert_eq!(lines.len(), 1);
    assert!(lines[0].get("serve").is_some());
    assert_eq!(
        lines[0]
            .get("engine")
            .and_then(|e| e.get("schema"))
            .and_then(ci_obs::JsonValue::as_str),
        Some("run_metrics/v1")
    );

    let lines = client
        .request(&Request::Table {
            id: "t9".into(),
            name: "table9".into(),
            instructions: 100,
            seed: 1,
            class: Class::Bulk,
            deadline_ms: None,
        })
        .expect("response");
    assert_eq!(lines.len(), 1);
    assert_eq!(lines[0].get("status").unwrap().as_str(), Some("error"));

    // Malformed line: rejected, connection stays usable.
    use std::io::Write;
    client_raw_send(&addr, "{\"kind\":\"mystery\",\"id\":\"m1\"}\n");
    let lines = client
        .request(&Request::Shutdown { id: "x".into() })
        .expect("shutdown ack");
    assert_eq!(lines[0].get("status").unwrap().as_str(), Some("bye"));
    server.wait();

    fn client_raw_send(addr: &str, line: &str) {
        let mut s = std::net::TcpStream::connect(addr).expect("connect");
        s.write_all(line.as_bytes()).expect("send");
        // Read the rejection so the write is known to have been processed.
        let mut buf = [0_u8; 1024];
        use std::io::Read;
        let n = s.read(&mut buf).expect("read rejection");
        let text = std::str::from_utf8(&buf[..n]).expect("utf8");
        assert!(text.contains("\"rejected\""), "got: {text}");
    }
}

#[test]
fn repeated_identical_soaks_are_byte_identical() {
    // Cross-run determinism: the same seeds (load mix and fault plan)
    // produce the same payload set, byte for byte — faults and all.
    let run_once = || {
        let server = Server::start(ServerOptions {
            engine: EngineOptions {
                workers: 1,
                cache_dir: None,
                faults: Some(Arc::new(FaultPlan::new(0xC1).with_panics(3, 2))),
            },
            ..server_opts()
        })
        .expect("bind");
        let cfg = LoadConfig {
            addr: server.local_addr().to_string(),
            clients: 3,
            requests_per_client: 6,
            seed: 0x5EED,
            instructions: 300,
            faults: None,
            send_shutdown: false,
        };
        let report = loadgen::run(&cfg);
        assert!(report.healthy());
        server.shutdown();
        server.wait();
        let mut payloads: Vec<(String, String)> = report.payloads.into_iter().collect();
        payloads.sort();
        payloads
    };
    assert_eq!(run_once(), run_once());
}
