//! Cache-correctness properties for the cell memo and its disk persistence.
//!
//! The memo key is the canonical spec text (content-hashed to [`CellKey`]
//! for compact ids), so these tests pin the three properties the experiment
//! suite depends on:
//!
//! 1. recomputing a cell from the same spec is **bit-identical** — the memo
//!    may substitute a cached output for a fresh computation anywhere;
//! 2. changing *any* spec field (workload, model, window, config knob,
//!    budget, seed) changes the key — distinct cells never alias;
//! 3. the disk cache round-trips losslessly, and corrupt lines are
//!    rejected, recomputed, and rewritten rather than trusted.

use ci_core::PipelineConfig;
use ci_ideal::ModelKind;
use ci_runner::engine::{parse_cache_line, render_cache_line};
use ci_runner::{CellSpec, Engine, EngineOptions, CACHE_FILE};
use ci_workloads::Workload;
use std::collections::HashSet;
use std::path::PathBuf;

const INSTRUCTIONS: u64 = 2_000;
const SEED: u64 = 0x5EED;

fn detailed(workload: Workload, config: PipelineConfig, instructions: u64, seed: u64) -> CellSpec {
    CellSpec::Detailed {
        workload,
        config,
        instructions,
        seed,
    }
}

/// A fresh per-test scratch directory under the target dir.
struct TempDir(PathBuf);

impl TempDir {
    fn new(test: &str) -> TempDir {
        let dir =
            std::env::temp_dir().join(format!("ci-runner-cache-{test}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create temp dir");
        TempDir(dir)
    }

    fn engine(&self) -> Engine {
        Engine::new(EngineOptions {
            workers: 1,
            cache_dir: Some(self.0.clone()),
            faults: None,
        })
    }

    fn cache_path(&self) -> PathBuf {
        self.0.join(CACHE_FILE)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

#[test]
fn recomputing_a_cell_is_bit_identical() {
    let specs = [
        detailed(
            Workload::GoLike,
            PipelineConfig::ci(256),
            INSTRUCTIONS,
            SEED,
        ),
        detailed(
            Workload::GoLike,
            PipelineConfig::base(128),
            INSTRUCTIONS,
            SEED,
        ),
        CellSpec::Ideal {
            workload: Workload::CompressLike,
            model: ModelKind::WrFd,
            window: 64,
            instructions: INSTRUCTIONS,
            seed: SEED,
        },
        CellSpec::Study {
            workload: Workload::JpegLike,
            instructions: INSTRUCTIONS,
            seed: SEED,
        },
    ];
    for spec in &specs {
        // Two independent engines cannot share a memo, so each computes the
        // cell from scratch; the outputs must still match bit for bit.
        let a = Engine::serial().cell(spec);
        let b = Engine::serial().cell(spec);
        assert_eq!(a, b, "recomputation of {} diverged", spec.canonical());
    }
}

#[test]
fn every_spec_field_perturbs_the_key() {
    let base = detailed(
        Workload::GoLike,
        PipelineConfig::ci(256),
        INSTRUCTIONS,
        SEED,
    );
    let mut variants = vec![
        detailed(
            Workload::GccLike,
            PipelineConfig::ci(256),
            INSTRUCTIONS,
            SEED,
        ),
        detailed(
            Workload::GoLike,
            PipelineConfig::ci(128),
            INSTRUCTIONS,
            SEED,
        ),
        detailed(
            Workload::GoLike,
            PipelineConfig::base(256),
            INSTRUCTIONS,
            SEED,
        ),
        detailed(
            Workload::GoLike,
            PipelineConfig::ci(256),
            INSTRUCTIONS + 1,
            SEED,
        ),
        detailed(
            Workload::GoLike,
            PipelineConfig::ci(256),
            INSTRUCTIONS,
            SEED + 1,
        ),
    ];
    // A config-knob change alone (same window) must also re-key the cell.
    let mut hfm = PipelineConfig::ci(256);
    hfm.hide_false_mispredictions = !hfm.hide_false_mispredictions;
    variants.push(detailed(Workload::GoLike, hfm, INSTRUCTIONS, SEED));
    // Same story for the ideal models: every field is significant.
    let ideal = CellSpec::Ideal {
        workload: Workload::GoLike,
        model: ModelKind::WrFd,
        window: 256,
        instructions: INSTRUCTIONS,
        seed: SEED,
    };
    for model in [ModelKind::Oracle, ModelKind::Base, ModelKind::NwrFd] {
        variants.push(CellSpec::Ideal {
            workload: Workload::GoLike,
            model,
            window: 256,
            instructions: INSTRUCTIONS,
            seed: SEED,
        });
    }
    variants.push(ideal);

    let mut keys = HashSet::new();
    keys.insert(base.key());
    for v in &variants {
        assert_ne!(
            v.canonical(),
            base.canonical(),
            "variant collapsed into the base spec"
        );
        assert!(
            keys.insert(v.key()),
            "key collision for {} — a spec change failed to re-key the cell",
            v.canonical()
        );
    }
}

#[test]
fn disk_cache_round_trips_losslessly() {
    let tmp = TempDir::new("roundtrip");
    let specs = [
        detailed(
            Workload::GoLike,
            PipelineConfig::ci(256),
            INSTRUCTIONS,
            SEED,
        ),
        CellSpec::Ideal {
            workload: Workload::GoLike,
            model: ModelKind::WrFd,
            window: 256,
            instructions: INSTRUCTIONS,
            seed: SEED,
        },
        CellSpec::Study {
            workload: Workload::GoLike,
            instructions: INSTRUCTIONS,
            seed: SEED,
        },
    ];

    let first = tmp.engine();
    let originals: Vec<_> = specs.iter().map(|s| first.cell(s)).collect();
    assert_eq!(first.cells_computed(), specs.len() as u64);
    first.save_cache().expect("save cache");

    let second = tmp.engine();
    assert_eq!(second.cells_loaded(), specs.len() as u64, "all lines load");
    assert_eq!(second.corrupt_lines(), 0);
    for (spec, original) in specs.iter().zip(&originals) {
        assert_eq!(
            &second.cell(spec),
            original,
            "{} changed across the disk round trip",
            spec.canonical()
        );
    }
    assert_eq!(
        second.cells_computed(),
        0,
        "a loaded cache must serve every request without simulating"
    );

    // Saving the loaded cache reproduces the identical file: persistence is
    // a fixed point, not a lossy re-encoding.
    let before = std::fs::read_to_string(tmp.cache_path()).expect("read cache");
    second.save_cache().expect("re-save cache");
    let after = std::fs::read_to_string(tmp.cache_path()).expect("re-read cache");
    assert_eq!(before, after, "save∘load must be the identity on the file");
}

#[test]
fn corrupt_lines_are_rejected_recomputed_and_rewritten() {
    let tmp = TempDir::new("corrupt");
    let good = detailed(
        Workload::GoLike,
        PipelineConfig::ci(256),
        INSTRUCTIONS,
        SEED,
    );
    let victim = detailed(
        Workload::GoLike,
        PipelineConfig::base(256),
        INSTRUCTIONS,
        SEED,
    );

    let first = tmp.engine();
    let good_out = first.cell(&good);
    let victim_out = first.cell(&victim);
    first.save_cache().expect("save cache");

    // Tamper with the victim's line: flip one digit inside the payload while
    // keeping the line well-formed JSON, so only the checksum can catch it.
    let text = std::fs::read_to_string(tmp.cache_path()).expect("read cache");
    let tampered: Vec<String> = text
        .lines()
        .map(|line| {
            if line.contains(&victim.canonical()) {
                let (i, c) = line
                    .char_indices()
                    .skip(line.find("\"output\"").expect("payload field"))
                    .find(|&(_, c)| c.is_ascii_digit())
                    .expect("payload contains a digit");
                let flipped = if c == '9' { '8' } else { '9' };
                let mut s = line.to_owned();
                s.replace_range(i..i + 1, &flipped.to_string());
                s
            } else {
                line.to_owned()
            }
        })
        .collect();
    assert_ne!(
        text,
        tampered.join("\n") + "\n",
        "tampering must change the file"
    );
    std::fs::write(tmp.cache_path(), tampered.join("\n") + "\n").expect("write tampered");

    let second = tmp.engine();
    assert_eq!(second.corrupt_lines(), 1, "the tampered line is rejected");
    assert_eq!(second.cells_loaded(), 1, "the intact line still loads");
    assert_eq!(second.cell(&good), good_out);
    assert_eq!(
        second.cell(&victim),
        victim_out,
        "the rejected cell must be recomputed, not trusted"
    );
    assert_eq!(second.cells_computed(), 1, "only the rejected cell re-runs");

    // Saving heals the file: a third engine loads both lines cleanly.
    second.save_cache().expect("re-save cache");
    let third = tmp.engine();
    assert_eq!(third.corrupt_lines(), 0, "the rewritten cache is clean");
    assert_eq!(third.cells_loaded(), 2);
}

#[test]
fn cache_line_checksum_detects_value_tampering() {
    let spec = CellSpec::Study {
        workload: Workload::GoLike,
        instructions: INSTRUCTIONS,
        seed: SEED,
    };
    let output = Engine::serial().cell(&spec);
    let line = render_cache_line(&spec.canonical(), &output);
    let parsed = parse_cache_line(&line).expect("untouched line parses");
    assert_eq!(parsed, (spec.canonical(), output));

    // Garbage, truncation, key/spec mismatch, and in-payload edits must all
    // be rejected.
    assert!(parse_cache_line("not json").is_none());
    assert!(parse_cache_line(&line[..line.len() / 2]).is_none());
    assert!(parse_cache_line(&line.replace(&spec.canonical(), "study w=fake")).is_none());
    let i = line.find("\"output\"").expect("payload field");
    let (j, c) = line
        .char_indices()
        .skip(i)
        .find(|&(_, c)| c.is_ascii_digit())
        .expect("payload digit");
    let mut tampered = line.clone();
    tampered.replace_range(j..j + 1, if c == '9' { "8" } else { "9" });
    assert!(
        parse_cache_line(&tampered).is_none(),
        "a well-formed but edited payload must fail the checksum"
    );
}
