//! Supervision-layer guarantees of the runner primitives: the memo's
//! panic-unpoisoning protocol under concurrent waiters, cache quarantine of
//! corrupt files, and deterministic fault injection through the engine.

use ci_runner::engine::parse_cache_line;
use ci_runner::fault::FaultSite;
use ci_runner::{CellSpec, Engine, EngineOptions, FaultPlan, Memo, CACHE_FILE, INJECTED_PANIC};
use ci_workloads::Workload;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicI64, AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Duration;

struct TempDir(PathBuf);

impl TempDir {
    fn new(test: &str) -> TempDir {
        let dir =
            std::env::temp_dir().join(format!("ci-supervision-{test}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create temp dir");
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn tiny_spec(seed: u64) -> CellSpec {
    CellSpec::Study {
        workload: Workload::CompressLike,
        instructions: 400,
        seed,
    }
}

/// Satellite: the memo panic-unpoisoning race under concurrent waiters.
/// N threads pile onto one cell whose computation panics transiently; every
/// waiter must observe either the failure (its own retry panics) or the
/// eventual value — never a deadlock — and a subsequent compute succeeds.
#[test]
fn concurrent_waiters_survive_transient_compute_panics() {
    const THREADS: usize = 8;
    for round in 0..20 {
        let memo: Memo<u32, u64> = Memo::new();
        // The first `fails` compute attempts panic, later ones succeed.
        let fails = AtomicI64::new(3);
        let panics_seen = AtomicUsize::new(0);
        let gate = Barrier::new(THREADS);
        std::thread::scope(|s| {
            for _ in 0..THREADS {
                s.spawn(|| {
                    gate.wait();
                    loop {
                        let r = catch_unwind(AssertUnwindSafe(|| {
                            memo.get_or_compute(7, || {
                                // Hold the in-flight slot long enough for the
                                // other threads to pile up on the condvar.
                                std::thread::sleep(Duration::from_millis(2));
                                if fails.fetch_sub(1, Ordering::SeqCst) > 0 {
                                    panic!("transient compute failure");
                                }
                                42
                            })
                        }));
                        match r {
                            Ok((v, _)) => {
                                assert_eq!(v, 42, "round {round}");
                                return;
                            }
                            Err(_) => {
                                panics_seen.fetch_add(1, Ordering::SeqCst);
                            }
                        }
                    }
                });
            }
        });
        assert_eq!(
            panics_seen.load(Ordering::SeqCst),
            3,
            "round {round}: exactly the budgeted failures must be observed"
        );
        assert_eq!(memo.len(), 1, "round {round}");
        // The slot is clean: a later lookup is a plain hit.
        let (v, computed) = memo.get_or_compute(7, || unreachable!());
        assert_eq!((v, computed), (42, false), "round {round}");
    }
}

/// With a persistently panicking computation, *every* concurrent waiter
/// observes the failure (no waiter sleeps forever on a poisoned slot), and
/// the key still accepts a successful compute afterwards.
#[test]
fn every_waiter_observes_a_persistent_failure() {
    const THREADS: usize = 8;
    let memo: Memo<u32, u64> = Memo::new();
    let observed = AtomicUsize::new(0);
    let gate = Barrier::new(THREADS);
    std::thread::scope(|s| {
        for _ in 0..THREADS {
            s.spawn(|| {
                gate.wait();
                let r = catch_unwind(AssertUnwindSafe(|| {
                    memo.get_or_compute(3, || -> u64 {
                        std::thread::sleep(Duration::from_millis(2));
                        panic!("persistent failure")
                    })
                }));
                assert!(r.is_err(), "a poisoned slot must fail, not hang");
                observed.fetch_add(1, Ordering::SeqCst);
            });
        }
    });
    assert_eq!(observed.load(Ordering::SeqCst), THREADS);
    assert!(memo.is_empty(), "no value may be published by a failure");
    let (v, computed) = memo.get_or_compute(3, || 11);
    assert_eq!((v, computed), (11, true), "the key must recover");
}

/// An injected compute panic escapes `Engine::cell` exactly as many times
/// as the plan's budget, then the same spec computes normally — and the
/// result is byte-identical to a fault-free engine's.
#[test]
fn engine_recovers_from_injected_compute_panics() {
    let plan = Arc::new(FaultPlan::new(5).with_panics(1, 2)); // every cell, twice
    let eng = Engine::new(EngineOptions {
        workers: 1,
        cache_dir: None,
        faults: Some(Arc::clone(&plan)),
    });
    let spec = tiny_spec(1);
    let mut panics = 0;
    let out = loop {
        match catch_unwind(AssertUnwindSafe(|| eng.cell(&spec))) {
            Ok(out) => break out,
            Err(p) => {
                let msg = p.downcast_ref::<String>().cloned().unwrap_or_default();
                assert!(msg.starts_with(INJECTED_PANIC), "unexpected panic: {msg}");
                panics += 1;
            }
        }
    };
    assert_eq!(panics, 2, "the plan budget is exact");
    assert_eq!(eng.faults_injected(), 2);
    assert_eq!(
        out,
        Engine::serial().cell(&spec),
        "recovery changes nothing"
    );
}

/// `prefetch_isolated` completes a batch in which some cells panic: the
/// panics are counted, every other cell lands in the memo, and the
/// panicked cells succeed on a supervised retry.
#[test]
fn prefetch_isolated_contains_injected_panics() {
    let plan = Arc::new(FaultPlan::new(9).with_panics(2, 1));
    let eng = Engine::new(EngineOptions {
        workers: 2,
        cache_dir: None,
        faults: Some(Arc::clone(&plan)),
    });
    let specs: Vec<CellSpec> = (0..12).map(tiny_spec).collect();
    let stats = eng.prefetch_isolated(&specs);
    assert_eq!(stats.jobs, 12);
    assert!(stats.panicked > 0, "rate 2 over 12 cells must hit some");
    assert_eq!(stats.panicked, eng.faults_injected());
    // Every cell — including the panicked ones, whose budget is now spent —
    // resolves identically to a clean serial engine.
    let reference = Engine::serial();
    for spec in &specs {
        assert_eq!(eng.cell(spec), reference.cell(spec));
    }
}

/// Satellite: a cache file with corrupt lines is quarantined with a reason
/// header instead of silently rewritten; valid lines still load, and the
/// corrupt-line counter is surfaced through `RunMetrics`.
#[test]
fn corrupt_cache_file_is_quarantined_with_reason() {
    let tmp = TempDir::new("quarantine");
    let spec = tiny_spec(3);
    // Warm the cache with one valid cell.
    {
        let eng = Engine::new(EngineOptions {
            workers: 1,
            cache_dir: Some(tmp.0.clone()),
            faults: None,
        });
        let _ = eng.cell(&spec);
        eng.save_cache().unwrap();
    }
    // Corrupt the file: keep the valid line, append garbage.
    let cache = tmp.0.join(CACHE_FILE);
    let mut text = std::fs::read_to_string(&cache).unwrap();
    let valid_line = text.lines().next().unwrap().to_owned();
    text.push_str("{\"key\":\"feedfacefeedface\",\"spec\":\"tampered\"}\n");
    text.push_str("not json at all\n");
    std::fs::write(&cache, &text).unwrap();

    let eng = Engine::new(EngineOptions {
        workers: 1,
        cache_dir: Some(tmp.0.clone()),
        faults: None,
    });
    // The valid cell loaded; the corrupt lines were counted.
    assert_eq!(eng.cells_loaded(), 1);
    assert_eq!(eng.corrupt_lines(), 2);
    let quarantined = eng.quarantined_files();
    assert_eq!(quarantined.len(), 1, "one file quarantined");
    let qpath = &quarantined[0];
    assert!(qpath.starts_with(tmp.0.join("quarantine")));
    let qbody = std::fs::read_to_string(qpath).unwrap();
    assert!(qbody.starts_with("# quarantined cache file"));
    assert!(qbody.contains("# reason: 2 corrupt line(s), first at line 2"));
    assert!(
        qbody.contains("not json at all"),
        "the evidence is preserved verbatim"
    );
    // The original was moved out of the way...
    assert!(!cache.exists(), "corrupt cache must not stay in place");
    // ...the loaded cell still round-trips from memory...
    let (loaded_spec, loaded_out) = parse_cache_line(&valid_line).unwrap();
    assert_eq!(loaded_spec, spec.canonical());
    assert_eq!(eng.cell(&spec), loaded_out);
    // ...RunMetrics surfaces the event...
    let m = eng.run_metrics("test");
    assert_eq!((m.corrupt_lines, m.quarantined_files), (2, 1));
    let json = m.to_json().render();
    assert!(json.contains("\"corrupt_lines\":2"));
    assert!(json.contains("\"quarantined_files\":1"));
    // ...and a save rebuilds a clean cache that loads without complaint.
    eng.save_cache().unwrap();
    let eng2 = Engine::new(EngineOptions {
        workers: 1,
        cache_dir: Some(tmp.0.clone()),
        faults: None,
    });
    assert_eq!(eng2.cells_loaded(), 1);
    assert_eq!(eng2.corrupt_lines(), 0);
    assert!(eng2.quarantined_files().is_empty());
}

/// Injected cache-read corruption exercises the same quarantine path, and
/// the engine recomputes the affected cells bit-identically.
#[test]
fn injected_cache_read_faults_trigger_quarantine_and_recompute() {
    let tmp = TempDir::new("readfault");
    let specs: Vec<CellSpec> = (0..6).map(tiny_spec).collect();
    {
        let eng = Engine::new(EngineOptions {
            workers: 1,
            cache_dir: Some(tmp.0.clone()),
            faults: None,
        });
        for s in &specs {
            let _ = eng.cell(s);
        }
        eng.save_cache().unwrap();
    }
    let plan = Arc::new(FaultPlan::new(11).with_cache_read_faults(2, 1));
    let eng = Engine::new(EngineOptions {
        workers: 1,
        cache_dir: Some(tmp.0.clone()),
        faults: Some(Arc::clone(&plan)),
    });
    let injected = eng.faults_injected();
    assert!(injected > 0, "rate 2 over 6 lines must hit some");
    assert_eq!(eng.corrupt_lines(), injected);
    assert_eq!(eng.cells_loaded(), 6 - injected);
    assert_eq!(eng.quarantined_files().len(), 1);
    let reference = Engine::serial();
    for s in &specs {
        assert_eq!(eng.cell(s), reference.cell(s), "recompute is identical");
    }
}

/// An injected cache-write error surfaces as a real `save_cache` error with
/// the fault marker, and the retry (budget spent) succeeds.
#[test]
fn injected_cache_write_faults_are_transient() {
    let tmp = TempDir::new("writefault");
    let plan = Arc::new(FaultPlan::new(13).with_cache_write_faults(1, 1));
    let eng = Engine::new(EngineOptions {
        workers: 1,
        cache_dir: Some(tmp.0.clone()),
        faults: Some(plan),
    });
    let _ = eng.cell(&tiny_spec(0));
    let err = eng.save_cache().expect_err("first save must fail");
    assert!(err.to_string().starts_with(INJECTED_PANIC));
    eng.save_cache().expect("retry succeeds");
    assert!(tmp.0.join(CACHE_FILE).exists());
}

/// The same plan seed injects the same faults at the same points across
/// runs — the property the soak test's reproducibility rests on.
#[test]
fn fault_injection_is_reproducible_across_runs() {
    let run = || {
        let plan = Arc::new(FaultPlan::new(0xDEAD).with_panics(3, 1).with_latency(
            4,
            1,
            Duration::from_micros(50),
        ));
        let eng = Engine::new(EngineOptions {
            workers: 1,
            cache_dir: None,
            faults: Some(Arc::clone(&plan)),
        });
        let mut trace = Vec::new();
        for i in 0..16 {
            let spec = tiny_spec(i);
            let panicked = catch_unwind(AssertUnwindSafe(|| eng.cell(&spec))).is_err();
            trace.push((i, panicked));
        }
        (trace, plan.injected_by_site())
    };
    let (trace_a, counts_a) = run();
    let (trace_b, counts_b) = run();
    assert_eq!(trace_a, trace_b, "same seed, same injection points");
    assert_eq!(counts_a, counts_b);
    assert!(trace_a.iter().any(|&(_, p)| p), "some cell must panic");
    assert!(
        counts_a
            .iter()
            .find(|(n, _)| *n == FaultSite::ComputeLatency.name())
            .unwrap()
            .1
            > 0,
        "latency site must fire too"
    );
}
