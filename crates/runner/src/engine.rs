//! The experiment engine: a memo cache of simulation cells fronted by the
//! work-stealing pool, with optional on-disk persistence and per-cell
//! timing exported through the `ci-obs` metrics layer.

use crate::cell::{fnv1a, CellOutput, CellSpec, SharedInputs};
use crate::fault::FaultPlan;
use crate::memo::Memo;
use crate::metrics::{CellReport, PoolReport, RunMetrics, SweepSummary};
use crate::persist::{output_from_json, output_to_json, quarantine_cache_file};
use crate::pool::{run_batch, run_batch_catching, PoolStats};
use ci_core::{PipelineConfig, Stats};
use ci_ideal::{IdealResult, ModelKind};
use ci_obs::json::{parse, JsonValue};
use ci_obs::{MetricsProbe, Registry};
use ci_workloads::Workload;
use std::collections::HashSet;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// File name of the persisted cell cache inside `--cache-dir`.
pub const CACHE_FILE: &str = "cells.jsonl";

/// How an [`Engine`] is configured.
#[derive(Clone, Debug)]
pub struct EngineOptions {
    /// Worker threads for [`Engine::prefetch`] batches. `1` is the serial
    /// reference mode; results are byte-identical for every value.
    pub workers: usize,
    /// Directory for the persistent cell cache (`cells.jsonl`), enabling
    /// resumable runs. `None` keeps the cache in memory only.
    pub cache_dir: Option<PathBuf>,
    /// Deterministic fault-injection plan. `None` — the production default —
    /// costs one pointer test per injection point (see the `fault_overhead`
    /// bench).
    pub faults: Option<Arc<FaultPlan>>,
}

impl EngineOptions {
    /// Default options: workers from the `CI_WORKERS` environment variable,
    /// falling back to the machine's available parallelism; no disk cache.
    ///
    /// # Panics
    /// Panics if `CI_WORKERS` is set but not a positive integer — a
    /// malformed request must not silently degrade to a default.
    #[must_use]
    pub fn from_env() -> EngineOptions {
        let workers = match std::env::var("CI_WORKERS") {
            Ok(v) => v
                .parse::<usize>()
                .ok()
                .filter(|&n| n > 0)
                .unwrap_or_else(|| panic!("CI_WORKERS must be a positive integer, got `{v}`")),
            Err(_) => std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
        };
        EngineOptions {
            workers,
            cache_dir: None,
            faults: None,
        }
    }
}

impl Default for EngineOptions {
    fn default() -> Self {
        EngineOptions::from_env()
    }
}

/// One recorded cell request (computed or cache hit), with the labels that
/// make timing data joinable with [`RunMetrics`].
struct CellTiming {
    spec: String,
    label: String,
    workload: &'static str,
    family: String,
    wall: Duration,
    disposition: &'static str,
}

struct Timing {
    /// Every cell request, in completion order.
    cells: Vec<CellTiming>,
    /// Pool scheduling totals across prefetch batches.
    pool: PoolReport,
}

/// Parallel, memoizing executor of simulation [cells](CellSpec).
///
/// Every distinct cell is computed exactly once per engine (and, with a
/// cache directory, once per *cache*, across process runs); all tables and
/// figures referencing the cell share the result. Cell outputs are pure
/// functions of their specs, so the rendered experiment output is
/// byte-identical for every worker count.
pub struct Engine {
    workers: usize,
    cache_dir: Option<PathBuf>,
    cells: Memo<String, CellOutput>,
    shared: SharedInputs,
    timing: Mutex<Timing>,
    /// Canonical specs that were seeded from the disk cache (to classify a
    /// later hit as `disk_hit` rather than `memo_hit`).
    disk: Mutex<HashSet<String>>,
    computed: AtomicU64,
    hits: AtomicU64,
    corrupt: AtomicU64,
    loaded: AtomicU64,
    faults: Option<Arc<FaultPlan>>,
    /// Cache files quarantined because they contained corrupt lines.
    quarantined: Mutex<Vec<PathBuf>>,
    /// The design-space sweep this run executed, if the caller noted one
    /// (surfaces in [`RunMetrics`]).
    sweep: Mutex<Option<SweepSummary>>,
}

impl Engine {
    /// An engine with explicit options. Loads the persisted cache (if any)
    /// tolerantly: unreadable files are treated as empty and corrupt lines
    /// are dropped and counted, never trusted.
    #[must_use]
    pub fn new(opts: EngineOptions) -> Engine {
        let e = Engine {
            workers: opts.workers.max(1),
            cache_dir: opts.cache_dir,
            cells: Memo::new(),
            shared: SharedInputs::new(),
            timing: Mutex::new(Timing {
                cells: Vec::new(),
                pool: PoolReport::default(),
            }),
            disk: Mutex::new(HashSet::new()),
            computed: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            corrupt: AtomicU64::new(0),
            loaded: AtomicU64::new(0),
            faults: opts.faults,
            quarantined: Mutex::new(Vec::new()),
            sweep: Mutex::new(None),
        };
        if let Some(dir) = e.cache_dir.clone() {
            e.load_cache(&dir.join(CACHE_FILE));
        }
        e
    }

    /// A single-threaded engine with no disk cache — the deterministic
    /// reference configuration used by tests.
    #[must_use]
    pub fn serial() -> Engine {
        Engine::new(EngineOptions {
            workers: 1,
            cache_dir: None,
            faults: None,
        })
    }

    /// An in-memory engine with `workers` threads.
    #[must_use]
    pub fn with_workers(workers: usize) -> Engine {
        Engine::new(EngineOptions {
            workers,
            cache_dir: None,
            faults: None,
        })
    }

    /// The configured worker count.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Cells computed by simulation in this process.
    #[must_use]
    pub fn cells_computed(&self) -> u64 {
        self.computed.load(Ordering::Relaxed)
    }

    /// Cell requests served from memory (or the loaded disk cache).
    #[must_use]
    pub fn cache_hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Corrupt lines rejected while loading the disk cache.
    #[must_use]
    pub fn corrupt_lines(&self) -> u64 {
        self.corrupt.load(Ordering::Relaxed)
    }

    /// Cells loaded from the disk cache.
    #[must_use]
    pub fn cells_loaded(&self) -> u64 {
        self.loaded.load(Ordering::Relaxed)
    }

    /// Cache files quarantined at load because they contained corrupt lines.
    #[must_use]
    pub fn quarantined_files(&self) -> Vec<PathBuf> {
        self.quarantined.lock().unwrap().clone()
    }

    /// Record the shape of the design-space sweep this run executes, so it
    /// surfaces in [`Engine::run_metrics`]. The last note wins.
    pub fn note_sweep(&self, summary: SweepSummary) {
        *self.sweep.lock().unwrap() = Some(summary);
    }

    /// The active fault-injection plan, if any.
    #[must_use]
    pub fn fault_plan(&self) -> Option<&Arc<FaultPlan>> {
        self.faults.as_ref()
    }

    /// Faults injected so far (0 without a plan).
    #[must_use]
    pub fn faults_injected(&self) -> u64 {
        self.faults.as_ref().map_or(0, |f| f.injected_total())
    }

    /// Compute (or fetch) every distinct cell in `specs`, using the
    /// work-stealing pool at the configured width. Later lookups of these
    /// cells are pure cache hits, so callers can assemble tables serially
    /// and deterministically afterwards.
    pub fn prefetch(&self, specs: &[CellSpec]) {
        let mut seen = HashSet::new();
        let todo: Vec<CellSpec> = specs
            .iter()
            .filter(|s| seen.insert(s.canonical()) && self.cells.peek(&s.canonical()).is_none())
            .cloned()
            .collect();
        let jobs: Vec<_> = todo
            .into_iter()
            .map(|spec| {
                move || {
                    let _ = self.cell(&spec);
                }
            })
            .collect();
        if jobs.is_empty() {
            return;
        }
        let stats = run_batch(self.workers, jobs);
        let mut timing = self.timing.lock().unwrap();
        timing.pool.batches += 1;
        timing.pool.stats.absorb(&stats);
    }

    /// [`Engine::prefetch`] with per-cell panic isolation: a cell whose
    /// computation panics (a real bug or an injected fault) is counted in
    /// [`PoolStats::panicked`] and skipped — the memo unpoisons the key, so
    /// a later [`Engine::cell`] retry recomputes it — while every other
    /// cell completes normally. Returns this batch's stats.
    pub fn prefetch_isolated(&self, specs: &[CellSpec]) -> PoolStats {
        let mut seen = HashSet::new();
        let todo: Vec<CellSpec> = specs
            .iter()
            .filter(|s| seen.insert(s.canonical()) && self.cells.peek(&s.canonical()).is_none())
            .cloned()
            .collect();
        let jobs: Vec<_> = todo
            .into_iter()
            .map(|spec| {
                move || {
                    let _ = self.cell(&spec);
                }
            })
            .collect();
        if jobs.is_empty() {
            return PoolStats::default();
        }
        let stats = run_batch_catching(self.workers, jobs);
        let mut timing = self.timing.lock().unwrap();
        timing.pool.batches += 1;
        timing.pool.stats.absorb(&stats);
        stats
    }

    /// The output of one cell, computed on the calling thread if missing.
    #[must_use]
    pub fn cell(&self, spec: &CellSpec) -> CellOutput {
        let canonical = spec.canonical();
        let started = Instant::now();
        let (out, computed) = self.cells.get_or_compute(canonical.clone(), || {
            if let Some(f) = &self.faults {
                f.before_compute(&canonical);
            }
            spec.compute(&self.shared)
        });
        let wall = started.elapsed();
        let disposition = if computed {
            self.computed.fetch_add(1, Ordering::Relaxed);
            "computed"
        } else {
            self.hits.fetch_add(1, Ordering::Relaxed);
            if self.disk.lock().unwrap().contains(&canonical) {
                "disk_hit"
            } else {
                "memo_hit"
            }
        };
        self.timing.lock().unwrap().cells.push(CellTiming {
            spec: canonical,
            label: spec.label(),
            workload: spec.workload_name(),
            family: spec.family(),
            wall,
            disposition,
        });
        out
    }

    /// Detailed-pipeline statistics for one configuration.
    #[must_use]
    pub fn stats(
        &self,
        workload: Workload,
        config: PipelineConfig,
        instructions: u64,
        seed: u64,
    ) -> Stats {
        self.cell(&CellSpec::Detailed {
            workload,
            config,
            instructions,
            seed,
        })
        .stats()
        .clone()
    }

    /// Detailed-pipeline statistics plus the metrics probe.
    #[must_use]
    pub fn probed(
        &self,
        workload: Workload,
        config: PipelineConfig,
        instructions: u64,
        seed: u64,
    ) -> (Stats, MetricsProbe) {
        let out = self.cell(&CellSpec::Detailed {
            workload,
            config,
            instructions,
            seed,
        });
        (out.stats().clone(), out.probe().clone())
    }

    /// Idealized-model result for one configuration.
    #[must_use]
    pub fn ideal(
        &self,
        workload: Workload,
        model: ModelKind,
        window: usize,
        instructions: u64,
        seed: u64,
    ) -> IdealResult {
        match self.cell(&CellSpec::Ideal {
            workload,
            model,
            window,
            instructions,
            seed,
        }) {
            CellOutput::Ideal(r) => r,
            other => panic!("ideal cell produced {other:?}"),
        }
    }

    /// Study-input summary `(trace length, predictions, mispredictions)`.
    #[must_use]
    pub fn study(&self, workload: Workload, instructions: u64, seed: u64) -> (u64, u64, u64) {
        match self.cell(&CellSpec::Study {
            workload,
            instructions,
            seed,
        }) {
            CellOutput::Study {
                len,
                predictions,
                mispredictions,
            } => (len, predictions, mispredictions),
            other => panic!("study cell produced {other:?}"),
        }
    }

    /// Per-cell timing and cache counters as a `ci-obs` [`Registry`]:
    /// an aggregate `cell_wall_us` histogram, one `cell_us.<key> = micros`
    /// counter per computed cell, and `cells_*` cache counters. Export with
    /// [`Registry::to_jsonl`].
    #[must_use]
    pub fn timing_registry(&self) -> Registry {
        let mut r = Registry::new();
        r.inc("cells_computed", self.cells_computed());
        r.inc("cells_cache_hits", self.cache_hits());
        r.inc("cells_loaded_from_disk", self.cells_loaded());
        r.inc("cache_corrupt_lines", self.corrupt_lines());
        r.inc(
            "cache_quarantined_files",
            self.quarantined.lock().unwrap().len() as u64,
        );
        r.inc("faults_injected", self.faults_injected());
        let bounds: Vec<u64> = (0..=24).map(|p| 1u64 << p).collect(); // 1us..16s
        let timing = self.timing.lock().unwrap();
        for t in timing.cells.iter().filter(|t| t.disposition == "computed") {
            let us = u64::try_from(t.wall.as_micros()).unwrap_or(u64::MAX);
            r.observe("cell_wall_us", &bounds, us);
            r.inc(
                &format!("cell_us.{:016x}", fnv1a(t.spec.as_bytes())),
                us.max(1),
            );
        }
        r
    }

    /// The full `--timing` export: the [`Engine::timing_registry`] lines
    /// plus one labelled line per cell request —
    /// `{"metric":"cell","key":..,"label":..,"workload":..,"family":..,
    /// "wall_us":..,"disposition":"computed|memo_hit|disk_hit",...}` — so
    /// timing data joins with [`RunMetrics`] without guesswork.
    #[must_use]
    pub fn timing_jsonl(&self, binary: &str) -> String {
        let mut out = self.timing_registry().to_jsonl(&[("binary", binary)]);
        let timing = self.timing.lock().unwrap();
        for t in &timing.cells {
            let line = JsonValue::obj([
                ("metric", JsonValue::from("cell")),
                (
                    "key",
                    JsonValue::Str(format!("{:016x}", fnv1a(t.spec.as_bytes()))),
                ),
                ("label", JsonValue::Str(t.label.clone())),
                ("workload", t.workload.into()),
                ("family", JsonValue::Str(t.family.clone())),
                (
                    "wall_us",
                    u64::try_from(t.wall.as_micros()).unwrap_or(u64::MAX).into(),
                ),
                ("disposition", t.disposition.into()),
                ("binary", binary.into()),
            ]);
            out.push_str(&line.render());
            out.push('\n');
        }
        out
    }

    /// The run-level [`RunMetrics`] report: labelled per-cell costs
    /// (slowest first), cache hit rates by disposition, and the pool's
    /// scheduling statistics.
    #[must_use]
    pub fn run_metrics(&self, binary: &str) -> RunMetrics {
        let timing = self.timing.lock().unwrap();
        let mut cells: Vec<CellReport> = timing
            .cells
            .iter()
            .map(|t| CellReport {
                key: format!("{:016x}", fnv1a(t.spec.as_bytes())),
                label: t.label.clone(),
                workload: t.workload,
                family: t.family.clone(),
                wall_us: u64::try_from(t.wall.as_micros()).unwrap_or(u64::MAX),
                disposition: t.disposition,
            })
            .collect();
        cells.sort_by(|a, b| b.wall_us.cmp(&a.wall_us).then_with(|| a.key.cmp(&b.key)));
        let disk_hits = timing
            .cells
            .iter()
            .filter(|t| t.disposition == "disk_hit")
            .count() as u64;
        let compute_wall_us: u64 = timing
            .cells
            .iter()
            .filter(|t| t.disposition == "computed")
            .map(|t| u64::try_from(t.wall.as_micros()).unwrap_or(u64::MAX))
            .sum();
        RunMetrics {
            binary: binary.to_owned(),
            workers: self.workers,
            cells_computed: self.cells_computed(),
            memo_hits: self.cache_hits().saturating_sub(disk_hits),
            disk_hits,
            cells_loaded: self.cells_loaded(),
            corrupt_lines: self.corrupt_lines(),
            quarantined_files: self.quarantined.lock().unwrap().len() as u64,
            faults_injected: self.faults_injected(),
            compute_wall_us,
            cells,
            pool: timing.pool.clone(),
            sweep: self.sweep.lock().unwrap().clone(),
        }
    }

    /// Human-readable timing summary: totals plus the `n` slowest cells.
    #[must_use]
    pub fn timing_summary(&self, n: usize) -> String {
        let timing = self.timing.lock().unwrap();
        let computed: Vec<&CellTiming> = timing
            .cells
            .iter()
            .filter(|t| t.disposition == "computed")
            .collect();
        let total: Duration = computed.iter().map(|t| t.wall).sum();
        let mut slowest = computed.clone();
        slowest.sort_by_key(|t| std::cmp::Reverse(t.wall));
        let mut out = format!(
            "cells: {} computed ({:.2}s simulated), {} cache hits, {} loaded from disk, {} corrupt lines, {} workers\n",
            computed.len(),
            total.as_secs_f64(),
            self.cache_hits(),
            self.cells_loaded(),
            self.corrupt_lines(),
            self.workers,
        );
        for t in slowest.into_iter().take(n) {
            out.push_str(&format!(
                "  {:>9.1}ms  {}\n",
                t.wall.as_secs_f64() * 1e3,
                t.spec
            ));
        }
        out
    }

    fn load_cache(&self, path: &Path) {
        let Ok(text) = std::fs::read_to_string(path) else {
            return; // first run: nothing persisted yet
        };
        let mut corrupt_here = 0u64;
        let mut first_bad: Option<usize> = None;
        for (index, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let injected = self
                .faults
                .as_ref()
                .is_some_and(|f| f.corrupt_cache_read(index));
            match (!injected).then(|| parse_cache_line(line)).flatten() {
                Some((spec, output)) => {
                    self.disk.lock().unwrap().insert(spec.clone());
                    self.cells.seed(spec, output);
                    self.loaded.fetch_add(1, Ordering::Relaxed);
                }
                None => {
                    self.corrupt.fetch_add(1, Ordering::Relaxed);
                    corrupt_here += 1;
                    first_bad.get_or_insert(index + 1);
                }
            }
        }
        // A corrupt cache file is evidence, not garbage: move it to
        // `<cache-dir>/quarantine/` with a reason header instead of
        // silently rewriting over it. The valid lines are already loaded,
        // and the next save rewrites a clean file.
        if corrupt_here > 0 {
            if let Some(dir) = &self.cache_dir {
                let reason = format!(
                    "{corrupt_here} corrupt line(s), first at line {}",
                    first_bad.unwrap_or(0)
                );
                if let Ok(qpath) = quarantine_cache_file(dir, path, &text, &reason) {
                    self.quarantined.lock().unwrap().push(qpath);
                }
            }
        }
    }

    /// Persist every computed cell to `<cache-dir>/cells.jsonl`, atomically
    /// (write-to-temp then rename) and sorted by spec so the file is
    /// deterministic. A no-op without a cache directory.
    ///
    /// # Errors
    /// Propagates filesystem errors (directory creation, write, rename).
    pub fn save_cache(&self) -> std::io::Result<()> {
        let Some(dir) = &self.cache_dir else {
            return Ok(());
        };
        if let Some(err) = self.faults.as_ref().and_then(|f| f.fail_cache_write()) {
            return Err(err);
        }
        std::fs::create_dir_all(dir)?;
        let mut entries = self.cells.snapshot();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        let mut buf = String::new();
        for (spec, output) in entries {
            buf.push_str(&render_cache_line(&spec, &output));
            buf.push('\n');
        }
        let path = dir.join(CACHE_FILE);
        let tmp = dir.join(format!("{CACHE_FILE}.tmp.{}", std::process::id()));
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(buf.as_bytes())?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, &path)
    }
}

/// Render one cache line: spec, content-hash key, output payload, and a
/// checksum over the rendered payload so tampered values are detected.
#[must_use]
pub fn render_cache_line(spec: &str, output: &CellOutput) -> String {
    let payload = output_to_json(output);
    let rendered = payload.render();
    let line = JsonValue::obj([
        (
            "key",
            JsonValue::Str(format!("{:016x}", fnv1a(spec.as_bytes()))),
        ),
        ("spec", JsonValue::Str(spec.to_owned())),
        (
            "check",
            JsonValue::Str(format!("{:016x}", fnv1a(rendered.as_bytes()))),
        ),
        ("output", payload),
    ]);
    line.render()
}

/// Parse and validate one cache line; `None` if the line is corrupt in any
/// way (unparsable JSON, key/spec mismatch, payload checksum mismatch, or a
/// malformed output object).
#[must_use]
pub fn parse_cache_line(line: &str) -> Option<(String, CellOutput)> {
    let v = parse(line).ok()?;
    let spec = v.get("spec")?.as_str()?.to_owned();
    let key = v.get("key")?.as_str()?;
    if format!("{:016x}", fnv1a(spec.as_bytes())) != key {
        return None;
    }
    let payload = v.get("output")?;
    let check = v.get("check")?.as_str()?;
    if format!("{:016x}", fnv1a(payload.render().as_bytes())) != check {
        return None;
    }
    let output = output_from_json(payload)?;
    Some((spec, output))
}
