//! Run-level performance metrics: everything the engine knows about where
//! a run's host time went, in one machine-readable report.
//!
//! [`RunMetrics`] aggregates per-cell wall times (labelled by workload and
//! configuration family, with their cache disposition), the memo/disk cache
//! counters, and the work-stealing pool's scheduling statistics. Exported by
//! every experiment binary via `--metrics <path>` as a single JSON object.
//!
//! These are *host-side* measurements: they vary run to run and are
//! deliberately excluded from the byte-compared `--json` artifacts.

use crate::pool::PoolStats;
use ci_obs::JsonValue;

/// One cell request: how it was satisfied and what it cost.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CellReport {
    /// Content-hash key of the spec (joins with `cells.jsonl` and timing
    /// counters).
    pub key: String,
    /// Short human label (`detailed/go/w256`, ...).
    pub label: String,
    /// Workload name.
    pub workload: &'static str,
    /// Configuration family (`ci_w256`, `oracle_w256`, `study`, ...).
    pub family: String,
    /// Wall time of the request, µs (≈0 for cache hits).
    pub wall_us: u64,
    /// `computed`, `memo_hit`, or `disk_hit`.
    pub disposition: &'static str,
}

/// Shape of the design-space sweep a run executed (attached by the
/// explorer via [`Engine::note_sweep`](crate::Engine::note_sweep), absent
/// for ordinary table/figure runs).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SweepSummary {
    /// Canonical sweep text.
    pub spec: String,
    /// Distinct grid configurations after normalization.
    pub configs: u64,
    /// Distinct simulation cells (configs × workloads).
    pub cells: u64,
    /// Workloads swept.
    pub workloads: u64,
}

impl SweepSummary {
    /// The summary as a JSON object (nested under `"sweep"` in
    /// `run_metrics/v1`).
    #[must_use]
    pub fn to_json(&self) -> JsonValue {
        JsonValue::obj([
            ("spec", JsonValue::Str(self.spec.clone())),
            ("configs", self.configs.into()),
            ("cells", self.cells.into()),
            ("workloads", self.workloads.into()),
        ])
    }
}

/// Scheduling statistics of the engine's work-stealing pool, summed over
/// every prefetch batch of the run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PoolReport {
    /// Prefetch batches executed.
    pub batches: u64,
    /// Accumulated batch statistics.
    pub stats: PoolStats,
}

/// The run-level metrics report (see the module docs).
#[derive(Clone, Debug, PartialEq)]
pub struct RunMetrics {
    /// The binary that produced the report.
    pub binary: String,
    /// Configured worker count.
    pub workers: usize,
    /// Cells computed by simulation in this process.
    pub cells_computed: u64,
    /// Requests served from the in-memory memo.
    pub memo_hits: u64,
    /// Requests served by cells loaded from the disk cache.
    pub disk_hits: u64,
    /// Cells loaded from the disk cache at startup.
    pub cells_loaded: u64,
    /// Corrupt lines rejected while loading the disk cache.
    pub corrupt_lines: u64,
    /// Cache files quarantined because they contained corrupt lines.
    pub quarantined_files: u64,
    /// Faults injected by the active [`FaultPlan`](crate::FaultPlan)
    /// (0 without a plan).
    pub faults_injected: u64,
    /// Summed wall time of computed cells, µs.
    pub compute_wall_us: u64,
    /// Per-request reports, slowest first.
    pub cells: Vec<CellReport>,
    /// Pool scheduling statistics.
    pub pool: PoolReport,
    /// The design-space sweep this run executed, if it was an explorer run.
    pub sweep: Option<SweepSummary>,
}

impl RunMetrics {
    /// Fraction of cell requests served from a cache (0.0 when there were
    /// no requests).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let hits = self.memo_hits + self.disk_hits;
        let total = hits + self.cells_computed;
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }

    /// The report as one JSON object (schema `run_metrics/v1`).
    #[must_use]
    pub fn to_json(&self) -> JsonValue {
        let cells: Vec<JsonValue> = self
            .cells
            .iter()
            .map(|c| {
                JsonValue::obj([
                    ("key", JsonValue::Str(c.key.clone())),
                    ("label", JsonValue::Str(c.label.clone())),
                    ("workload", c.workload.into()),
                    ("family", JsonValue::Str(c.family.clone())),
                    ("wall_us", c.wall_us.into()),
                    ("disposition", c.disposition.into()),
                ])
            })
            .collect();
        let p = &self.pool.stats;
        JsonValue::obj([
            ("schema", JsonValue::from("run_metrics/v1")),
            ("binary", JsonValue::Str(self.binary.clone())),
            (
                "sweep",
                self.sweep
                    .as_ref()
                    .map_or(JsonValue::Null, SweepSummary::to_json),
            ),
            ("workers", self.workers.into()),
            ("cells_computed", self.cells_computed.into()),
            ("memo_hits", self.memo_hits.into()),
            ("disk_hits", self.disk_hits.into()),
            ("cells_loaded", self.cells_loaded.into()),
            ("corrupt_lines", self.corrupt_lines.into()),
            ("quarantined_files", self.quarantined_files.into()),
            ("faults_injected", self.faults_injected.into()),
            ("hit_rate", self.hit_rate().into()),
            ("compute_wall_us", self.compute_wall_us.into()),
            (
                "pool",
                JsonValue::obj([
                    ("batches", JsonValue::from(self.pool.batches)),
                    ("jobs", self.pool.stats.jobs.into()),
                    ("threads", p.threads.into()),
                    ("steals", p.steals.into()),
                    (
                        "wall_us",
                        u64::try_from(p.wall.as_micros()).unwrap_or(u64::MAX).into(),
                    ),
                    (
                        "busy_us",
                        u64::try_from(p.busy.as_micros()).unwrap_or(u64::MAX).into(),
                    ),
                    ("max_queue_depth", p.max_queue_depth.into()),
                    ("panicked", p.panicked.into()),
                    ("utilization", p.utilization().into()),
                ]),
            ),
            ("cells", JsonValue::Arr(cells)),
        ])
    }

    /// Compact human summary for stderr.
    #[must_use]
    pub fn summary(&self) -> String {
        let p = &self.pool.stats;
        format!(
            "run metrics: {} computed ({:.2}s), {} memo hits, {} disk hits ({:.0}% cached); \
             pool: {} batches, {} jobs, {} steals, {:.0}% utilization over {} threads\n",
            self.cells_computed,
            self.compute_wall_us as f64 / 1e6,
            self.memo_hits,
            self.disk_hits,
            100.0 * self.hit_rate(),
            self.pool.batches,
            p.jobs,
            p.steals,
            100.0 * p.utilization(),
            p.threads.max(1),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn sample() -> RunMetrics {
        RunMetrics {
            binary: "test".into(),
            workers: 2,
            cells_computed: 2,
            memo_hits: 5,
            disk_hits: 1,
            cells_loaded: 1,
            corrupt_lines: 0,
            quarantined_files: 0,
            faults_injected: 0,
            compute_wall_us: 1500,
            cells: vec![CellReport {
                key: "00ff".into(),
                label: "detailed/go/w256".into(),
                workload: "go",
                family: "ci_w256".into(),
                wall_us: 1200,
                disposition: "computed",
            }],
            pool: PoolReport {
                batches: 1,
                stats: PoolStats {
                    threads: 2,
                    jobs: 2,
                    steals: 1,
                    wall: Duration::from_millis(1),
                    busy: Duration::from_millis(2),
                    max_queue_depth: 1,
                    panicked: 0,
                },
            },
            sweep: None,
        }
    }

    #[test]
    fn hit_rate_and_json_shape() {
        let m = sample();
        assert!((m.hit_rate() - 0.75).abs() < 1e-12);
        let v = m.to_json();
        let back = ci_obs::json::parse(&v.render()).unwrap();
        assert_eq!(back.get("schema").unwrap().as_str(), Some("run_metrics/v1"));
        assert_eq!(back.get("cells_computed").unwrap().as_i64(), Some(2));
        let pool = back.get("pool").unwrap();
        assert_eq!(pool.get("steals").unwrap().as_i64(), Some(1));
        let cells = back.get("cells").unwrap().as_array().unwrap();
        assert_eq!(cells[0].get("family").unwrap().as_str(), Some("ci_w256"));
        assert_eq!(
            cells[0].get("disposition").unwrap().as_str(),
            Some("computed")
        );
        assert!(m.summary().contains("memo hits"));
    }

    #[test]
    fn empty_run_is_safe() {
        let m = RunMetrics {
            binary: "x".into(),
            workers: 1,
            cells_computed: 0,
            memo_hits: 0,
            disk_hits: 0,
            cells_loaded: 0,
            corrupt_lines: 0,
            quarantined_files: 0,
            faults_injected: 0,
            compute_wall_us: 0,
            cells: Vec::new(),
            pool: PoolReport::default(),
            sweep: None,
        };
        assert_eq!(m.hit_rate(), 0.0);
        assert!(ci_obs::json::parse(&m.to_json().render()).is_ok());
    }

    #[test]
    fn sweep_summary_round_trips() {
        let mut m = sample();
        assert!(m.to_json().get("sweep").unwrap().as_str().is_none());
        m.sweep = Some(SweepSummary {
            spec: "machine=base,ci window=64".into(),
            configs: 12,
            cells: 60,
            workloads: 5,
        });
        let v = ci_obs::json::parse(&m.to_json().render()).unwrap();
        let s = v.get("sweep").unwrap();
        assert_eq!(s.get("configs").unwrap().as_i64(), Some(12));
        assert_eq!(s.get("cells").unwrap().as_i64(), Some(60));
    }
}
