//! A concurrent memo table with in-flight deduplication.
//!
//! [`Memo::get_or_compute`] guarantees each key's value is computed at most
//! once even when many worker threads request it simultaneously: the first
//! caller computes while later callers block on a condition variable until
//! the value is published. The compute closure runs *outside* the lock, so
//! long simulations never serialize unrelated lookups.

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::{Condvar, Mutex};

enum Slot<V> {
    /// A thread is computing this entry; waiters sleep on the condvar.
    InFlight,
    Ready(V),
}

/// Thread-safe map from `K` to lazily computed `V`.
pub struct Memo<K, V> {
    inner: Mutex<HashMap<K, Slot<V>>>,
    ready: Condvar,
}

impl<K: Eq + Hash + Clone, V: Clone> Memo<K, V> {
    /// An empty memo table.
    #[must_use]
    pub fn new() -> Memo<K, V> {
        Memo {
            inner: Mutex::new(HashMap::new()),
            ready: Condvar::new(),
        }
    }

    /// The value for `key`, computing it with `f` exactly once across all
    /// threads. Returns the value and whether *this call* computed it.
    ///
    /// # Panics
    /// Propagates a panic from `f`; the in-flight marker is removed first so
    /// other threads retry instead of deadlocking.
    pub fn get_or_compute(&self, key: K, f: impl FnOnce() -> V) -> (V, bool) {
        {
            let mut map = self.inner.lock().unwrap();
            loop {
                match map.get(&key) {
                    Some(Slot::Ready(v)) => return (v.clone(), false),
                    Some(Slot::InFlight) => map = self.ready.wait(map).unwrap(),
                    None => break,
                }
            }
            map.insert(key.clone(), Slot::InFlight);
        }
        // Clear the in-flight marker if `f` panics, so waiters recompute
        // rather than sleeping forever.
        struct Unpoison<'a, K: Eq + Hash, V> {
            memo: &'a Memo<K, V>,
            key: Option<K>,
        }
        impl<K: Eq + Hash, V> Drop for Unpoison<'_, K, V> {
            fn drop(&mut self) {
                if let Some(key) = self.key.take() {
                    if let Ok(mut map) = self.memo.inner.lock() {
                        map.remove(&key);
                    }
                    self.memo.ready.notify_all();
                }
            }
        }
        let mut guard = Unpoison {
            memo: self,
            key: Some(key.clone()),
        };
        let v = f();
        guard.key = None;
        let mut map = self.inner.lock().unwrap();
        map.insert(key, Slot::Ready(v.clone()));
        drop(map);
        self.ready.notify_all();
        (v, true)
    }

    /// The value for `key` if it is already computed.
    #[must_use]
    pub fn peek(&self, key: &K) -> Option<V> {
        match self.inner.lock().unwrap().get(key) {
            Some(Slot::Ready(v)) => Some(v.clone()),
            _ => None,
        }
    }

    /// Insert a precomputed value (used when loading a persisted cache).
    /// Existing entries are left untouched.
    pub fn seed(&self, key: K, value: V) {
        self.inner
            .lock()
            .unwrap()
            .entry(key)
            .or_insert(Slot::Ready(value));
    }

    /// Number of ready entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .unwrap()
            .values()
            .filter(|s| matches!(s, Slot::Ready(_)))
            .count()
    }

    /// Whether no entries are ready.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All ready `(key, value)` pairs, in unspecified order.
    #[must_use]
    pub fn snapshot(&self) -> Vec<(K, V)> {
        self.inner
            .lock()
            .unwrap()
            .iter()
            .filter_map(|(k, s)| match s {
                Slot::Ready(v) => Some((k.clone(), v.clone())),
                Slot::InFlight => None,
            })
            .collect()
    }
}

impl<K: Eq + Hash + Clone, V: Clone> Default for Memo<K, V> {
    fn default() -> Self {
        Memo::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn computes_once_and_shares() {
        let memo: Memo<u32, u32> = Memo::new();
        let calls = AtomicUsize::new(0);
        let (v, computed) = memo.get_or_compute(7, || {
            calls.fetch_add(1, Ordering::SeqCst);
            42
        });
        assert_eq!((v, computed), (42, true));
        let (v, computed) = memo.get_or_compute(7, || {
            calls.fetch_add(1, Ordering::SeqCst);
            99
        });
        assert_eq!((v, computed), (42, false));
        assert_eq!(calls.load(Ordering::SeqCst), 1);
        assert_eq!(memo.len(), 1);
    }

    #[test]
    fn concurrent_requests_dedup() {
        let memo: Memo<u32, u32> = Memo::new();
        let calls = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    memo.get_or_compute(1, || {
                        calls.fetch_add(1, Ordering::SeqCst);
                        std::thread::sleep(std::time::Duration::from_millis(10));
                        5
                    })
                });
            }
        });
        assert_eq!(calls.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn panic_unblocks_waiters() {
        let memo: Memo<u32, u32> = Memo::new();
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            memo.get_or_compute(3, || panic!("boom"));
        }));
        assert!(r.is_err());
        // The key is free again: a retry computes normally.
        let (v, computed) = memo.get_or_compute(3, || 11);
        assert_eq!((v, computed), (11, true));
    }

    #[test]
    fn seed_does_not_overwrite() {
        let memo: Memo<u32, u32> = Memo::new();
        memo.seed(1, 10);
        memo.seed(1, 20);
        assert_eq!(memo.peek(&1), Some(10));
        let mut snap = memo.snapshot();
        snap.sort_unstable();
        assert_eq!(snap, vec![(1, 10)]);
    }
}
