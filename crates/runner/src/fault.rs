//! Deterministic, seeded fault injection for the engine and the serve
//! daemon built on top of it.
//!
//! A [`FaultPlan`] decides, as a pure function of its seed and the
//! *injection site + subject key*, whether a fault fires at a given point —
//! never from wall-clock time or thread scheduling, so a soak run under an
//! active plan is exactly reproducible. Each site selects a deterministic
//! subset of keys (one in `rate`) and fails each selected key at most
//! `budget` times before letting it succeed, which is what makes "every
//! failure is recoverable" provable: a panicking cell panics the same
//! number of times on every run, then computes normally.
//!
//! The plan is threaded through [`Engine`](crate::Engine) (cell compute
//! panics and latency, cache read corruption, cache write errors) and used
//! directly by the serve daemon's workers (worker kill) and the load
//! generator (client stalls and disconnects). The default is
//! `Option<Arc<FaultPlan>>::None`: a single pointer test on the cold side
//! of a multi-millisecond simulation, verified within noise by the
//! `fault_overhead` bench (the same pattern `obs_overhead` uses for the
//! probe seam).

use crate::cell::fnv1a;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Where a fault can be injected.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// Panic inside a cell computation (simulates a worker crash).
    ComputePanic,
    /// Artificial latency before a cell computation (simulates a slow cell).
    ComputeLatency,
    /// A cache line reads back corrupt (simulates disk corruption).
    CacheRead,
    /// Persisting the cache fails with an I/O error.
    CacheWrite,
    /// A serve worker thread dies.
    WorkerKill,
    /// A client stalls between protocol lines.
    ClientStall,
    /// A client drops its connection before draining responses.
    ClientDisconnect,
}

impl FaultSite {
    /// All sites, for counter reports.
    pub const ALL: [FaultSite; 7] = [
        FaultSite::ComputePanic,
        FaultSite::ComputeLatency,
        FaultSite::CacheRead,
        FaultSite::CacheWrite,
        FaultSite::WorkerKill,
        FaultSite::ClientStall,
        FaultSite::ClientDisconnect,
    ];

    /// Stable short name (used in metrics and the CLI plan syntax).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            FaultSite::ComputePanic => "panic",
            FaultSite::ComputeLatency => "latency",
            FaultSite::CacheRead => "cache_read",
            FaultSite::CacheWrite => "cache_write",
            FaultSite::WorkerKill => "kill",
            FaultSite::ClientStall => "stall",
            FaultSite::ClientDisconnect => "disconnect",
        }
    }

    fn index(self) -> usize {
        match self {
            FaultSite::ComputePanic => 0,
            FaultSite::ComputeLatency => 1,
            FaultSite::CacheRead => 2,
            FaultSite::CacheWrite => 3,
            FaultSite::WorkerKill => 4,
            FaultSite::ClientStall => 5,
            FaultSite::ClientDisconnect => 6,
        }
    }
}

/// Per-site configuration: which keys are selected and how often they fail.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
struct SiteConfig {
    /// One key in `rate` is selected; `0` disables the site.
    rate: u64,
    /// Times each selected key fires before succeeding forever.
    budget: u32,
    /// Injected delay for latency/stall sites.
    delay: Duration,
}

/// Marker prefix of injected panic payloads, so supervision layers can
/// distinguish planned faults from real bugs in reports.
pub const INJECTED_PANIC: &str = "injected fault:";

/// SplitMix64 finalizer: decorrelates (seed, site, key) into selection bits.
#[must_use]
pub fn mix(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A deterministic, seeded fault-injection plan (see the module docs).
///
/// Cheap to share: engine and serve layers hold it as
/// `Option<Arc<FaultPlan>>`, where `None` is the zero-cost production
/// default.
#[derive(Debug, Default)]
pub struct FaultPlan {
    seed: u64,
    sites: [SiteConfig; 7],
    /// Attempts so far per (site, key-hash): how many times the fault has
    /// fired for that subject. Interior mutability keeps the injection API
    /// `&self`, matching the engine's sharing model.
    attempts: Mutex<HashMap<(usize, u64), u32>>,
    injected: [AtomicU64; 7],
}

impl FaultPlan {
    /// An empty plan (no site enabled) with the given seed.
    #[must_use]
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            ..FaultPlan::default()
        }
    }

    fn site(mut self, site: FaultSite, rate: u64, budget: u32, delay: Duration) -> FaultPlan {
        self.sites[site.index()] = SiteConfig {
            rate,
            budget,
            delay,
        };
        self
    }

    /// Panic one cell computation in `rate`, `budget` times each.
    #[must_use]
    pub fn with_panics(self, rate: u64, budget: u32) -> FaultPlan {
        self.site(FaultSite::ComputePanic, rate, budget, Duration::ZERO)
    }

    /// Delay one cell computation in `rate` by `delay`, `budget` times each.
    #[must_use]
    pub fn with_latency(self, rate: u64, budget: u32, delay: Duration) -> FaultPlan {
        self.site(FaultSite::ComputeLatency, rate, budget, delay)
    }

    /// Corrupt one cache line in `rate` on read, `budget` times each.
    #[must_use]
    pub fn with_cache_read_faults(self, rate: u64, budget: u32) -> FaultPlan {
        self.site(FaultSite::CacheRead, rate, budget, Duration::ZERO)
    }

    /// Fail one cache save in `rate`, `budget` times each.
    #[must_use]
    pub fn with_cache_write_faults(self, rate: u64, budget: u32) -> FaultPlan {
        self.site(FaultSite::CacheWrite, rate, budget, Duration::ZERO)
    }

    /// Kill one serve worker wake-up in `rate`, at most `budget` workers.
    #[must_use]
    pub fn with_worker_kills(self, rate: u64, budget: u32) -> FaultPlan {
        self.site(FaultSite::WorkerKill, rate, budget, Duration::ZERO)
    }

    /// Stall one client protocol line in `rate` by `delay`.
    #[must_use]
    pub fn with_client_stalls(self, rate: u64, budget: u32, delay: Duration) -> FaultPlan {
        self.site(FaultSite::ClientStall, rate, budget, delay)
    }

    /// Disconnect one client request in `rate` before it drains responses,
    /// `budget` times each (so the retried request eventually completes).
    #[must_use]
    pub fn with_client_disconnects(self, rate: u64, budget: u32) -> FaultPlan {
        self.site(FaultSite::ClientDisconnect, rate, budget, Duration::ZERO)
    }

    /// The plan's seed.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Whether `key` is in `site`'s deterministic selection (independent of
    /// how many times it has fired).
    #[must_use]
    pub fn selects(&self, site: FaultSite, key: &str) -> bool {
        let cfg = &self.sites[site.index()];
        if cfg.rate == 0 {
            return false;
        }
        mix(self.seed
            ^ (site.index() as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15)
            ^ fnv1a(key.as_bytes()))
        .is_multiple_of(cfg.rate)
    }

    /// Whether the fault fires now for `key` at `site`: true while the key
    /// is selected and under its failure budget. Counts the injection.
    #[must_use]
    pub fn fire(&self, site: FaultSite, key: &str) -> bool {
        if !self.selects(site, key) {
            return false;
        }
        let cfg = &self.sites[site.index()];
        let mut attempts = self.attempts.lock().unwrap();
        let n = attempts
            .entry((site.index(), fnv1a(key.as_bytes())))
            .or_insert(0);
        if *n >= cfg.budget {
            return false;
        }
        *n += 1;
        drop(attempts);
        self.injected[site.index()].fetch_add(1, Ordering::Relaxed);
        true
    }

    /// The configured delay of a latency/stall site.
    #[must_use]
    pub fn delay(&self, site: FaultSite) -> Duration {
        self.sites[site.index()].delay
    }

    /// Engine hook: run before computing the cell named by `key`. May sleep
    /// (injected latency) and may panic (injected worker crash); the panic
    /// payload starts with [`INJECTED_PANIC`].
    ///
    /// # Panics
    /// Panics exactly when the plan's `ComputePanic` site fires for `key` —
    /// that is the injected fault.
    pub fn before_compute(&self, key: &str) {
        if self.fire(FaultSite::ComputeLatency, key) {
            std::thread::sleep(self.delay(FaultSite::ComputeLatency));
        }
        if self.fire(FaultSite::ComputePanic, key) {
            panic!("{INJECTED_PANIC} compute panic for cell `{key}`");
        }
    }

    /// Engine hook: whether the cache line at `index` should be treated as
    /// corrupt on this read.
    #[must_use]
    pub fn corrupt_cache_read(&self, index: usize) -> bool {
        self.fire(FaultSite::CacheRead, &format!("line{index}"))
    }

    /// Engine hook: an injected error for this cache save, if the site
    /// fires.
    #[must_use]
    pub fn fail_cache_write(&self) -> Option<std::io::Error> {
        if self.fire(FaultSite::CacheWrite, "save") {
            Some(std::io::Error::other(format!(
                "{INJECTED_PANIC} cache write error"
            )))
        } else {
            None
        }
    }

    /// Total faults injected so far, across all sites.
    #[must_use]
    pub fn injected_total(&self) -> u64 {
        self.injected
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }

    /// Faults injected per site, in [`FaultSite::ALL`] order.
    #[must_use]
    pub fn injected_by_site(&self) -> Vec<(&'static str, u64)> {
        FaultSite::ALL
            .iter()
            .map(|s| (s.name(), self.injected[s.index()].load(Ordering::Relaxed)))
            .collect()
    }

    /// Parse the CLI plan syntax:
    /// `seed=<u64>,panic=<rate>:<budget>,latency=<rate>:<budget>:<ms>ms,`
    /// `cache_read=<rate>:<budget>,cache_write=<rate>:<budget>,`
    /// `kill=<rate>:<budget>,stall=<rate>:<budget>:<ms>ms,`
    /// `disconnect=<rate>:<budget>` — any subset of sites, in any order.
    /// Seeds accept decimal or `0x` hex.
    ///
    /// # Errors
    /// A malformed clause is an error, never a silently ignored fault.
    pub fn parse(text: &str) -> Result<FaultPlan, String> {
        fn u64v(v: &str) -> Result<u64, String> {
            let t = v.trim();
            match t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
                Some(h) => u64::from_str_radix(h, 16),
                None => t.parse(),
            }
            .map_err(|_| format!("`{v}` is not an integer"))
        }
        let mut plan = FaultPlan::new(0);
        for clause in text.split(',').filter(|c| !c.trim().is_empty()) {
            let (name, value) = clause
                .split_once('=')
                .ok_or_else(|| format!("fault clause `{clause}` is missing `=`"))?;
            let name = name.trim();
            if name == "seed" {
                plan.seed = u64v(value)?;
                continue;
            }
            let site = FaultSite::ALL
                .into_iter()
                .find(|s| s.name() == name)
                .ok_or_else(|| format!("unknown fault site `{name}`"))?;
            let parts: Vec<&str> = value.split(':').collect();
            let (rate, budget, delay) = match (site, parts.as_slice()) {
                (FaultSite::ComputeLatency | FaultSite::ClientStall, [r, b, d]) => {
                    let ms = d
                        .trim()
                        .strip_suffix("ms")
                        .ok_or_else(|| format!("delay `{d}` must end in `ms`"))?;
                    (
                        u64v(r)?,
                        u32::try_from(u64v(b)?).map_err(|_| "budget too large".to_owned())?,
                        Duration::from_millis(u64v(ms)?),
                    )
                }
                (FaultSite::ComputeLatency | FaultSite::ClientStall, _) => {
                    return Err(format!(
                        "site `{name}` takes <rate>:<budget>:<ms>ms, got `{value}`"
                    ));
                }
                (_, [r, b]) => (
                    u64v(r)?,
                    u32::try_from(u64v(b)?).map_err(|_| "budget too large".to_owned())?,
                    Duration::ZERO,
                ),
                _ => {
                    return Err(format!(
                        "site `{name}` takes <rate>:<budget>, got `{value}`"
                    ));
                }
            };
            plan.sites[site.index()] = SiteConfig {
                rate,
                budget,
                delay,
            };
        }
        Ok(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_plan_never_fires() {
        let p = FaultPlan::new(1);
        for k in ["a", "b", "c"] {
            assert!(!p.fire(FaultSite::ComputePanic, k));
            assert!(!p.selects(FaultSite::CacheRead, k));
        }
        assert_eq!(p.injected_total(), 0);
    }

    #[test]
    fn selection_is_deterministic_and_budgeted() {
        let p = FaultPlan::new(42).with_panics(2, 3);
        let q = FaultPlan::new(42).with_panics(2, 3);
        let keys: Vec<String> = (0..64).map(|i| format!("cell{i}")).collect();
        let selected: Vec<&String> = keys
            .iter()
            .filter(|k| p.selects(FaultSite::ComputePanic, k))
            .collect();
        assert!(!selected.is_empty(), "rate 2 over 64 keys must select some");
        for k in &keys {
            assert_eq!(
                p.selects(FaultSite::ComputePanic, k),
                q.selects(FaultSite::ComputePanic, k),
                "same seed, same selection"
            );
        }
        // A selected key fires exactly `budget` times, then never again.
        let k = selected[0];
        for _ in 0..3 {
            assert!(p.fire(FaultSite::ComputePanic, k));
        }
        for _ in 0..5 {
            assert!(!p.fire(FaultSite::ComputePanic, k));
        }
        assert_eq!(p.injected_total(), 3);
    }

    #[test]
    fn different_seeds_select_differently() {
        let a = FaultPlan::new(1).with_panics(2, 1);
        let b = FaultPlan::new(2).with_panics(2, 1);
        let keys: Vec<String> = (0..256).map(|i| format!("k{i}")).collect();
        let same = keys
            .iter()
            .filter(|k| {
                a.selects(FaultSite::ComputePanic, k) == b.selects(FaultSite::ComputePanic, k)
            })
            .count();
        assert!(same < 256, "seeds must change the selection");
    }

    #[test]
    fn sites_are_independent() {
        let p = FaultPlan::new(7).with_panics(1, 1); // every key panics once
        assert!(p.selects(FaultSite::ComputePanic, "x"));
        assert!(!p.selects(FaultSite::CacheRead, "x"));
        assert!(!p.selects(FaultSite::ClientDisconnect, "x"));
    }

    #[test]
    fn before_compute_panics_with_marker() {
        let p = FaultPlan::new(7).with_panics(1, 1);
        let err =
            std::panic::catch_unwind(|| p.before_compute("cell")).expect_err("must inject a panic");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.starts_with(INJECTED_PANIC), "payload: {msg}");
        // Budget spent: the retry succeeds.
        p.before_compute("cell");
    }

    #[test]
    fn cache_write_faults_are_io_errors() {
        let p = FaultPlan::new(3).with_cache_write_faults(1, 2);
        assert!(p.fail_cache_write().is_some());
        assert!(p.fail_cache_write().is_some());
        assert!(p.fail_cache_write().is_none(), "budget exhausted");
    }

    #[test]
    fn parse_round_trips_the_soak_syntax() {
        let p = FaultPlan::parse(
            "seed=0xC1,panic=6:2,latency=9:3:4ms,cache_read=5:1,cache_write=3:1,\
             kill=40:2,stall=7:1:5ms,disconnect=9:1",
        )
        .unwrap();
        assert_eq!(p.seed(), 0xC1);
        assert_eq!(p.delay(FaultSite::ComputeLatency), Duration::from_millis(4));
        assert_eq!(p.delay(FaultSite::ClientStall), Duration::from_millis(5));
        assert_eq!(p.sites[FaultSite::WorkerKill.index()].rate, 40);
        assert_eq!(p.sites[FaultSite::ClientDisconnect.index()].budget, 1);
        // Empty and partial plans parse too.
        assert!(FaultPlan::parse("").is_ok());
        assert!(FaultPlan::parse("seed=9").is_ok());
        for bad in [
            "panic",
            "panic=1",
            "panic=1:2:3",
            "latency=1:2",
            "latency=1:2:3",
            "nonsense=1:2",
            "seed=zz",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "should reject `{bad}`");
        }
    }
}
