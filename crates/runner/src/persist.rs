//! Lossless JSON (de)serialization of [`CellOutput`] for the on-disk cache.
//!
//! Every integer is rendered as a *decimal string*, not a JSON number: the
//! hand-rolled parser in `ci-obs` stores numbers as `f64`, which would
//! silently round counters and hash keys above 2^53 (the same reason the
//! difftest artifacts hex-encode seeds). Strings round-trip exactly.
//!
//! The deserializers are deliberately paranoid: any missing field, type
//! mismatch, unparsable integer, or structurally inconsistent histogram
//! yields `None`, which the cache layer treats as a corrupt line — rejected,
//! recomputed, and rewritten, never trusted.

use crate::cell::{fnv1a, CellOutput};
use ci_bpred::TfrStats;
use ci_core::Stats;
use ci_obs::json::JsonValue;
use ci_obs::{EventCounters, Histogram, MetricsProbe};
use std::path::{Path, PathBuf};

fn u(v: u64) -> JsonValue {
    JsonValue::Str(v.to_string())
}

fn u128s(v: u128) -> JsonValue {
    JsonValue::Str(v.to_string())
}

fn get_u64(obj: &JsonValue, key: &str) -> Option<u64> {
    obj.get(key)?.as_str()?.parse().ok()
}

fn get_u128(obj: &JsonValue, key: &str) -> Option<u128> {
    obj.get(key)?.as_str()?.parse().ok()
}

fn arr_u64(values: &[u64]) -> JsonValue {
    JsonValue::Arr(values.iter().map(|&v| u(v)).collect())
}

fn get_arr_u64(obj: &JsonValue, key: &str) -> Option<Vec<u64>> {
    obj.get(key)?
        .as_array()?
        .iter()
        .map(|v| v.as_str()?.parse().ok())
        .collect()
}

fn tfr_to_json(t: &TfrStats) -> JsonValue {
    JsonValue::Arr(
        t.entries()
            .into_iter()
            .map(|(k, tc, fc)| JsonValue::Arr(vec![u(k), u(tc), u(fc)]))
            .collect(),
    )
}

fn tfr_from_json(v: &JsonValue) -> Option<TfrStats> {
    let entries: Option<Vec<(u64, u64, u64)>> = v
        .as_array()?
        .iter()
        .map(|e| {
            let e = e.as_array()?;
            if e.len() != 3 {
                return None;
            }
            Some((
                e[0].as_str()?.parse().ok()?,
                e[1].as_str()?.parse().ok()?,
                e[2].as_str()?.parse().ok()?,
            ))
        })
        .collect();
    Some(TfrStats::from_entries(entries?))
}

fn hist_to_json(h: &Histogram) -> JsonValue {
    let (bounds, counts, total, sum, min, max) = h.raw_parts();
    JsonValue::obj([
        ("bounds", arr_u64(bounds)),
        ("counts", arr_u64(counts)),
        ("total", u(total)),
        ("sum", u128s(sum)),
        ("min", u(min)),
        ("max", u(max)),
    ])
}

fn hist_from_json(v: &JsonValue) -> Option<Histogram> {
    Histogram::from_raw_parts(
        &get_arr_u64(v, "bounds")?,
        &get_arr_u64(v, "counts")?,
        get_u64(v, "total")?,
        get_u128(v, "sum")?,
        get_u64(v, "min")?,
        get_u64(v, "max")?,
    )
}

fn stats_to_json(s: &Stats) -> JsonValue {
    JsonValue::obj([
        ("cycles", u(s.cycles)),
        ("retired", u(s.retired)),
        ("predictions", u(s.predictions)),
        ("arch_mispredictions", u(s.arch_mispredictions)),
        ("recoveries", u(s.recoveries)),
        ("reconverged", u(s.reconverged)),
        ("removed", u(s.removed)),
        ("inserted", u(s.inserted)),
        ("ci_instructions", u(s.ci_instructions)),
        ("ci_renamed", u(s.ci_renamed)),
        ("ci_evicted", u(s.ci_evicted)),
        ("preemptions", u(s.preemptions)),
        ("restart_cycles", u(s.restart_cycles)),
        ("fetch_saved", u(s.fetch_saved)),
        ("work_saved", u(s.work_saved)),
        ("work_discarded", u(s.work_discarded)),
        ("only_fetched", u(s.only_fetched)),
        ("issues", u(s.issues)),
        ("mem_violation_reissues", u(s.mem_violation_reissues)),
        ("reg_violation_reissues", u(s.reg_violation_reissues)),
        ("true_mispredictions", u(s.true_mispredictions)),
        ("false_mispredictions", u(s.false_mispredictions)),
        ("tfr_static", tfr_to_json(&s.tfr_static)),
        ("tfr_dynamic_pc", tfr_to_json(&s.tfr_dynamic_pc)),
        ("tfr_dynamic_xor", tfr_to_json(&s.tfr_dynamic_xor)),
        ("cache_hits", u(s.cache_hits)),
        ("cache_misses", u(s.cache_misses)),
    ])
}

fn stats_from_json(v: &JsonValue) -> Option<Stats> {
    Some(Stats {
        cycles: get_u64(v, "cycles")?,
        retired: get_u64(v, "retired")?,
        predictions: get_u64(v, "predictions")?,
        arch_mispredictions: get_u64(v, "arch_mispredictions")?,
        recoveries: get_u64(v, "recoveries")?,
        reconverged: get_u64(v, "reconverged")?,
        removed: get_u64(v, "removed")?,
        inserted: get_u64(v, "inserted")?,
        ci_instructions: get_u64(v, "ci_instructions")?,
        ci_renamed: get_u64(v, "ci_renamed")?,
        ci_evicted: get_u64(v, "ci_evicted")?,
        preemptions: get_u64(v, "preemptions")?,
        restart_cycles: get_u64(v, "restart_cycles")?,
        fetch_saved: get_u64(v, "fetch_saved")?,
        work_saved: get_u64(v, "work_saved")?,
        work_discarded: get_u64(v, "work_discarded")?,
        only_fetched: get_u64(v, "only_fetched")?,
        issues: get_u64(v, "issues")?,
        mem_violation_reissues: get_u64(v, "mem_violation_reissues")?,
        reg_violation_reissues: get_u64(v, "reg_violation_reissues")?,
        true_mispredictions: get_u64(v, "true_mispredictions")?,
        false_mispredictions: get_u64(v, "false_mispredictions")?,
        tfr_static: tfr_from_json(v.get("tfr_static")?)?,
        tfr_dynamic_pc: tfr_from_json(v.get("tfr_dynamic_pc")?)?,
        tfr_dynamic_xor: tfr_from_json(v.get("tfr_dynamic_xor")?)?,
        cache_hits: get_u64(v, "cache_hits")?,
        cache_misses: get_u64(v, "cache_misses")?,
    })
}

fn probe_to_json(p: &MetricsProbe) -> JsonValue {
    JsonValue::obj([
        ("counters", arr_u64(p.counters.raw_counts())),
        ("restart_length", hist_to_json(&p.restart_length)),
        ("restart_inserted", hist_to_json(&p.restart_inserted)),
        ("recon_distance", hist_to_json(&p.recon_distance)),
        ("occupancy", hist_to_json(&p.occupancy)),
        ("reissues", hist_to_json(&p.reissues)),
    ])
}

fn probe_from_json(v: &JsonValue) -> Option<MetricsProbe> {
    Some(MetricsProbe {
        counters: EventCounters::from_raw_counts(&get_arr_u64(v, "counters")?)?,
        restart_length: hist_from_json(v.get("restart_length")?)?,
        restart_inserted: hist_from_json(v.get("restart_inserted")?)?,
        recon_distance: hist_from_json(v.get("recon_distance")?)?,
        occupancy: hist_from_json(v.get("occupancy")?)?,
        reissues: hist_from_json(v.get("reissues")?)?,
    })
}

/// Serialize a cell output. Round-trips exactly through
/// [`output_from_json`].
#[must_use]
pub fn output_to_json(o: &CellOutput) -> JsonValue {
    match o {
        CellOutput::Detailed { stats, probe } => JsonValue::obj([
            ("kind", JsonValue::from("detailed")),
            ("stats", stats_to_json(stats)),
            ("probe", probe_to_json(probe)),
        ]),
        CellOutput::Ideal(r) => JsonValue::obj([
            ("kind", JsonValue::from("ideal")),
            ("cycles", u(r.cycles)),
            ("retired", u(r.retired)),
            ("mispredictions", u(r.mispredictions)),
            ("wrong_path_fetched", u(r.wrong_path_fetched)),
            ("evictions", u(r.evictions)),
        ]),
        CellOutput::Study {
            len,
            predictions,
            mispredictions,
        } => JsonValue::obj([
            ("kind", JsonValue::from("study")),
            ("len", u(*len)),
            ("predictions", u(*predictions)),
            ("mispredictions", u(*mispredictions)),
        ]),
    }
}

/// Quarantine a corrupt cache file: write its full content under
/// `<dir>/quarantine/`, prefixed with a `#`-comment reason header, then
/// remove the original. The quarantine file name embeds the content hash,
/// so re-quarantining identical content is idempotent and distinct
/// corruptions never overwrite each other. Returns the quarantine path.
///
/// Corrupt caches used to be silently dropped and rewritten; keeping the
/// evidence is what lets an operator distinguish a bad disk from a bad
/// writer.
///
/// # Errors
/// Propagates filesystem errors (directory creation, write, remove).
pub fn quarantine_cache_file(
    dir: &Path,
    path: &Path,
    content: &str,
    reason: &str,
) -> std::io::Result<PathBuf> {
    let qdir = dir.join("quarantine");
    std::fs::create_dir_all(&qdir)?;
    let file_name = path
        .file_name()
        .map_or_else(|| "cache".to_owned(), |n| n.to_string_lossy().into_owned());
    let qpath = qdir.join(format!("{file_name}.{:016x}", fnv1a(content.as_bytes())));
    let mut body = String::new();
    body.push_str("# quarantined cache file — do not trust, kept for diagnosis\n");
    body.push_str(&format!("# reason: {reason}\n"));
    body.push_str(&format!("# original: {}\n", path.display()));
    body.push_str(content);
    std::fs::write(&qpath, body)?;
    std::fs::remove_file(path)?;
    Ok(qpath)
}

/// Deserialize a cell output; `None` on any malformed input.
#[must_use]
pub fn output_from_json(v: &JsonValue) -> Option<CellOutput> {
    match v.get("kind")?.as_str()? {
        "detailed" => Some(CellOutput::Detailed {
            stats: stats_from_json(v.get("stats")?)?,
            probe: probe_from_json(v.get("probe")?)?,
        }),
        "ideal" => Some(CellOutput::Ideal(ci_ideal::IdealResult {
            cycles: get_u64(v, "cycles")?,
            retired: get_u64(v, "retired")?,
            mispredictions: get_u64(v, "mispredictions")?,
            wrong_path_fetched: get_u64(v, "wrong_path_fetched")?,
            evictions: get_u64(v, "evictions")?,
        })),
        "study" => Some(CellOutput::Study {
            len: get_u64(v, "len")?,
            predictions: get_u64(v, "predictions")?,
            mispredictions: get_u64(v, "mispredictions")?,
        }),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_round_trips_including_overflow_and_extremes() {
        let mut h = Histogram::exponential(4);
        for v in [0, 1, 3, 17, u64::MAX] {
            h.record(v);
        }
        let back = hist_from_json(&hist_to_json(&h)).unwrap();
        assert_eq!(h, back);
    }

    #[test]
    fn empty_histogram_round_trips() {
        let h = Histogram::linear(16, 4);
        assert_eq!(h, hist_from_json(&hist_to_json(&h)).unwrap());
    }

    #[test]
    fn tfr_round_trips_large_keys() {
        let mut t = TfrStats::new();
        t.record(u64::MAX - 1, true);
        t.record(u64::MAX - 1, false);
        t.record(3, false);
        assert_eq!(t, tfr_from_json(&tfr_to_json(&t)).unwrap());
    }

    #[test]
    fn inconsistent_histogram_parts_are_rejected() {
        let mut bad = hist_to_json(&Histogram::linear(1, 2));
        // Corrupt the total so it disagrees with the counts.
        if let JsonValue::Obj(pairs) = &mut bad {
            for (k, v) in pairs {
                if k == "total" {
                    *v = JsonValue::Str("999".into());
                }
            }
        }
        assert!(hist_from_json(&bad).is_none());
    }

    #[test]
    fn unknown_kind_is_rejected() {
        let v = JsonValue::obj([("kind", JsonValue::from("nonsense"))]);
        assert!(output_from_json(&v).is_none());
    }
}
