//! Parallel experiment-execution engine for the control-independence
//! reproduction.
//!
//! The paper's evaluation is a large grid of independent simulation runs —
//! (workload × configuration × instruction budget × seed) **cells** — and
//! many tables reference the *same* cell (the window-256 CI run feeds
//! Tables 2-4, Figure 8 and the distributions table). This crate turns the
//! experiment suite into a declarative job graph over those cells:
//!
//! - [`CellSpec`] names a cell; its canonical text form (and FNV-1a content
//!   hash, [`CellKey`]) is the memo key.
//! - [`Engine`] computes each distinct cell **exactly once** on a
//!   hand-rolled `std::thread` [work-stealing pool](pool) ([`Memo`] provides
//!   in-flight deduplication), shares [`CellOutput`]s across every
//!   referencing table, and optionally persists them as JSONL under a cache
//!   directory for resumable runs.
//! - Per-cell wall times are exported through the `ci-obs` metrics layer
//!   ([`Engine::timing_registry`]).
//!
//! Cell outputs are pure functions of their specs, and table assembly is
//! serial, so rendered experiment output is **byte-identical for every
//! worker count** — `--workers 1` is simply the slow reference schedule.
//! The workspace determinism suite pins this guarantee.
//!
//! Everything is std-only: the build environment has no crates.io access
//! (see the vendored `proptest`/`criterion` shims).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cell;
pub mod engine;
pub mod fault;
pub mod memo;
pub mod metrics;
pub mod persist;
pub mod pool;

pub use cell::{fnv1a, CellKey, CellOutput, CellSpec, SharedInputs};
pub use engine::{Engine, EngineOptions, CACHE_FILE};
pub use fault::{FaultPlan, FaultSite, INJECTED_PANIC};
pub use memo::Memo;
pub use metrics::{CellReport, PoolReport, RunMetrics, SweepSummary};
pub use pool::PoolStats;
