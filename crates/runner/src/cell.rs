//! Simulation **cells**: the unit of memoized experiment work.
//!
//! A cell is one simulation run, fully determined by its spec — workload,
//! configuration (detailed pipeline or ideal model), instruction budget and
//! workload seed. Every table and figure of the paper declares the cells it
//! needs; the engine computes each *distinct* cell exactly once and shares
//! the result across all referencing tables (e.g. the window-256 CI run
//! feeds Tables 2-4, Figure 8 and the distributions table).
//!
//! Cells are keyed by a canonical text form of the spec, plus an FNV-1a
//! content hash of that form used as a compact identifier in the on-disk
//! cache and in timing reports.

use crate::memo::Memo;
use ci_core::{simulate_probed, PipelineConfig, RedispatchMode, SquashMode, Stats};
use ci_ideal::{simulate as simulate_ideal, IdealConfig, IdealResult, ModelKind, StudyInput};
use ci_isa::Program;
use ci_obs::MetricsProbe;
use ci_workloads::{Workload, WorkloadParams};
use std::fmt;
use std::sync::Arc;

/// 64-bit FNV-1a hash of `bytes` (stable across platforms and runs).
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Compact content-hash identifier of a cell spec.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CellKey(pub u64);

impl fmt::Display for CellKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// One memoizable simulation run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CellSpec {
    /// A detailed execution-driven pipeline run (always probed with a
    /// [`MetricsProbe`]; probed and unprobed runs produce bit-identical
    /// [`Stats`], so one cell serves both kinds of consumer).
    Detailed {
        /// Workload to simulate.
        workload: Workload,
        /// Full pipeline configuration.
        config: PipelineConfig,
        /// Dynamic instruction budget.
        instructions: u64,
        /// Workload data seed.
        seed: u64,
    },
    /// An idealized-model run over the workload's study input.
    Ideal {
        /// Workload to simulate.
        workload: Workload,
        /// Which of the six idealized models.
        model: ModelKind,
        /// Instruction window size.
        window: usize,
        /// Dynamic instruction budget.
        instructions: u64,
        /// Workload data seed.
        seed: u64,
    },
    /// The workload's study-input summary (trace length, prediction counts)
    /// — Table 1's benchmark-information row.
    Study {
        /// Workload to summarize.
        workload: Workload,
        /// Dynamic instruction budget.
        instructions: u64,
        /// Workload data seed.
        seed: u64,
    },
}

impl CellSpec {
    /// Canonical text form: the memo key. Two specs collide exactly when
    /// every simulation-relevant parameter matches.
    #[must_use]
    pub fn canonical(&self) -> String {
        match self {
            CellSpec::Detailed {
                workload,
                config,
                instructions,
                seed,
            } => format!(
                "detailed w={} n={instructions} seed={seed:#x} cfg={config:?}",
                workload.name()
            ),
            CellSpec::Ideal {
                workload,
                model,
                window,
                instructions,
                seed,
            } => format!(
                "ideal w={} n={instructions} seed={seed:#x} model={model:?} window={window}",
                workload.name()
            ),
            CellSpec::Study {
                workload,
                instructions,
                seed,
            } => format!(
                "study w={} n={instructions} seed={seed:#x}",
                workload.name()
            ),
        }
    }

    /// Content-hash key of [`CellSpec::canonical`].
    #[must_use]
    pub fn key(&self) -> CellKey {
        CellKey(fnv1a(self.canonical().as_bytes()))
    }

    /// Short human label for progress and timing reports.
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            CellSpec::Detailed {
                workload, config, ..
            } => format!("detailed/{}/w{}", workload.name(), config.window),
            CellSpec::Ideal {
                workload,
                model,
                window,
                ..
            } => format!("ideal/{}/{model:?}/w{window}", workload.name()),
            CellSpec::Study { workload, .. } => format!("study/{}", workload.name()),
        }
    }

    /// The workload this cell simulates.
    #[must_use]
    pub fn workload_name(&self) -> &'static str {
        match self {
            CellSpec::Detailed { workload, .. }
            | CellSpec::Ideal { workload, .. }
            | CellSpec::Study { workload, .. } => workload.name(),
        }
    }

    /// The configuration family: which machine this cell models, without
    /// the workload/budget/seed dimensions. Detailed cells map to the
    /// paper's machine names (`base`, `ci`, `ci_i`) plus the window size;
    /// ideal cells to the model name plus window; study cells to `study`.
    /// Joinable across `--timing` lines and `RunMetrics`.
    #[must_use]
    pub fn family(&self) -> String {
        match self {
            CellSpec::Detailed { config, .. } => {
                let machine = match (config.squash, config.redispatch) {
                    (SquashMode::Full, _) => "base",
                    (SquashMode::ControlIndependence, RedispatchMode::Pipelined) => "ci",
                    (SquashMode::ControlIndependence, RedispatchMode::Instant) => "ci_i",
                };
                format!("{machine}_w{}", config.window)
            }
            CellSpec::Ideal { model, window, .. } => format!("{model:?}_w{window}").to_lowercase(),
            CellSpec::Study { .. } => "study".to_owned(),
        }
    }

    /// Run the simulation this spec describes. Pure: the output depends only
    /// on the spec (shared program/study-input builds are memoized in
    /// `shared` but do not change results).
    #[must_use]
    pub fn compute(&self, shared: &SharedInputs) -> CellOutput {
        match *self {
            CellSpec::Detailed {
                workload,
                config,
                instructions,
                seed,
            } => {
                let program = shared.program(workload, instructions, seed);
                let (stats, probe) =
                    simulate_probed(&program, config, instructions, MetricsProbe::new())
                        .expect("workloads are valid programs");
                CellOutput::Detailed { stats, probe }
            }
            CellSpec::Ideal {
                workload,
                model,
                window,
                instructions,
                seed,
            } => {
                let input = shared.study_input(workload, instructions, seed);
                CellOutput::Ideal(simulate_ideal(
                    &input,
                    &IdealConfig {
                        model,
                        window,
                        ..IdealConfig::default()
                    },
                ))
            }
            CellSpec::Study {
                workload,
                instructions,
                seed,
            } => {
                let input = shared.study_input(workload, instructions, seed);
                CellOutput::Study {
                    len: input.len() as u64,
                    predictions: input.predictions(),
                    mispredictions: input.mispredictions(),
                }
            }
        }
    }
}

/// The result of one computed cell.
// Variant sizes are wildly uneven (a detailed run carries full histograms),
// but outputs live in the memo and are handed out by clone either way —
// boxing would only move the same bytes to the heap.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CellOutput {
    /// Detailed pipeline statistics plus the standard metrics probe.
    Detailed {
        /// Aggregate counters (bit-identical to an unprobed run).
        stats: Stats,
        /// Event distributions (restart length, occupancy, reissues, ...).
        probe: MetricsProbe,
    },
    /// Idealized-model result.
    Ideal(IdealResult),
    /// Study-input summary for Table 1.
    Study {
        /// Correct-path dynamic instructions traced.
        len: u64,
        /// Control instructions that required prediction.
        predictions: u64,
        /// Mispredicted control instructions.
        mispredictions: u64,
    },
}

impl CellOutput {
    /// The detailed-run statistics; panics if this is not a detailed cell.
    #[must_use]
    pub fn stats(&self) -> &Stats {
        match self {
            CellOutput::Detailed { stats, .. } => stats,
            other => panic!("expected a detailed cell output, got {other:?}"),
        }
    }

    /// The detailed-run metrics probe; panics if this is not a detailed cell.
    #[must_use]
    pub fn probe(&self) -> &MetricsProbe {
        match self {
            CellOutput::Detailed { probe, .. } => probe,
            other => panic!("expected a detailed cell output, got {other:?}"),
        }
    }
}

/// Memoized program and study-input builds shared by all cells of a run.
///
/// Building a workload's [`Program`] is cheap, but a [`StudyInput`] replays
/// the functional emulator over the whole instruction budget — comparable to
/// one simulation — and Figure 3 alone references it 30 times per workload.
#[derive(Default)]
pub struct SharedInputs {
    programs: Memo<(&'static str, u64, u64), Arc<Program>>,
    inputs: Memo<(&'static str, u64, u64), Arc<StudyInput>>,
}

impl SharedInputs {
    /// A fresh, empty set.
    #[must_use]
    pub fn new() -> SharedInputs {
        SharedInputs::default()
    }

    /// The workload's program at this budget/seed, built once.
    #[must_use]
    pub fn program(&self, w: Workload, instructions: u64, seed: u64) -> Arc<Program> {
        self.programs
            .get_or_compute((w.name(), instructions, seed), || {
                Arc::new(w.build(&WorkloadParams {
                    scale: w.scale_for(instructions),
                    seed,
                }))
            })
            .0
    }

    /// The workload's study input at this budget/seed, built once.
    #[must_use]
    pub fn study_input(&self, w: Workload, instructions: u64, seed: u64) -> Arc<StudyInput> {
        let program = self.program(w, instructions, seed);
        self.inputs
            .get_or_compute((w.name(), instructions, seed), || {
                Arc::new(
                    StudyInput::build(&program, instructions)
                        .expect("workloads are valid programs"),
                )
            })
            .0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_spec() -> CellSpec {
        CellSpec::Detailed {
            workload: Workload::GoLike,
            config: PipelineConfig::ci(256),
            instructions: 1000,
            seed: 7,
        }
    }

    #[test]
    fn canonical_is_stable_and_key_matches() {
        let s = base_spec();
        assert_eq!(s.canonical(), base_spec().canonical());
        assert_eq!(s.key(), base_spec().key());
        assert_eq!(s.key(), CellKey(fnv1a(s.canonical().as_bytes())));
    }

    #[test]
    fn every_parameter_feeds_the_key() {
        let s = base_spec();
        let variants = [
            CellSpec::Detailed {
                workload: Workload::GccLike,
                config: PipelineConfig::ci(256),
                instructions: 1000,
                seed: 7,
            },
            CellSpec::Detailed {
                workload: Workload::GoLike,
                config: PipelineConfig::ci(128),
                instructions: 1000,
                seed: 7,
            },
            CellSpec::Detailed {
                workload: Workload::GoLike,
                config: PipelineConfig::base(256),
                instructions: 1000,
                seed: 7,
            },
            CellSpec::Detailed {
                workload: Workload::GoLike,
                config: PipelineConfig::ci(256),
                instructions: 2000,
                seed: 7,
            },
            CellSpec::Detailed {
                workload: Workload::GoLike,
                config: PipelineConfig::ci(256),
                instructions: 1000,
                seed: 8,
            },
        ];
        for v in variants {
            assert_ne!(s.canonical(), v.canonical());
            assert_ne!(s.key(), v.key(), "{}", v.canonical());
        }
    }

    #[test]
    fn cell_kinds_never_collide() {
        let d = base_spec();
        let i = CellSpec::Ideal {
            workload: Workload::GoLike,
            model: ModelKind::Oracle,
            window: 256,
            instructions: 1000,
            seed: 7,
        };
        let st = CellSpec::Study {
            workload: Workload::GoLike,
            instructions: 1000,
            seed: 7,
        };
        assert_ne!(d.key(), i.key());
        assert_ne!(d.key(), st.key());
        assert_ne!(i.key(), st.key());
    }
}
