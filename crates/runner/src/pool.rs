//! A hand-rolled work-stealing batch executor on `std::thread`.
//!
//! The container has no crates.io access, so this is deliberately std-only
//! (matching the vendored `proptest`/`criterion` shims). The model is batch
//! execution: all jobs are known up front, distributed round-robin across
//! per-worker deques, and each worker pops from the *front* of its own deque
//! (preserving locality and submission order) while stealing from the *back*
//! of the busiest other deque when it runs dry. Workers exit when every
//! deque is empty; [`run_batch`] returns once all jobs have finished.
//!
//! Determinism note: jobs may run in any order and on any thread, so callers
//! must only submit jobs whose *results* are order-independent (the memoized
//! simulation cells are — each cell is a pure function of its spec).

use std::collections::VecDeque;
use std::panic::AssertUnwindSafe;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// What one [`run_batch`] call did: scheduling counters for the run-level
/// metrics report. Host-time measurements only — batch *results* are
/// identical for every worker count.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Worker threads actually used (≤ the requested count; 1 in serial
    /// mode).
    pub threads: usize,
    /// Jobs executed.
    pub jobs: usize,
    /// Jobs a worker stole from another worker's deque.
    pub steals: u64,
    /// Wall time of the whole batch.
    pub wall: Duration,
    /// Summed per-worker time spent inside jobs (≤ `threads × wall`).
    pub busy: Duration,
    /// Deepest initial per-worker queue (round-robin distribution, so
    /// `ceil(jobs / threads)`).
    pub max_queue_depth: usize,
    /// Jobs that panicked. Always `0` under [`run_batch`], which propagates
    /// the panic; [`run_batch_catching`] isolates and counts them instead.
    pub panicked: u64,
}

impl PoolStats {
    /// Fraction of worker-seconds spent inside jobs (0.0 for an empty
    /// batch): `busy / (threads × wall)`.
    #[must_use]
    pub fn utilization(&self) -> f64 {
        let denom = self.wall.as_secs_f64() * self.threads as f64;
        if self.jobs == 0 || denom <= 0.0 {
            0.0
        } else {
            (self.busy.as_secs_f64() / denom).min(1.0)
        }
    }

    /// Fold another batch's stats into this accumulator (wall times add;
    /// `threads` and `max_queue_depth` take the maximum).
    pub fn absorb(&mut self, other: &PoolStats) {
        self.threads = self.threads.max(other.threads);
        self.jobs += other.jobs;
        self.steals += other.steals;
        self.wall += other.wall;
        self.busy += other.busy;
        self.max_queue_depth = self.max_queue_depth.max(other.max_queue_depth);
        self.panicked += other.panicked;
    }
}

/// Run every job, using up to `workers` OS threads. Returns scheduling
/// statistics for the batch.
///
/// `workers <= 1` (or a batch of one job) degenerates to serial in-order
/// execution on the calling thread — the `--workers 1` reference mode.
///
/// # Panics
/// A panicking job aborts the batch: the panic is propagated to the caller
/// once the surviving workers drain the remaining jobs.
pub fn run_batch<F: FnOnce() + Send>(workers: usize, jobs: Vec<F>) -> PoolStats {
    run_batch_inner(workers, jobs, false)
}

/// [`run_batch`] with per-job panic isolation: a panicking job is caught,
/// counted in [`PoolStats::panicked`], and the batch keeps running — no job
/// is dropped and the worker survives. This is the supervision mode the
/// serve daemon uses under an active fault plan.
pub fn run_batch_catching<F: FnOnce() + Send>(workers: usize, jobs: Vec<F>) -> PoolStats {
    run_batch_inner(workers, jobs, true)
}

/// Run one job, optionally isolating a panic. Returns `1` if it panicked.
fn execute<F: FnOnce()>(job: F, catching: bool) -> u64 {
    if catching {
        match std::panic::catch_unwind(AssertUnwindSafe(job)) {
            Ok(()) => 0,
            Err(_) => 1,
        }
    } else {
        job();
        0
    }
}

fn run_batch_inner<F: FnOnce() + Send>(workers: usize, jobs: Vec<F>, catching: bool) -> PoolStats {
    let started = Instant::now();
    if workers <= 1 || jobs.len() <= 1 {
        let n = jobs.len();
        let mut panicked = 0;
        for job in jobs {
            panicked += execute(job, catching);
        }
        let wall = started.elapsed();
        return PoolStats {
            threads: 1,
            jobs: n,
            steals: 0,
            wall,
            busy: wall,
            max_queue_depth: n,
            panicked,
        };
    }
    let n = workers.min(jobs.len());
    let total_jobs = jobs.len();
    let deques: Vec<Mutex<VecDeque<F>>> = (0..n).map(|_| Mutex::new(VecDeque::new())).collect();
    for (i, job) in jobs.into_iter().enumerate() {
        deques[i % n].lock().unwrap().push_back(job);
    }
    let max_queue_depth = total_jobs.div_ceil(n);
    let mut busy = Duration::ZERO;
    let mut steals = 0u64;
    let mut panicked = 0u64;
    std::thread::scope(|s| {
        let deques = &deques;
        let handles: Vec<_> = (0..n)
            .map(|me| s.spawn(move || worker(me, deques, catching)))
            .collect();
        for h in handles {
            match h.join() {
                Ok((b, st, p)) => {
                    busy += b;
                    steals += st;
                    panicked += p;
                }
                Err(p) => std::panic::resume_unwind(p),
            }
        }
    });
    PoolStats {
        threads: n,
        jobs: total_jobs,
        steals,
        wall: started.elapsed(),
        busy,
        max_queue_depth,
        panicked,
    }
}

fn worker<F: FnOnce()>(
    me: usize,
    deques: &[Mutex<VecDeque<F>>],
    catching: bool,
) -> (Duration, u64, u64) {
    let mut busy = Duration::ZERO;
    let mut steals = 0u64;
    let mut panicked = 0u64;
    loop {
        // Own work first, oldest first.
        let own = deques[me].lock().unwrap().pop_front();
        if let Some(job) = own {
            let t = Instant::now();
            panicked += execute(job, catching);
            busy += t.elapsed();
            continue;
        }
        // Steal from the fullest victim, youngest first, so two thieves
        // spread across different victims instead of racing on one.
        let victim = (0..deques.len())
            .filter(|&v| v != me)
            .max_by_key(|&v| deques[v].lock().unwrap().len());
        let stolen = victim.and_then(|v| deques[v].lock().unwrap().pop_back());
        match stolen {
            Some(job) => {
                steals += 1;
                let t = Instant::now();
                panicked += execute(job, catching);
                busy += t.elapsed();
            }
            None => return (busy, steals, panicked), // every deque observed empty
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn all_jobs_run_exactly_once() {
        for workers in [1, 2, 4, 8] {
            let hits = AtomicU64::new(0);
            let jobs: Vec<_> = (0..97u64)
                .map(|i| {
                    let hits = &hits;
                    move || {
                        hits.fetch_add(i + 1, Ordering::SeqCst);
                    }
                })
                .collect();
            run_batch(workers, jobs);
            assert_eq!(hits.load(Ordering::SeqCst), (1..=97).sum::<u64>());
        }
    }

    #[test]
    fn serial_mode_preserves_submission_order() {
        let order = Mutex::new(Vec::new());
        let jobs: Vec<_> = (0..10)
            .map(|i| {
                let order = &order;
                move || order.lock().unwrap().push(i)
            })
            .collect();
        run_batch(1, jobs);
        assert_eq!(*order.lock().unwrap(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn more_workers_than_jobs_is_fine() {
        let hits = AtomicU64::new(0);
        let jobs: Vec<_> = (0..3)
            .map(|_| {
                let hits = &hits;
                move || {
                    hits.fetch_add(1, Ordering::SeqCst);
                }
            })
            .collect();
        run_batch(64, jobs);
        assert_eq!(hits.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let ps = run_batch(4, Vec::<fn()>::new());
        assert_eq!(ps.jobs, 0);
        assert_eq!(ps.utilization(), 0.0);
    }

    #[test]
    fn batch_stats_account_for_the_batch() {
        let jobs: Vec<_> = (0..10)
            .map(|_| || std::thread::sleep(std::time::Duration::from_millis(2)))
            .collect();
        let ps = run_batch(4, jobs);
        assert_eq!(ps.jobs, 10);
        assert_eq!(ps.threads, 4);
        assert_eq!(ps.max_queue_depth, 3); // ceil(10/4)
        assert!(ps.busy >= std::time::Duration::from_millis(15));
        assert!(ps.wall > std::time::Duration::ZERO);
        let u = ps.utilization();
        assert!((0.0..=1.0).contains(&u), "utilization {u}");

        // Serial mode: one thread, fully busy.
        let ps1 = run_batch(1, vec![|| (), || ()]);
        assert_eq!((ps1.threads, ps1.jobs, ps1.steals), (1, 2, 0));

        let mut acc = PoolStats::default();
        acc.absorb(&ps);
        acc.absorb(&ps1);
        assert_eq!(acc.jobs, 12);
        assert_eq!(acc.threads, 4);
    }

    /// Worker death mid-batch: a panicking job kills its worker thread in
    /// the propagating mode, but every other job still runs (survivors
    /// steal the dead worker's queue) and the panic reaches the caller.
    #[test]
    fn worker_death_mid_batch_drains_and_propagates() {
        let hits = AtomicU64::new(0);
        let jobs: Vec<Box<dyn FnOnce() + Send>> = (0..40u64)
            .map(|i| {
                let hits = &hits;
                Box::new(move || {
                    if i == 3 {
                        panic!("worker down");
                    }
                    hits.fetch_add(1, Ordering::SeqCst);
                }) as Box<dyn FnOnce() + Send>
            })
            .collect();
        let r = std::panic::catch_unwind(AssertUnwindSafe(|| run_batch(4, jobs)));
        assert!(r.is_err(), "the job panic must propagate");
        assert_eq!(
            hits.load(Ordering::SeqCst),
            39,
            "every non-panicking job must still run (queued jobs are never dropped)"
        );
    }

    /// The catching mode isolates worker death: the batch completes, stats
    /// stay consistent, and the panic count is exact.
    #[test]
    fn catching_mode_isolates_worker_death() {
        for workers in [1, 2, 4] {
            let hits = AtomicU64::new(0);
            let jobs: Vec<Box<dyn FnOnce() + Send>> = (0..30u64)
                .map(|i| {
                    let hits = &hits;
                    Box::new(move || {
                        if i % 10 == 0 {
                            panic!("injected");
                        }
                        hits.fetch_add(1, Ordering::SeqCst);
                    }) as Box<dyn FnOnce() + Send>
                })
                .collect();
            let ps = run_batch_catching(workers, jobs);
            assert_eq!(hits.load(Ordering::SeqCst), 27);
            assert_eq!(ps.jobs, 30, "stats count every submitted job");
            assert_eq!(ps.panicked, 3, "stats count every isolated panic");
            assert!(ps.threads <= workers.max(1));
            assert!(ps.busy <= ps.wall * ps.threads as u32 + Duration::from_millis(5));
            let u = ps.utilization();
            assert!((0.0..=1.0).contains(&u), "utilization {u}");
        }
    }

    /// Drop-while-queued: jobs whose worker dies while they are still
    /// queued are stolen and executed by the survivors — nothing is
    /// silently dropped, in either mode.
    #[test]
    fn queued_jobs_survive_worker_death() {
        let hits = AtomicU64::new(0);
        // Worker 0 gets jobs 0,2,4,... (round-robin over 2 workers); job 0
        // panics immediately while the rest of its deque is still queued.
        let jobs: Vec<Box<dyn FnOnce() + Send>> = (0..20u64)
            .map(|i| {
                let hits = &hits;
                Box::new(move || {
                    if i == 0 {
                        panic!("die with a full queue");
                    }
                    std::thread::sleep(Duration::from_micros(200));
                    hits.fetch_add(1, Ordering::SeqCst);
                }) as Box<dyn FnOnce() + Send>
            })
            .collect();
        let ps = run_batch_catching(2, jobs);
        assert_eq!(hits.load(Ordering::SeqCst), 19);
        assert_eq!((ps.jobs, ps.panicked), (20, 1));
    }

    /// Zero-length batch submission: a no-op with internally consistent
    /// stats in both modes.
    #[test]
    fn zero_length_batch_stats_are_consistent() {
        for ps in [
            run_batch(4, Vec::<fn()>::new()),
            run_batch_catching(4, Vec::<fn()>::new()),
        ] {
            assert_eq!((ps.jobs, ps.steals, ps.panicked), (0, 0, 0));
            assert_eq!(ps.threads, 1, "an empty batch runs inline");
            assert_eq!(ps.max_queue_depth, 0);
            assert_eq!(ps.utilization(), 0.0);
            assert!(ps.busy <= ps.wall + Duration::from_millis(1));
        }
    }
}
