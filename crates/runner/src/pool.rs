//! A hand-rolled work-stealing batch executor on `std::thread`.
//!
//! The container has no crates.io access, so this is deliberately std-only
//! (matching the vendored `proptest`/`criterion` shims). The model is batch
//! execution: all jobs are known up front, distributed round-robin across
//! per-worker deques, and each worker pops from the *front* of its own deque
//! (preserving locality and submission order) while stealing from the *back*
//! of the busiest other deque when it runs dry. Workers exit when every
//! deque is empty; [`run_batch`] returns once all jobs have finished.
//!
//! Determinism note: jobs may run in any order and on any thread, so callers
//! must only submit jobs whose *results* are order-independent (the memoized
//! simulation cells are — each cell is a pure function of its spec).

use std::collections::VecDeque;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// What one [`run_batch`] call did: scheduling counters for the run-level
/// metrics report. Host-time measurements only — batch *results* are
/// identical for every worker count.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Worker threads actually used (≤ the requested count; 1 in serial
    /// mode).
    pub threads: usize,
    /// Jobs executed.
    pub jobs: usize,
    /// Jobs a worker stole from another worker's deque.
    pub steals: u64,
    /// Wall time of the whole batch.
    pub wall: Duration,
    /// Summed per-worker time spent inside jobs (≤ `threads × wall`).
    pub busy: Duration,
    /// Deepest initial per-worker queue (round-robin distribution, so
    /// `ceil(jobs / threads)`).
    pub max_queue_depth: usize,
}

impl PoolStats {
    /// Fraction of worker-seconds spent inside jobs (0.0 for an empty
    /// batch): `busy / (threads × wall)`.
    #[must_use]
    pub fn utilization(&self) -> f64 {
        let denom = self.wall.as_secs_f64() * self.threads as f64;
        if self.jobs == 0 || denom <= 0.0 {
            0.0
        } else {
            (self.busy.as_secs_f64() / denom).min(1.0)
        }
    }

    /// Fold another batch's stats into this accumulator (wall times add;
    /// `threads` and `max_queue_depth` take the maximum).
    pub fn absorb(&mut self, other: &PoolStats) {
        self.threads = self.threads.max(other.threads);
        self.jobs += other.jobs;
        self.steals += other.steals;
        self.wall += other.wall;
        self.busy += other.busy;
        self.max_queue_depth = self.max_queue_depth.max(other.max_queue_depth);
    }
}

/// Run every job, using up to `workers` OS threads. Returns scheduling
/// statistics for the batch.
///
/// `workers <= 1` (or a batch of one job) degenerates to serial in-order
/// execution on the calling thread — the `--workers 1` reference mode.
///
/// # Panics
/// A panicking job aborts the batch: the panic is propagated to the caller
/// once the surviving workers drain the remaining jobs.
pub fn run_batch<F: FnOnce() + Send>(workers: usize, jobs: Vec<F>) -> PoolStats {
    let started = Instant::now();
    if workers <= 1 || jobs.len() <= 1 {
        let n = jobs.len();
        for job in jobs {
            job();
        }
        let wall = started.elapsed();
        return PoolStats {
            threads: 1,
            jobs: n,
            steals: 0,
            wall,
            busy: wall,
            max_queue_depth: n,
        };
    }
    let n = workers.min(jobs.len());
    let total_jobs = jobs.len();
    let deques: Vec<Mutex<VecDeque<F>>> = (0..n).map(|_| Mutex::new(VecDeque::new())).collect();
    for (i, job) in jobs.into_iter().enumerate() {
        deques[i % n].lock().unwrap().push_back(job);
    }
    let max_queue_depth = total_jobs.div_ceil(n);
    let mut busy = Duration::ZERO;
    let mut steals = 0u64;
    std::thread::scope(|s| {
        let deques = &deques;
        let handles: Vec<_> = (0..n)
            .map(|me| s.spawn(move || worker(me, deques)))
            .collect();
        for h in handles {
            match h.join() {
                Ok((b, st)) => {
                    busy += b;
                    steals += st;
                }
                Err(p) => std::panic::resume_unwind(p),
            }
        }
    });
    PoolStats {
        threads: n,
        jobs: total_jobs,
        steals,
        wall: started.elapsed(),
        busy,
        max_queue_depth,
    }
}

fn worker<F: FnOnce()>(me: usize, deques: &[Mutex<VecDeque<F>>]) -> (Duration, u64) {
    let mut busy = Duration::ZERO;
    let mut steals = 0u64;
    loop {
        // Own work first, oldest first.
        let own = deques[me].lock().unwrap().pop_front();
        if let Some(job) = own {
            let t = Instant::now();
            job();
            busy += t.elapsed();
            continue;
        }
        // Steal from the fullest victim, youngest first, so two thieves
        // spread across different victims instead of racing on one.
        let victim = (0..deques.len())
            .filter(|&v| v != me)
            .max_by_key(|&v| deques[v].lock().unwrap().len());
        let stolen = victim.and_then(|v| deques[v].lock().unwrap().pop_back());
        match stolen {
            Some(job) => {
                steals += 1;
                let t = Instant::now();
                job();
                busy += t.elapsed();
            }
            None => return (busy, steals), // every deque observed empty
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn all_jobs_run_exactly_once() {
        for workers in [1, 2, 4, 8] {
            let hits = AtomicU64::new(0);
            let jobs: Vec<_> = (0..97u64)
                .map(|i| {
                    let hits = &hits;
                    move || {
                        hits.fetch_add(i + 1, Ordering::SeqCst);
                    }
                })
                .collect();
            run_batch(workers, jobs);
            assert_eq!(hits.load(Ordering::SeqCst), (1..=97).sum::<u64>());
        }
    }

    #[test]
    fn serial_mode_preserves_submission_order() {
        let order = Mutex::new(Vec::new());
        let jobs: Vec<_> = (0..10)
            .map(|i| {
                let order = &order;
                move || order.lock().unwrap().push(i)
            })
            .collect();
        run_batch(1, jobs);
        assert_eq!(*order.lock().unwrap(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn more_workers_than_jobs_is_fine() {
        let hits = AtomicU64::new(0);
        let jobs: Vec<_> = (0..3)
            .map(|_| {
                let hits = &hits;
                move || {
                    hits.fetch_add(1, Ordering::SeqCst);
                }
            })
            .collect();
        run_batch(64, jobs);
        assert_eq!(hits.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let ps = run_batch(4, Vec::<fn()>::new());
        assert_eq!(ps.jobs, 0);
        assert_eq!(ps.utilization(), 0.0);
    }

    #[test]
    fn batch_stats_account_for_the_batch() {
        let jobs: Vec<_> = (0..10)
            .map(|_| || std::thread::sleep(std::time::Duration::from_millis(2)))
            .collect();
        let ps = run_batch(4, jobs);
        assert_eq!(ps.jobs, 10);
        assert_eq!(ps.threads, 4);
        assert_eq!(ps.max_queue_depth, 3); // ceil(10/4)
        assert!(ps.busy >= std::time::Duration::from_millis(15));
        assert!(ps.wall > std::time::Duration::ZERO);
        let u = ps.utilization();
        assert!((0.0..=1.0).contains(&u), "utilization {u}");

        // Serial mode: one thread, fully busy.
        let ps1 = run_batch(1, vec![|| (), || ()]);
        assert_eq!((ps1.threads, ps1.jobs, ps1.steals), (1, 2, 0));

        let mut acc = PoolStats::default();
        acc.absorb(&ps);
        acc.absorb(&ps1);
        assert_eq!(acc.jobs, 12);
        assert_eq!(acc.threads, 4);
    }
}
