//! A hand-rolled work-stealing batch executor on `std::thread`.
//!
//! The container has no crates.io access, so this is deliberately std-only
//! (matching the vendored `proptest`/`criterion` shims). The model is batch
//! execution: all jobs are known up front, distributed round-robin across
//! per-worker deques, and each worker pops from the *front* of its own deque
//! (preserving locality and submission order) while stealing from the *back*
//! of the busiest other deque when it runs dry. Workers exit when every
//! deque is empty; [`run_batch`] returns once all jobs have finished.
//!
//! Determinism note: jobs may run in any order and on any thread, so callers
//! must only submit jobs whose *results* are order-independent (the memoized
//! simulation cells are — each cell is a pure function of its spec).

use std::collections::VecDeque;
use std::sync::Mutex;

/// Run every job, using up to `workers` OS threads.
///
/// `workers <= 1` (or a batch of one job) degenerates to serial in-order
/// execution on the calling thread — the `--workers 1` reference mode.
///
/// # Panics
/// A panicking job aborts the batch: the panic is propagated to the caller
/// once the surviving workers drain the remaining jobs.
pub fn run_batch<F: FnOnce() + Send>(workers: usize, jobs: Vec<F>) {
    if workers <= 1 || jobs.len() <= 1 {
        for job in jobs {
            job();
        }
        return;
    }
    let n = workers.min(jobs.len());
    let deques: Vec<Mutex<VecDeque<F>>> = (0..n).map(|_| Mutex::new(VecDeque::new())).collect();
    for (i, job) in jobs.into_iter().enumerate() {
        deques[i % n].lock().unwrap().push_back(job);
    }
    std::thread::scope(|s| {
        let deques = &deques;
        for me in 0..n {
            s.spawn(move || worker(me, deques));
        }
    });
}

fn worker<F: FnOnce()>(me: usize, deques: &[Mutex<VecDeque<F>>]) {
    loop {
        // Own work first, oldest first.
        let own = deques[me].lock().unwrap().pop_front();
        if let Some(job) = own {
            job();
            continue;
        }
        // Steal from the fullest victim, youngest first, so two thieves
        // spread across different victims instead of racing on one.
        let victim = (0..deques.len())
            .filter(|&v| v != me)
            .max_by_key(|&v| deques[v].lock().unwrap().len());
        let stolen = victim.and_then(|v| deques[v].lock().unwrap().pop_back());
        match stolen {
            Some(job) => job(),
            None => return, // every deque observed empty
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn all_jobs_run_exactly_once() {
        for workers in [1, 2, 4, 8] {
            let hits = AtomicU64::new(0);
            let jobs: Vec<_> = (0..97u64)
                .map(|i| {
                    let hits = &hits;
                    move || {
                        hits.fetch_add(i + 1, Ordering::SeqCst);
                    }
                })
                .collect();
            run_batch(workers, jobs);
            assert_eq!(hits.load(Ordering::SeqCst), (1..=97).sum::<u64>());
        }
    }

    #[test]
    fn serial_mode_preserves_submission_order() {
        let order = Mutex::new(Vec::new());
        let jobs: Vec<_> = (0..10)
            .map(|i| {
                let order = &order;
                move || order.lock().unwrap().push(i)
            })
            .collect();
        run_batch(1, jobs);
        assert_eq!(*order.lock().unwrap(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn more_workers_than_jobs_is_fine() {
        let hits = AtomicU64::new(0);
        let jobs: Vec<_> = (0..3)
            .map(|_| {
                let hits = &hits;
                move || {
                    hits.fetch_add(1, Ordering::SeqCst);
                }
            })
            .collect();
        run_batch(64, jobs);
        assert_eq!(hits.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn empty_batch_is_a_noop() {
        run_batch(4, Vec::<fn()>::new());
    }
}
