//! Property tests: execution semantics and wrong-path isolation.

use ci_emu::exec::{alu_result, branch_taken, effective_addr};
use ci_emu::{run_trace, Emulator};
use ci_isa::{Addr, Op, Pc, Reg};
use ci_workloads::random_program;
use proptest::prelude::*;

proptest! {
    #[test]
    fn alu_algebra(a in any::<u64>(), b in any::<u64>(), imm in any::<i64>()) {
        // Commutativity.
        prop_assert_eq!(alu_result(Op::Add, a, b, 0), alu_result(Op::Add, b, a, 0));
        prop_assert_eq!(alu_result(Op::Mul, a, b, 0), alu_result(Op::Mul, b, a, 0));
        prop_assert_eq!(alu_result(Op::Xor, a, b, 0), alu_result(Op::Xor, b, a, 0));
        // Xor is self-inverse.
        prop_assert_eq!(alu_result(Op::Xor, alu_result(Op::Xor, a, b, 0), b, 0), a);
        // Comparison results are boolean.
        prop_assert!(alu_result(Op::Slt, a, b, 0) <= 1);
        prop_assert!(alu_result(Op::Sltu, a, b, 0) <= 1);
        prop_assert!(alu_result(Op::Slti, a, 0, imm) <= 1);
        // Immediate forms agree with register forms.
        prop_assert_eq!(alu_result(Op::Addi, a, 0, imm), alu_result(Op::Add, a, imm as u64, 0));
    }

    #[test]
    fn branch_conditions_partition(a in any::<u64>(), b in any::<u64>()) {
        prop_assert_ne!(branch_taken(Op::Beq, a, b), branch_taken(Op::Bne, a, b));
        prop_assert_ne!(branch_taken(Op::Blt, a, b), branch_taken(Op::Bge, a, b));
    }

    #[test]
    fn effective_addr_is_wrapping_add(base in any::<u64>(), imm in any::<i64>()) {
        prop_assert_eq!(effective_addr(base, imm).0, base.wrapping_add(imm as u64));
    }

    #[test]
    fn wrong_path_forks_never_mutate_parent(seed in 0u64..500, steps in 0usize..200, fork_pc in 0u32..50) {
        let p = random_program(seed, 60);
        let mut emu = Emulator::new(&p);
        for _ in 0..steps {
            if emu.halted() || emu.step().is_err() {
                break;
            }
        }
        let regs_before: Vec<u64> = Reg::all().map(|r| emu.reg(r)).collect();
        let pc_before = emu.pc();
        let mut wp = emu.fork_wrong_path(Pc(fork_pc));
        let _ = wp.run_until(|_| false, 300);
        let regs_after: Vec<u64> = Reg::all().map(|r| emu.reg(r)).collect();
        prop_assert_eq!(regs_before, regs_after);
        prop_assert_eq!(pc_before, emu.pc());
    }

    #[test]
    fn wrong_path_forks_never_mutate_parent_memory(
        seed in 0u64..500, steps in 0usize..200, fork_pc in 0u32..50
    ) {
        // The fork overlays its stores on the parent memory copy-on-write;
        // however much the wrong path writes, every parent address must read
        // back unchanged (random programs store to small absolute
        // addresses, so scanning a prefix of the address space sees them).
        let p = random_program(seed, 60);
        let mut emu = Emulator::new(&p);
        for _ in 0..steps {
            if emu.halted() || emu.step().is_err() {
                break;
            }
        }
        let mem_before: Vec<u64> = (0..256).map(|a| emu.memory().read(Addr(a))).collect();
        let pages_before = emu.memory().resident_pages();
        let mut wp = emu.fork_wrong_path(Pc(fork_pc));
        let _ = wp.run_until(|_| false, 300);
        let mem_after: Vec<u64> = (0..256).map(|a| emu.memory().read(Addr(a))).collect();
        prop_assert_eq!(mem_before, mem_after);
        prop_assert_eq!(pages_before, emu.memory().resident_pages());
    }

    #[test]
    fn random_program_is_deterministic(seed in any::<u64>(), size in 4usize..200) {
        // Same (seed, size_hint) → bit-identical program: fuzz artifacts and
        // property-test counterexamples replay from the two integers alone.
        prop_assert_eq!(random_program(seed, size), random_program(seed, size));
    }

    #[test]
    fn trace_is_deterministic(seed in 0u64..500, max in 1u64..5_000) {
        // Two independent emulations of the same program must retire the
        // identical dynamic instruction stream (the pipeline's oracle
        // depends on this).
        let p = random_program(seed, 80);
        let t1 = run_trace(&p, max);
        let t2 = run_trace(&p, max);
        match (t1, t2) {
            (Ok(a), Ok(b)) => prop_assert_eq!(a, b),
            (Err(_), Err(_)) => {}
            (a, b) => prop_assert!(false, "divergent outcomes: {a:?} vs {b:?}"),
        }
    }
}
