//! Pure instruction semantics, shared by the functional emulator and the
//! execution-driven pipeline simulator.
//!
//! Keeping these as free functions over operand *values* guarantees the
//! out-of-order simulator and the architectural checker can never disagree
//! about what an instruction computes — only about *when*.

use ci_isa::{Addr, Op};

/// Result of a non-memory, non-control operation on operand values `a`
/// (`rs1`), `b` (`rs2`) and the immediate.
///
/// Division by zero yields `u64::MAX` (the ISA's defined semantics — no
/// faults).
///
/// # Panics
/// Panics if `op` is a memory, control or halt operation; callers dispatch on
/// [`ci_isa::InstClass`] first.
#[must_use]
pub fn alu_result(op: Op, a: u64, b: u64, imm: i64) -> u64 {
    let imm_u = imm as u64;
    match op {
        Op::Add => a.wrapping_add(b),
        Op::Sub => a.wrapping_sub(b),
        Op::Mul => a.wrapping_mul(b),
        Op::Div => a.checked_div(b).unwrap_or(u64::MAX),
        Op::And => a & b,
        Op::Or => a | b,
        Op::Xor => a ^ b,
        Op::Sll => a << (b & 63),
        Op::Srl => a >> (b & 63),
        Op::Slt => u64::from((a as i64) < (b as i64)),
        Op::Sltu => u64::from(a < b),
        Op::Addi => a.wrapping_add(imm_u),
        Op::Andi => a & imm_u,
        Op::Ori => a | imm_u,
        Op::Xori => a ^ imm_u,
        Op::Slti => u64::from((a as i64) < imm),
        Op::Slli => a << (imm_u & 63),
        Op::Srli => a >> (imm_u & 63),
        Op::Nop => 0,
        _ => panic!("alu_result called on non-ALU op {op:?}"),
    }
}

/// Whether the conditional branch `op` is taken for operand values `a`, `b`.
///
/// # Panics
/// Panics if `op` is not a conditional branch.
#[must_use]
pub fn branch_taken(op: Op, a: u64, b: u64) -> bool {
    match op {
        Op::Beq => a == b,
        Op::Bne => a != b,
        Op::Blt => (a as i64) < (b as i64),
        Op::Bge => (a as i64) >= (b as i64),
        _ => panic!("branch_taken called on non-branch op {op:?}"),
    }
}

/// Effective address of a load/store with base value `base` and offset `imm`.
#[must_use]
pub fn effective_addr(base: u64, imm: i64) -> Addr {
    Addr(base.wrapping_add(imm as u64))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        assert_eq!(alu_result(Op::Add, 2, 3, 0), 5);
        assert_eq!(alu_result(Op::Sub, 2, 3, 0), u64::MAX); // wraps
        assert_eq!(alu_result(Op::Mul, 4, 5, 0), 20);
        assert_eq!(alu_result(Op::Div, 20, 5, 0), 4);
        assert_eq!(alu_result(Op::Div, 1, 0, 0), u64::MAX);
    }

    #[test]
    fn logic_and_shifts() {
        assert_eq!(alu_result(Op::And, 0b1100, 0b1010, 0), 0b1000);
        assert_eq!(alu_result(Op::Or, 0b1100, 0b1010, 0), 0b1110);
        assert_eq!(alu_result(Op::Xor, 0b1100, 0b1010, 0), 0b0110);
        assert_eq!(alu_result(Op::Sll, 1, 65, 0), 2); // shift amount masked
        assert_eq!(alu_result(Op::Srl, 8, 3, 0), 1);
        assert_eq!(alu_result(Op::Slli, 1, 0, 4), 16);
        assert_eq!(alu_result(Op::Srli, 16, 0, 4), 1);
    }

    #[test]
    fn comparisons_signed_vs_unsigned() {
        let neg1 = -1i64 as u64;
        assert_eq!(alu_result(Op::Slt, neg1, 0, 0), 1); // -1 < 0 signed
        assert_eq!(alu_result(Op::Sltu, neg1, 0, 0), 0); // MAX < 0 unsigned: no
        assert_eq!(alu_result(Op::Slti, neg1, 0, 5), 1);
    }

    #[test]
    fn immediates() {
        assert_eq!(alu_result(Op::Addi, 10, 0, -3), 7);
        assert_eq!(alu_result(Op::Andi, 0xff, 0, 0x0f), 0x0f);
        assert_eq!(alu_result(Op::Ori, 0x1, 0, 0x10), 0x11);
        assert_eq!(alu_result(Op::Xori, 0x3, 0, 0x1), 0x2);
    }

    #[test]
    fn branches() {
        assert!(branch_taken(Op::Beq, 4, 4));
        assert!(!branch_taken(Op::Beq, 4, 5));
        assert!(branch_taken(Op::Bne, 4, 5));
        assert!(branch_taken(Op::Blt, -2i64 as u64, 1));
        assert!(!branch_taken(Op::Blt, 1, -2i64 as u64));
        assert!(branch_taken(Op::Bge, 1, -2i64 as u64));
    }

    #[test]
    fn addresses_wrap() {
        assert_eq!(effective_addr(10, -2), Addr(8));
        assert_eq!(effective_addr(0, -1), Addr(u64::MAX));
    }

    #[test]
    #[should_panic(expected = "non-ALU")]
    fn alu_rejects_control() {
        let _ = alu_result(Op::Beq, 0, 0, 0);
    }

    #[test]
    #[should_panic(expected = "non-branch")]
    fn branch_rejects_alu() {
        let _ = branch_taken(Op::Add, 0, 0);
    }
}
