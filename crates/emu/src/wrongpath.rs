//! Copy-on-write emulation of mispredicted paths.

use crate::emulator::{exec_step, EmuError, ExecCtx};
use crate::{DynInst, Memory};
use ci_isa::{Addr, Pc, Program, Reg};
use std::collections::HashMap;

struct OverlayCtx<'a> {
    regs: [u64; Reg::COUNT],
    base: &'a Memory,
    writes: HashMap<Addr, u64>,
}

impl ExecCtx for OverlayCtx<'_> {
    fn read_reg(&self, r: Reg) -> u64 {
        self.regs[r.number() as usize]
    }
    fn write_reg(&mut self, r: Reg, v: u64) {
        if !r.is_zero() {
            self.regs[r.number() as usize] = v;
        }
    }
    fn read_mem(&self, a: Addr) -> u64 {
        self.writes
            .get(&a)
            .copied()
            .unwrap_or_else(|| self.base.read(a))
    }
    fn write_mem(&mut self, a: Addr, v: u64) {
        self.writes.insert(a, v);
    }
}

/// A copy-on-write fork of a running [`crate::Emulator`], used to execute a
/// *mispredicted* path with the data values it would really compute.
///
/// The fork copies the register file and overlays memory writes on the parent
/// emulator's memory, so forking is cheap even for large memories. The wrong
/// path runs until a caller-chosen stopping point — typically the mispredicted
/// branch's reconvergent PC — or an instruction budget.
///
/// Unlike the architecturally correct emulator, a wrong path may compute
/// garbage control flow; running off the end of the program or exceeding the
/// budget simply ends the path rather than raising an error.
#[derive(Debug)]
pub struct WrongPathEmu<'a> {
    program: &'a Program,
    ctx: OverlayCtx<'a>,
    pc: Pc,
    halted: bool,
}

impl std::fmt::Debug for OverlayCtx<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OverlayCtx")
            .field("writes", &self.writes.len())
            .finish_non_exhaustive()
    }
}

impl<'a> WrongPathEmu<'a> {
    pub(crate) fn new(
        program: &'a Program,
        regs: [u64; Reg::COUNT],
        base: &'a Memory,
        start: Pc,
    ) -> WrongPathEmu<'a> {
        WrongPathEmu {
            program,
            ctx: OverlayCtx {
                regs,
                base,
                writes: HashMap::new(),
            },
            pc: start,
            halted: false,
        }
    }

    /// Current wrong-path PC.
    #[must_use]
    pub fn pc(&self) -> Pc {
        self.pc
    }

    /// Whether the wrong path executed a `halt` or left the program.
    #[must_use]
    pub fn ended(&self) -> bool {
        self.halted
    }

    /// Execute one wrong-path instruction. Returns `None` once the path ends
    /// (halt executed or control flow left the program).
    pub fn step(&mut self) -> Option<DynInst> {
        if self.halted {
            return None;
        }
        match exec_step(self.program, self.pc, &mut self.ctx) {
            Ok((d, halted)) => {
                self.pc = d.next_pc;
                self.halted = halted;
                Some(d)
            }
            Err(EmuError::PcOutOfRange(_)) => {
                self.halted = true;
                None
            }
        }
    }

    /// Run until `stop(pc)` is true *before* executing the instruction at
    /// `pc`, the path ends, or `max` instructions have executed.
    ///
    /// Returns the wrong-path instructions and whether the stopping predicate
    /// was reached (as opposed to the budget/end-of-path).
    pub fn run_until(&mut self, stop: impl Fn(Pc) -> bool, max: usize) -> (Vec<DynInst>, bool) {
        let mut out = Vec::new();
        while out.len() < max {
            if stop(self.pc) {
                return (out, true);
            }
            match self.step() {
                Some(d) => out.push(d),
                None => return (out, false),
            }
        }
        (out, stop(self.pc))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Emulator;
    use ci_isa::{Asm, Op};

    /// if (r1 == 0) { r2 = 7; } else { r2 = 9; }  r3 = r2 + 1; halt
    fn diamond() -> Program {
        let mut a = Asm::new();
        a.beq(Reg::R1, Reg::R0, "then");
        a.li(Reg::R2, 9);
        a.jump("join");
        a.label("then").unwrap();
        a.li(Reg::R2, 7);
        a.label("join").unwrap();
        a.addi(Reg::R3, Reg::R2, 1);
        a.halt();
        a.assemble().unwrap()
    }

    #[test]
    fn wrong_path_computes_wrong_values_without_corrupting_parent() {
        let p = diamond();
        let emu = Emulator::new(&p); // r1 == 0, correct path is `then`
                                     // Mispredict the branch as not-taken: wrong path starts at pc 1.
        let mut wp = emu.fork_wrong_path(Pc(1));
        let join = p.label("join").unwrap();
        let (path, reached) = wp.run_until(|pc| pc == join, 100);
        assert!(reached);
        // Wrong path: li r2, 9; jump join.
        assert_eq!(path.len(), 2);
        assert_eq!(path[0].value, Some(9));
        assert_eq!(path[1].inst.op, Op::Jump);
        // Parent state untouched.
        assert_eq!(emu.reg(Reg::R2), 0);
        assert_eq!(emu.pc(), Pc(0));
    }

    #[test]
    fn wrong_path_memory_is_overlaid() {
        let mut a = Asm::new();
        a.word(Addr(0x10), 5);
        a.store(Reg::R0, Reg::R0, 0x10); // mem[0x10] = 0 on this path
        a.load(Reg::R1, Reg::R0, 0x10);
        a.halt();
        let p = a.assemble().unwrap();
        let emu = Emulator::new(&p);
        let mut wp = emu.fork_wrong_path(Pc(0));
        wp.step();
        let d = wp.step().unwrap();
        assert_eq!(d.value, Some(0)); // sees its own store
        assert_eq!(emu.memory().read(Addr(0x10)), 5); // parent unaffected
    }

    #[test]
    fn path_ends_on_halt_and_out_of_range() {
        let p = diamond();
        let emu = Emulator::new(&p);
        let mut wp = emu.fork_wrong_path(Pc(5)); // halt
        assert!(wp.step().is_some());
        assert!(wp.ended());
        assert!(wp.step().is_none());

        let mut wp2 = emu.fork_wrong_path(Pc(99)); // out of range
        let (path, reached) = wp2.run_until(|_| false, 10);
        assert!(path.is_empty());
        assert!(!reached);
    }

    #[test]
    fn budget_respected() {
        let mut a = Asm::new();
        a.label("spin").unwrap();
        a.jump("spin");
        let p = a.assemble().unwrap();
        let emu = Emulator::new(&p);
        let mut wp = emu.fork_wrong_path(Pc(0));
        let (path, reached) = wp.run_until(|_| false, 5);
        assert_eq!(path.len(), 5);
        assert!(!reached);
    }
}
