//! Dynamic instruction records and whole-program traces.

use ci_isa::{Addr, Inst, InstClass, Pc, Reg};

/// One dynamically executed instruction.
///
/// Produced by the functional [`crate::Emulator`] (correct path) and by
/// [`crate::WrongPathEmu`] (mispredicted paths, with their real wrong
/// values). Timing simulators consume these records; the pipeline simulator
/// also uses them as its architectural reference at retirement.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DynInst {
    /// The instruction's PC.
    pub pc: Pc,
    /// The decoded instruction.
    pub inst: Inst,
    /// The PC of the next instruction actually executed.
    pub next_pc: Pc,
    /// For conditional branches, whether the branch was taken. `false` for
    /// all other classes.
    pub taken: bool,
    /// Effective address for loads and stores.
    pub addr: Option<Addr>,
    /// The value produced: destination result for register writers, the
    /// stored value for stores, `None` otherwise.
    pub value: Option<u64>,
}

impl DynInst {
    /// The instruction's class.
    #[must_use]
    pub fn class(&self) -> InstClass {
        self.inst.class()
    }

    /// Architectural destination register, if any (never `r0`).
    #[must_use]
    pub fn dest(&self) -> Option<Reg> {
        self.inst.dest()
    }

    /// Architectural source registers (excluding `r0`).
    pub fn sources(&self) -> impl Iterator<Item = Reg> {
        self.inst.sources()
    }

    /// Whether a fetch unit needs a prediction to proceed past this
    /// instruction (conditional branch or indirect control flow).
    #[must_use]
    pub fn needs_prediction(&self) -> bool {
        self.class().needs_prediction()
    }

    /// One-line human-readable summary for diagnostics: PC, disassembly,
    /// actual next PC, and whichever of address/value/direction apply.
    #[must_use]
    pub fn summary(&self) -> String {
        let mut s = format!("{} {} -> {}", self.pc, self.inst, self.next_pc);
        if let Some(a) = self.addr {
            s.push_str(&format!(" addr={a}"));
        }
        if let Some(v) = self.value {
            s.push_str(&format!(" value={v:#x}"));
        }
        if self.class() == InstClass::CondBranch {
            s.push_str(if self.taken { " taken" } else { " not-taken" });
        }
        s
    }
}

/// A correct-path dynamic instruction trace.
///
/// ```
/// use ci_isa::{Asm, Reg};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut a = Asm::new();
/// a.li(Reg::R1, 1);
/// a.halt();
/// let trace = ci_emu::run_trace(&a.assemble()?, 10)?;
/// assert!(trace.completed());
/// assert_eq!(trace.len(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Trace {
    insts: Vec<DynInst>,
    completed: bool,
}

impl Trace {
    pub(crate) fn new(insts: Vec<DynInst>, completed: bool) -> Trace {
        Trace { insts, completed }
    }

    /// Assemble a trace from raw parts — for simulators that interleave
    /// tracing with other per-instruction work and cannot use
    /// [`crate::run_trace`].
    #[must_use]
    pub fn from_parts(insts: Vec<DynInst>, completed: bool) -> Trace {
        Trace { insts, completed }
    }

    /// Number of dynamic instructions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether the trace is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Whether the program ran to its `halt` (as opposed to hitting the
    /// caller's instruction budget).
    #[must_use]
    pub fn completed(&self) -> bool {
        self.completed
    }

    /// The instructions in execution order.
    #[must_use]
    pub fn insts(&self) -> &[DynInst] {
        &self.insts
    }

    /// The `i`-th dynamic instruction.
    #[must_use]
    pub fn get(&self, i: usize) -> Option<&DynInst> {
        self.insts.get(i)
    }

    /// Iterate over the instructions.
    pub fn iter(&self) -> std::slice::Iter<'_, DynInst> {
        self.insts.iter()
    }

    /// Count of instructions needing prediction (conditional branches and
    /// indirect jumps/returns).
    #[must_use]
    pub fn predicted_control_count(&self) -> usize {
        self.insts.iter().filter(|d| d.needs_prediction()).count()
    }
}

impl std::ops::Index<usize> for Trace {
    type Output = DynInst;

    fn index(&self, i: usize) -> &DynInst {
        &self.insts[i]
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a DynInst;
    type IntoIter = std::slice::Iter<'a, DynInst>;

    fn into_iter(self) -> Self::IntoIter {
        self.insts.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ci_isa::{Asm, Op};

    fn sample() -> Trace {
        let mut a = Asm::new();
        a.li(Reg::R1, 2);
        a.label("top").unwrap();
        a.addi(Reg::R1, Reg::R1, -1);
        a.bne(Reg::R1, Reg::R0, "top");
        a.halt();
        crate::run_trace(&a.assemble().unwrap(), 100).unwrap()
    }

    #[test]
    fn indexing_and_iteration() {
        let t = sample();
        assert_eq!(t.len(), 6);
        assert_eq!(t[0].inst.op, Op::Addi);
        assert_eq!(t.iter().count(), t.len());
        assert_eq!((&t).into_iter().count(), t.len());
        assert!(t.get(100).is_none());
    }

    #[test]
    fn branch_records() {
        let t = sample();
        // First bne: r1 == 1, taken.
        let b1 = t[2];
        assert_eq!(b1.class(), InstClass::CondBranch);
        assert!(b1.taken);
        assert_eq!(b1.next_pc, Pc(1));
        // Second bne: r1 == 0, not taken.
        let b2 = t[4];
        assert!(!b2.taken);
        assert_eq!(b2.next_pc, Pc(3));
        assert_eq!(t.predicted_control_count(), 2);
    }

    #[test]
    fn values_recorded() {
        let t = sample();
        assert_eq!(t[0].value, Some(2));
        assert_eq!(t[1].value, Some(1));
        assert_eq!(t[0].dest(), Some(Reg::R1));
    }
}
