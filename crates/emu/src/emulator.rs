//! The in-order functional emulator.

use crate::exec::{alu_result, branch_taken, effective_addr};
use crate::{DynInst, Memory, Trace, WrongPathEmu};
use ci_isa::{Addr, InstClass, Pc, Program, Reg};
use std::error::Error;
use std::fmt;

/// Errors raised during functional emulation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum EmuError {
    /// Control flow left the program (no instruction at this PC). Correct
    /// programs end in `halt`, so this indicates a bad program or a bug.
    PcOutOfRange(Pc),
}

impl fmt::Display for EmuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EmuError::PcOutOfRange(pc) => write!(f, "control flow left the program at {pc}"),
        }
    }
}

impl Error for EmuError {}

/// Register/memory access abstraction so the correct-path emulator and the
/// copy-on-write wrong-path emulator share one `step` implementation.
pub(crate) trait ExecCtx {
    fn read_reg(&self, r: Reg) -> u64;
    fn write_reg(&mut self, r: Reg, v: u64);
    fn read_mem(&self, a: Addr) -> u64;
    fn write_mem(&mut self, a: Addr, v: u64);
}

/// Execute the instruction at `pc` against `ctx`.
///
/// Returns the dynamic record and whether the machine halted.
pub(crate) fn exec_step<C: ExecCtx>(
    program: &Program,
    pc: Pc,
    ctx: &mut C,
) -> Result<(DynInst, bool), EmuError> {
    let inst = *program.fetch(pc).ok_or(EmuError::PcOutOfRange(pc))?;
    let class = inst.class();
    let a = ctx.read_reg(inst.rs1);
    let b = ctx.read_reg(inst.rs2);

    let mut taken = false;
    let mut addr = None;
    let mut value = None;
    let mut halted = false;

    let next_pc = match class {
        InstClass::CondBranch => {
            taken = branch_taken(inst.op, a, b);
            if taken {
                Pc(inst.imm as u32)
            } else {
                pc.next()
            }
        }
        InstClass::Jump => Pc(inst.imm as u32),
        InstClass::Call => {
            let link = u64::from(pc.next().0);
            ctx.write_reg(inst.rd, link);
            if inst.rd != Reg::R0 {
                value = Some(link);
            }
            Pc(inst.imm as u32)
        }
        InstClass::Return | InstClass::IndirectJump => {
            let target = Pc(a.wrapping_add(inst.imm as u64) as u32);
            let link = u64::from(pc.next().0);
            ctx.write_reg(inst.rd, link);
            if inst.rd != Reg::R0 {
                value = Some(link);
            }
            target
        }
        InstClass::Load => {
            let ea = effective_addr(a, inst.imm);
            let v = ctx.read_mem(ea);
            ctx.write_reg(inst.rd, v);
            addr = Some(ea);
            value = Some(v);
            pc.next()
        }
        InstClass::Store => {
            let ea = effective_addr(a, inst.imm);
            ctx.write_mem(ea, b);
            addr = Some(ea);
            value = Some(b);
            pc.next()
        }
        InstClass::Halt => {
            halted = true;
            pc.next()
        }
        InstClass::IntAlu | InstClass::IntMul | InstClass::IntDiv => {
            let v = alu_result(inst.op, a, b, inst.imm);
            ctx.write_reg(inst.rd, v);
            if inst.dest().is_some() {
                value = Some(v);
            }
            pc.next()
        }
    };

    Ok((
        DynInst {
            pc,
            inst,
            next_pc,
            taken,
            addr,
            value,
        },
        halted,
    ))
}

#[derive(Debug)]
struct ArchCtx {
    regs: [u64; Reg::COUNT],
    mem: Memory,
}

impl ExecCtx for ArchCtx {
    fn read_reg(&self, r: Reg) -> u64 {
        self.regs[r.number() as usize]
    }
    fn write_reg(&mut self, r: Reg, v: u64) {
        if !r.is_zero() {
            self.regs[r.number() as usize] = v;
        }
    }
    fn read_mem(&self, a: Addr) -> u64 {
        self.mem.read(a)
    }
    fn write_mem(&mut self, a: Addr, v: u64) {
        self.mem.write(a, v);
    }
}

/// The in-order functional emulator: the architecturally correct execution of
/// a [`Program`].
///
/// ```
/// use ci_isa::{Asm, Reg};
/// use ci_emu::Emulator;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut a = Asm::new();
/// a.li(Reg::R1, 41);
/// a.addi(Reg::R1, Reg::R1, 1);
/// a.halt();
/// let program = a.assemble()?;
/// let mut emu = Emulator::new(&program);
/// while !emu.halted() {
///     emu.step()?;
/// }
/// assert_eq!(emu.reg(Reg::R1), 42);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Emulator<'p> {
    program: &'p Program,
    ctx: ArchCtx,
    pc: Pc,
    halted: bool,
    retired: u64,
}

impl<'p> Emulator<'p> {
    /// Create an emulator at the program's entry point with its initial data
    /// image loaded.
    #[must_use]
    pub fn new(program: &'p Program) -> Emulator<'p> {
        Emulator {
            program,
            ctx: ArchCtx {
                regs: [0; Reg::COUNT],
                mem: Memory::with_image(program.data()),
            },
            pc: program.entry(),
            halted: false,
            retired: 0,
        }
    }

    /// The program being executed.
    #[must_use]
    pub fn program(&self) -> &'p Program {
        self.program
    }

    /// Current PC.
    #[must_use]
    pub fn pc(&self) -> Pc {
        self.pc
    }

    /// Whether a `halt` has executed.
    #[must_use]
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Number of instructions executed so far (including the `halt`).
    #[must_use]
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// Current architectural value of `r`.
    #[must_use]
    pub fn reg(&self, r: Reg) -> u64 {
        self.ctx.read_reg(r)
    }

    /// Current architectural memory.
    #[must_use]
    pub fn memory(&self) -> &Memory {
        &self.ctx.mem
    }

    /// Execute one instruction, returning its dynamic record, or `None` if
    /// the machine has halted.
    ///
    /// # Errors
    /// [`EmuError::PcOutOfRange`] if control flow leaves the program.
    pub fn step(&mut self) -> Result<Option<DynInst>, EmuError> {
        if self.halted {
            return Ok(None);
        }
        let (d, halted) = exec_step(self.program, self.pc, &mut self.ctx)?;
        self.pc = d.next_pc;
        self.halted = halted;
        self.retired += 1;
        Ok(Some(d))
    }

    /// Fork a copy-on-write wrong-path emulator starting at `start`, used to
    /// execute a mispredicted path from the current architectural state.
    #[must_use]
    pub fn fork_wrong_path(&self, start: Pc) -> WrongPathEmu<'_> {
        WrongPathEmu::new(self.program, self.ctx.regs, &self.ctx.mem, start)
    }
}

/// Run `program` to completion (or `max_insts`), returning the correct-path
/// trace.
///
/// # Errors
/// [`EmuError::PcOutOfRange`] if control flow leaves the program.
pub fn run_trace(program: &Program, max_insts: u64) -> Result<Trace, EmuError> {
    let mut emu = Emulator::new(program);
    let mut insts = Vec::new();
    while !emu.halted() && emu.retired() < max_insts {
        match emu.step()? {
            Some(d) => insts.push(d),
            None => break,
        }
    }
    Ok(Trace::new(insts, emu.halted()))
}

/// [`run_trace`] with its host time attributed to an `"emu_trace"` span on
/// `prof`. With [`ci_obs::NoopProfiler`] this is exactly [`run_trace`].
///
/// # Errors
/// [`EmuError::PcOutOfRange`] if control flow leaves the program.
pub fn run_trace_profiled<F: ci_obs::Profiler>(
    program: &Program,
    max_insts: u64,
    prof: &mut F,
) -> Result<Trace, EmuError> {
    prof.enter("emu_trace");
    let r = run_trace(program, max_insts);
    prof.exit();
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use ci_isa::Asm;

    #[test]
    fn loop_with_memory() {
        // Sum array of 4 elements at 0x100.
        let mut a = Asm::new();
        a.words(Addr(0x100), &[10, 20, 30, 40]);
        a.li(Reg::R1, 0x100); // base
        a.li(Reg::R2, 4); // count
        a.li(Reg::R3, 0); // sum
        a.label("loop").unwrap();
        a.load(Reg::R4, Reg::R1, 0);
        a.add(Reg::R3, Reg::R3, Reg::R4);
        a.addi(Reg::R1, Reg::R1, 1);
        a.addi(Reg::R2, Reg::R2, -1);
        a.bne(Reg::R2, Reg::R0, "loop");
        a.store(Reg::R3, Reg::R0, 0x200);
        a.halt();
        let p = a.assemble().unwrap();
        let mut emu = Emulator::new(&p);
        while !emu.halted() {
            emu.step().unwrap();
        }
        assert_eq!(emu.reg(Reg::R3), 100);
        assert_eq!(emu.memory().read(Addr(0x200)), 100);
    }

    #[test]
    fn call_and_return() {
        let mut a = Asm::new();
        a.call("double");
        a.halt();
        a.label("double").unwrap();
        a.add(Reg::R1, Reg::R1, Reg::R1);
        a.ret();
        let p = a.assemble().unwrap();
        let mut emu = Emulator::new(&p);
        let call = emu.step().unwrap().unwrap();
        assert_eq!(call.value, Some(1)); // link = pc 1
        assert_eq!(call.next_pc, Pc(2));
        emu.step().unwrap(); // add
        let ret = emu.step().unwrap().unwrap();
        assert_eq!(ret.next_pc, Pc(1));
        let halt = emu.step().unwrap().unwrap();
        assert_eq!(halt.class(), InstClass::Halt);
        assert!(emu.halted());
        assert!(emu.step().unwrap().is_none());
    }

    #[test]
    fn pc_out_of_range_detected() {
        let mut a = Asm::new();
        a.nop(); // falls off the end
        let p = a.assemble().unwrap();
        let mut emu = Emulator::new(&p);
        emu.step().unwrap();
        assert_eq!(emu.step(), Err(EmuError::PcOutOfRange(Pc(1))));
    }

    #[test]
    fn run_trace_budget() {
        let mut a = Asm::new();
        a.label("spin").unwrap();
        a.jump("spin");
        let p = a.assemble().unwrap();
        let t = run_trace(&p, 10).unwrap();
        assert_eq!(t.len(), 10);
        assert!(!t.completed());
    }

    #[test]
    fn writes_to_r0_discarded() {
        let mut a = Asm::new();
        a.addi(Reg::R0, Reg::R0, 99);
        a.halt();
        let p = a.assemble().unwrap();
        let mut emu = Emulator::new(&p);
        let d = emu.step().unwrap().unwrap();
        assert_eq!(d.value, None);
        assert_eq!(emu.reg(Reg::R0), 0);
    }
}
