//! Functional emulation and dynamic-trace generation.
//!
//! This crate is the "architecturally correct" half of every simulator in the
//! suite. It provides:
//!
//! - [`Memory`]: sparse, paged, word-addressed data memory.
//! - [`exec`]: the pure instruction semantics (`alu_result`, `branch_taken`,
//!   `effective_addr`) shared by the emulator and by the execution-driven
//!   pipeline simulator.
//! - [`Emulator`]: an in-order functional interpreter producing [`DynInst`]
//!   records.
//! - [`WrongPathEmu`]: a copy-on-write fork of a running emulator used to
//!   execute *mispredicted* paths with their real (wrong) data values — this
//!   is what lets the idealized models of the paper's Section 2 account for
//!   false data dependences instead of ignoring them as Lam & Wilson's
//!   trace-driven study did.
//! - [`Trace`] / [`run_trace`]: whole-program correct-path traces.
//!
//! # Example
//!
//! ```
//! use ci_isa::{Asm, Reg};
//! use ci_emu::run_trace;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut a = Asm::new();
//! a.li(Reg::R1, 3);
//! a.label("loop")?;
//! a.addi(Reg::R1, Reg::R1, -1);
//! a.bne(Reg::R1, Reg::R0, "loop");
//! a.halt();
//! let program = a.assemble()?;
//! let trace = run_trace(&program, 1_000)?;
//! assert_eq!(trace.len(), 8); // li + 3 * (addi, bne) + halt
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dyninst;
mod emulator;
pub mod exec;
mod memory;
mod wrongpath;

pub use dyninst::{DynInst, Trace};
pub use emulator::{run_trace, run_trace_profiled, EmuError, Emulator};
pub use memory::Memory;
pub use wrongpath::WrongPathEmu;
