//! Sparse, paged data memory.

use ci_isa::Addr;
use std::collections::HashMap;

const PAGE_WORDS: u64 = 512;

/// Sparse word-addressed memory backed by 512-word pages.
///
/// Reads of never-written words return `0`, matching zero-initialized memory.
///
/// ```
/// use ci_emu::Memory;
/// use ci_isa::Addr;
///
/// let mut m = Memory::new();
/// assert_eq!(m.read(Addr(0x4000)), 0);
/// m.write(Addr(0x4000), 99);
/// assert_eq!(m.read(Addr(0x4000)), 99);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Memory {
    pages: HashMap<u64, Box<[u64]>>,
}

impl Memory {
    /// Create empty (all-zero) memory.
    #[must_use]
    pub fn new() -> Memory {
        Memory::default()
    }

    /// Create memory initialized from `(address, value)` pairs — typically a
    /// [`ci_isa::Program`]'s data image.
    #[must_use]
    pub fn with_image(image: &[(Addr, u64)]) -> Memory {
        let mut m = Memory::new();
        for &(a, v) in image {
            m.write(a, v);
        }
        m
    }

    /// Read the word at `addr` (zero if never written).
    #[must_use]
    pub fn read(&self, addr: Addr) -> u64 {
        let (page, off) = split(addr);
        self.pages.get(&page).map_or(0, |p| p[off])
    }

    /// Write the word at `addr`.
    pub fn write(&mut self, addr: Addr, value: u64) {
        let (page, off) = split(addr);
        let p = self
            .pages
            .entry(page)
            .or_insert_with(|| vec![0u64; PAGE_WORDS as usize].into_boxed_slice());
        p[off] = value;
    }

    /// Number of resident pages (for capacity diagnostics).
    #[must_use]
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }
}

fn split(addr: Addr) -> (u64, usize) {
    (addr.0 / PAGE_WORDS, (addr.0 % PAGE_WORDS) as usize)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_default() {
        let m = Memory::new();
        assert_eq!(m.read(Addr(0)), 0);
        assert_eq!(m.read(Addr(u64::MAX)), 0);
        assert_eq!(m.resident_pages(), 0);
    }

    #[test]
    fn write_read_round_trip() {
        let mut m = Memory::new();
        m.write(Addr(511), 1);
        m.write(Addr(512), 2); // adjacent word, next page
        assert_eq!(m.read(Addr(511)), 1);
        assert_eq!(m.read(Addr(512)), 2);
        assert_eq!(m.resident_pages(), 2);
    }

    #[test]
    fn overwrite() {
        let mut m = Memory::new();
        m.write(Addr(7), 1);
        m.write(Addr(7), 9);
        assert_eq!(m.read(Addr(7)), 9);
    }

    #[test]
    fn image_initialization() {
        let m = Memory::with_image(&[(Addr(4), 44), (Addr(5), 55)]);
        assert_eq!(m.read(Addr(4)), 44);
        assert_eq!(m.read(Addr(5)), 55);
        assert_eq!(m.read(Addr(6)), 0);
    }

    #[test]
    fn extreme_addresses() {
        let mut m = Memory::new();
        m.write(Addr(u64::MAX), 3);
        assert_eq!(m.read(Addr(u64::MAX)), 3);
    }
}
