//! Confidence-gated control independence (`conf_threshold`).
//!
//! Every `simulate` call here runs with the built-in oracle checker
//! enabled, so each configuration is an end-to-end correctness check: the
//! gate may only change *which* recovery mechanism services a
//! misprediction, never what retires.

use ci_core::{simulate, PipelineConfig};
use ci_workloads::{random_program, Workload, WorkloadParams};

fn ci_conf(window: usize, threshold: u8) -> PipelineConfig {
    PipelineConfig {
        conf_threshold: threshold,
        ..PipelineConfig::ci(window)
    }
}

#[test]
fn gating_engages_and_preserves_architectural_results() {
    let p = Workload::GoLike.build(&WorkloadParams {
        scale: Workload::GoLike.scale_for(8_000),
        seed: 0x5EED,
    });
    let ungated = simulate(&p, ci_conf(128, 0), 8_000).unwrap();
    let gated = simulate(&p, ci_conf(128, 1), 8_000).unwrap();
    // Same architectural execution (the oracle checker verified every
    // retirement in both runs), but the aggressive gate must have diverted
    // some recoveries from selective squash to complete squash.
    assert_eq!(ungated.retired, gated.retired);
    assert!(
        gated.reconverged < ungated.reconverged,
        "threshold 1 must gate some recoveries (reconverged {} !< {})",
        gated.reconverged,
        ungated.reconverged
    );
}

#[test]
fn every_threshold_is_architecturally_safe() {
    // Gating changes which recovery mechanism runs (and thereby the
    // machine's dynamics — the reconverged count is *not* monotone in the
    // threshold), but the retired stream must match the functional trace at
    // every setting; the built-in checker verifies each retirement.
    let p = Workload::GccLike.build(&WorkloadParams {
        scale: Workload::GccLike.scale_for(6_000),
        seed: 7,
    });
    let reference = simulate(&p, ci_conf(128, 0), 6_000).unwrap();
    for threshold in [15, 8, 4, 1] {
        let r = simulate(&p, ci_conf(128, threshold), 6_000).unwrap();
        assert_eq!(reference.retired, r.retired, "threshold {threshold}");
    }
}

#[test]
fn base_machine_ignores_the_threshold() {
    let p = random_program(42, 80);
    let plain = simulate(&p, PipelineConfig::base(64), 10_000).unwrap();
    let with_conf = simulate(
        &p,
        PipelineConfig {
            conf_threshold: 8,
            ..PipelineConfig::base(64)
        },
        10_000,
    )
    .unwrap();
    assert_eq!(plain, with_conf, "conf_threshold must not perturb BASE");
}

#[test]
fn random_programs_retire_identically_under_every_threshold() {
    for seed in [1u64, 99, 2024] {
        let p = random_program(seed, 100);
        let reference = simulate(&p, PipelineConfig::ci(64), 12_000).unwrap();
        for threshold in [1u8, 4, 12] {
            let r = simulate(&p, ci_conf(64, threshold), 12_000).unwrap();
            assert_eq!(reference.retired, r.retired, "seed {seed} t {threshold}");
        }
    }
}
