//! Focused tests for the pipeline's supporting structures and smaller
//! behaviours that the end-to-end tests exercise only indirectly.

use ci_core::rob::{Rob, SegCursor};
use ci_core::{simulate, CacheModel, DataCache, MapTable, PhysReg, PhysRegFile, PipelineConfig};
use ci_isa::{Addr, Asm, Reg};

#[test]
fn rob_interleaved_insert_remove_keeps_order() {
    let mut rob: Rob<u32> = Rob::new(1);
    let ids: Vec<_> = (0..20).map(|i| rob.push_back(i)).collect();
    // Remove every third, then insert between the survivors.
    for (i, id) in ids.iter().enumerate() {
        if i % 3 == 0 {
            rob.remove(*id);
        }
    }
    let mut cur = SegCursor::default();
    let survivors: Vec<_> = rob.iter().collect();
    for (n, id) in survivors.iter().enumerate() {
        rob.insert_after(*id, 100 + n as u32, &mut cur);
    }
    // Keys must remain strictly increasing along the list.
    let keys: Vec<u64> = rob.iter().map(|id| rob.key(id)).collect();
    assert!(keys.windows(2).all(|w| w[0] < w[1]));
    assert_eq!(rob.len(), survivors.len() * 2);
}

#[test]
fn rob_randomized_against_vec_model() {
    // Model-based test: the ROB must behave like a plain Vec under a
    // deterministic pseudo-random op sequence.
    let mut rob: Rob<u64> = Rob::new(1);
    let mut model: Vec<(ci_core::rob::InstId, u64)> = Vec::new();
    let mut state = 0x1234_5678_9abc_def0u64;
    let mut rng = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut cursor = SegCursor::default();
    for step in 0..2_000u64 {
        match rng() % 4 {
            0 | 1 => {
                let id = rob.push_back(step);
                model.push((id, step));
            }
            2 if !model.is_empty() => {
                let pos = (rng() % model.len() as u64) as usize;
                let (at, _) = model[pos];
                let id = rob.insert_after(at, step + 1_000_000, &mut cursor);
                model.insert(pos + 1, (id, step + 1_000_000));
            }
            _ if !model.is_empty() => {
                let pos = (rng() % model.len() as u64) as usize;
                let (id, v) = model.remove(pos);
                assert_eq!(rob.remove(id), v);
            }
            _ => {}
        }
        assert_eq!(rob.len(), model.len());
    }
    let got: Vec<u64> = rob.iter().map(|id| *rob.get(id)).collect();
    let want: Vec<u64> = model.iter().map(|(_, v)| *v).collect();
    assert_eq!(got, want);
}

#[test]
fn phys_regfile_versions_monotonic() {
    let mut f = PhysRegFile::new();
    let p = f.alloc();
    let mut last = f.version(p);
    for i in 0..100 {
        f.write(p, i, false);
        let v = f.version(p);
        assert!(v != last);
        last = v;
    }
}

#[test]
fn map_table_clone_isolation() {
    let mut a = MapTable::initial();
    let b = a.clone();
    a.set(Reg::R4, PhysReg(99));
    assert_eq!(a.get(Reg::R4), PhysReg(99));
    assert_eq!(b.get(Reg::R4), PhysReg(4));
}

#[test]
fn cache_capacity_behaviour() {
    // Working set fits: after warmup, everything hits.
    let mut c = DataCache::new(CacheModel::paper_realistic());
    for round in 0..3 {
        for a in 0..1000u64 {
            let lat = c.access(Addr(a));
            if round > 0 {
                assert_eq!(lat, 2, "addr {a} should hit after warmup");
            }
        }
    }
    // Working set 100x the cache: mostly misses.
    let mut c2 = DataCache::new(CacheModel::paper_realistic());
    for a in 0..800_000u64 {
        c2.access(Addr(a * 7));
    }
    let (h, m) = c2.stats();
    assert!(m > h, "streaming should mostly miss: {h} hits {m} misses");
}

#[test]
fn division_heavy_code_verifies() {
    // Long-latency units interacting with branches and reissue.
    let mut a = Asm::new();
    a.li(Reg::R1, 60);
    a.li(Reg::R2, 7);
    a.label("top").unwrap();
    a.div(Reg::R3, Reg::R1, Reg::R2);
    a.mul(Reg::R4, Reg::R3, Reg::R2);
    a.sub(Reg::R5, Reg::R1, Reg::R4); // remainder
    a.beq(Reg::R5, Reg::R0, "skip");
    a.addi(Reg::R6, Reg::R6, 1);
    a.label("skip").unwrap();
    a.addi(Reg::R1, Reg::R1, -1);
    a.bne(Reg::R1, Reg::R0, "top");
    a.halt();
    let p = a.assemble().unwrap();
    let s = simulate(&p, PipelineConfig::ci(64), 10_000).unwrap();
    assert!(s.retired > 300);
}

#[test]
fn zero_register_semantics_through_the_pipeline() {
    let mut a = Asm::new();
    a.addi(Reg::R0, Reg::R0, 99); // discarded
    a.add(Reg::R1, Reg::R0, Reg::R0); // 0
    a.store(Reg::R1, Reg::R0, 0x10);
    a.load(Reg::R2, Reg::R0, 0x10);
    a.beq(Reg::R2, Reg::R0, "ok");
    a.li(Reg::R3, 1); // must never execute architecturally
    a.label("ok").unwrap();
    a.halt();
    let p = a.assemble().unwrap();
    // The checker validates every retired value; completing is the proof.
    let s = simulate(&p, PipelineConfig::ci(32), 100).unwrap();
    assert_eq!(s.retired, 6);
}

#[test]
fn window_of_width_one_segment_still_works() {
    // Segment size equal to the whole window: maximal fragmentation.
    let p = ci_workloads::random_program(77, 60);
    let s = simulate(
        &p,
        PipelineConfig {
            segment: 32,
            ..PipelineConfig::ci(32)
        },
        10_000,
    )
    .unwrap();
    assert!(s.retired > 0);
}
