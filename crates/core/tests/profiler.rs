//! The profiler observes; it never steers. A profiled run must retire the
//! same machine, cycle for cycle, as an unprofiled one, while the span tree
//! and activity counters account for the work that was done.

use ci_core::{simulate, simulate_profiled, PipelineConfig};
use ci_isa::{Asm, Reg};
use ci_obs::{NoopProbe, NoopProfiler, SpanProfiler};
use ci_workloads::{Workload, WorkloadParams};

const SCALE: u32 = 400;
const MAX_INSTS: u64 = 30_000;

#[test]
fn profiled_stats_are_bit_identical() {
    for wl in [Workload::GoLike, Workload::CompressLike] {
        let program = wl.build(&WorkloadParams {
            scale: SCALE,
            seed: 7,
        });
        for cfg in [PipelineConfig::base(256), PipelineConfig::ci(256)] {
            let plain = simulate(&program, cfg, MAX_INSTS).unwrap();
            let noop = simulate_profiled(&program, cfg, MAX_INSTS, NoopProbe, NoopProfiler)
                .unwrap()
                .stats;
            let spanned =
                simulate_profiled(&program, cfg, MAX_INSTS, NoopProbe, SpanProfiler::new())
                    .unwrap()
                    .stats;
            assert_eq!(plain, noop, "{wl:?}: NoopProfiler changed Stats");
            assert_eq!(plain, spanned, "{wl:?}: SpanProfiler changed Stats");
        }
    }
}

#[test]
fn span_tree_covers_the_run_and_balances() {
    let program = Workload::GccLike.build(&WorkloadParams {
        scale: SCALE,
        seed: 7,
    });
    let run = simulate_profiled(
        &program,
        PipelineConfig::ci(256),
        MAX_INSTS,
        NoopProbe,
        SpanProfiler::new(),
    )
    .unwrap();
    let prof = &run.profiler;
    assert!(
        prof.is_balanced(),
        "unbalanced spans:\n{}",
        prof.text_summary()
    );
    // Top level is exactly setup + cycle_loop.
    let roots: Vec<&str> = prof.roots().iter().map(|r| r.0).collect();
    assert_eq!(roots, ["setup", "cycle_loop"]);
    // Every cycle passes through each stage span once.
    let cycles = run.stats.cycles;
    for stage in ["complete", "recovery", "retire", "fetch", "issue"] {
        assert_eq!(prof.calls_of(stage), cycles, "{stage} span calls");
    }
    // The functional emulation is attributed inside setup.
    assert_eq!(prof.calls_of("emu_trace"), 1);
    assert!(prof.total_of("setup") >= prof.total_of("emu_trace"));
    // Stage spans account for (almost all of) the cycle loop.
    let stage_sum: u128 = ["complete", "recovery", "retire", "fetch", "issue"]
        .iter()
        .map(|s| prof.total_of(s).as_nanos())
        .sum();
    let loop_total = prof.total_of("cycle_loop").as_nanos();
    assert!(
        stage_sum * 10 >= loop_total * 5,
        "stage spans cover {stage_sum} of {loop_total} ns"
    );
}

#[test]
fn activity_counters_are_consistent_with_stats() {
    let program = Workload::JpegLike.build(&WorkloadParams {
        scale: SCALE,
        seed: 7,
    });
    let run = simulate_profiled(
        &program,
        PipelineConfig::ci(256),
        MAX_INSTS,
        NoopProbe,
        SpanProfiler::new(),
    )
    .unwrap();
    let a = &run.activity;
    assert_eq!(a.cycles, run.stats.cycles);
    assert_eq!(a.retired, run.stats.retired);
    // Issue events at retirement (stats.issues) exclude squashed work, so
    // the raw issue count is at least as large.
    assert!(a.issued >= run.stats.issues);
    // Everything retired was fetched and completed at least once.
    assert!(a.fetched >= a.retired);
    assert!(a.completed >= a.retired);
    // Stage-active cycle counts are bounded by total cycles.
    for n in [
        a.fetch_cycles,
        a.issue_cycles,
        a.complete_cycles,
        a.retire_cycles,
        a.recovery_cycles,
        a.idle_cycles,
    ] {
        assert!(n <= a.cycles);
    }
    let text = a.summary();
    assert!(text.contains("no-progress polled cycles"), "{text}");
}

/// The event-driven cycle loop must not fast-forward over cycles where no
/// unit makes progress: they still tick, still run every stage span, and
/// are counted as idle — keeping `inspect`'s stage-occupancy summaries
/// comparable across the rewrite.
#[test]
fn no_progress_cycles_are_still_counted() {
    // A chain of dependent 12-cycle divides: between one divide's issue and
    // its completion, nothing in the machine moves.
    let mut asm = Asm::new();
    asm.li(Reg::R1, 1_000_000);
    asm.li(Reg::R2, 3);
    for _ in 0..8 {
        asm.div(Reg::R1, Reg::R1, Reg::R2);
    }
    asm.halt();
    let program = asm.assemble().unwrap();
    let run = simulate_profiled(
        &program,
        PipelineConfig::base(64),
        1_000,
        NoopProbe,
        SpanProfiler::new(),
    )
    .unwrap();
    let a = &run.activity;
    assert_eq!(a.cycles, run.stats.cycles, "every simulated cycle observed");
    assert!(
        a.idle_cycles > 0,
        "dependent long-latency chain must expose idle cycles: {}",
        a.summary()
    );
    // The stalled stretch dominates this program: most cycles are idle.
    assert!(a.idle_cycles * 2 > a.cycles, "{}", a.summary());
    // Idle cycles still pass through every stage span exactly once.
    for stage in ["complete", "recovery", "retire", "fetch", "issue"] {
        assert_eq!(run.profiler.calls_of(stage), a.cycles, "{stage} span calls");
    }
}
