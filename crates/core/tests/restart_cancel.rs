//! Regression: cancelling an active restart must not orphan survivors.
//!
//! Found by the design-space explorer's `full-grid` sweep. The chain: an
//! old branch's selective squash kills a producer; the repair walk for its
//! survivors is superseded by a recovery for a branch behind the walk
//! cursor; that branch's restart is then cancelled by a value reissue
//! (`invalidate` → `cancel_restarts_of`); finally the branch re-executes
//! and resolves *consistent* with the post-squash window, so re-detection
//! never rebuilds the walk. The survivors sit parked on never-ready
//! registers, the head of the window cannot issue, and retirement wedges
//! forever ("pipeline failed to make forward progress").
//!
//! The exact cell that wedged: go-like at 150k instructions on the CI
//! machine with a 128-entry window, 4-wide fetch, confidence gating at
//! threshold 4, software postdominator reconvergence, simple preemption.
//! The sequence needs the branch-outcome oscillation that this scale
//! produces, so the test runs the cell as-is (a few seconds at the test
//! profile's opt-level); the built-in oracle checker (`check`) verifies
//! every retirement against the functional emulator along the way.

use ci_core::{simulate, PipelineConfig};
use ci_workloads::{Workload, WorkloadParams};

const INSTRUCTIONS: u64 = 150_000;
const SEED: u64 = 0x5EED;

#[test]
fn cancelled_restart_leaves_no_orphaned_survivors() {
    let program = Workload::GoLike.build(&WorkloadParams {
        scale: Workload::GoLike.scale_for(INSTRUCTIONS),
        seed: SEED,
    });
    let config = PipelineConfig {
        width: 4,
        window: 128,
        conf_threshold: 4,
        ..PipelineConfig::ci(128)
    };
    let stats = simulate(&program, config, INSTRUCTIONS).expect("valid program");
    // The budget is approximate (the trace ends at the program's halt), but
    // the wedge struck at 62 398 retirements — anything past it proves the
    // repair obligation survived the cancellation.
    assert!(
        stats.retired > 100_000,
        "run ended early at {} retirements",
        stats.retired
    );
    assert!(
        stats.ipc() > 1.0,
        "the wedge showed up as a collapsed IPC long before the panic (got {:.3})",
        stats.ipc()
    );
}
