//! Integration tests for the detailed pipeline.
//!
//! Every `simulate` call here runs with the oracle checker enabled: the
//! retired stream is verified, value for value, against the functional
//! emulator, so "the run completed" is already a strong correctness
//! statement. The assertions on top check timing-model properties.

use ci_core::{
    simulate, CacheModel, CompletionModel, PipelineConfig, Preemption, ReconStrategy,
    RedispatchMode, RepredictMode, Stats,
};
use ci_isa::{Asm, Program, Reg};
use ci_workloads::{random_program, Workload, WorkloadParams};

fn run(p: &Program, cfg: PipelineConfig) -> Stats {
    simulate(p, cfg, 50_000).expect("valid program")
}

/// A counted loop with an unpredictable diamond inside and work after the
/// join — the canonical control-independence shape from the paper's
/// Figure 1.
fn diamond_loop(iters: i64) -> Program {
    let mut a = Asm::new();
    a.words(ci_isa::Addr(0x100), &[7, 3, 9, 1, 4, 12, 5, 8]);
    a.li(Reg::R1, iters);
    a.li(Reg::R9, 0x100);
    a.label("top").unwrap();
    a.andi(Reg::R2, Reg::R1, 7);
    a.add(Reg::R3, Reg::R9, Reg::R2);
    a.load(Reg::R4, Reg::R3, 0);
    a.andi(Reg::R5, Reg::R4, 1);
    a.beq(Reg::R5, Reg::R0, "else");
    a.addi(Reg::R6, Reg::R4, 10);
    a.jump("join");
    a.label("else").unwrap();
    a.slli(Reg::R6, Reg::R4, 2);
    a.label("join").unwrap();
    a.add(Reg::R7, Reg::R7, Reg::R6); // control independent of the diamond
    a.addi(Reg::R1, Reg::R1, -1);
    a.bne(Reg::R1, Reg::R0, "top");
    a.store(Reg::R7, Reg::R0, 0x200);
    a.halt();
    a.assemble().unwrap()
}

#[test]
fn base_and_ci_retire_identical_architectural_work() {
    let p = diamond_loop(300);
    let b = run(&p, PipelineConfig::base(128));
    let c = run(&p, PipelineConfig::ci(128));
    assert_eq!(b.retired, c.retired);
    assert!(b.retired > 2_000);
}

#[test]
fn ci_beats_base_on_unpredictable_diamonds() {
    let p = diamond_loop(500);
    let b = run(&p, PipelineConfig::base(128));
    let c = run(&p, PipelineConfig::ci(128));
    assert!(
        c.ipc() > b.ipc(),
        "ci {:.3} should beat base {:.3}",
        c.ipc(),
        b.ipc()
    );
    assert!(c.reconverged > 0, "diamond recoveries must reconverge");
}

#[test]
fn ci_preserves_control_independent_work() {
    let p = diamond_loop(500);
    let c = run(&p, PipelineConfig::ci(128));
    let (fetch_saved, work_saved, _, _) = c.work_saved_fractions();
    assert!(fetch_saved > 0.0, "survivors must exist");
    assert!(work_saved > 0.0, "some survivors had final values");
    assert!(c.avg_ci() > 1.0);
}

#[test]
fn base_never_reconverges() {
    let p = diamond_loop(200);
    let b = run(&p, PipelineConfig::base(128));
    assert_eq!(b.reconverged, 0);
    assert_eq!(b.inserted, 0);
    assert_eq!(b.fetch_saved, 0);
}

#[test]
fn straight_line_code_is_identical_across_modes() {
    let mut a = Asm::new();
    for i in 0..200 {
        a.addi(Reg::R1, Reg::R1, i % 7);
        a.xor(Reg::R2, Reg::R2, Reg::R1);
    }
    a.halt();
    let p = a.assemble().unwrap();
    let b = run(&p, PipelineConfig::base(128));
    let c = run(&p, PipelineConfig::ci(128));
    assert_eq!(b.cycles, c.cycles, "no branches → identical schedules");
    assert_eq!(b.recoveries, 0);
    assert_eq!(c.recoveries, 0);
}

#[test]
fn serial_chain_runs_near_one_ipc() {
    let mut a = Asm::new();
    for _ in 0..300 {
        a.addi(Reg::R1, Reg::R1, 1);
    }
    a.halt();
    let p = a.assemble().unwrap();
    let s = run(&p, PipelineConfig::base(256));
    let ipc = s.ipc();
    assert!((0.8..=1.1).contains(&ipc), "serial ipc {ipc}");
}

#[test]
fn wide_independent_code_approaches_machine_width() {
    let mut a = Asm::new();
    for rep in 0..100 {
        for r in 1..=16u8 {
            a.addi(Reg::try_from(r).unwrap(), Reg::try_from(r).unwrap(), rep);
        }
    }
    a.halt();
    let p = a.assemble().unwrap();
    let s = run(
        &p,
        PipelineConfig {
            cache: CacheModel::Ideal { latency: 1 },
            ..PipelineConfig::base(512)
        },
    );
    assert!(s.ipc() > 8.0, "ipc {}", s.ipc());
}

#[test]
fn store_load_forwarding_and_violations_repair() {
    // A loop that stores then immediately loads the same slot, with the slot
    // index occasionally aliasing: exercises forwarding and violations.
    let mut a = Asm::new();
    a.li(Reg::R1, 400);
    a.label("top").unwrap();
    a.andi(Reg::R2, Reg::R1, 3);
    a.store(Reg::R1, Reg::R2, 0x40);
    a.load(Reg::R3, Reg::R2, 0x40);
    a.add(Reg::R4, Reg::R4, Reg::R3);
    a.addi(Reg::R1, Reg::R1, -1);
    a.bne(Reg::R1, Reg::R0, "top");
    a.halt();
    let p = a.assemble().unwrap();
    let s = run(&p, PipelineConfig::ci(128));
    assert!(s.issues >= s.retired);
}

#[test]
fn window_size_helps_parallel_workloads() {
    let p = Workload::JpegLike.build(&WorkloadParams {
        scale: 200,
        seed: 3,
    });
    let small = run(&p, PipelineConfig::base(32));
    let large = run(&p, PipelineConfig::base(512));
    assert!(
        large.ipc() > small.ipc() * 1.2,
        "window scaling: {} vs {}",
        large.ipc(),
        small.ipc()
    );
}

#[test]
fn completion_models_all_verify_and_order_sanely() {
    let p = Workload::GoLike.build(&WorkloadParams {
        scale: 400,
        seed: 2,
    });
    let mut ipcs = Vec::new();
    for m in [
        CompletionModel::NonSpec,
        CompletionModel::SpecD,
        CompletionModel::SpecC,
        CompletionModel::Spec,
    ] {
        let s = run(
            &p,
            PipelineConfig {
                completion: m,
                ..PipelineConfig::ci(256)
            },
        );
        ipcs.push((m, s.ipc()));
    }
    let get = |m: CompletionModel| ipcs.iter().find(|(x, _)| *x == m).unwrap().1;
    // spec (unrestricted) must beat the fully conservative non-spec.
    assert!(
        get(CompletionModel::Spec) >= get(CompletionModel::NonSpec),
        "{ipcs:?}"
    );
}

#[test]
fn hfm_never_hurts() {
    let p = Workload::CompressLike.build(&WorkloadParams {
        scale: 500,
        seed: 2,
    });
    let plain = run(
        &p,
        PipelineConfig {
            completion: CompletionModel::Spec,
            ..PipelineConfig::ci(256)
        },
    );
    let hfm = run(
        &p,
        PipelineConfig {
            completion: CompletionModel::Spec,
            hide_false_mispredictions: true,
            ..PipelineConfig::ci(256)
        },
    );
    assert!(
        hfm.ipc() >= plain.ipc() * 0.98,
        "hfm {} vs {}",
        hfm.ipc(),
        plain.ipc()
    );
    assert!(hfm.false_mispredictions <= plain.false_mispredictions);
}

#[test]
fn repredict_modes_verify() {
    let p = Workload::GccLike.build(&WorkloadParams {
        scale: 300,
        seed: 2,
    });
    for rp in [
        RepredictMode::None,
        RepredictMode::Heuristic,
        RepredictMode::Oracle,
    ] {
        let s = run(
            &p,
            PipelineConfig {
                repredict: rp,
                ..PipelineConfig::ci(256)
            },
        );
        assert!(s.retired > 0, "{rp:?}");
    }
}

#[test]
fn segment_sizes_cost_capacity() {
    let p = Workload::GccLike.build(&WorkloadParams {
        scale: 300,
        seed: 5,
    });
    let s1 = run(
        &p,
        PipelineConfig {
            segment: 1,
            ..PipelineConfig::ci(256)
        },
    );
    let s16 = run(
        &p,
        PipelineConfig {
            segment: 16,
            ..PipelineConfig::ci(256)
        },
    );
    // Fragmentation can only hurt (or tie).
    assert!(
        s16.ipc() <= s1.ipc() * 1.02,
        "seg16 {} vs seg1 {}",
        s16.ipc(),
        s1.ipc()
    );
}

#[test]
fn heuristic_reconvergence_verifies_and_underperforms_postdom() {
    let p = Workload::GoLike.build(&WorkloadParams {
        scale: 400,
        seed: 6,
    });
    let sw = run(&p, PipelineConfig::ci(256));
    let hw = run(
        &p,
        PipelineConfig {
            recon: ReconStrategy::hardware(true, true, true),
            ..PipelineConfig::ci(256)
        },
    );
    let base = run(&p, PipelineConfig::base(256));
    assert!(
        hw.ipc() >= base.ipc() * 0.95,
        "heuristics shouldn't collapse below base"
    );
    assert!(
        sw.ipc() >= hw.ipc() * 0.9,
        "postdom {} vs heuristics {}",
        sw.ipc(),
        hw.ipc()
    );
}

#[test]
fn preemption_modes_agree_closely() {
    let p = Workload::GoLike.build(&WorkloadParams {
        scale: 400,
        seed: 8,
    });
    let simple = run(
        &p,
        PipelineConfig {
            preemption: Preemption::Simple,
            ..PipelineConfig::ci(256)
        },
    );
    let optimal = run(
        &p,
        PipelineConfig {
            preemption: Preemption::Optimal,
            ..PipelineConfig::ci(256)
        },
    );
    // The paper finds simple ≈ optimal at window 256.
    let ratio = simple.ipc() / optimal.ipc();
    assert!(
        (0.9..=1.1).contains(&ratio),
        "simple {} optimal {}",
        simple.ipc(),
        optimal.ipc()
    );
}

#[test]
fn instant_redispatch_at_least_matches_pipelined_on_average() {
    let mut wins = 0;
    let mut total = 0;
    for seed in 0..6 {
        let p = random_program(seed + 100, 80);
        let ci = run(&p, PipelineConfig::ci(128));
        let cii = run(
            &p,
            PipelineConfig {
                redispatch: RedispatchMode::Instant,
                ..PipelineConfig::ci(128)
            },
        );
        total += 1;
        if cii.cycles <= ci.cycles {
            wins += 1;
        }
    }
    assert!(
        wins * 2 >= total,
        "CI-I should usually be at least as fast: {wins}/{total}"
    );
}

#[test]
fn realistic_cache_slower_than_ideal() {
    let p = Workload::CompressLike.build(&WorkloadParams {
        scale: 500,
        seed: 4,
    });
    let ideal = run(
        &p,
        PipelineConfig {
            cache: CacheModel::Ideal { latency: 1 },
            ..PipelineConfig::ci(256)
        },
    );
    let real = run(&p, PipelineConfig::ci(256));
    assert!(real.ipc() <= ideal.ipc());
    assert!(real.cache_hits + real.cache_misses > 0);
}

#[test]
fn oracle_ghr_runs_and_verifies() {
    let p = Workload::GoLike.build(&WorkloadParams {
        scale: 300,
        seed: 9,
    });
    let s = run(
        &p,
        PipelineConfig {
            oracle_ghr: true,
            ..PipelineConfig::ci(256)
        },
    );
    assert!(s.retired > 0);
}

#[test]
fn tfr_statistics_collected_on_misprediction_heavy_runs() {
    let p = Workload::CompressLike.build(&WorkloadParams {
        scale: 800,
        seed: 4,
    });
    let s = run(
        &p,
        PipelineConfig {
            completion: CompletionModel::Spec,
            ..PipelineConfig::ci(256)
        },
    );
    assert!(s.true_mispredictions + s.false_mispredictions > 0);
    let (t, f) = s.tfr_static.totals();
    assert_eq!(t, s.true_mispredictions);
    assert_eq!(f, s.false_mispredictions);
}

#[test]
fn workloads_all_verify_under_every_major_mode() {
    for w in Workload::ALL {
        let p = w.build(&WorkloadParams {
            scale: w.scale_for(15_000),
            seed: 0x5EED,
        });
        for cfg in [
            PipelineConfig::base(128),
            PipelineConfig::ci(128),
            PipelineConfig::ci_instant(128),
        ] {
            let s = simulate(&p, cfg, 15_000).unwrap();
            assert!(s.retired > 0, "{w}");
        }
    }
}
