//! Property tests: for random structured programs, the pipeline must retire
//! exactly the architectural execution under *every* configuration — the
//! built-in oracle checker panics on any divergence, so each `simulate` call
//! is a full end-to-end verification.

use ci_core::{
    simulate, CompletionModel, PipelineConfig, Preemption, ReconStrategy, RepredictMode,
};
use ci_workloads::random_program;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn base_and_ci_agree_with_emulator(seed in 0u64..10_000, size in 8usize..120) {
        let p = random_program(seed, size);
        let b = simulate(&p, PipelineConfig::base(64), 15_000).unwrap();
        let c = simulate(&p, PipelineConfig::ci(64), 15_000).unwrap();
        prop_assert_eq!(b.retired, c.retired);
    }

    #[test]
    fn completion_models_agree_with_emulator(seed in 0u64..10_000, model in 0usize..4) {
        let p = random_program(seed, 60);
        let completion = [
            CompletionModel::NonSpec,
            CompletionModel::SpecD,
            CompletionModel::SpecC,
            CompletionModel::Spec,
        ][model];
        let s = simulate(
            &p,
            PipelineConfig { completion, ..PipelineConfig::ci(64) },
            15_000,
        ).unwrap();
        prop_assert!(s.retired > 0);
    }

    #[test]
    fn exotic_configs_agree_with_emulator(seed in 0u64..10_000, knob in 0usize..6) {
        let p = random_program(seed, 70);
        let cfg = match knob {
            0 => PipelineConfig { segment: 16, ..PipelineConfig::ci(64) },
            1 => PipelineConfig { preemption: Preemption::Optimal, ..PipelineConfig::ci(64) },
            2 => PipelineConfig { repredict: RepredictMode::None, ..PipelineConfig::ci(64) },
            3 => PipelineConfig { repredict: RepredictMode::Oracle, ..PipelineConfig::ci(64) },
            4 => PipelineConfig {
                recon: ReconStrategy::hardware(true, true, true),
                ..PipelineConfig::ci(64)
            },
            _ => PipelineConfig { oracle_ghr: true, ..PipelineConfig::ci(64) },
        };
        let s = simulate(&p, cfg, 15_000).unwrap();
        prop_assert!(s.retired > 0);
    }

    #[test]
    fn tiny_windows_still_verify(seed in 0u64..10_000) {
        let p = random_program(seed, 50);
        // Window 17 with width 16: pathological pressure on eviction and
        // restart-overflow paths.
        let s = simulate(&p, PipelineConfig::ci(17), 10_000).unwrap();
        prop_assert!(s.retired > 0);
    }
}
