//! Reconvergent-point detection: software post-dominators and the hardware
//! heuristics of Appendix A.5.

use crate::config::ReconStrategy;
use ci_cfg::ReconvergenceMap;
use ci_isa::{Inst, InstClass, Pc, Program};
use std::collections::HashSet;

/// Identifies candidate reconvergent points for mispredicted branches.
///
/// Two mechanisms, per the paper:
///
/// - **software**: per-branch immediate post-dominator PCs computed by
///   [`ci_cfg::ReconvergenceMap`] (the compiler-assisted scheme of
///   Section 3.2.1);
/// - **hardware heuristics** (A.5.2): tables of "global" reconvergent-point
///   candidates learned by watching the decoded instruction stream — targets
///   of returns (`return` heuristic) and predicted targets of backward
///   branches (`loop` heuristic) — plus the precise `ltb` rule for
///   mispredicted backward branches (their not-taken target).
///
/// The window search itself (nearest candidate after the branch) is done by
/// the pipeline, which owns the window.
#[derive(Clone, Debug)]
pub struct ReconDetector {
    strategy: ReconStrategy,
    software: ReconvergenceMap,
    candidates: HashSet<Pc>,
}

impl ReconDetector {
    /// Build a detector for `program` under `strategy`.
    #[must_use]
    pub fn new(program: &Program, strategy: ReconStrategy) -> ReconDetector {
        let software = if strategy.postdominator {
            ReconvergenceMap::compute(program)
        } else {
            ReconvergenceMap::default()
        };
        ReconDetector {
            strategy,
            software,
            candidates: HashSet::new(),
        }
    }

    /// The active strategy.
    #[must_use]
    pub fn strategy(&self) -> ReconStrategy {
        self.strategy
    }

    /// Observe a decoded instruction and its predicted next PC, learning
    /// global reconvergent-point candidates.
    pub fn observe(&mut self, pc: Pc, inst: &Inst, predicted_next: Pc) {
        if self.strategy.returns && inst.class() == InstClass::Return {
            self.candidates.insert(predicted_next);
        }
        if self.strategy.loops && inst.is_backward_branch(pc) {
            // Predicted-taken → top of loop; predicted not-taken → loop exit.
            self.candidates.insert(predicted_next);
        }
    }

    /// Software (post-dominator) reconvergent PC of the branch at `pc`.
    #[must_use]
    pub fn software_recon(&self, pc: Pc) -> Option<Pc> {
        if self.strategy.postdominator {
            self.software.reconvergent_point(pc)
        } else {
            None
        }
    }

    /// The `ltb` heuristic's reconvergent PC for a mispredicted branch: the
    /// not-taken target of a backward branch.
    #[must_use]
    pub fn ltb_recon(&self, pc: Pc, inst: &Inst) -> Option<Pc> {
        if self.strategy.ltb && inst.is_backward_branch(pc) {
            Some(pc.next())
        } else {
            None
        }
    }

    /// Whether `pc` is a learned global reconvergent-point candidate.
    #[must_use]
    pub fn is_candidate(&self, pc: Pc) -> bool {
        (self.strategy.returns || self.strategy.loops) && self.candidates.contains(&pc)
    }

    /// Whether any hardware heuristic is enabled.
    #[must_use]
    pub fn uses_heuristics(&self) -> bool {
        self.strategy.returns || self.strategy.loops || self.strategy.ltb
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ci_isa::{Asm, Reg};

    fn looped() -> Program {
        let mut a = Asm::new();
        a.li(Reg::R1, 3);
        a.label("top").unwrap();
        a.addi(Reg::R1, Reg::R1, -1);
        a.bne(Reg::R1, Reg::R0, "top"); // backward branch at pc 2
        a.call("f"); // pc 3
        a.halt(); // pc 4
        a.label("f").unwrap();
        a.ret(); // pc 5
        a.assemble().unwrap()
    }

    #[test]
    fn software_mode_uses_postdominators() {
        let p = looped();
        let d = ReconDetector::new(&p, ReconStrategy::software());
        assert_eq!(d.software_recon(Pc(2)), Some(Pc(3)));
        assert!(!d.uses_heuristics());
        assert!(!d.is_candidate(Pc(3)));
    }

    #[test]
    fn return_heuristic_learns_targets() {
        let p = looped();
        let mut d = ReconDetector::new(&p, ReconStrategy::hardware(true, false, false));
        assert_eq!(d.software_recon(Pc(2)), None);
        let ret = *p.fetch(Pc(5)).unwrap();
        d.observe(Pc(5), &ret, Pc(4));
        assert!(d.is_candidate(Pc(4)));
        assert!(!d.is_candidate(Pc(1)));
    }

    #[test]
    fn loop_heuristic_learns_both_targets() {
        let p = looped();
        let mut d = ReconDetector::new(&p, ReconStrategy::hardware(false, true, false));
        let b = *p.fetch(Pc(2)).unwrap();
        d.observe(Pc(2), &b, Pc(1)); // predicted taken: top of loop
        assert!(d.is_candidate(Pc(1)));
        d.observe(Pc(2), &b, Pc(3)); // predicted not-taken: loop exit
        assert!(d.is_candidate(Pc(3)));
    }

    #[test]
    fn ltb_gives_not_taken_target() {
        let p = looped();
        let d = ReconDetector::new(&p, ReconStrategy::hardware(false, false, true));
        let b = *p.fetch(Pc(2)).unwrap();
        assert_eq!(d.ltb_recon(Pc(2), &b), Some(Pc(3)));
        // Forward branches are not covered by ltb.
        let mut a2 = Asm::new();
        a2.beq(Reg::R1, Reg::R0, "end");
        a2.label("end").unwrap();
        a2.halt();
        let p2 = a2.assemble().unwrap();
        let fwd = *p2.fetch(Pc(0)).unwrap();
        assert_eq!(d.ltb_recon(Pc(0), &fwd), None);
    }
}
