//! Data-cache timing model.

use crate::config::CacheModel;
use ci_isa::Addr;

/// Timing-only data cache: returns an access latency per reference and
/// maintains LRU set-associative state for the realistic model. Values are
/// not stored here (the simulator's memory system handles data); only hits
/// and misses are modelled, with a perfect L2 behind misses as in the paper.
#[derive(Clone, Debug)]
pub struct DataCache {
    model: CacheModel,
    /// `sets[s]` holds up to `ways` line tags in LRU order (front = MRU).
    sets: Vec<Vec<u64>>,
    sets_mask: u64,
    line_shift: u32,
    hits: u64,
    misses: u64,
}

impl DataCache {
    /// Create a cache for `model`.
    ///
    /// # Panics
    /// Panics if a realistic model's geometry is not a power-of-two line and
    /// set count.
    #[must_use]
    pub fn new(model: CacheModel) -> DataCache {
        match model {
            CacheModel::Ideal { .. } => DataCache {
                model,
                sets: Vec::new(),
                sets_mask: 0,
                line_shift: 0,
                hits: 0,
                misses: 0,
            },
            CacheModel::Realistic {
                words,
                ways,
                line_words,
                ..
            } => {
                assert!(
                    line_words.is_power_of_two(),
                    "line size must be a power of two"
                );
                let lines = words / line_words;
                let sets = lines / ways;
                assert!(
                    sets.is_power_of_two() && sets > 0,
                    "set count must be a power of two"
                );
                DataCache {
                    model,
                    sets: vec![Vec::new(); sets],
                    sets_mask: (sets - 1) as u64,
                    line_shift: line_words.trailing_zeros(),
                    hits: 0,
                    misses: 0,
                }
            }
        }
    }

    /// Access the word at `addr`, returning the access latency in cycles and
    /// updating LRU/fill state.
    pub fn access(&mut self, addr: Addr) -> u64 {
        match self.model {
            CacheModel::Ideal { latency } => latency,
            CacheModel::Realistic {
                ways, hit, miss, ..
            } => {
                let line = addr.0 >> self.line_shift;
                let set = &mut self.sets[(line & self.sets_mask) as usize];
                if let Some(pos) = set.iter().position(|&t| t == line) {
                    set.remove(pos);
                    set.insert(0, line);
                    self.hits += 1;
                    hit
                } else {
                    set.insert(0, line);
                    set.truncate(ways);
                    self.misses += 1;
                    miss
                }
            }
        }
    }

    /// Hit and miss counts so far (zeros for the ideal model).
    #[must_use]
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_flat_latency() {
        let mut c = DataCache::new(CacheModel::Ideal { latency: 1 });
        assert_eq!(c.access(Addr(0)), 1);
        assert_eq!(c.access(Addr(12345)), 1);
        assert_eq!(c.stats(), (0, 0));
    }

    #[test]
    fn miss_then_hit() {
        let mut c = DataCache::new(CacheModel::paper_realistic());
        assert_eq!(c.access(Addr(0x100)), 14); // cold miss
        assert_eq!(c.access(Addr(0x100)), 2); // hit
        assert_eq!(c.access(Addr(0x101)), 2); // same line
        assert_eq!(c.access(Addr(0x108)), 14); // next line
        assert_eq!(c.stats(), (2, 2));
    }

    #[test]
    fn lru_eviction() {
        // Tiny cache: 2 ways, 1 set, 1-word lines.
        let model = CacheModel::Realistic {
            words: 2,
            ways: 2,
            line_words: 1,
            hit: 1,
            miss: 10,
        };
        let mut c = DataCache::new(model);
        assert_eq!(c.access(Addr(1)), 10);
        assert_eq!(c.access(Addr(2)), 10);
        assert_eq!(c.access(Addr(1)), 1); // 1 is MRU now
        assert_eq!(c.access(Addr(3)), 10); // evicts 2
        assert_eq!(c.access(Addr(2)), 10); // miss again
        assert_eq!(c.access(Addr(3)), 1);
    }

    #[test]
    fn conflict_misses_across_sets() {
        // 2 sets, direct mapped, 1-word lines.
        let model = CacheModel::Realistic {
            words: 2,
            ways: 1,
            line_words: 1,
            hit: 1,
            miss: 9,
        };
        let mut c = DataCache::new(model);
        assert_eq!(c.access(Addr(0)), 9);
        assert_eq!(c.access(Addr(1)), 9); // different set
        assert_eq!(c.access(Addr(0)), 1);
        assert_eq!(c.access(Addr(2)), 9); // conflicts with 0
        assert_eq!(c.access(Addr(0)), 9);
    }
}
