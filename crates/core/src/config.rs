//! Pipeline configuration.

use ci_isa::LatencyModel;

/// How the processor recovers from branch mispredictions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SquashMode {
    /// Complete squash of everything younger than the branch (the BASE
    /// machine).
    Full,
    /// Selective squash with restart and redispatch sequences (the CI
    /// machine).
    ControlIndependence,
}

/// How reconvergent points are identified (Section 3.2.1 / Appendix A.5).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReconStrategy {
    /// Use the compiler's immediate post-dominator information.
    pub postdominator: bool,
    /// `return` heuristic: predicted targets of returns are candidates.
    pub returns: bool,
    /// `loop` heuristic: predicted targets of backward branches are
    /// candidates.
    pub loops: bool,
    /// `ltb` heuristic: a mispredicted backward branch reconverges at its
    /// not-taken target.
    pub ltb: bool,
}

impl ReconStrategy {
    /// Software post-dominator analysis only (the paper's primary CI
    /// configuration).
    #[must_use]
    pub const fn software() -> ReconStrategy {
        ReconStrategy {
            postdominator: true,
            returns: false,
            loops: false,
            ltb: false,
        }
    }

    /// Hardware-only heuristics (Figure 17 configurations).
    #[must_use]
    pub const fn hardware(returns: bool, loops: bool, ltb: bool) -> ReconStrategy {
        ReconStrategy {
            postdominator: false,
            returns,
            loops,
            ltb,
        }
    }
}

/// How the redispatch sequence is timed (Section 4.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RedispatchMode {
    /// Redispatch proceeds at the machine's dispatch width per cycle (CI).
    Pipelined,
    /// All control-independent instructions are redispatched in a single
    /// cycle after the restart completes (CI-I).
    Instant,
}

/// Preemption policy for overlapping restart sequences (Appendix A.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Preemption {
    /// The sequencer tracks only the most recent restart; preempted restarts
    /// squash from the old reconvergent point.
    Simple,
    /// Suspended restarts are stacked and resumed (used for the appendix's
    /// enhancement studies).
    Optimal,
}

/// Branch completion models of Appendix A.2.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CompletionModel {
    /// Branches complete in order with fully non-speculative operands.
    NonSpec,
    /// In-order completion; data-speculative operands allowed.
    SpecD,
    /// Out-of-order completion; operands must not be data-speculative
    /// (the paper's primary configuration).
    SpecC,
    /// Branches complete whenever operands are available.
    Spec,
}

impl CompletionModel {
    /// Whether this model requires the branch to be the oldest unresolved
    /// branch before completing.
    #[must_use]
    pub fn in_order(self) -> bool {
        matches!(self, CompletionModel::NonSpec | CompletionModel::SpecD)
    }

    /// Whether this model forbids data-speculative operands.
    #[must_use]
    pub fn non_dspec(self) -> bool {
        matches!(self, CompletionModel::NonSpec | CompletionModel::SpecC)
    }
}

/// Re-predict sequence policy (Appendix A.3.2 / Figure 13).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RepredictMode {
    /// No re-predict sequences (CI-NR).
    None,
    /// Heuristic: completed branches force the predictor, others follow the
    /// re-prediction (CI).
    Heuristic,
    /// Oracle re-prediction: correct predictions are never overturned
    /// (CI-OR).
    Oracle,
}

/// Data-cache model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheModel {
    /// Perfect cache with a fixed access latency (the Section 2 setup).
    Ideal {
        /// Access latency in cycles.
        latency: u64,
    },
    /// Set-associative cache with hit/miss latencies and a perfect L2
    /// (the Section 4 setup: 64KB, 4-way, 2-cycle hit, 14-cycle miss).
    Realistic {
        /// Total capacity in 64-bit words.
        words: usize,
        /// Associativity.
        ways: usize,
        /// Words per line.
        line_words: usize,
        /// Hit latency in cycles.
        hit: u64,
        /// Miss latency in cycles.
        miss: u64,
    },
}

impl CacheModel {
    /// The paper's Section 4 data cache: 64KB, 4-way, 2-cycle hit, 14-cycle
    /// miss.
    #[must_use]
    pub fn paper_realistic() -> CacheModel {
        CacheModel::Realistic {
            words: 64 * 1024 / 8,
            ways: 4,
            line_words: 8,
            hit: 2,
            miss: 14,
        }
    }
}

/// Full configuration of the detailed execution-driven simulator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PipelineConfig {
    /// Machine width: peak fetch/dispatch/issue/retire per cycle (paper: 16).
    pub width: usize,
    /// Instruction window (ROB) size in instructions.
    pub window: usize,
    /// ROB segment size in instructions; 1 = instruction-granularity
    /// linked list (Appendix A.4 evaluates 1/4/16).
    pub segment: usize,
    /// Recovery mode.
    pub squash: SquashMode,
    /// Reconvergence detection.
    pub recon: ReconStrategy,
    /// Redispatch timing.
    pub redispatch: RedispatchMode,
    /// Restart preemption policy.
    pub preemption: Preemption,
    /// Branch completion model.
    pub completion: CompletionModel,
    /// Use oracle knowledge to hide false mispredictions (`*-HFM` models).
    pub hide_false_mispredictions: bool,
    /// Re-predict sequences.
    pub repredict: RepredictMode,
    /// Predict with the architecturally correct global history (Figure 12).
    pub oracle_ghr: bool,
    /// Data cache.
    pub cache: CacheModel,
    /// Execution latencies.
    pub latencies: LatencyModel,
    /// log2 of gshare/CTB table sizes (paper: 16).
    pub predictor_bits: u32,
    /// Confidence gating of control-independence resources: `0` (the
    /// default) allocates a restart/reconvergence context for every
    /// mispredicted branch, as the paper does. A value in `1..=15` attaches
    /// a resetting-counter [`ConfidenceEstimator`](ci_bpred::ConfidenceEstimator)
    /// (Jacobsen/Rotenberg/Smith) to fetch: branches whose prediction is
    /// *high confidence* (counter ≥ threshold) are deemed unlikely to
    /// mispredict, so the hardware skips CI setup for them and their (rare)
    /// mispredictions recover with a complete squash. Lower thresholds gate
    /// more aggressively. Has no effect on the BASE machine.
    pub conf_threshold: u8,
    /// Verify every retired instruction against the functional trace.
    pub check: bool,
}

impl PipelineConfig {
    /// The paper's BASE machine (Section 4): complete squash, spec-C
    /// completion, realistic cache, 16-wide.
    #[must_use]
    pub fn base(window: usize) -> PipelineConfig {
        PipelineConfig {
            width: 16,
            window,
            segment: 1,
            squash: SquashMode::Full,
            recon: ReconStrategy::software(),
            redispatch: RedispatchMode::Pipelined,
            preemption: Preemption::Simple,
            completion: CompletionModel::SpecC,
            hide_false_mispredictions: false,
            repredict: RepredictMode::Heuristic,
            oracle_ghr: false,
            cache: CacheModel::paper_realistic(),
            latencies: LatencyModel::new(),
            predictor_bits: 16,
            conf_threshold: 0,
            check: true,
        }
    }

    /// The paper's CI machine (Section 4): selective squash with software
    /// post-dominator reconvergence.
    #[must_use]
    pub fn ci(window: usize) -> PipelineConfig {
        PipelineConfig {
            squash: SquashMode::ControlIndependence,
            ..PipelineConfig::base(window)
        }
    }

    /// The paper's CI-I machine: CI plus single-cycle redispatch.
    #[must_use]
    pub fn ci_instant(window: usize) -> PipelineConfig {
        PipelineConfig {
            redispatch: RedispatchMode::Instant,
            ..PipelineConfig::ci(window)
        }
    }
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig::ci(256)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper() {
        let b = PipelineConfig::base(256);
        assert_eq!(b.width, 16);
        assert_eq!(b.squash, SquashMode::Full);
        assert_eq!(b.completion, CompletionModel::SpecC);
        let c = PipelineConfig::ci(128);
        assert_eq!(c.window, 128);
        assert_eq!(c.squash, SquashMode::ControlIndependence);
        assert!(c.recon.postdominator);
        let i = PipelineConfig::ci_instant(512);
        assert_eq!(i.redispatch, RedispatchMode::Instant);
    }

    #[test]
    fn completion_model_predicates() {
        assert!(CompletionModel::NonSpec.in_order());
        assert!(CompletionModel::NonSpec.non_dspec());
        assert!(CompletionModel::SpecD.in_order());
        assert!(!CompletionModel::SpecD.non_dspec());
        assert!(!CompletionModel::SpecC.in_order());
        assert!(CompletionModel::SpecC.non_dspec());
        assert!(!CompletionModel::Spec.in_order());
        assert!(!CompletionModel::Spec.non_dspec());
    }

    #[test]
    fn recon_strategies() {
        assert!(ReconStrategy::software().postdominator);
        let h = ReconStrategy::hardware(true, false, true);
        assert!(!h.postdominator);
        assert!(h.returns);
        assert!(h.ltb);
        assert!(!h.loops);
    }

    #[test]
    fn paper_cache_geometry() {
        if let CacheModel::Realistic {
            words,
            ways,
            line_words,
            hit,
            miss,
        } = CacheModel::paper_realistic()
        {
            assert_eq!(words, 8192);
            assert_eq!(ways, 4);
            assert_eq!(line_words, 8);
            assert_eq!(hit, 2);
            assert_eq!(miss, 14);
        } else {
            panic!("expected realistic cache");
        }
    }
}
