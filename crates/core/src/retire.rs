//! In-order retirement, architectural commit, predictor training and the
//! oracle checker.

use crate::engine::{EState, Pipeline, Sequencer};
use ci_isa::InstClass;
use ci_obs::{Event, Probe, Profiler};

impl<P: Probe, F: Profiler> Pipeline<'_, P, F> {
    /// Retire up to `width` instructions in order. An instruction retires
    /// only when it has completed with final values and its successor in the
    /// window agrees with its computed next PC (pending recoveries therefore
    /// block retirement until serviced).
    pub(crate) fn retire_stage(&mut self) {
        for _ in 0..self.cfg.width {
            if self.stats.retired >= self.oracle.len() as u64 {
                return; // reference trace exhausted; anything left is junk
            }
            let Some(head) = self.rob.head() else { return };
            // Never retire the insertion cursor of an active or suspended
            // restart: the sequencer still needs it as its insertion point.
            if self.restart_cursor_blocked(head) {
                return;
            }
            let e = self.rob.get(head);
            if e.state != EState::Done {
                return;
            }
            let succ = self.successor_pc(head);
            match e.class {
                InstClass::Halt => {}
                c if c.is_control() => {
                    let exec_next = e.exec_next.expect("completed control");
                    match succ {
                        Some(s) if s == exec_next => {}
                        // A tail control instruction is consistent when the
                        // front end is about to fetch its computed target
                        // (needed when capacity blocks the fetch itself).
                        None if matches!(self.seq, Sequencer::Normal)
                            && !self.fetch.stalled
                            && self.fetch.pc == exec_next => {}
                        _ => return, // awaiting recovery or fetch of successor
                    }
                }
                _ => {
                    // A present successor must be the fall-through: a hole
                    // left by a preempted restart stalls retirement until it
                    // is filled or squashed.
                    if let Some(s) = succ {
                        if s != e.pc.next() {
                            return;
                        }
                    }
                }
            }

            // Oracle checker: the retired stream must be the architectural
            // execution, value for value.
            let r = self.stats.retired as usize;
            if self.cfg.check {
                let o = &self.oracle[r];
                if e.pc != o.pc {
                    self.fail_retirement_check(r, "pc", format!("{} != {}", e.pc, o.pc));
                }
                if e.addr != o.addr {
                    self.fail_retirement_check(
                        r,
                        "address",
                        format!("{:?} != {:?}", e.addr, o.addr),
                    );
                }
                if let Some(v) = o.value {
                    if e.result != v {
                        self.fail_retirement_check(
                            r,
                            "value",
                            format!("{:#x} != {v:#x}", e.result),
                        );
                    }
                }
                if e.class.is_control()
                    && e.class != InstClass::Halt
                    && e.exec_next != Some(o.next_pc)
                {
                    self.fail_retirement_check(
                        r,
                        "control flow",
                        format!("{:?} != {}", e.exec_next, o.next_pc),
                    );
                }
            }

            // Commit front-end state.
            self.commit_pc = match e.exec_next {
                Some(n) => n,
                None => e.pc.next(),
            };
            match e.class {
                InstClass::CondBranch => self.commit_ghr.push(e.taken),
                InstClass::Call => self.commit_ras.push(e.pc.next()),
                InstClass::Return => {
                    let _ = self.commit_ras.pop();
                }
                InstClass::IndirectJump if e.dest.is_some() => {
                    self.commit_ras.push(e.pc.next());
                }
                _ => {}
            }

            // Commit.
            if e.class == InstClass::Store {
                let addr = e.addr.expect("store has addr");
                self.memory.write(addr, e.result);
            }
            if let Some((arch, p)) = e.dest {
                self.committed_map.set(arch, p);
            }

            // Predictor training at retirement (Section 4.1: tables are
            // updated at retirement) and misprediction accounting.
            if e.needs_pred() {
                self.stats.predictions += 1;
                let actual_next = e.exec_next.expect("control");
                if e.first_pred_next != actual_next {
                    self.stats.arch_mispredictions += 1;
                }
            }
            match e.class {
                InstClass::CondBranch => {
                    let (pc, h, taken) = (e.pc, e.ghr_before, e.taken);
                    let correct = e.first_pred_next == e.exec_next.expect("control");
                    self.gshare.update(pc, h, taken);
                    if let Some(conf) = &mut self.conf {
                        conf.update(pc, h, correct);
                    }
                }
                InstClass::IndirectJump => {
                    let (pc, h, next) = (e.pc, e.ghr_before, e.exec_next.expect("control"));
                    self.ctb.update(pc, h, next);
                }
                _ => {}
            }

            // Table 3/4 accounting.
            let e = self.rob.get(head);
            self.stats.issues += u64::from(e.issue_count);
            self.stats.mem_violation_reissues += u64::from(e.mem_reissues);
            self.stats.reg_violation_reissues += u64::from(e.reg_reissues);
            if e.survived {
                self.stats.fetch_saved += 1;
                if e.saved_done {
                    self.stats.work_saved += 1;
                } else if e.discarded {
                    self.stats.work_discarded += 1;
                } else if e.only_fetched {
                    self.stats.only_fetched += 1;
                }
            }

            self.probe.record(
                self.now,
                Event::Retire {
                    pc: e.pc.0,
                    issues: e.issue_count,
                },
            );
            self.stats.retired += 1;
            self.activity.cur_retired += 1;
            self.remove_entry(head);
        }
    }

    /// Build and raise the oracle-checker failure report: which field
    /// diverged and where, what the simulator retired, what the emulator
    /// executed, and — when the attached probe keeps one — the flight
    /// recorder's tail covering the machine's final cycles.
    fn fail_retirement_check(&self, r: usize, field: &str, detail: String) -> ! {
        let head = self.rob.head().expect("failing retirement has a head");
        let e = self.rob.get(head);
        let o = &self.oracle[r];
        let mut msg = format!(
            "retired {field} diverges from the emulator at instruction {r}, cycle {}: {detail}\n\
             retired:  {} {} ({:?}) result={:#x} addr={:?} exec_next={:?} issues={}\n\
             emulator: {}\n",
            self.now,
            e.pc,
            e.inst,
            e.class,
            e.result,
            e.addr,
            e.exec_next,
            e.issue_count,
            o.summary(),
        );
        match self.probe.dump() {
            Some(d) => {
                msg.push_str(&d);
            }
            None => msg
                .push_str("(attach a ci_obs::FlightRecorder probe to capture the final cycles)\n"),
        }
        panic!("{msg}");
    }
}

impl crate::engine::Entry {
    pub(crate) fn needs_pred(&self) -> bool {
        self.class.needs_prediction()
    }
}
