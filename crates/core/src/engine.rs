//! The pipeline: structures, construction, the cycle loop, and the front end
//! (fetch/rename/dispatch).
//!
//! Stage methods live in sibling modules: issue/execute/writeback in
//! [`crate::exec`], misprediction recovery in [`crate::recover`], retirement
//! in [`crate::retire`].

use crate::activity::CycleActivity;
use crate::cache::DataCache;
use crate::config::PipelineConfig;
use crate::recon::ReconDetector;
use crate::regfile::{MapTable, PhysReg, PhysRegFile};
use crate::rob::{InstId, Rob, SegCursor};
use crate::stats::Stats;
use crate::wakeup::Wakeup;
use ci_bpred::{
    ConfidenceEstimator, CorrelatedTargetBuffer, GlobalHistory, Gshare, ReturnAddressStack,
    TfrTable,
};
use ci_emu::{run_trace_profiled, DynInst, EmuError, Memory};
use ci_isa::{Addr, Inst, InstClass, Pc, Program, Reg};
use ci_obs::{Event, NoopProbe, NoopProfiler, Probe, Profiler};

/// A renamed source operand.
#[derive(Clone, Copy, Debug)]
pub(crate) struct SrcBinding {
    pub arch: Reg,
    pub phys: PhysReg,
}

/// Execution state of a window entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum EState {
    /// Not issued, or invalidated and awaiting reissue.
    Waiting,
    /// Issued; completes at the contained cycle.
    Executing { done_at: u64 },
    /// Executed; result fields are valid (until invalidated).
    Done,
}

/// One instruction in the window. Instructions stay here from fetch to
/// retirement — including across reissues, as Section 3.2.4 requires.
#[derive(Clone, Debug)]
pub(crate) struct Entry {
    pub inst: Inst,
    pub pc: Pc,
    pub class: InstClass,
    // Rename state.
    pub srcs: [Option<SrcBinding>; 2],
    pub dest: Option<(Reg, PhysReg)>,
    // Execution state.
    pub state: EState,
    pub issue_count: u32,
    pub dspec: bool,
    pub result: u64,
    pub addr: Option<Addr>,
    pub exec_next: Option<Pc>,
    pub taken: bool,
    pub src_store: Option<InstId>,
    /// Control: the latest execution's path consistency has been checked.
    pub resolved: bool,
    // Front-end bookkeeping.
    pub pred_next: Pc,
    pub first_pred_next: Pc,
    pub ghr_before: GlobalHistory,
    pub ras_after: Option<Vec<Pc>>,
    pub fetched_at: u64,
    /// Index on the architecturally correct path, if this instruction is on
    /// it (the paper's parallel "fully-accurate window", A.3.1).
    pub oracle_idx: Option<usize>,
    /// The prediction was high confidence at fetch, so no CI recovery
    /// context was allocated for this branch (always false when
    /// `conf_threshold` is 0 or for non-conditional-branch instructions).
    pub high_conf: bool,
    // Statistics flags (Table 3 taxonomy).
    pub survived: bool,
    pub saved_done: bool,
    pub discarded: bool,
    pub only_fetched: bool,
    // Per-instruction reissue accounting (Table 4 counts these at
    // retirement, so squashed wrong-path work is excluded).
    pub mem_reissues: u32,
    pub reg_reissues: u32,
}

/// The sequencer's current activity (Section 3.1 / Figure 4).
#[derive(Clone, Debug)]
pub(crate) enum Sequencer {
    /// Appending at the tail.
    Normal,
    /// Restart sequence: fetching the correct control-dependent path into the
    /// middle of the window.
    Restart(RestartState),
    /// Redispatch sequence: re-renaming (and re-predicting) the
    /// control-independent instructions.
    Redispatch(RedispatchState),
}

#[derive(Clone, Debug)]
pub(crate) struct RestartState {
    pub branch: InstId,
    pub cursor: InstId,
    pub recon: InstId,
    pub recon_pc: Pc,
    pub map: MapTable,
    pub seg: SegCursor,
    pub started_at: u64,
    pub inserted: u64,
}

#[derive(Clone, Debug)]
pub(crate) struct RedispatchState {
    pub cursor: Option<InstId>,
    pub map: MapTable,
    pub ghr: GlobalHistory,
    pub ras: ReturnAddressStack,
}

/// A detected misprediction awaiting service.
#[derive(Clone, Copy, Debug)]
pub(crate) struct PendingRecovery {
    pub branch: InstId,
    pub redirect: Pc,
    /// True if produced by branch execution (classify true/false
    /// mispredictions); false if produced by a re-predict sequence.
    pub from_exec: bool,
}

#[derive(Clone, Debug)]
pub(crate) struct FetchCtx {
    pub pc: Pc,
    pub ghr: GlobalHistory,
    pub ras: ReturnAddressStack,
    pub stalled: bool,
}

/// The detailed execution-driven superscalar pipeline with selective-squash
/// control independence.
///
/// See the crate-level documentation for the model; construct with
/// [`Pipeline::new`] and drive with [`Pipeline::run`].
///
/// The pipeline is generic over an observability [`Probe`] that receives
/// one [`Event`] per pipeline action. The default [`NoopProbe`] is a
/// zero-sized sink whose `record` inlines to nothing, so an unprobed
/// pipeline pays no cost for the instrumentation; plug in a real sink with
/// [`Pipeline::with_probe`] or [`crate::simulate_probed`].
///
/// It is separately generic over a [`Profiler`] that attributes *host* wall
/// time to pipeline stages (fetch, issue, complete, retire, recovery). The
/// default [`NoopProfiler`] is likewise a zero-sized no-op; attach a
/// [`ci_obs::SpanProfiler`] with [`Pipeline::with_probe_and_profiler`] or
/// [`crate::simulate_profiled`] to see where simulation time goes. Probes
/// and profilers observe; they never steer — [`Stats`] is bit-identical
/// with or without them.
#[derive(Debug)]
pub struct Pipeline<'p, P: Probe = NoopProbe, F: Profiler = NoopProfiler> {
    pub(crate) probe: P,
    pub(crate) prof: F,
    pub(crate) activity: CycleActivity,
    pub(crate) program: &'p Program,
    pub(crate) cfg: PipelineConfig,
    // Architectural reference.
    pub(crate) oracle: Vec<DynInst>,
    pub(crate) oracle_hist: Vec<GlobalHistory>,
    // Machine state.
    pub(crate) rob: Rob<Entry>,
    pub(crate) regs: PhysRegFile,
    pub(crate) map: MapTable,
    pub(crate) committed_map: MapTable,
    pub(crate) memory: Memory,
    pub(crate) cache: DataCache,
    // Predictors.
    pub(crate) gshare: Gshare,
    /// Branch confidence estimator gating CI resource allocation; present
    /// only when `conf_threshold > 0` so the default configuration pays
    /// nothing and behaves bit-identically to the unguarded machine.
    pub(crate) conf: Option<ConfidenceEstimator>,
    pub(crate) ctb: CorrelatedTargetBuffer,
    pub(crate) tfr_pc: TfrTable,
    pub(crate) tfr_xor: TfrTable,
    pub(crate) recon: ReconDetector,
    // Sequencing.
    pub(crate) fetch: FetchCtx,
    /// Committed front-end state (PC/history/RAS as of the last retirement):
    /// what a real machine restarts from when the window drains on a wrong
    /// path.
    pub(crate) commit_pc: Pc,
    pub(crate) commit_ghr: GlobalHistory,
    pub(crate) commit_ras: ReturnAddressStack,
    pub(crate) seq: Sequencer,
    pub(crate) suspended: Vec<RestartState>,
    pub(crate) pending: Vec<PendingRecovery>,
    pub(crate) now: u64,
    pub(crate) stats: Stats,
    /// Event-driven wakeup state (completion heap, waiter/consumer chains,
    /// ready set, membership sets, SoA status columns).
    pub(crate) wake: Wakeup,
    // Reusable scratch buffers, pooled so nested drains (a squash cascading
    // inside a drain) can each check one out: the cycle loop allocates
    // nothing in steady state.
    pub(crate) scratch_ids: Vec<Vec<InstId>>,
    pub(crate) scratch_keyed: Vec<Vec<(u64, InstId)>>,
    pub(crate) scratch_found: Vec<PendingRecovery>,
}

impl<'p> Pipeline<'p> {
    /// Build a pipeline for `program`, pre-computing the architectural
    /// reference trace of up to `max_insts` instructions. Events are
    /// discarded; use [`Pipeline::with_probe`] to observe them.
    ///
    /// # Errors
    /// Propagates [`EmuError`] if the program's correct path leaves the
    /// program.
    pub fn new(
        program: &'p Program,
        config: PipelineConfig,
        max_insts: u64,
    ) -> Result<Pipeline<'p>, EmuError> {
        Pipeline::with_probe(program, config, max_insts, NoopProbe)
    }
}

impl<'p, P: Probe> Pipeline<'p, P> {
    /// Build a pipeline whose events feed `probe`.
    ///
    /// # Errors
    /// Propagates [`EmuError`] if the program's correct path leaves the
    /// program.
    pub fn with_probe(
        program: &'p Program,
        config: PipelineConfig,
        max_insts: u64,
        probe: P,
    ) -> Result<Pipeline<'p, P>, EmuError> {
        Pipeline::with_probe_and_profiler(program, config, max_insts, probe, NoopProfiler)
    }
}

impl<'p, P: Probe, F: Profiler> Pipeline<'p, P, F> {
    /// Build a pipeline whose events feed `probe` and whose host time is
    /// attributed through `profiler` (a `"setup"` span covers the
    /// architectural-reference construction; [`Pipeline::run`] adds the
    /// per-stage spans).
    ///
    /// # Errors
    /// Propagates [`EmuError`] if the program's correct path leaves the
    /// program.
    pub fn with_probe_and_profiler(
        program: &'p Program,
        config: PipelineConfig,
        max_insts: u64,
        probe: P,
        profiler: F,
    ) -> Result<Pipeline<'p, P, F>, EmuError> {
        let mut prof = profiler;
        prof.enter("setup");
        let trace = match run_trace_profiled(program, max_insts, &mut prof) {
            Ok(t) => t,
            Err(e) => {
                prof.exit();
                return Err(e);
            }
        };
        let oracle: Vec<DynInst> = trace.insts().to_vec();
        // Prefix global histories for the oracle-GHR mode (Figure 12).
        let mut oracle_hist = Vec::with_capacity(oracle.len() + 1);
        let mut h = GlobalHistory::new();
        for d in &oracle {
            oracle_hist.push(h);
            if d.class() == InstClass::CondBranch {
                h.push(d.taken);
            }
        }
        oracle_hist.push(h);
        prof.exit();

        Ok(Pipeline {
            probe,
            prof,
            activity: CycleActivity::default(),
            program,
            cfg: config,
            oracle,
            oracle_hist,
            rob: Rob::new(config.segment),
            regs: PhysRegFile::new(),
            map: MapTable::initial(),
            committed_map: MapTable::initial(),
            memory: Memory::with_image(program.data()),
            cache: DataCache::new(config.cache),
            gshare: Gshare::new(config.predictor_bits),
            conf: (config.conf_threshold > 0)
                .then(|| ConfidenceEstimator::new(config.predictor_bits, config.conf_threshold)),
            ctb: CorrelatedTargetBuffer::new(config.predictor_bits),
            tfr_pc: TfrTable::new(config.predictor_bits),
            tfr_xor: TfrTable::new(config.predictor_bits),
            recon: ReconDetector::new(program, config.recon),
            fetch: FetchCtx {
                pc: program.entry(),
                ghr: GlobalHistory::new(),
                ras: ReturnAddressStack::bounded(64),
                stalled: false,
            },
            commit_pc: program.entry(),
            commit_ghr: GlobalHistory::new(),
            commit_ras: ReturnAddressStack::bounded(64),
            seq: Sequencer::Normal,
            suspended: Vec::new(),
            pending: Vec::new(),
            now: 0,
            stats: Stats::default(),
            wake: Wakeup::default(),
            scratch_ids: Vec::new(),
            scratch_keyed: Vec::new(),
            scratch_found: Vec::new(),
        })
    }

    /// Check an id scratch buffer out of the pool.
    pub(crate) fn take_ids(&mut self) -> Vec<InstId> {
        self.scratch_ids.pop().unwrap_or_default()
    }

    /// Return an id scratch buffer to the pool.
    pub(crate) fn put_ids(&mut self, mut v: Vec<InstId>) {
        v.clear();
        self.scratch_ids.push(v);
    }

    /// Check a keyed scratch buffer out of the pool.
    pub(crate) fn take_keyed(&mut self) -> Vec<(u64, InstId)> {
        self.scratch_keyed.pop().unwrap_or_default()
    }

    /// Return a keyed scratch buffer to the pool.
    pub(crate) fn put_keyed(&mut self, mut v: Vec<(u64, InstId)>) {
        v.clear();
        self.scratch_keyed.push(v);
    }

    /// Change an entry's execution state, keeping the wakeup columns in sync.
    /// Every state assignment goes through here; nothing writes
    /// `Entry::state` directly.
    pub(crate) fn set_state(&mut self, id: InstId, state: EState) {
        self.rob.get_mut(id).state = state;
        self.wake.note_state(id, state);
    }

    /// Clear an entry's path-consistency flag so misprediction detection
    /// re-examines it, (re-)registering control instructions on the
    /// unsettled watch list. Every `resolved = false` goes through here.
    pub(crate) fn mark_unresolved(&mut self, id: InstId) {
        let e = self.rob.get_mut(id);
        e.resolved = false;
        if e.class.is_control() && e.class != InstClass::Halt {
            self.wake.watch_ctrl(id);
        }
    }

    /// Remove an entry from the window (retirement or squash), clearing its
    /// wakeup registrations. Chains and sets holding the id are *not*
    /// searched — they validate generational ids at drain time (the
    /// squash-vs-drain rule); only the address map is eagerly deregistered,
    /// and the chains of the entry's own destination register are recycled
    /// (that register can never be written again, so they would never
    /// drain).
    pub(crate) fn remove_entry(&mut self, id: InstId) -> Entry {
        self.wake.deregister_load(id);
        if let Some((_, p)) = self.rob.get(id).dest {
            self.wake.discard_chains(p.0);
        }
        self.wake.note_removed(id);
        self.rob.remove(id)
    }

    /// Decide how a `Waiting` entry waits for issue: young entries stay in
    /// the age queue, entries with a not-ready source park on that source's
    /// waiter chain, issueable entries join the ready set.
    pub(crate) fn classify_for_issue(&mut self, id: InstId) {
        if !self.rob.alive(id) {
            return;
        }
        let e = self.rob.get(id);
        if e.state != EState::Waiting {
            return;
        }
        if self.now < e.fetched_at + 2 {
            return; // still owned by the age queue
        }
        let not_ready = e
            .srcs
            .iter()
            .flatten()
            .find(|s| !self.regs.ready(s.phys))
            .map(|s| s.phys);
        match not_ready {
            Some(p) => {
                // Parking is only useful while the producer can still write
                // the register. A dead producer's register never becomes
                // ready, so the entry stays dormant (exactly as the old
                // issue scan would never have picked it) until a redispatch
                // remap or squash re-enters it here.
                if self
                    .wake
                    .producer_of(p.0)
                    .is_some_and(|pid| self.rob.alive(pid))
                {
                    self.wake.park_waiter(p.0, id);
                }
            }
            None => self.wake.mark_ready(id),
        }
    }

    /// Number of instructions on the architectural reference path.
    #[must_use]
    pub fn target_retirements(&self) -> u64 {
        self.oracle.len() as u64
    }

    /// Shared view of the attached probe.
    #[must_use]
    pub fn probe(&self) -> &P {
        &self.probe
    }

    /// Consume the pipeline, returning the probe (for reading accumulated
    /// metrics after [`Pipeline::run`]).
    #[must_use]
    pub fn into_probe(self) -> P {
        self.probe
    }

    /// Shared view of the attached profiler.
    #[must_use]
    pub fn profiler(&self) -> &F {
        &self.prof
    }

    /// The per-cycle stage-activity counters accumulated so far.
    #[must_use]
    pub fn activity(&self) -> &CycleActivity {
        &self.activity
    }

    /// Consume the pipeline, returning the probe, the profiler, and the
    /// stage-activity counters.
    #[must_use]
    pub fn into_parts(self) -> (P, F, CycleActivity) {
        (self.probe, self.prof, self.activity)
    }

    /// Force the architectural reference at retired-index `idx` onto a
    /// bogus PC, so the next retirement at that index trips the oracle
    /// checker. Exists so tests can exercise the failure path (the
    /// flight-recorder dump); never call it otherwise.
    #[doc(hidden)]
    pub fn corrupt_oracle_entry(&mut self, idx: usize) {
        if let Some(o) = self.oracle.get_mut(idx) {
            o.pc = Pc(o.pc.0 ^ 0x8000_0000);
        }
    }

    /// Run to completion (all reference instructions retired) and return the
    /// statistics.
    ///
    /// # Panics
    /// Panics if the simulation stops making forward progress or (with
    /// `check` enabled) retires an instruction that disagrees with the
    /// functional emulator — both indicate simulator bugs.
    pub fn run(&mut self) -> Stats {
        let target = self.oracle.len() as u64;
        let cap = 600 * target + 100_000;
        self.prof.enter("cycle_loop");
        while self.stats.retired < target {
            self.cycle();
            if self.now >= cap {
                self.prof.exit();
                self.dump_deadlock();
                panic!(
                    "pipeline failed to make forward progress at cycle {}",
                    self.now
                );
            }
        }
        self.prof.exit();
        self.stats.cycles = self.now;
        let (h, m) = self.cache.stats();
        self.stats.cache_hits = h;
        self.stats.cache_misses = m;
        self.stats.clone()
    }

    /// Whether `id` is the recovering branch or insertion cursor of the
    /// active or a suspended restart (and must therefore not retire yet —
    /// the sequencer still holds it as recovery state).
    pub(crate) fn restart_cursor_blocked(&self, id: InstId) -> bool {
        if let Sequencer::Restart(rs) = &self.seq {
            if rs.cursor == id || rs.branch == id {
                return true;
            }
        }
        self.suspended
            .iter()
            .any(|rs| rs.cursor == id || rs.branch == id)
    }

    /// Diagnostic dump used when the forward-progress cap trips.
    fn dump_deadlock(&self) {
        eprintln!(
            "=== deadlock at cycle {} retired {} ===",
            self.now, self.stats.retired
        );
        if let Some(d) = self.probe.dump() {
            eprintln!("{d}");
        }
        eprintln!(
            "seq: {:?}",
            match &self.seq {
                Sequencer::Normal => "Normal".to_string(),
                Sequencer::Restart(rs) => format!(
                    "Restart recon_pc={} branch_alive={} recon_alive={}",
                    rs.recon_pc,
                    self.rob.alive(rs.branch),
                    self.rob.alive(rs.recon)
                ),
                Sequencer::Redispatch(_) => "Redispatch".to_string(),
            }
        );
        eprintln!(
            "fetch: pc={} stalled={} pending={} suspended={}",
            self.fetch.pc,
            self.fetch.stalled,
            self.pending.len(),
            self.suspended.len()
        );
        for (n, id) in self.rob.iter().enumerate().take(12) {
            let e = self.rob.get(id);
            let srcs: Vec<String> = e
                .srcs
                .iter()
                .flatten()
                .map(|s| {
                    let producer = self.wake.producer_of(s.phys.0);
                    format!(
                        "p{}:ready={} producer={:?} producer_alive={}",
                        s.phys.0,
                        self.regs.ready(s.phys),
                        producer,
                        producer.is_some_and(|pid| self.rob.alive(pid)),
                    )
                })
                .collect();
            eprintln!(
                "  [{n}] {} {:?} state={:?} resolved={} exec_next={:?} pred_next={} oracle={:?} survived={} high_conf={} srcs=[{}]",
                e.pc,
                e.inst.op,
                e.state,
                e.resolved,
                e.exec_next,
                e.pred_next,
                e.oracle_idx,
                e.survived,
                e.high_conf,
                srcs.join("; ")
            );
        }
    }

    /// Advance one cycle.
    pub(crate) fn cycle(&mut self) {
        self.now += 1;
        #[cfg(debug_assertions)]
        let trace_stages = self.cfg.check && std::env::var_os("CI_CORE_INVARIANTS").is_some();
        #[cfg(debug_assertions)]
        macro_rules! chk {
            ($stage:expr) => {
                if trace_stages {
                    self.check_window_invariants($stage);
                }
            };
        }
        #[cfg(not(debug_assertions))]
        macro_rules! chk {
            ($stage:expr) => {};
        }
        self.prof.enter("complete");
        self.writeback();
        self.prof.exit();
        chk!("writeback");
        self.prof.enter("recovery");
        self.detect_mispredictions();
        chk!("detect");
        self.service_recoveries();
        chk!("service");
        self.redispatch_step();
        chk!("redispatch");
        // Suspended restarts are normally resumed by the preempting
        // recovery's completing redispatch — but a recovery that ends in a
        // complete squash (no reconvergent point in the window) never starts
        // one. With the sequencer idle and no recovery pending, nothing else
        // would ever resume the suspension, and its cursor would block
        // retirement forever.
        if matches!(self.seq, Sequencer::Normal)
            && self.pending.is_empty()
            && !self.suspended.is_empty()
        {
            self.resume_suspended();
        }
        self.prof.exit();
        self.prof.enter("retire");
        self.retire_stage();
        self.prof.exit();
        chk!("retire");
        self.prof.enter("fetch");
        // If the window fully drained while fetch was stalled on a dead-end
        // wrong path, restart fetch from the committed state.
        if self.fetch.stalled
            && self.rob.is_empty()
            && matches!(self.seq, Sequencer::Normal)
            && self.stats.retired < self.oracle.len() as u64
        {
            self.fetch.pc = self.commit_pc;
            self.fetch.ghr = self.commit_ghr;
            self.fetch.ras = self.commit_ras.snapshot();
            self.map = self.committed_map.clone();
            self.fetch.stalled = false;
        }
        self.fetch_stage();
        self.prof.exit();
        chk!("fetch");
        self.prof.enter("issue");
        self.issue_stage();
        self.prof.exit();
        chk!("issue");
        let recovery_busy = !matches!(self.seq, Sequencer::Normal) || !self.pending.is_empty();
        self.activity
            .end_cycle(self.rob.len() as u32, recovery_busy);
        self.probe.record(
            self.now,
            Event::CycleEnd {
                occupancy: self.rob.len() as u32,
            },
        );
    }

    /// Debug invariant: every non-control instruction's successor must be
    /// its fall-through unless a restart's insertion point accounts for the
    /// discontinuity.
    #[cfg(debug_assertions)]
    fn check_window_invariants(&self, stage: &str) {
        for id in self.rob.iter() {
            let e = self.rob.get(id);
            if e.class.is_control() || e.class == InstClass::Halt {
                continue;
            }
            let Some(next) = self.rob.next(id) else {
                continue;
            };
            let npc = self.rob.get(next).pc;
            if npc == e.pc.next() {
                continue;
            }
            let covered = match &self.seq {
                Sequencer::Restart(rs) => rs.cursor == id,
                _ => false,
            } || self.suspended.iter().any(|rs| rs.cursor == id);
            assert!(
                covered,
                "window hole after non-control {} at cycle {} stage {}: successor {}",
                e.pc, self.now, stage, npc
            );
        }
    }

    // ---------------------------------------------------------------- fetch

    /// The PC of the entry after `id` in the window.
    pub(crate) fn successor_pc(&self, id: InstId) -> Option<Pc> {
        self.rob.next(id).map(|n| self.rob.get(n).pc)
    }

    /// Compute an entry's oracle index from its predecessor's.
    pub(crate) fn oracle_tag(&self, prev: Option<InstId>, pc: Pc) -> Option<usize> {
        match prev {
            None => {
                let r = self.stats.retired as usize;
                (r < self.oracle.len() && self.oracle[r].pc == pc).then_some(r)
            }
            Some(p) => {
                let pe = self.rob.get(p);
                let i = pe.oracle_idx?;
                (self.oracle[i].next_pc == pc && i + 1 < self.oracle.len()).then_some(i + 1)
            }
        }
    }

    fn fetch_stage(&mut self) {
        // Restart fetch and normal fetch share the one sequencer; redispatch
        // occupies it entirely (no fetch during redispatch).
        if matches!(self.seq, Sequencer::Redispatch(_)) {
            return;
        }
        for _ in 0..self.cfg.width {
            // A restart connects when its fetch PC reaches the reconvergent
            // point.
            if let Sequencer::Restart(rs) = &self.seq {
                if self.fetch.pc == rs.recon_pc && self.rob.alive(rs.recon) {
                    let rs = rs.clone();
                    self.begin_redispatch(&rs);
                    return;
                }
            }
            if self.fetch.stalled {
                self.degenerate_stalled_restart();
                return;
            }
            let Some(&inst) = self.program.fetch(self.fetch.pc) else {
                // Wrong-path fetch left the program: stall until a recovery
                // redirects the front end.
                self.fetch.stalled = true;
                self.degenerate_stalled_restart();
                return;
            };
            // Window capacity. A restart may squash youngest-first to make
            // room (Section 3.2.2); normal fetch just stalls.
            while self.rob.capacity_used() >= self.cfg.window {
                match &self.seq {
                    Sequencer::Restart(_) => {
                        if !self.evict_youngest_for_restart() {
                            // Nothing evictable and retirement is blocked on
                            // this very restart: fall back to a complete
                            // squash (happens only with segment sizes near
                            // the window size).
                            self.force_full_squash_of_restart();
                            return;
                        }
                        // Eviction may have degenerated the restart.
                        if !matches!(self.seq, Sequencer::Restart(_))
                            && self.rob.capacity_used() >= self.cfg.window
                        {
                            return;
                        }
                    }
                    _ => return,
                }
            }
            self.fetch_one(inst);
            if self.fetch.stalled {
                self.degenerate_stalled_restart();
                return;
            }
        }
    }

    /// A restart whose fill path dead-ends (halt or out-of-program) can
    /// never reach its reconvergent point — usually a heuristic that picked
    /// a bogus point on the wrong path. Squash from the unreachable
    /// reconvergent point and fall back to tail fetch so the machine drains.
    fn degenerate_stalled_restart(&mut self) {
        if let Sequencer::Restart(rs) = &self.seq {
            let rs = rs.clone();
            if self.rob.alive(rs.recon) {
                self.squash_suffix_from(rs.recon);
            }
            self.map = rs.map;
            self.seq = Sequencer::Normal;
            self.unresolve(rs.branch);
        }
    }

    /// Abandon the active restart entirely: squash everything younger than
    /// its branch and restart fetch from the branch's corrected path — the
    /// behaviour of a complete squash. Used when a restart cannot obtain
    /// window space by evicting (pathological segment/window ratios).
    fn force_full_squash_of_restart(&mut self) {
        let Sequencer::Restart(rs) = std::mem::replace(&mut self.seq, Sequencer::Normal) else {
            return;
        };
        if let Some(n) = self.rob.next(rs.branch) {
            self.squash_suffix_from(n);
        }
        self.map = self.map_at(rs.branch);
        let e = self.rob.get(rs.branch);
        let redirect = e.pred_next;
        let mut ghr = e.ghr_before;
        if e.class == InstClass::CondBranch {
            ghr.push(Some(redirect) == e.inst.static_target());
        }
        let snap = e.ras_after.clone();
        self.restore_ras(snap.as_ref());
        self.fetch.ghr = ghr;
        self.fetch.pc = redirect;
        self.fetch.stalled = false;
    }

    /// Squash the youngest instruction to make room for a restart insert.
    /// Returns false if the restart degenerated (reconvergent point evicted).
    fn evict_youngest_for_restart(&mut self) -> bool {
        let Some(tail) = self.rob.tail() else {
            return false;
        };
        let Sequencer::Restart(rs) = &self.seq else {
            return false;
        };
        if tail == rs.cursor || tail == rs.branch {
            // Nothing evictable: the window is all older instructions.
            return false;
        }
        let degenerate = tail == rs.recon;
        self.stats.ci_evicted += 1;
        self.squash_one(tail);
        if degenerate {
            // All control-independent work is gone; the restart becomes
            // plain tail fetch from the current restart PC, continuing with
            // the restart's rename map.
            let Sequencer::Restart(rs) = std::mem::replace(&mut self.seq, Sequencer::Normal) else {
                unreachable!()
            };
            self.map = rs.map.clone();
            self.unresolve(rs.branch);
        }
        true
    }

    /// Fetch, predict, rename and dispatch one instruction at the current
    /// fetch PC.
    fn fetch_one(&mut self, inst: Inst) {
        let pc = self.fetch.pc;
        let class = inst.class();
        self.activity.cur_fetched += 1;
        self.probe.record(self.now, Event::Fetch { pc: pc.0 });

        // Predecessor in logical order (for oracle tagging).
        let prev = match &self.seq {
            Sequencer::Normal => self.rob.tail(),
            Sequencer::Restart(rs) => Some(rs.cursor),
            Sequencer::Redispatch(_) => unreachable!("no fetch during redispatch"),
        };
        let oracle_idx = self.oracle_tag(prev, pc);

        // Predict the next PC.
        let ghr_before = self.fetch.ghr;
        let hist = if self.cfg.oracle_ghr {
            oracle_idx.map_or(ghr_before, |i| self.oracle_hist[i])
        } else {
            ghr_before
        };
        let fallthrough = pc.next();
        let next = match class {
            InstClass::CondBranch => {
                let t = self.gshare.predict(pc, hist);
                self.fetch.ghr.push(t);
                if t {
                    inst.static_target().unwrap_or(fallthrough)
                } else {
                    fallthrough
                }
            }
            InstClass::Jump => inst.static_target().unwrap_or(fallthrough),
            InstClass::Call => {
                self.fetch.ras.push(fallthrough);
                inst.static_target().unwrap_or(fallthrough)
            }
            InstClass::Return => self.fetch.ras.pop().unwrap_or(fallthrough),
            InstClass::IndirectJump => {
                if inst.dest().is_some() {
                    self.fetch.ras.push(fallthrough);
                }
                self.ctb.predict(pc, hist).unwrap_or(fallthrough)
            }
            InstClass::Halt => {
                self.fetch.stalled = true;
                fallthrough
            }
            _ => fallthrough,
        };
        self.recon.observe(pc, &inst, next);

        // Confidence gating (conf_threshold > 0 only): a high-confidence
        // conditional branch gets no CI recovery context — if it does
        // mispredict, recovery falls back to a complete squash. Indexed by
        // the speculative history, matching the estimator update at
        // retirement.
        let high_conf = match (&self.conf, class) {
            (Some(conf), InstClass::CondBranch) => conf.high_confidence(pc, ghr_before),
            _ => false,
        };

        // Rename against the active map (the restart's own map while filling
        // a gap, the speculative tail map otherwise).
        let map = match &mut self.seq {
            Sequencer::Restart(rs) => &mut rs.map,
            _ => &mut self.map,
        };
        let mut srcs = [None, None];
        for (k, r) in inst.sources().enumerate() {
            srcs[k] = Some(SrcBinding {
                arch: r,
                phys: map.get(r),
            });
        }
        let dest = inst.dest().map(|r| (r, self.regs.alloc()));
        let map = match &mut self.seq {
            Sequencer::Restart(rs) => &mut rs.map,
            _ => &mut self.map,
        };
        if let Some((r, p)) = dest {
            map.set(r, p);
        }

        let ras_after = class
            .is_control()
            .then(|| self.fetch.ras.snapshot())
            .map(|s| {
                // Store the raw stack contents.
                let mut v = Vec::new();
                let mut s = s;
                while let Some(pc) = s.pop() {
                    v.push(pc);
                }
                v.reverse();
                v
            });

        let entry = Entry {
            inst,
            pc,
            class,
            srcs,
            dest,
            state: EState::Waiting,
            issue_count: 0,
            dspec: false,
            result: 0,
            addr: None,
            exec_next: None,
            taken: false,
            src_store: None,
            resolved: false,
            pred_next: next,
            first_pred_next: next,
            ghr_before,
            ras_after,
            fetched_at: self.now,
            oracle_idx,
            high_conf,
            survived: false,
            saved_done: false,
            discarded: false,
            only_fetched: false,
            mem_reissues: 0,
            reg_reissues: 0,
        };

        let id = match &self.seq {
            Sequencer::Restart(rs) => {
                let cursor = rs.cursor;
                let mut seg = rs.seg;
                // The cursor's successor changes: re-check consistency.
                self.mark_unresolved(cursor);
                let id = self.rob.insert_after(cursor, entry, &mut seg);
                if let Sequencer::Restart(rs) = &mut self.seq {
                    rs.seg = seg;
                    rs.cursor = id;
                    rs.inserted += 1;
                }
                self.stats.inserted += 1;
                id
            }
            _ => {
                // The former tail's successor changes: its path consistency
                // must be re-checked (it may have resolved against the bare
                // fetch PC).
                if let Some(t) = self.rob.tail() {
                    self.mark_unresolved(t);
                }
                self.rob.push_back(entry)
            }
        };
        // Dispatch-side wakeup registration: state column, the producer of
        // the destination register, the control watch list, the store set,
        // and the issue age queue (issueable at +2).
        self.wake.note_state(id, EState::Waiting);
        if let Some((_, p)) = dest {
            self.wake.set_producer(p.0, id);
        }
        if class.is_control() && class != InstClass::Halt {
            self.wake.watch_ctrl(id);
        }
        if class == InstClass::Store {
            self.wake.add_store(id);
        }
        self.wake.push_young(self.now + 2, id);
        self.probe.record(self.now, Event::Dispatch { pc: pc.0 });
        self.fetch.pc = next;
    }

    /// Restore a RAS snapshot stored on an entry into the fetch context.
    pub(crate) fn restore_ras(&mut self, snapshot: Option<&Vec<Pc>>) {
        let mut ras = ReturnAddressStack::bounded(64);
        if let Some(v) = snapshot {
            for &pc in v {
                ras.push(pc);
            }
        }
        self.fetch.ras = ras;
    }

    /// Rebuild the rename map as it stood just after `upto` dispatched.
    pub(crate) fn map_at(&self, upto: InstId) -> MapTable {
        let mut m = self.committed_map.clone();
        for id in self.rob.iter() {
            if let Some((r, p)) = self.rob.get(id).dest {
                m.set(r, p);
            }
            if id == upto {
                break;
            }
        }
        m
    }
}
