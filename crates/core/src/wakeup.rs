//! Event-driven wakeup state: the data-oriented side tables that replace the
//! cycle loop's full-window walks.
//!
//! The pre-rewrite core re-derived everything every cycle by walking the
//! whole ROB: which executions finish now, which consumers a completing
//! producer invalidates, which loads a store's writeback conflicts with,
//! which control instructions are still unsettled, which entries can issue.
//! [`Wakeup`] keeps each of those facts *indexed* instead, maintained at the
//! points where they change:
//!
//! - **Struct-of-arrays columns** (`status`, `done_at`, membership flags,
//!   the registered load address) indexed by ROB *slot*, so the per-cycle
//!   filters touch packed arrays instead of chasing `Option<Entry>`
//!   payloads. The engine routes every state change through
//!   `Pipeline::set_state`, which keeps the columns and the entry in sync.
//! - A **completion heap** of `(done_at, seq)` events pushed at issue time;
//!   writeback pops due events instead of scanning for them.
//! - **Per-physical-register chains** (pooled singly-linked nodes): a
//!   *waiter* chain of `Waiting` entries parked on a not-ready source, and a
//!   *consumer* chain of entries that issued reading the register. Both are
//!   drained only when the register is written.
//! - An **age queue** of freshly dispatched entries (issueable two cycles
//!   after fetch) and a **ready set** of issueable entries, giving the issue
//!   stage a candidate list proportional to issueable work.
//! - Window-membership sets for **stores** (memory disambiguation and the
//!   `non_dspec` completion gate), **unsettled control** instructions
//!   (misprediction detection), and a per-address map of **executed loads**
//!   (store-violation and squashed-forwarding repair).
//!
//! Everything here is *lazily invalidated*: chains and sets may hold stale
//! generational ids (squashed or re-issued entries), and every drain
//! re-applies the exact predicate the old full-window walk used, then sorts
//! the survivors by logical-order key. That ordering rule is what makes the
//! rewrite byte-identical — observable processing order is window order,
//! exactly as the walks produced it (see `tests/rob_equivalence.rs`).
//!
//! **Squash-vs-drain ordering rule:** registration is *by id, validated at
//! drain time* — never eagerly deleted at squash time. A squash may run
//! while a drain's candidate list is already snapshotted, so drains must
//! re-check `alive` per candidate (the old walks did exactly this), and
//! nothing may assume a chain node still names a live entry.

use crate::engine::EState;
use crate::rob::InstId;
use ci_isa::Addr;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap, VecDeque};

const NONE: u32 = u32::MAX;

/// Packed execution status, mirroring [`EState`] without the payload.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
#[repr(u8)]
pub(crate) enum Status {
    /// Slot holds no live instruction.
    #[default]
    Free,
    /// Not issued, or invalidated and awaiting reissue.
    Waiting,
    /// Issued; `done_at` column holds the completion cycle.
    Executing,
    /// Executed with valid results.
    Done,
}

/// A scheduled completion. Min-ordered by `(done_at, seq)`; the sequence
/// number only makes the heap order total and deterministic — writeback
/// re-sorts due candidates by window key before processing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct CompEvent {
    done_at: u64,
    seq: u64,
    id: InstId,
}

impl Ord for CompEvent {
    fn cmp(&self, other: &CompEvent) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest event.
        (other.done_at, other.seq).cmp(&(self.done_at, self.seq))
    }
}

impl PartialOrd for CompEvent {
    fn partial_cmp(&self, other: &CompEvent) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// One pooled chain node: `(entry, next)` with free-list reuse.
#[derive(Clone, Copy, Debug)]
struct ChainNode {
    id: InstId,
    next: u32,
}

/// The event-driven wakeup state. See the module docs for the protocol.
#[derive(Clone, Debug, Default)]
pub(crate) struct Wakeup {
    // ---- struct-of-arrays columns, indexed by ROB slot ----
    status: Vec<Status>,
    done_at: Vec<u64>,
    in_ready: Vec<bool>,
    in_watch: Vec<bool>,
    reg_addr: Vec<Option<Addr>>,
    // ---- completion events ----
    comp: BinaryHeap<CompEvent>,
    comp_seq: u64,
    // ---- per-physical-register chains ----
    waiter_head: Vec<u32>,
    consumer_head: Vec<u32>,
    nodes: Vec<ChainNode>,
    node_free: Vec<u32>,
    /// The window entry that writes each physical register (registers are
    /// allocated fresh per dispatch, so the producer never changes).
    producer: Vec<Option<InstId>>,
    // ---- issue candidates ----
    young: VecDeque<(u64, InstId)>,
    pub(crate) ready: Vec<InstId>,
    // ---- window membership sets ----
    pub(crate) stores: Vec<InstId>,
    pub(crate) ctrl: Vec<InstId>,
    loads_by_addr: HashMap<Addr, Vec<InstId>>,
}

impl Wakeup {
    /// Grow the slot columns to cover `slot`.
    fn ensure_slot(&mut self, slot: usize) {
        if slot >= self.status.len() {
            let n = slot + 1;
            self.status.resize(n, Status::Free);
            self.done_at.resize(n, 0);
            self.in_ready.resize(n, false);
            self.in_watch.resize(n, false);
            self.reg_addr.resize(n, None);
        }
    }

    /// Grow the per-register chain heads to cover `reg`.
    fn ensure_reg(&mut self, reg: usize) {
        if reg >= self.waiter_head.len() {
            let n = reg + 1;
            self.waiter_head.resize(n, NONE);
            self.consumer_head.resize(n, NONE);
            self.producer.resize(n, None);
        }
    }

    /// Record `id` as the (sole, permanent) producer of physical register
    /// `reg`.
    pub(crate) fn set_producer(&mut self, reg: u32, id: InstId) {
        self.ensure_reg(reg as usize);
        self.producer[reg as usize] = Some(id);
    }

    /// The window entry that writes `reg`, if one was ever dispatched (the
    /// caller checks liveness — a squashed producer means the register can
    /// never become ready).
    pub(crate) fn producer_of(&self, reg: u32) -> Option<InstId> {
        self.producer.get(reg as usize).copied().flatten()
    }

    /// Recycle both chains of a register whose producer left the window:
    /// nothing can write it anymore, so the chains would never drain.
    pub(crate) fn discard_chains(&mut self, reg: u32) {
        let r = reg as usize;
        if r >= self.waiter_head.len() {
            return;
        }
        for heads in [&mut self.waiter_head, &mut self.consumer_head] {
            let mut cur = heads[r];
            heads[r] = NONE;
            while cur != NONE {
                self.node_free.push(cur);
                cur = self.nodes[cur as usize].next;
            }
        }
    }

    // ------------------------------------------------------------- columns

    /// Record a state change for `id`. The engine calls this from
    /// `Pipeline::set_state`; nothing else writes the status columns.
    pub(crate) fn note_state(&mut self, id: InstId, state: EState) {
        let slot = id.slot() as usize;
        self.ensure_slot(slot);
        match state {
            EState::Waiting => self.status[slot] = Status::Waiting,
            EState::Executing { done_at } => {
                self.status[slot] = Status::Executing;
                self.done_at[slot] = done_at;
            }
            EState::Done => self.status[slot] = Status::Done,
        }
    }

    /// Clear every column for a slot whose instruction left the window.
    pub(crate) fn note_removed(&mut self, id: InstId) {
        let slot = id.slot() as usize;
        self.ensure_slot(slot);
        self.status[slot] = Status::Free;
        self.in_ready[slot] = false;
        self.in_watch[slot] = false;
        // `reg_addr` is deregistered by the engine (it needs the map list);
        // assert the caller did so in debug builds.
        debug_assert!(self.reg_addr[slot].is_none());
    }

    /// Packed status of a slot.
    pub(crate) fn status_of(&self, id: InstId) -> Status {
        self.status
            .get(id.slot() as usize)
            .copied()
            .unwrap_or(Status::Free)
    }

    /// Scheduled completion cycle of a slot (valid while `Executing`).
    pub(crate) fn done_at_of(&self, id: InstId) -> u64 {
        self.done_at.get(id.slot() as usize).copied().unwrap_or(0)
    }

    // ------------------------------------------------------ completion heap

    /// Schedule `id`'s completion at `done_at`.
    pub(crate) fn schedule_completion(&mut self, id: InstId, done_at: u64) {
        let seq = self.comp_seq;
        self.comp_seq += 1;
        self.comp.push(CompEvent { done_at, seq, id });
    }

    /// Pop every event due at or before `now` into `out`. Events are
    /// *candidates*: stale ones (entry re-issued with a different `done_at`,
    /// squashed, or already completed) must be filtered by the caller.
    pub(crate) fn take_due_completions(&mut self, now: u64, out: &mut Vec<InstId>) {
        while let Some(ev) = self.comp.peek() {
            if ev.done_at > now {
                break;
            }
            out.push(self.comp.pop().expect("peeked").id);
        }
    }

    // ------------------------------------------------------------- chains

    fn push_chain(
        heads: &mut [u32],
        nodes: &mut Vec<ChainNode>,
        free: &mut Vec<u32>,
        reg: usize,
        id: InstId,
    ) {
        let node = ChainNode {
            id,
            next: heads[reg],
        };
        let idx = match free.pop() {
            Some(i) => {
                nodes[i as usize] = node;
                i
            }
            None => {
                nodes.push(node);
                (nodes.len() - 1) as u32
            }
        };
        heads[reg] = idx;
    }

    fn drain_chain(
        heads: &mut [u32],
        nodes: &[ChainNode],
        free: &mut Vec<u32>,
        reg: usize,
        out: &mut Vec<InstId>,
    ) {
        let mut cur = heads[reg];
        heads[reg] = NONE;
        while cur != NONE {
            let n = nodes[cur as usize];
            out.push(n.id);
            free.push(cur);
            cur = n.next;
        }
    }

    /// Park `id` (a `Waiting` entry) on the waiter chain of not-ready
    /// register `reg`; it is re-evaluated when the register is written.
    pub(crate) fn park_waiter(&mut self, reg: u32, id: InstId) {
        self.ensure_reg(reg as usize);
        Self::push_chain(
            &mut self.waiter_head,
            &mut self.nodes,
            &mut self.node_free,
            reg as usize,
            id,
        );
    }

    /// Register `id` as having issued reading `reg` (invalidated if the
    /// producer completes after it).
    pub(crate) fn add_consumer(&mut self, reg: u32, id: InstId) {
        self.ensure_reg(reg as usize);
        Self::push_chain(
            &mut self.consumer_head,
            &mut self.nodes,
            &mut self.node_free,
            reg as usize,
            id,
        );
    }

    /// Drain the waiter chain of a just-written register into `out`.
    pub(crate) fn drain_waiters(&mut self, reg: u32, out: &mut Vec<InstId>) {
        let r = reg as usize;
        if r < self.waiter_head.len() {
            Self::drain_chain(
                &mut self.waiter_head,
                &self.nodes,
                &mut self.node_free,
                r,
                out,
            );
        }
    }

    /// Drain the consumer chain of a just-written register into `out`.
    pub(crate) fn drain_consumers(&mut self, reg: u32, out: &mut Vec<InstId>) {
        let r = reg as usize;
        if r < self.consumer_head.len() {
            Self::drain_chain(
                &mut self.consumer_head,
                &self.nodes,
                &mut self.node_free,
                r,
                out,
            );
        }
    }

    // ------------------------------------------------------ issue candidates

    /// Queue a freshly dispatched entry; it becomes an issue candidate at
    /// `due` (fetch cycle + 2). Dispatch order keeps `due` monotone.
    pub(crate) fn push_young(&mut self, due: u64, id: InstId) {
        debug_assert!(self.young.back().is_none_or(|&(d, _)| d <= due));
        self.young.push_back((due, id));
    }

    /// Move entries whose age gate opened at or before `now` into `out`.
    pub(crate) fn take_due_young(&mut self, now: u64, out: &mut Vec<InstId>) {
        while let Some(&(due, id)) = self.young.front() {
            if due > now {
                break;
            }
            self.young.pop_front();
            out.push(id);
        }
    }

    /// Put `id` in the ready set unless already there. The `in_ready` flag
    /// is authoritative; the vector may keep stale ids until compaction.
    pub(crate) fn mark_ready(&mut self, id: InstId) {
        let slot = id.slot() as usize;
        self.ensure_slot(slot);
        if !self.in_ready[slot] {
            self.in_ready[slot] = true;
            self.ready.push(id);
        }
    }

    /// Drop `id`'s ready flag (it issued, died, or lost a source to a
    /// redispatch remap). Its vector entry is removed lazily.
    pub(crate) fn clear_ready(&mut self, id: InstId) {
        let slot = id.slot() as usize;
        if slot < self.in_ready.len() {
            self.in_ready[slot] = false;
        }
    }

    /// Whether `id` currently holds the ready flag.
    pub(crate) fn is_ready_flagged(&self, id: InstId) -> bool {
        self.in_ready
            .get(id.slot() as usize)
            .copied()
            .unwrap_or(false)
    }

    // ------------------------------------------------------ membership sets

    /// Track a dispatched store (memory disambiguation walks only this set).
    pub(crate) fn add_store(&mut self, id: InstId) {
        self.stores.push(id);
    }

    /// Put a control instruction on the unsettled watch list unless already
    /// there (`in_watch` is the membership flag; settling removes it).
    pub(crate) fn watch_ctrl(&mut self, id: InstId) {
        let slot = id.slot() as usize;
        self.ensure_slot(slot);
        if !self.in_watch[slot] {
            self.in_watch[slot] = true;
            self.ctrl.push(id);
        }
    }

    /// Drop the watch flag for a settled (or removed) control instruction.
    pub(crate) fn unwatch_ctrl(&mut self, id: InstId) {
        let slot = id.slot() as usize;
        if slot < self.in_watch.len() {
            self.in_watch[slot] = false;
        }
    }

    /// Whether `id` currently holds the watch flag.
    pub(crate) fn is_watched(&self, id: InstId) -> bool {
        self.in_watch
            .get(id.slot() as usize)
            .copied()
            .unwrap_or(false)
    }

    /// (Re-)register an executed load under its effective address, moving it
    /// out of the list for a previously registered address if necessary.
    pub(crate) fn register_load(&mut self, id: InstId, addr: Addr) {
        let slot = id.slot() as usize;
        self.ensure_slot(slot);
        match self.reg_addr[slot] {
            Some(a) if a == addr => return,
            Some(old) => Self::remove_from_addr_list(&mut self.loads_by_addr, old, id),
            None => {}
        }
        self.reg_addr[slot] = Some(addr);
        self.loads_by_addr.entry(addr).or_default().push(id);
    }

    /// Remove `id` from the address map (called when it leaves the window).
    pub(crate) fn deregister_load(&mut self, id: InstId) {
        let slot = id.slot() as usize;
        if slot >= self.reg_addr.len() {
            return;
        }
        if let Some(addr) = self.reg_addr[slot].take() {
            Self::remove_from_addr_list(&mut self.loads_by_addr, addr, id);
        }
    }

    fn remove_from_addr_list(map: &mut HashMap<Addr, Vec<InstId>>, addr: Addr, id: InstId) {
        if let Some(list) = map.get_mut(&addr) {
            list.retain(|&x| x != id);
            if list.is_empty() {
                map.remove(&addr);
            }
        }
    }

    /// Copy the executed loads registered at `addr` into `out` (candidates
    /// for store-violation / squashed-forwarding repair; caller filters).
    pub(crate) fn loads_at(&self, addr: Addr, out: &mut Vec<InstId>) {
        if let Some(list) = self.loads_by_addr.get(&addr) {
            out.extend_from_slice(list);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rob::Rob;

    fn ids(n: usize) -> (Rob<u32>, Vec<InstId>) {
        let mut rob = Rob::new(1);
        let ids = (0..n).map(|i| rob.push_back(i as u32)).collect();
        (rob, ids)
    }

    #[test]
    fn completion_heap_pops_in_time_order() {
        let (_rob, ids) = ids(3);
        let mut w = Wakeup::default();
        w.schedule_completion(ids[0], 9);
        w.schedule_completion(ids[1], 4);
        w.schedule_completion(ids[2], 9);
        let mut due = Vec::new();
        w.take_due_completions(3, &mut due);
        assert!(due.is_empty());
        w.take_due_completions(4, &mut due);
        assert_eq!(due, vec![ids[1]]);
        due.clear();
        w.take_due_completions(20, &mut due);
        assert_eq!(due.len(), 2);
    }

    #[test]
    fn chains_drain_and_reuse_nodes() {
        let (_rob, ids) = ids(4);
        let mut w = Wakeup::default();
        w.park_waiter(7, ids[0]);
        w.park_waiter(7, ids[1]);
        w.park_waiter(3, ids[2]);
        let mut out = Vec::new();
        w.drain_waiters(7, &mut out);
        assert_eq!(out.len(), 2);
        assert!(out.contains(&ids[0]) && out.contains(&ids[1]));
        out.clear();
        w.drain_waiters(7, &mut out);
        assert!(out.is_empty(), "drained chain is empty");
        // Freed nodes are reused for the next registration.
        let pool = w.nodes.len();
        w.add_consumer(5, ids[3]);
        assert_eq!(w.nodes.len(), pool, "free list reused a node");
        out.clear();
        w.drain_consumers(5, &mut out);
        assert_eq!(out, vec![ids[3]]);
    }

    #[test]
    fn ready_flag_deduplicates() {
        let (_rob, ids) = ids(1);
        let mut w = Wakeup::default();
        w.mark_ready(ids[0]);
        w.mark_ready(ids[0]);
        assert_eq!(w.ready.len(), 1);
        assert!(w.is_ready_flagged(ids[0]));
        w.clear_ready(ids[0]);
        assert!(!w.is_ready_flagged(ids[0]));
        // The vector entry stays (lazy); the flag is the truth.
        assert_eq!(w.ready.len(), 1);
    }

    #[test]
    fn load_registration_moves_between_addresses() {
        let (_rob, ids) = ids(2);
        let mut w = Wakeup::default();
        w.register_load(ids[0], Addr(8));
        w.register_load(ids[1], Addr(8));
        w.register_load(ids[0], Addr(16));
        let mut at8 = Vec::new();
        w.loads_at(Addr(8), &mut at8);
        assert_eq!(at8, vec![ids[1]]);
        let mut at16 = Vec::new();
        w.loads_at(Addr(16), &mut at16);
        assert_eq!(at16, vec![ids[0]]);
        w.deregister_load(ids[0]);
        at16.clear();
        w.loads_at(Addr(16), &mut at16);
        assert!(at16.is_empty());
    }

    // ---- rare interleavings the differential fuzzer exercised (PR 2) ----

    /// A waiter chain must survive a squash of some of its members: nodes
    /// are never eagerly deleted, the drain returns stale ids, and the
    /// caller's alive check (here: the cleared status column) rejects them.
    #[test]
    fn waiter_chain_across_a_squash() {
        let (mut rob, ids) = ids(3);
        let mut w = Wakeup::default();
        for &id in &ids {
            w.note_state(id, EState::Waiting);
            w.park_waiter(2, id);
        }
        // Selective squash removes the middle waiter while the chain is
        // registered; the chain itself is untouched (squash-vs-drain rule).
        rob.remove(ids[1]);
        w.note_removed(ids[1]);
        let mut out = Vec::new();
        w.drain_waiters(2, &mut out);
        assert_eq!(out.len(), 3, "stale ids stay registered until drain");
        let survivors: Vec<InstId> = out
            .into_iter()
            .filter(|&id| w.status_of(id) != Status::Free)
            .collect();
        assert!(survivors.contains(&ids[0]) && survivors.contains(&ids[2]));
        assert_eq!(
            survivors.len(),
            2,
            "drain-time validation drops the dead waiter"
        );
    }

    /// A producer's completion may drain a consumer chain in the same cycle
    /// a squash is removing those consumers: the drain yields the squashed
    /// id, and the status column (cleared by `note_removed`) filters it.
    #[test]
    fn producer_completes_while_consumers_squashed() {
        let (mut rob, ids) = ids(3);
        let mut w = Wakeup::default();
        w.set_producer(9, ids[0]);
        w.note_state(ids[1], EState::Executing { done_at: 5 });
        w.note_state(ids[2], EState::Executing { done_at: 5 });
        w.add_consumer(9, ids[1]);
        w.add_consumer(9, ids[2]);
        // The squash lands first; the producer's writeback drains after.
        rob.remove(ids[2]);
        w.note_removed(ids[2]);
        let mut out = Vec::new();
        w.drain_consumers(9, &mut out);
        assert_eq!(out.len(), 2);
        let live: Vec<InstId> = out
            .into_iter()
            .filter(|&id| w.status_of(id) != Status::Free)
            .collect();
        assert_eq!(live, vec![ids[1]]);
        // When the *producer* is squashed instead, its register can never be
        // written again: `discard_chains` recycles every node without a drain.
        w.add_consumer(9, ids[1]);
        w.discard_chains(9);
        let mut empty = Vec::new();
        w.drain_consumers(9, &mut empty);
        assert!(empty.is_empty(), "discarded chain never drains");
        // The recycled nodes must not alias another register's live chain.
        w.park_waiter(4, ids[0]);
        w.park_waiter(6, ids[1]);
        let (mut a, mut b) = (Vec::new(), Vec::new());
        w.drain_waiters(4, &mut a);
        w.drain_waiters(6, &mut b);
        assert_eq!((a, b), (vec![ids[0]], vec![ids[1]]));
    }

    /// Redispatch may re-park an entry whose earlier registration was
    /// already drained — and may even double-register it. Each registration
    /// drains once; duplicates are the caller's (sort + dedup) problem, and
    /// the drained chain holds nothing.
    #[test]
    fn redispatch_reenqueues_a_drained_waiter() {
        let (_rob, ids) = ids(1);
        let mut w = Wakeup::default();
        w.note_state(ids[0], EState::Waiting);
        w.park_waiter(3, ids[0]);
        let mut out = Vec::new();
        w.drain_waiters(3, &mut out);
        assert_eq!(out, vec![ids[0]]);
        // Redispatch finds the source still not ready and re-parks — twice
        // (e.g. once from the remap, once from a later invalidation).
        w.park_waiter(3, ids[0]);
        w.park_waiter(3, ids[0]);
        out.clear();
        w.drain_waiters(3, &mut out);
        assert_eq!(
            out,
            vec![ids[0], ids[0]],
            "duplicates surface for caller dedup"
        );
        out.clear();
        w.drain_waiters(3, &mut out);
        assert!(out.is_empty());
    }

    /// The SoA status/done_at columns mirror every `EState` transition and
    /// are fully cleared on removal, so slot reuse starts clean.
    #[test]
    fn soa_columns_track_entry_state() {
        let (mut rob, ids) = ids(1);
        let id = ids[0];
        let mut w = Wakeup::default();
        w.note_state(id, EState::Waiting);
        assert_eq!(w.status_of(id), Status::Waiting);
        w.note_state(id, EState::Executing { done_at: 17 });
        assert_eq!(w.status_of(id), Status::Executing);
        assert_eq!(w.done_at_of(id), 17);
        w.note_state(id, EState::Done);
        assert_eq!(w.status_of(id), Status::Done);
        w.mark_ready(id);
        w.watch_ctrl(id);
        rob.remove(id);
        w.note_removed(id);
        assert_eq!(w.status_of(id), Status::Free);
        assert!(!w.is_ready_flagged(id));
        assert!(!w.is_watched(id));
        // The freed slot's next tenant sees pristine columns.
        let reused = rob.push_back(41);
        assert_eq!(reused.slot(), id.slot(), "arena reuses the freed slot");
        assert_eq!(w.status_of(reused), Status::Free);
        assert!(!w.is_ready_flagged(reused));
    }

    #[test]
    fn young_queue_respects_age_gate() {
        let (_rob, ids) = ids(2);
        let mut w = Wakeup::default();
        w.push_young(5, ids[0]);
        w.push_young(6, ids[1]);
        let mut out = Vec::new();
        w.take_due_young(4, &mut out);
        assert!(out.is_empty());
        w.take_due_young(5, &mut out);
        assert_eq!(out, vec![ids[0]]);
        w.take_due_young(6, &mut out);
        assert_eq!(out.len(), 2);
    }
}
