//! Misprediction detection, recovery sequences (selective or full squash),
//! restart management with preemption, and redispatch.

use crate::config::{Preemption, RedispatchMode, RepredictMode, SquashMode};
use crate::engine::{
    EState, FetchCtx, PendingRecovery, Pipeline, RedispatchState, RestartState, Sequencer,
};
use crate::rob::{InstId, SegCursor};
use ci_bpred::TfrIndexing;
use ci_isa::{InstClass, Pc};
use ci_obs::{Event, Probe, Profiler, ReissueKind};

impl<P: Probe, F: Profiler> Pipeline<'_, P, F> {
    /// Scan for control instructions whose execution disagrees with the path
    /// in the window, gated by the branch-completion model (Appendix A.2).
    pub(crate) fn detect_mispredictions(&mut self) {
        let in_order = self.cfg.completion.in_order();
        let non_dspec = self.cfg.completion.non_dspec();

        // Collect the live, unsettled control instructions from the watch
        // list (pruning dead and settled ones — a settled entry re-enters
        // only through `mark_unresolved`, which re-watches it) and order
        // them by window position: the walk below then sees exactly the
        // sequence the old full scan saw, because settled entries never
        // influenced its in-order gate.
        let mut cands = self.take_keyed();
        let mut watch = std::mem::take(&mut self.wake.ctrl);
        watch.retain(|&id| {
            if !self.wake.is_watched(id) {
                return false;
            }
            if !self.rob.alive(id) {
                // Dead id: its own flag was cleared at removal, so a set
                // flag belongs to the slot's new tenant (watched in its own
                // right) — drop the stale id without touching the flag.
                return false;
            }
            let e = self.rob.get(id);
            if e.state == EState::Done && e.resolved {
                self.wake.unwatch_ctrl(id);
                return false;
            }
            cands.push((self.rob.key(id), id));
            true
        });
        self.wake.ctrl = watch;
        cands.sort_unstable();

        let mut older_unsettled = false;
        let mut found = std::mem::take(&mut self.scratch_found);
        let mut resolved_ok = self.take_ids();

        for &(_, id) in &cands {
            let e = self.rob.get(id);
            let gate_order = !in_order || !older_unsettled;
            older_unsettled = true;
            if e.state != EState::Done {
                continue;
            }
            if !gate_order {
                continue;
            }
            // non-dspec models: operands must not be affected by data
            // speculation. Data speculation in this machine comes from loads
            // issuing ahead of unresolved stores, so a branch may complete
            // once no older store's address remains unresolved (the
            // condition self-clears as stores execute).
            if non_dspec && self.has_unresolved_older_store(id) {
                continue;
            }
            let exec_next = e.exec_next.expect("completed control has exec_next");
            let succ = self.successor_pc(id);
            let mismatch = match succ {
                Some(s) => s != exec_next,
                None => {
                    // Tail instruction: compare against the front end. While
                    // a restart or redispatch owns the front end, fetch.pc is
                    // not this instruction's successor — defer judgment
                    // rather than settling it against the wrong comparand (a
                    // branch wrongly marked resolved would never be
                    // re-examined and could block retirement forever).
                    if !matches!(self.seq, Sequencer::Normal) {
                        continue;
                    }
                    self.fetch.pc != exec_next
                }
            };
            if !mismatch {
                resolved_ok.push(id);
                continue;
            }
            // Oracle suppression of false mispredictions (the *-HFM models):
            // delay completion while the current path is architecturally
            // right but the operands say otherwise.
            if self.cfg.hide_false_mispredictions {
                if let Some(i) = e.oracle_idx {
                    let oracle_next = self.oracle[i].next_pc;
                    if succ == Some(oracle_next) && exec_next != oracle_next {
                        continue;
                    }
                }
            }
            resolved_ok.push(id);
            found.push(PendingRecovery {
                branch: id,
                redirect: exec_next,
                from_exec: true,
            });
        }
        for id in resolved_ok.drain(..) {
            self.rob.get_mut(id).resolved = true;
        }
        self.put_ids(resolved_ok);
        self.pending.append(&mut found);
        self.scratch_found = found;
        self.put_keyed(cands);
    }

    /// Service pending recoveries, oldest first, respecting the sequencer
    /// and the preemption policy (Appendix A.1).
    pub(crate) fn service_recoveries(&mut self) {
        self.pending.retain(|p| self.rob.alive(p.branch));
        loop {
            // Oldest pending recovery.
            let Some((slot, rec)) = self
                .pending
                .iter()
                .enumerate()
                .min_by_key(|(_, p)| self.rob.key(p.branch))
                .map(|(i, p)| (i, *p))
            else {
                return;
            };

            // Re-validate.
            let e = self.rob.get(rec.branch);
            if rec.from_exec && e.state != EState::Done {
                self.pending.swap_remove(slot);
                continue;
            }
            let consistent = match self.successor_pc(rec.branch) {
                Some(s) => s == rec.redirect,
                None => matches!(self.seq, Sequencer::Normal) && self.fetch.pc == rec.redirect,
            };
            if consistent {
                self.pending.swap_remove(slot);
                continue;
            }

            // Sequencer interaction.
            let bkey = self.rob.key(rec.branch);
            match &self.seq {
                Sequencer::Normal => {}
                Sequencer::Restart(rs) => {
                    if self.rob.alive(rs.recon) && bkey >= self.rob.key(rs.recon) {
                        // In the control-independent region: serviced
                        // serially after the active restart completes.
                        return;
                    }
                    if bkey >= self.rob.key(rs.branch) {
                        // A newly fetched (or re-resolved) branch inside the
                        // restart's own fill region: the recovery below
                        // replaces the active restart, keeping the correct
                        // prefix of the fill. The old restart's unfilled gap
                        // would otherwise survive as an unfillable hole, so
                        // its reconvergent suffix is squashed first.
                        let recon = rs.recon;
                        let old_branch = rs.branch;
                        if self.rob.alive(recon) {
                            self.squash_suffix_from(recon);
                        }
                        self.seq = Sequencer::Normal;
                        self.unresolve(old_branch);
                        self.pending.swap_remove(slot);
                        self.do_recover(rec);
                        return;
                    }
                    // Preemption by a logically earlier misprediction.
                    self.stats.preemptions += 1;
                    let rs = rs.clone();
                    match self.cfg.preemption {
                        Preemption::Optimal => {
                            self.suspended.push(rs);
                            self.seq = Sequencer::Normal;
                        }
                        Preemption::Simple => {
                            // Squash from the old reconvergent point so no
                            // half-filled gap survives, then abandon it.
                            if self.rob.alive(rs.recon) {
                                self.squash_suffix_from(rs.recon);
                            }
                            self.seq = Sequencer::Normal;
                            self.unresolve(rs.branch);
                        }
                    }
                }
                Sequencer::Redispatch(rd) => {
                    let ahead = match rd.cursor {
                        Some(c) => bkey >= self.rob.key(c),
                        None => true,
                    };
                    if ahead {
                        return; // walk will pass it; service afterwards
                    }
                    // Back up the sequencer: the new recovery's redispatch
                    // supersedes the cancelled walk.
                    self.seq = Sequencer::Normal;
                }
            }

            self.pending.swap_remove(slot);
            self.do_recover(rec);
            return;
        }
    }

    /// Whether any store older than `id` has not yet resolved its address.
    /// The store membership set replaces the window walk (order does not
    /// matter for an existence check).
    fn has_unresolved_older_store(&self, id: InstId) -> bool {
        let key = self.rob.key(id);
        self.wake.stores.iter().any(|&sid| {
            self.rob.alive(sid) && self.rob.key(sid) < key && {
                let se = self.rob.get(sid);
                se.class == InstClass::Store && se.state != EState::Done
            }
        })
    }

    /// Clear a branch's resolution flag so its path consistency is
    /// re-checked (used whenever the restart recovering it dies).
    pub(crate) fn unresolve(&mut self, id: InstId) {
        if self.rob.alive(id) {
            self.mark_unresolved(id);
        }
    }

    /// Cancel any active or suspended restart whose recovering branch is
    /// `id` (called when `id` is invalidated for reissue): squash the fill
    /// inserted so far and return the sequencer to tail fetch.
    pub(crate) fn cancel_restarts_of(&mut self, id: InstId) {
        let active = matches!(&self.seq, Sequencer::Restart(rs) if rs.branch == id);
        if active {
            let Sequencer::Restart(rs) = std::mem::replace(&mut self.seq, Sequencer::Normal) else {
                unreachable!()
            };
            // Squash the whole suffix, not just the fill: survivors beyond
            // the reconvergent point may hold sources squashed when this
            // restart began (or by an earlier walk this restart superseded),
            // and their repair walk dies with the restart. Re-detection
            // cannot be relied on to rebuild it — the re-executed branch can
            // resolve *consistent* with the post-squash window (its target
            // is the reconvergent point), leaving the stale sources parked
            // on never-ready registers and wedging retirement.
            if let Some(n) = self.rob.next(rs.branch) {
                self.squash_suffix_from(n);
            }
            self.unresolve(rs.branch);
            self.resume_tail_fetch();
        }
        let stale: Vec<RestartState> = {
            let mut out = Vec::new();
            self.suspended.retain_mut(|rs| {
                if rs.branch == id {
                    out.push(rs.clone());
                    false
                } else {
                    true
                }
            });
            out
        };
        for rs in stale {
            // Same suffix rule as the active-restart case above: the
            // suspension's survivors lose their pending repair walk when the
            // restart dies, so they cannot be left in the window.
            if self.rob.alive(rs.branch) {
                if let Some(n) = self.rob.next(rs.branch) {
                    self.squash_suffix_from(n);
                }
            }
            self.unresolve(rs.branch);
        }
        // A stale suspension's interval may have contained the active
        // restart's branch or fill. A restart whose insertion context died
        // cannot continue: drop its never-to-be-redispatched reconvergent
        // region and fall back to tail fetch.
        if let Sequencer::Restart(rs) = &self.seq {
            if !self.rob.alive(rs.branch) || !self.rob.alive(rs.cursor) {
                let rs = rs.clone();
                self.seq = Sequencer::Normal;
                if self.rob.alive(rs.recon) {
                    self.squash_suffix_from(rs.recon);
                }
                self.unresolve(rs.branch);
                self.resume_tail_fetch();
            }
        }
    }

    /// Return the sequencer to tail fetch continuing after the current tail.
    pub(crate) fn resume_tail_fetch(&mut self) {
        if let Some(tail) = self.rob.tail() {
            let e = self.rob.get(tail);
            self.fetch.pc = e.pred_next;
            let ghr = e.ghr_before;
            // Rebuild history: a conditional branch's own outcome bit follows
            // its stored pre-prediction history.
            self.fetch.ghr = if e.class == ci_isa::InstClass::CondBranch {
                ghr.pushed(e.pred_next == e.inst.static_target().unwrap_or(e.pc.next()))
            } else {
                ghr
            };
            let snap = e.ras_after.clone();
            if snap.is_some() {
                self.restore_ras(snap.as_ref());
            }
            self.map = self.map_at(tail);
            self.fetch.stalled = false;
        }
    }

    /// Remove `id` and everything younger (a window-link walk from `id`).
    pub(crate) fn squash_suffix_from(&mut self, id: InstId) {
        let mut victims = self.take_ids();
        let mut cur = Some(id);
        while let Some(x) = cur {
            victims.push(x);
            cur = self.rob.next(x);
        }
        for i in (0..victims.len()).rev() {
            self.squash_one(victims[i]);
        }
        self.put_ids(victims);
    }

    /// Remove one instruction from the window, repairing loads that
    /// forwarded from a squashed store.
    pub(crate) fn squash_one(&mut self, id: InstId) {
        let (is_store, pc) = {
            let e = self.rob.get(id);
            (
                e.class == InstClass::Store && e.state != EState::Waiting,
                e.pc,
            )
        };
        self.probe.record(self.now, Event::Squash { pc: pc.0 });
        if is_store {
            self.reissue_loads_of_squashed_store(id);
        }
        // The predecessor's successor changes: its path consistency must be
        // re-checked (a previously serviced branch may become mispredicted
        // again when its corrected successor is squashed).
        if let Some(prev) = self.rob.prev(id) {
            self.mark_unresolved(prev);
        }
        // Keep an in-flight redispatch walk valid: step its cursor past the
        // entry being removed.
        let next = self.rob.next(id);
        if let Sequencer::Redispatch(rd) = &mut self.seq {
            if rd.cursor == Some(id) {
                rd.cursor = next;
            }
        }
        self.remove_entry(id);
    }

    /// Find the reconvergent point of the mispredicted branch `b` in the
    /// window (Section 3.2.1 / Appendix A.5): the first instruction after
    /// `b` matching, in priority order, the `ltb` target, the software
    /// post-dominator, or a learned global candidate.
    pub(crate) fn find_recon_entry(&self, b: InstId) -> Option<InstId> {
        let e = self.rob.get(b);
        let ltb = self.recon.ltb_recon(e.pc, &e.inst);
        let soft = self.recon.software_recon(e.pc);
        let mut cur = self.rob.next(b);
        while let Some(id) = cur {
            let pc = self.rob.get(id).pc;
            if ltb == Some(pc) || soft == Some(pc) || self.recon.is_candidate(pc) {
                return Some(id);
            }
            cur = self.rob.next(id);
        }
        None
    }

    /// Execute a recovery: classify it, selectively squash (or fully
    /// squash), and set up the restart sequence.
    fn do_recover(&mut self, rec: PendingRecovery) {
        let b = rec.branch;
        self.stats.recoveries += 1;
        self.classify_recovery(&rec);

        // Seed front-end state from just after the branch.
        let (ghr, ras_snap, class, taken_dir) = {
            let e = self.rob.get(b);
            let dir = e.inst.static_target() == Some(rec.redirect);
            (e.ghr_before, e.ras_after.clone(), e.class, dir)
        };
        let mut ghr = ghr;
        if class == InstClass::CondBranch {
            ghr.push(taken_dir);
        }

        // A high-confidence branch had no CI context allocated at fetch
        // (conf_threshold gating), so its misprediction recovers with a
        // complete squash even on the CI machine.
        let recon_entry =
            if self.cfg.squash == SquashMode::ControlIndependence && !self.rob.get(b).high_conf {
                self.find_recon_entry(b)
            } else {
                None
            };

        self.rob.get_mut(b).pred_next = rec.redirect;
        let branch_pc = self.rob.get(b).pc;

        match recon_entry {
            None => {
                // Complete squash.
                let removed = {
                    let mut n = 0u32;
                    let mut cur = self.rob.next(b);
                    while let Some(x) = cur {
                        n += 1;
                        cur = self.rob.next(x);
                    }
                    n
                };
                self.probe.record(
                    self.now,
                    Event::RestartBegin {
                        branch_pc: branch_pc.0,
                        redirect_pc: rec.redirect.0,
                        reconverged: false,
                        removed,
                    },
                );
                if let Some(n) = self.rob.next(b) {
                    self.squash_suffix_from(n);
                }
                self.map = self.map_at(b);
                self.seq = Sequencer::Normal;
                self.fetch = FetchCtx {
                    pc: rec.redirect,
                    ghr,
                    ras: ci_bpred::ReturnAddressStack::bounded(64),
                    stalled: false,
                };
                self.restore_ras(ras_snap.as_ref());
                self.fetch.ghr = ghr;
                self.fetch.pc = rec.redirect;
                self.fetch.stalled = false;
            }
            Some(r) => {
                self.stats.reconverged += 1;
                // Selective squash of the incorrect control-dependent path
                // (a link walk from the branch to the reconvergent point).
                let mut victims = self.take_ids();
                {
                    let rk = self.rob.key(r);
                    let mut cur = self.rob.next(b);
                    while let Some(x) = cur {
                        if self.rob.key(x) >= rk {
                            break;
                        }
                        victims.push(x);
                        cur = self.rob.next(x);
                    }
                }
                self.stats.removed += victims.len() as u64;
                self.probe.record(
                    self.now,
                    Event::RestartBegin {
                        branch_pc: branch_pc.0,
                        redirect_pc: rec.redirect.0,
                        reconverged: true,
                        removed: victims.len() as u32,
                    },
                );
                for i in (0..victims.len()).rev() {
                    self.squash_one(victims[i]);
                }
                self.put_ids(victims);
                // Mark control-independent survivors (Table 2/3).
                let mut cur = Some(r);
                while let Some(id) = cur {
                    self.stats.ci_instructions += 1;
                    let e = self.rob.get_mut(id);
                    if !e.survived {
                        e.survived = true;
                        match e.state {
                            EState::Done => e.saved_done = true,
                            _ if e.issue_count > 0 => e.discarded = true,
                            _ => e.only_fetched = true,
                        }
                    }
                    cur = self.rob.next(id);
                }
                // Restart sequence.
                let map = self.map_at(b);
                let recon_pc = self.rob.get(r).pc;
                self.seq = Sequencer::Restart(RestartState {
                    branch: b,
                    cursor: b,
                    recon: r,
                    recon_pc,
                    map,
                    seg: SegCursor::default(),
                    started_at: self.now,
                    inserted: 0,
                });
                self.restore_ras(ras_snap.as_ref());
                self.fetch.ghr = ghr;
                self.fetch.pc = rec.redirect;
                self.fetch.stalled = false;
            }
        }
    }

    /// Classify a serviced exec-detected recovery as a true or false
    /// misprediction (Appendix A.2) and feed the TFR machinery (Figure 10).
    fn classify_recovery(&mut self, rec: &PendingRecovery) {
        if !rec.from_exec {
            return;
        }
        let e = self.rob.get(rec.branch);
        if e.class != InstClass::CondBranch {
            return;
        }
        let Some(i) = e.oracle_idx else { return };
        let oracle_next = self.oracle[i].next_pc;
        let succ = self.successor_pc(rec.branch);
        let is_false = succ == Some(oracle_next) && rec.redirect != oracle_next;
        if is_false {
            self.stats.false_mispredictions += 1;
        } else {
            self.stats.true_mispredictions += 1;
        }
        let (pc, hist) = (e.pc, e.ghr_before);
        self.stats.tfr_static.record(u64::from(pc.0), is_false);
        let pat_pc = self.tfr_pc.pattern(pc, hist, TfrIndexing::DynamicPc);
        self.stats
            .tfr_dynamic_pc
            .record(u64::from(pat_pc), is_false);
        self.tfr_pc
            .record(pc, hist, TfrIndexing::DynamicPc, is_false);
        let pat_xor = self.tfr_xor.pattern(pc, hist, TfrIndexing::DynamicXor);
        self.stats
            .tfr_dynamic_xor
            .record(u64::from(pat_xor), is_false);
        self.tfr_xor
            .record(pc, hist, TfrIndexing::DynamicXor, is_false);
    }

    /// Transition from a completed restart to the redispatch sequence.
    pub(crate) fn begin_redispatch(&mut self, rs: &RestartState) {
        self.stats.restart_cycles += self.now.saturating_sub(rs.started_at);
        let branch_pc = if self.rob.alive(rs.branch) {
            self.rob.get(rs.branch).pc.0
        } else {
            u32::MAX
        };
        self.probe.record(
            self.now,
            Event::RestartEnd {
                branch_pc,
                inserted: rs.inserted,
                cycles: self.now.saturating_sub(rs.started_at),
            },
        );
        self.seq = Sequencer::Redispatch(RedispatchState {
            cursor: Some(rs.recon),
            map: rs.map.clone(),
            ghr: self.fetch.ghr,
            ras: self.fetch.ras.snapshot(),
        });
    }

    /// One cycle of the redispatch sequence: re-rename (and re-predict) up
    /// to dispatch-width control-independent instructions; all of them for
    /// the CI-I machine.
    pub(crate) fn redispatch_step(&mut self) {
        if !matches!(self.seq, Sequencer::Redispatch(_)) {
            return;
        }
        let budget = match self.cfg.redispatch {
            RedispatchMode::Pipelined => self.cfg.width,
            RedispatchMode::Instant => usize::MAX,
        };
        let mut last_pred_next = None;
        for _ in 0..budget {
            let Sequencer::Redispatch(rd) = &self.seq else {
                unreachable!()
            };
            let Some(id) = rd.cursor else { break };
            last_pred_next = Some(self.redispatch_one(id));
            let Sequencer::Redispatch(rd) = &mut self.seq else {
                unreachable!()
            };
            rd.cursor = self.rob.next(id);
            if rd.cursor.is_none() {
                break;
            }
        }
        let Sequencer::Redispatch(rd) = &self.seq else {
            unreachable!()
        };
        if rd.cursor.is_none() {
            // Sequence complete: resume tail fetch (or a suspended restart).
            let (ghr, ras) = (rd.ghr, rd.ras.snapshot());
            // The speculative rename map picks up from the walked window.
            self.map = rd.map.clone();
            self.seq = Sequencer::Normal;
            self.fetch.ghr = ghr;
            self.fetch.ras = ras;
            if let Some(pc) = last_pred_next.flatten() {
                self.fetch.pc = pc;
                self.fetch.stalled = false;
            }
            self.resume_suspended();
        }
    }

    /// Resume the most recent suspended restart that is still valid
    /// (optimal preemption). Invalid suspensions are discarded, squashing
    /// any region they left half-repaired.
    pub(crate) fn resume_suspended(&mut self) {
        while let Some(mut rs) = self.suspended.pop() {
            // During a fill the cursor's successor is always the reconvergent
            // entry (insertions go between the two), and nothing but another
            // recovery can insert there while the restart is suspended. If
            // something did, that recovery — for a branch inside this fill —
            // took over the gap and (re)filled the path itself; resuming would
            // re-fetch the same instructions after the cursor and duplicate
            // them. The takeover's fill is the valid path, so drop the
            // suspension without squashing anything.
            if self.rob.alive(rs.branch)
                && self.rob.alive(rs.cursor)
                && self.rob.alive(rs.recon)
                && self.rob.next(rs.cursor) != Some(rs.recon)
            {
                self.unresolve(rs.branch);
                self.mark_unresolved(rs.cursor);
                continue;
            }
            if self.rob.alive(rs.branch) && self.rob.alive(rs.cursor) && self.rob.alive(rs.recon) {
                // The preempting recovery's redispatch may have remapped the
                // window; rebuild the fill map from current state rather than
                // trusting the one captured at suspension.
                rs.map = self.map_at(rs.cursor);
                // Re-seed the fetch context from the suspension point: fetch
                // resumes at the PC after the last inserted instruction.
                let resume_pc = self.rob.get(rs.cursor).pred_next;
                let ghr = self.rob.get(rs.cursor).ghr_before;
                let ras_snap = self.rob.get(rs.cursor).ras_after.clone();
                self.restore_ras(ras_snap.as_ref());
                self.fetch.ghr = ghr;
                self.fetch.pc = resume_pc;
                self.fetch.stalled = false;
                self.seq = Sequencer::Restart(rs);
                return;
            }
            // Some component died while suspended; the suspension cannot be
            // resumed. The squash that killed it was contiguous, so what
            // matters is the boundary left in front of the surviving
            // reconvergent region. If that predecessor is a control
            // instruction, the discontinuity is rooted there and the normal
            // detect→recover path repairs it — the region itself can sit on
            // the repaired correct path by now and must not be squashed. If
            // it is a non-control instruction whose fall-through does not
            // reach the region, the hole is unrepairable (misprediction
            // detection never fires on a non-control boundary), so the stale
            // suffix has to go before it wedges retirement forever.
            if self.rob.alive(rs.recon) {
                let stale = match self.rob.prev(rs.recon) {
                    Some(p) => {
                        let pe = self.rob.get(p);
                        if pe.class.is_control() {
                            self.mark_unresolved(p);
                            false
                        } else {
                            pe.pc.next() != self.rob.get(rs.recon).pc
                        }
                    }
                    None => false,
                };
                if stale {
                    self.squash_suffix_from(rs.recon);
                }
            }
            self.unresolve(rs.branch);
            if self.rob.alive(rs.cursor) {
                self.mark_unresolved(rs.cursor);
            }
            self.resume_tail_fetch();
        }
    }

    /// Redispatch one instruction: remap sources, keep the destination,
    /// repair history, and re-predict (Appendix A.3.2). Returns the entry's
    /// updated intended successor PC (for fetch resumption when it is the
    /// tail).
    fn redispatch_one(&mut self, id: InstId) -> Option<Pc> {
        // Remap sources against the running map.
        let mut renamed = false;
        let (class, pc, inst, state) = {
            let Sequencer::Redispatch(rd) = &self.seq else {
                unreachable!()
            };
            let map = rd.map.clone();
            let e = self.rob.get_mut(id);
            for slot in e.srcs.iter_mut().flatten() {
                let np = map.get(slot.arch);
                if np != slot.phys {
                    slot.phys = np;
                    renamed = true;
                }
            }
            (e.class, e.pc, e.inst, e.state)
        };
        self.probe
            .record(self.now, Event::Redispatch { pc: pc.0, renamed });
        if renamed {
            self.stats.ci_renamed += 1;
            if state != EState::Waiting {
                self.rob.get_mut(id).reg_reissues += 1;
                self.probe.record(
                    self.now,
                    Event::Reissue {
                        pc: pc.0,
                        kind: ReissueKind::Register,
                    },
                );
                self.invalidate(id);
            } else {
                // A Waiting entry's sources changed under it: any parking on
                // the old registers is stale (it self-neutralizes at drain);
                // re-enter the issue pool against the new ones.
                self.wake.clear_ready(id);
                self.classify_for_issue(id);
            }
        }
        // Destination keeps its physical register; propagate the mapping.
        if let Some((r, p)) = self.rob.get(id).dest {
            let Sequencer::Redispatch(rd) = &mut self.seq else {
                unreachable!()
            };
            rd.map.set(r, p);
        }
        // Oracle re-tag.
        let prev = self.rob.prev(id);
        let tag = self.oracle_tag(prev, pc);
        self.rob.get_mut(id).oracle_idx = tag;

        // History repair and re-prediction.
        let Sequencer::Redispatch(rd) = &self.seq else {
            unreachable!()
        };
        let ghr_now = rd.ghr;
        self.rob.get_mut(id).ghr_before = ghr_now;

        let fallthrough = pc.next();
        let mut pred_next = match class {
            InstClass::CondBranch => None, // handled below
            InstClass::Jump | InstClass::Call => inst.static_target(),
            _ => Some(fallthrough),
        };

        if class == InstClass::CondBranch {
            let target = inst.static_target().unwrap_or(fallthrough);
            let succ = self.successor_pc(id);
            let current_next = succ.unwrap_or(self.rob.get(id).pred_next);
            // Which direction the window currently follows. When taken and
            // not-taken targets coincide, direction is immaterial.
            let current_dir = current_next == target;
            let e = self.rob.get(id);
            let hist = if self.cfg.oracle_ghr {
                e.oracle_idx.map_or(ghr_now, |i| self.oracle_hist[i])
            } else {
                ghr_now
            };
            let new_dir = match self.cfg.repredict {
                RepredictMode::None => current_dir,
                RepredictMode::Heuristic => {
                    if e.state == EState::Done {
                        e.taken // completed branches force the predictor
                    } else {
                        self.gshare.predict(pc, hist)
                    }
                }
                RepredictMode::Oracle => match e.oracle_idx {
                    Some(i) => self.oracle[i].taken,
                    None => {
                        if e.state == EState::Done {
                            e.taken
                        } else {
                            self.gshare.predict(pc, hist)
                        }
                    }
                },
            };
            let new_next = if new_dir { target } else { fallthrough };
            if new_dir != current_dir && target != fallthrough {
                // The re-prediction overturns the path in the window.
                self.pending.push(PendingRecovery {
                    branch: id,
                    redirect: new_next,
                    from_exec: false,
                });
            }
            pred_next = Some(new_next);
            let Sequencer::Redispatch(rd) = &mut self.seq else {
                unreachable!()
            };
            rd.ghr.push(new_dir);
        }

        // RAS replay for subsequent fetch continuity.
        {
            let Sequencer::Redispatch(rd) = &mut self.seq else {
                unreachable!()
            };
            match class {
                InstClass::Call => rd.ras.push(fallthrough),
                InstClass::Return => {
                    let popped = rd.ras.pop();
                    if pred_next == Some(fallthrough) {
                        pred_next = popped.or(Some(fallthrough));
                    }
                }
                InstClass::IndirectJump => {
                    if inst.dest().is_some() {
                        rd.ras.push(fallthrough);
                    }
                    // Keep the currently intended target.
                    pred_next = Some(self.rob.get(id).pred_next);
                }
                _ => {}
            }
        }
        // Re-snapshot the RAS on control instructions.
        if class.is_control() {
            let Sequencer::Redispatch(rd) = &self.seq else {
                unreachable!()
            };
            let mut snap = rd.ras.snapshot();
            let mut v = Vec::new();
            while let Some(p) = snap.pop() {
                v.push(p);
            }
            v.reverse();
            self.rob.get_mut(id).ras_after = Some(v);
        }

        if let Some(n) = pred_next {
            self.rob.get_mut(id).pred_next = n;
        }
        Some(self.rob.get(id).pred_next)
    }
}
