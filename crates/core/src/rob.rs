//! The reorder buffer: a slab-backed doubly linked list supporting arbitrary
//! insertion and removal, gap-based logical order keys, and segmented
//! capacity accounting.
//!
//! Section 3.2.2 of the paper proposes implementing the ROB as a linked list
//! so restart sequences can remove incorrect control-dependent instructions
//! and insert correct ones in the middle of the window; Appendix A.4 proposes
//! multi-instruction *segments* to bound the number of concurrent linked-list
//! operations, at the cost of internal fragmentation. Both are modelled here:
//!
//! - every node carries a 64-bit order key assigned by gap numbering, so
//!   logical-order comparisons (needed by the memory-ordering logic, A.4.3)
//!   are O(1); keys are renumbered transparently when a gap is exhausted;
//! - nodes belong to segments of a configurable size; capacity is charged per
//!   *segment*, so a half-used segment wastes window space exactly as the
//!   paper describes. Tail dispatch shares the open tail segment; each
//!   restart's insertions open fresh segments via a [`SegCursor`].
//!
//! Node handles ([`InstId`]) are generational, so stale handles held across a
//! squash can be detected instead of silently aliasing new instructions.

const KEY_GAP: u64 = 1 << 20;

/// Handle to a ROB node. Generational: a handle to a removed node never
/// aliases a later node that reuses the slot.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct InstId {
    idx: u32,
    generation: u32,
}

impl InstId {
    /// The arena slot this handle points at. Stable for the node's lifetime,
    /// reused (under a new generation) after removal — side tables indexed
    /// by slot must validate the full id before trusting their contents.
    #[must_use]
    pub fn slot(self) -> u32 {
        self.idx
    }
}

#[derive(Clone, Debug)]
struct Node<T> {
    prev: Option<u32>,
    next: Option<u32>,
    key: u64,
    seg: u32,
    generation: u32,
    data: Option<T>,
}

/// Cursor for a run of restart insertions: the first insertion opens a fresh
/// segment, later ones fill it before opening another.
#[derive(Clone, Copy, Debug, Default)]
pub struct SegCursor {
    seg: Option<u32>,
    fill: usize,
}

/// The reorder buffer. `T` is the per-instruction payload.
#[derive(Clone, Debug)]
pub struct Rob<T> {
    nodes: Vec<Node<T>>,
    free: Vec<u32>,
    head: Option<u32>,
    tail: Option<u32>,
    len: usize,
    seg_size: usize,
    /// Live-member count per segment id (flat — segment ids are dense).
    seg_live: Vec<u32>,
    /// Number of segments with at least one live member, so
    /// [`Rob::capacity_used`] is a multiply instead of a hash-map walk.
    live_segs: usize,
    next_seg: u32,
    tail_cursor: SegCursor,
}

impl<T> Rob<T> {
    /// Create an empty ROB with the given segment size (1 = instruction
    /// granularity).
    ///
    /// # Panics
    /// Panics if `seg_size` is zero.
    #[must_use]
    pub fn new(seg_size: usize) -> Rob<T> {
        assert!(seg_size > 0, "segment size must be positive");
        Rob {
            nodes: Vec::new(),
            free: Vec::new(),
            head: None,
            tail: None,
            len: 0,
            seg_size,
            seg_live: Vec::new(),
            live_segs: 0,
            next_seg: 0,
            tail_cursor: SegCursor::default(),
        }
    }

    /// Number of live instructions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the ROB is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Window capacity consumed: live segments × segment size. With
    /// single-instruction segments this equals [`Rob::len`]; with larger
    /// segments, fragmentation makes it larger.
    #[must_use]
    pub fn capacity_used(&self) -> usize {
        self.live_segs * self.seg_size
    }

    /// Number of arena slots ever allocated (live or free). Side tables
    /// indexed by [`InstId::slot`] size themselves against this.
    #[must_use]
    pub fn slot_capacity(&self) -> usize {
        self.nodes.len()
    }

    /// Oldest instruction.
    #[must_use]
    pub fn head(&self) -> Option<InstId> {
        self.head.map(|i| self.id_of(i))
    }

    /// Youngest instruction.
    #[must_use]
    pub fn tail(&self) -> Option<InstId> {
        self.tail.map(|i| self.id_of(i))
    }

    fn id_of(&self, idx: u32) -> InstId {
        InstId {
            idx,
            generation: self.nodes[idx as usize].generation,
        }
    }

    /// Whether `id` still names a live instruction.
    #[must_use]
    pub fn alive(&self, id: InstId) -> bool {
        self.nodes
            .get(id.idx as usize)
            .is_some_and(|n| n.generation == id.generation && n.data.is_some())
    }

    /// The instruction after `id` in logical order.
    #[must_use]
    pub fn next(&self, id: InstId) -> Option<InstId> {
        debug_assert!(self.alive(id));
        self.nodes[id.idx as usize].next.map(|i| self.id_of(i))
    }

    /// The instruction before `id` in logical order.
    #[must_use]
    pub fn prev(&self, id: InstId) -> Option<InstId> {
        debug_assert!(self.alive(id));
        self.nodes[id.idx as usize].prev.map(|i| self.id_of(i))
    }

    /// The logical order key of `id`. Keys are totally ordered along the
    /// list but may be renumbered by insertions: compare, never store.
    #[must_use]
    pub fn key(&self, id: InstId) -> u64 {
        debug_assert!(self.alive(id));
        self.nodes[id.idx as usize].key
    }

    /// Whether `a` is logically older than `b`.
    #[must_use]
    pub fn is_before(&self, a: InstId, b: InstId) -> bool {
        self.key(a) < self.key(b)
    }

    /// Payload of `id`.
    ///
    /// # Panics
    /// Panics if `id` is stale.
    #[must_use]
    pub fn get(&self, id: InstId) -> &T {
        assert!(self.alive(id), "stale InstId");
        self.nodes[id.idx as usize].data.as_ref().expect("alive")
    }

    /// Mutable payload of `id`.
    ///
    /// # Panics
    /// Panics if `id` is stale.
    pub fn get_mut(&mut self, id: InstId) -> &mut T {
        assert!(self.alive(id), "stale InstId");
        self.nodes[id.idx as usize].data.as_mut().expect("alive")
    }

    fn alloc_node(&mut self, data: T, key: u64, seg: u32) -> u32 {
        if seg as usize >= self.seg_live.len() {
            self.seg_live.resize(seg as usize + 1, 0);
        }
        if self.seg_live[seg as usize] == 0 {
            self.live_segs += 1;
        }
        self.seg_live[seg as usize] += 1;
        self.len += 1;
        if let Some(idx) = self.free.pop() {
            let n = &mut self.nodes[idx as usize];
            n.prev = None;
            n.next = None;
            n.key = key;
            n.seg = seg;
            n.data = Some(data);
            idx
        } else {
            self.nodes.push(Node {
                prev: None,
                next: None,
                key,
                seg,
                generation: 0,
                data: Some(data),
            });
            (self.nodes.len() - 1) as u32
        }
    }

    fn take_seg(cursor: &mut SegCursor, seg_size: usize, next_seg: &mut u32) -> u32 {
        match cursor.seg {
            Some(s) if cursor.fill < seg_size => {
                cursor.fill += 1;
                s
            }
            _ => {
                let s = *next_seg;
                *next_seg += 1;
                cursor.seg = Some(s);
                cursor.fill = 1;
                s
            }
        }
    }

    /// Append at the tail (normal dispatch), filling the open tail segment.
    pub fn push_back(&mut self, data: T) -> InstId {
        let seg = Self::take_seg(&mut self.tail_cursor, self.seg_size, &mut self.next_seg);
        let key = match self.tail {
            Some(t) => self.nodes[t as usize].key + KEY_GAP,
            None => KEY_GAP,
        };
        let idx = self.alloc_node(data, key, seg);
        match self.tail {
            Some(t) => {
                self.nodes[t as usize].next = Some(idx);
                self.nodes[idx as usize].prev = Some(t);
            }
            None => self.head = Some(idx),
        }
        self.tail = Some(idx);
        self.id_of(idx)
    }

    /// Insert after `after` (a restart sequence filling a gap), drawing
    /// segment space from `cursor`.
    ///
    /// # Panics
    /// Panics if `after` is stale.
    pub fn insert_after(&mut self, after: InstId, data: T, cursor: &mut SegCursor) -> InstId {
        assert!(self.alive(after), "stale InstId");
        let a = after.idx;
        let b = self.nodes[a as usize].next;
        let key = match b {
            Some(b) => {
                let ka = self.nodes[a as usize].key;
                let kb = self.nodes[b as usize].key;
                if kb - ka < 2 {
                    self.renumber();
                    let ka = self.nodes[a as usize].key;
                    let kb = self.nodes[b as usize].key;
                    debug_assert!(kb - ka >= 2, "renumber must open a gap");
                    ka + (kb - ka) / 2
                } else {
                    ka + (kb - ka) / 2
                }
            }
            None => self.nodes[a as usize].key + KEY_GAP,
        };
        let seg = Self::take_seg(cursor, self.seg_size, &mut self.next_seg);
        let idx = self.alloc_node(data, key, seg);
        self.nodes[idx as usize].prev = Some(a);
        self.nodes[idx as usize].next = b;
        self.nodes[a as usize].next = Some(idx);
        match b {
            Some(b) => self.nodes[b as usize].prev = Some(idx),
            None => self.tail = Some(idx),
        }
        self.id_of(idx)
    }

    /// Remove `id`, returning its payload.
    ///
    /// # Panics
    /// Panics if `id` is stale.
    pub fn remove(&mut self, id: InstId) -> T {
        assert!(self.alive(id), "stale InstId");
        let idx = id.idx;
        let (prev, next, seg) = {
            let n = &self.nodes[idx as usize];
            (n.prev, n.next, n.seg)
        };
        match prev {
            Some(p) => self.nodes[p as usize].next = next,
            None => self.head = next,
        }
        match next {
            Some(nx) => self.nodes[nx as usize].prev = prev,
            None => self.tail = prev,
        }
        let live = &mut self.seg_live[seg as usize];
        *live -= 1;
        if *live == 0 {
            self.live_segs -= 1;
        }
        // Removing the tail-segment's tracking is not needed: if the open
        // tail segment empties, new appends still fill it (fill count is in
        // the cursor), which simply revives its capacity charge.
        self.len -= 1;
        let n = &mut self.nodes[idx as usize];
        n.generation = n.generation.wrapping_add(1);
        let data = n.data.take().expect("alive");
        self.free.push(idx);
        data
    }

    fn renumber(&mut self) {
        let mut k = KEY_GAP;
        let mut cur = self.head;
        while let Some(i) = cur {
            self.nodes[i as usize].key = k;
            k += KEY_GAP;
            cur = self.nodes[i as usize].next;
        }
    }

    /// Iterate over live instruction ids in logical order.
    pub fn iter(&self) -> RobIter<'_, T> {
        RobIter {
            rob: self,
            cur: self.head,
        }
    }
}

/// Forward iterator over ROB ids.
#[derive(Debug)]
pub struct RobIter<'a, T> {
    rob: &'a Rob<T>,
    cur: Option<u32>,
}

impl<T> Iterator for RobIter<'_, T> {
    type Item = InstId;

    fn next(&mut self) -> Option<InstId> {
        let i = self.cur?;
        self.cur = self.rob.nodes[i as usize].next;
        Some(self.rob.id_of(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect(rob: &Rob<u32>) -> Vec<u32> {
        rob.iter().map(|id| *rob.get(id)).collect()
    }

    #[test]
    fn append_and_order() {
        let mut rob = Rob::new(1);
        let a = rob.push_back(1);
        let b = rob.push_back(2);
        let c = rob.push_back(3);
        assert_eq!(collect(&rob), vec![1, 2, 3]);
        assert!(rob.is_before(a, b));
        assert!(rob.is_before(b, c));
        assert_eq!(rob.head(), Some(a));
        assert_eq!(rob.tail(), Some(c));
        assert_eq!(rob.next(a), Some(b));
        assert_eq!(rob.prev(c), Some(b));
        assert_eq!(rob.len(), 3);
        assert_eq!(rob.capacity_used(), 3);
    }

    #[test]
    fn insert_in_middle() {
        let mut rob = Rob::new(1);
        let a = rob.push_back(1);
        let _c = rob.push_back(3);
        let mut cur = SegCursor::default();
        let b = rob.insert_after(a, 2, &mut cur);
        assert_eq!(collect(&rob), vec![1, 2, 3]);
        assert!(rob.is_before(a, b));
        let b2 = rob.insert_after(b, 25, &mut cur);
        assert_eq!(collect(&rob), vec![1, 2, 25, 3]);
        assert!(rob.is_before(b, b2));
    }

    #[test]
    fn many_middle_insertions_trigger_renumber() {
        let mut rob = Rob::new(1);
        let a = rob.push_back(0);
        let _z = rob.push_back(100);
        let mut prev = a;
        let mut cur = SegCursor::default();
        for i in 1..60 {
            prev = rob.insert_after(prev, i, &mut cur);
        }
        let vals = collect(&rob);
        assert_eq!(vals.len(), 61);
        assert!(vals.windows(2).all(|w| w[0] < w[1] || w[1] == 100));
        // Keys stay strictly ordered.
        let keys: Vec<u64> = rob.iter().map(|id| rob.key(id)).collect();
        assert!(keys.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn remove_and_generation_safety() {
        let mut rob = Rob::new(1);
        let a = rob.push_back(1);
        let b = rob.push_back(2);
        let c = rob.push_back(3);
        assert_eq!(rob.remove(b), 2);
        assert!(!rob.alive(b));
        assert_eq!(collect(&rob), vec![1, 3]);
        assert_eq!(rob.next(a), Some(c));
        assert_eq!(rob.prev(c), Some(a));
        // The slot is reused but the stale handle stays dead.
        let d = rob.push_back(4);
        assert!(!rob.alive(b));
        assert!(rob.alive(d));
    }

    #[test]
    fn remove_head_and_tail() {
        let mut rob = Rob::new(1);
        let a = rob.push_back(1);
        let b = rob.push_back(2);
        rob.remove(a);
        assert_eq!(rob.head(), Some(b));
        rob.remove(b);
        assert!(rob.is_empty());
        assert_eq!(rob.head(), None);
        assert_eq!(rob.tail(), None);
        assert_eq!(rob.capacity_used(), 0);
    }

    #[test]
    fn segmented_capacity_fragments() {
        let mut rob = Rob::new(4);
        for i in 0..4 {
            rob.push_back(i);
        }
        assert_eq!(rob.capacity_used(), 4); // one full segment
        let ids: Vec<InstId> = rob.iter().collect();
        // A restart insertion opens a fresh segment even for one instruction.
        let mut cur = SegCursor::default();
        rob.insert_after(ids[1], 99, &mut cur);
        assert_eq!(rob.len(), 5);
        assert_eq!(rob.capacity_used(), 8, "insertion fragments a new segment");
        // Further insertions from the same cursor share that segment.
        rob.insert_after(ids[1], 98, &mut cur);
        assert_eq!(rob.capacity_used(), 8);
    }

    #[test]
    fn segment_freed_when_all_members_removed() {
        let mut rob = Rob::new(2);
        let a = rob.push_back(1);
        let b = rob.push_back(2);
        assert_eq!(rob.capacity_used(), 2);
        rob.remove(a);
        assert_eq!(rob.capacity_used(), 2, "half-empty segment still charged");
        rob.remove(b);
        assert_eq!(rob.capacity_used(), 0);
    }

    /// Check every structural invariant of the arena list: forward and
    /// backward links agree, keys strictly increase, head/tail match the
    /// walk, and the live count is right.
    fn check_links(rob: &Rob<u32>) {
        let forward: Vec<InstId> = rob.iter().collect();
        assert_eq!(forward.len(), rob.len());
        assert_eq!(forward.first().copied(), rob.head());
        assert_eq!(forward.last().copied(), rob.tail());
        for w in forward.windows(2) {
            assert_eq!(rob.next(w[0]), Some(w[1]));
            assert_eq!(rob.prev(w[1]), Some(w[0]));
            assert!(rob.key(w[0]) < rob.key(w[1]), "keys must strictly increase");
        }
        if let Some(h) = rob.head() {
            assert_eq!(rob.prev(h), None);
        }
        if let Some(t) = rob.tail() {
            assert_eq!(rob.next(t), None);
        }
    }

    /// The selective-squash / restart shape: a contiguous middle run is
    /// removed, a restart sequence refills the gap via `insert_after`, and
    /// the index links must stay a consistent doubly linked list throughout.
    #[test]
    fn link_integrity_after_squash_restart_gap_fill() {
        let mut rob = Rob::new(1);
        let ids: Vec<InstId> = (0..16).map(|i| rob.push_back(i)).collect();
        check_links(&rob);
        // Squash the incorrect control-dependent region [5, 11).
        for &id in &ids[5..11] {
            rob.remove(id);
        }
        check_links(&rob);
        assert_eq!(rob.next(ids[4]), Some(ids[11]), "gap bridged");
        // Restart sequence fills the gap with the correct path.
        let mut cur = SegCursor::default();
        let mut at = ids[4];
        let mut inserted = Vec::new();
        for v in [100, 101, 102, 103] {
            at = rob.insert_after(at, v, &mut cur);
            inserted.push(at);
            check_links(&rob);
        }
        assert_eq!(
            collect(&rob),
            vec![0, 1, 2, 3, 4, 100, 101, 102, 103, 11, 12, 13, 14, 15]
        );
        // Every inserted id sits between the squash boundaries in key order.
        for &id in &inserted {
            assert!(rob.is_before(ids[4], id) && rob.is_before(id, ids[11]));
        }
        // A preempting restart can squash part of the just-inserted sequence
        // and fill again — links must survive the second round too.
        rob.remove(inserted[2]);
        rob.remove(inserted[3]);
        let mut cur2 = SegCursor::default();
        rob.insert_after(inserted[1], 200, &mut cur2);
        check_links(&rob);
        assert_eq!(
            collect(&rob),
            vec![0, 1, 2, 3, 4, 100, 101, 200, 11, 12, 13, 14, 15]
        );
    }

    /// Deterministic churn: slots are recycled aggressively, yet no freed
    /// handle ever aliases a live entry and every live handle keeps reading
    /// its own payload.
    #[test]
    fn free_list_reuse_never_aliases_live_entries() {
        let mut rob = Rob::new(1);
        let mut live: Vec<(InstId, u32)> = Vec::new();
        let mut dead: Vec<InstId> = Vec::new();
        let mut rng = 0x5EEDu64;
        let mut next_val = 0u32;
        for _ in 0..600 {
            rng = rng
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            if !live.is_empty() && rng.is_multiple_of(3) {
                let victim = (rng >> 16) as usize % live.len();
                let (id, v) = live.swap_remove(victim);
                assert_eq!(rob.remove(id), v);
                dead.push(id);
            } else {
                let id = rob.push_back(next_val);
                live.push((id, next_val));
                next_val += 1;
            }
            for &(id, v) in &live {
                assert!(rob.alive(id));
                assert_eq!(*rob.get(id), v, "live handle reads its own payload");
            }
            for &id in &dead {
                assert!(!rob.alive(id), "freed handle must stay dead across reuse");
            }
        }
        // Recycling actually happened: the arena stayed far smaller than the
        // total number of instructions pushed through it.
        assert!(
            rob.slot_capacity() < next_val as usize,
            "free list reuses slots"
        );
    }

    #[test]
    #[should_panic(expected = "stale")]
    fn stale_access_panics() {
        let mut rob = Rob::new(1);
        let a = rob.push_back(1);
        rob.remove(a);
        let _ = rob.get(a);
    }
}
