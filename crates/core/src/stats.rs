//! Simulation statistics: everything needed to regenerate the paper's
//! Tables 2-4, Figures 5-6 and the appendix studies.

use ci_bpred::TfrStats;

/// Counters collected by one pipeline run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Stats {
    /// Cycles simulated.
    pub cycles: u64,
    /// Instructions retired.
    pub retired: u64,
    /// Control instructions retired that required prediction.
    pub predictions: u64,
    /// Retired control instructions whose original fetch-time prediction was
    /// wrong (architectural misprediction count).
    pub arch_mispredictions: u64,

    // ---- recovery behaviour (Table 2) ----
    /// Recovery sequences serviced (one per serviced misprediction).
    pub recoveries: u64,
    /// Recoveries that found a reconvergent point in the window.
    pub reconverged: u64,
    /// Incorrect control-dependent instructions selectively removed, summed
    /// over reconverged recoveries.
    pub removed: u64,
    /// Correct control-dependent instructions inserted by restart sequences.
    pub inserted: u64,
    /// Control-independent instructions present at recovery, summed.
    pub ci_instructions: u64,
    /// Control-independent instructions that acquired new register names
    /// during redispatch (and therefore reissued).
    pub ci_renamed: u64,
    /// Control-independent instructions squashed youngest-first because a
    /// restart ran out of window space.
    pub ci_evicted: u64,
    /// Restart sequences preempted by an older misprediction.
    pub preemptions: u64,
    /// Total cycles spent in restart sequences.
    pub restart_cycles: u64,

    // ---- work saved (Table 3) ----
    /// Retired instructions that survived at least one recovery as control
    /// independent ("fetch saved").
    pub fetch_saved: u64,
    /// ... of which had issued with their final value at survival
    /// ("work saved").
    pub work_saved: u64,
    /// ... of which had issued but later reissued ("work discarded").
    pub work_discarded: u64,
    /// ... of which had not issued at all at survival ("had only fetched").
    pub only_fetched: u64,

    // ---- reissue behaviour (Table 4; counted over *retired* instructions,
    // so squashed wrong-path work is excluded, as in the paper) ----
    /// Total issues of retired instructions (first issues + reissues).
    pub issues: u64,
    /// Retired loads' reissues due to memory-ordering violations (including
    /// forwarding stores that were squashed or re-executed).
    pub mem_violation_reissues: u64,
    /// Retired instructions' reissues caused by redispatch changing a source
    /// register name.
    pub reg_violation_reissues: u64,

    // ---- false mispredictions (Appendix A.2, Figure 10) ----
    /// Serviced recoveries that were *true* mispredictions.
    pub true_mispredictions: u64,
    /// Serviced recoveries that were *false* mispredictions (correctly
    /// predicted branches resolved with wrong operands).
    pub false_mispredictions: u64,
    /// Per-static-branch true/false misprediction statistics.
    pub tfr_static: TfrStats,
    /// Per-TFR-pattern statistics, PC-indexed table.
    pub tfr_dynamic_pc: TfrStats,
    /// Per-TFR-pattern statistics, gshare-indexed table.
    pub tfr_dynamic_xor: TfrStats,

    // ---- cache ----
    /// Data-cache hits.
    pub cache_hits: u64,
    /// Data-cache misses.
    pub cache_misses: u64,
}

impl Stats {
    /// Instructions per cycle.
    #[must_use]
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.retired as f64 / self.cycles as f64
        }
    }

    /// Fraction of serviced mispredictions with a reconvergent point in the
    /// window (Table 2, column 1).
    #[must_use]
    pub fn reconvergence_rate(&self) -> f64 {
        ratio(self.reconverged, self.recoveries)
    }

    /// Average instructions removed per reconverged restart (Table 2).
    #[must_use]
    pub fn avg_removed(&self) -> f64 {
        ratio(self.removed, self.reconverged)
    }

    /// Average instructions inserted per reconverged restart (Table 2).
    #[must_use]
    pub fn avg_inserted(&self) -> f64 {
        ratio(self.inserted, self.reconverged)
    }

    /// Average control-independent instructions per reconverged restart
    /// (Table 2).
    #[must_use]
    pub fn avg_ci(&self) -> f64 {
        ratio(self.ci_instructions, self.reconverged)
    }

    /// Average control-independent instructions acquiring new register names
    /// per reconverged restart (Table 2).
    #[must_use]
    pub fn avg_ci_renamed(&self) -> f64 {
        ratio(self.ci_renamed, self.reconverged)
    }

    /// Average issues per retired instruction (Table 4).
    #[must_use]
    pub fn issues_per_retired(&self) -> f64 {
        ratio(self.issues, self.retired)
    }

    /// Memory-violation reissues per retired instruction (Table 4).
    #[must_use]
    pub fn mem_violations_per_retired(&self) -> f64 {
        ratio(self.mem_violation_reissues, self.retired)
    }

    /// Register-violation reissues per retired instruction (Table 4).
    #[must_use]
    pub fn reg_violations_per_retired(&self) -> f64 {
        ratio(self.reg_violation_reissues, self.retired)
    }

    /// Misprediction rate over retired predictions (Table 1 analogue).
    #[must_use]
    pub fn misprediction_rate(&self) -> f64 {
        ratio(self.arch_mispredictions, self.predictions)
    }

    /// Table 3 fractions of retired instructions:
    /// `(fetch saved, work saved, work discarded, had only fetched)`.
    #[must_use]
    pub fn work_saved_fractions(&self) -> (f64, f64, f64, f64) {
        (
            ratio(self.fetch_saved, self.retired),
            ratio(self.work_saved, self.retired),
            ratio(self.work_discarded, self.retired),
            ratio(self.only_fetched, self.retired),
        )
    }

    /// Average duration of a restart sequence in cycles (Appendix A.1).
    #[must_use]
    pub fn avg_restart_cycles(&self) -> f64 {
        ratio(self.restart_cycles, self.reconverged)
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_handle_zero_denominators() {
        let s = Stats::default();
        assert_eq!(s.ipc(), 0.0);
        assert_eq!(s.reconvergence_rate(), 0.0);
        assert_eq!(s.issues_per_retired(), 0.0);
        assert_eq!(s.work_saved_fractions(), (0.0, 0.0, 0.0, 0.0));
    }

    #[test]
    fn derived_metrics() {
        let s = Stats {
            cycles: 100,
            retired: 450,
            recoveries: 10,
            reconverged: 8,
            removed: 80,
            inserted: 96,
            ci_instructions: 400,
            ci_renamed: 20,
            issues: 900,
            predictions: 90,
            arch_mispredictions: 9,
            fetch_saved: 45,
            work_saved: 30,
            work_discarded: 10,
            only_fetched: 5,
            ..Stats::default()
        };
        assert!((s.ipc() - 4.5).abs() < 1e-12);
        assert!((s.reconvergence_rate() - 0.8).abs() < 1e-12);
        assert!((s.avg_removed() - 10.0).abs() < 1e-12);
        assert!((s.avg_inserted() - 12.0).abs() < 1e-12);
        assert!((s.avg_ci() - 50.0).abs() < 1e-12);
        assert!((s.avg_ci_renamed() - 2.5).abs() < 1e-12);
        assert!((s.issues_per_retired() - 2.0).abs() < 1e-12);
        assert!((s.misprediction_rate() - 0.1).abs() < 1e-12);
        let (fs, ws, wd, of) = s.work_saved_fractions();
        assert!((fs - 0.1).abs() < 1e-12);
        assert!((ws - 30.0 / 450.0).abs() < 1e-12);
        assert!((wd - 10.0 / 450.0).abs() < 1e-12);
        assert!((of - 5.0 / 450.0).abs() < 1e-12);
    }
}
