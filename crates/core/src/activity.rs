//! Per-cycle occupancy and progress counters.
//!
//! The cycle loop is polled: every stage runs every cycle whether or not it
//! has work, so wall time alone cannot distinguish a busy stage from one
//! spinning over an empty window. [`CycleActivity`] counts, per cycle,
//! whether each stage actually moved instructions — making "no-progress"
//! polled cycles visible and giving the planned event-driven-wakeup rewrite
//! its before/after yardstick.
//!
//! The counters are a host-side measurement aid, deliberately kept out of
//! [`crate::Stats`]: the simulated machine and its golden-pinned statistics
//! are untouched.

use ci_obs::JsonValue;

/// Aggregated per-cycle stage activity for one pipeline run.
///
/// A cycle is *active* for a stage when the stage moved at least one
/// instruction that cycle (fetched, issued, completed, or retired). A cycle
/// with no movement in any stage and no recovery in progress is *idle* —
/// pure polling overhead.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CycleActivity {
    /// Total cycles observed.
    pub cycles: u64,
    /// Cycles that fetched ≥1 instruction.
    pub fetch_cycles: u64,
    /// Cycles that issued ≥1 instruction.
    pub issue_cycles: u64,
    /// Cycles that completed (wrote back) ≥1 instruction.
    pub complete_cycles: u64,
    /// Cycles that retired ≥1 instruction.
    pub retire_cycles: u64,
    /// Cycles with the sequencer in a restart/redispatch or a recovery
    /// pending.
    pub recovery_cycles: u64,
    /// Cycles with no stage movement and no recovery in progress.
    pub idle_cycles: u64,
    /// Instructions fetched (including wrong-path and restart inserts).
    pub fetched: u64,
    /// Issue events (including reissues).
    pub issued: u64,
    /// Writeback completions.
    pub completed: u64,
    /// Retirements.
    pub retired: u64,
    /// Sum of end-of-cycle window occupancy (for the average).
    pub occupancy_sum: u64,
    // Per-cycle scratch, folded in by `end_cycle`.
    pub(crate) cur_fetched: u32,
    pub(crate) cur_issued: u32,
    pub(crate) cur_completed: u32,
    pub(crate) cur_retired: u32,
}

impl CycleActivity {
    /// Fold the current cycle's scratch counts into the totals and classify
    /// the cycle.
    #[inline]
    pub(crate) fn end_cycle(&mut self, occupancy: u32, recovery_busy: bool) {
        self.cycles += 1;
        self.occupancy_sum += u64::from(occupancy);
        let mut any = false;
        if self.cur_fetched > 0 {
            self.fetch_cycles += 1;
            any = true;
        }
        if self.cur_issued > 0 {
            self.issue_cycles += 1;
            any = true;
        }
        if self.cur_completed > 0 {
            self.complete_cycles += 1;
            any = true;
        }
        if self.cur_retired > 0 {
            self.retire_cycles += 1;
            any = true;
        }
        if recovery_busy {
            self.recovery_cycles += 1;
            any = true;
        }
        if !any {
            self.idle_cycles += 1;
        }
        self.fetched += u64::from(self.cur_fetched);
        self.issued += u64::from(self.cur_issued);
        self.completed += u64::from(self.cur_completed);
        self.retired += u64::from(self.cur_retired);
        self.cur_fetched = 0;
        self.cur_issued = 0;
        self.cur_completed = 0;
        self.cur_retired = 0;
    }

    /// Mean end-of-cycle window occupancy (0.0 when no cycles ran).
    #[must_use]
    pub fn avg_occupancy(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.occupancy_sum as f64 / self.cycles as f64
        }
    }

    /// Multi-line stage-occupancy report: per-stage active-cycle share and
    /// per-cycle movement rates, plus the idle (pure-polling) share.
    #[must_use]
    pub fn summary(&self) -> String {
        let cyc = self.cycles.max(1) as f64;
        let pct = |n: u64| 100.0 * n as f64 / cyc;
        let rate = |n: u64| n as f64 / cyc;
        let mut out = format!(
            "stage occupancy over {} cycles (avg window occupancy {:.1}):\n",
            self.cycles,
            self.avg_occupancy()
        );
        for (name, active, moved) in [
            ("fetch", self.fetch_cycles, self.fetched),
            ("issue", self.issue_cycles, self.issued),
            ("complete", self.complete_cycles, self.completed),
            ("retire", self.retire_cycles, self.retired),
        ] {
            out.push_str(&format!(
                "  {name:<8} active {:>5.1}%  ({} insts, {:.2}/cycle)\n",
                pct(active),
                moved,
                rate(moved)
            ));
        }
        out.push_str(&format!(
            "  {:<8} active {:>5.1}%\n",
            "recovery",
            pct(self.recovery_cycles)
        ));
        out.push_str(&format!(
            "  {:<8}        {:>5.1}%  (no-progress polled cycles)\n",
            "idle",
            pct(self.idle_cycles)
        ));
        out
    }

    /// The counters as one JSON object.
    #[must_use]
    pub fn to_json(&self) -> JsonValue {
        JsonValue::obj([
            ("cycles", JsonValue::from(self.cycles)),
            ("fetch_cycles", self.fetch_cycles.into()),
            ("issue_cycles", self.issue_cycles.into()),
            ("complete_cycles", self.complete_cycles.into()),
            ("retire_cycles", self.retire_cycles.into()),
            ("recovery_cycles", self.recovery_cycles.into()),
            ("idle_cycles", self.idle_cycles.into()),
            ("fetched", self.fetched.into()),
            ("issued", self.issued.into()),
            ("completed", self.completed.into()),
            ("retired", self.retired.into()),
            ("avg_occupancy", self.avg_occupancy().into()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classifies_cycles() {
        let mut a = CycleActivity {
            cur_fetched: 4,
            cur_issued: 2,
            ..CycleActivity::default()
        };
        a.end_cycle(10, false); // fetch+issue active
        a.end_cycle(10, true); // recovery only
        a.end_cycle(10, false); // idle
        a.cur_retired = 1;
        a.end_cycle(7, false); // retire active
        assert_eq!(a.cycles, 4);
        assert_eq!(a.fetch_cycles, 1);
        assert_eq!(a.issue_cycles, 1);
        assert_eq!(a.retire_cycles, 1);
        assert_eq!(a.recovery_cycles, 1);
        assert_eq!(a.idle_cycles, 1);
        assert_eq!(a.fetched, 4);
        assert_eq!(a.issued, 2);
        assert_eq!(a.retired, 1);
        assert_eq!(a.occupancy_sum, 37);
        assert!((a.avg_occupancy() - 9.25).abs() < 1e-12);
        let text = a.summary();
        assert!(text.contains("no-progress"));
        assert!(text.contains("fetch"));
        let json = a.to_json().render();
        assert!(ci_obs::json::parse(&json).is_ok());
    }
}
