//! Detailed execution-driven superscalar simulator with selective-squash
//! control independence — the primary contribution of *Rotenberg, Jacobson &
//! Smith, "A Study of Control Independence in Superscalar Processors"*
//! (HPCA 1999), Sections 3-4 and Appendix A.
//!
//! # What is modelled
//!
//! A 16-wide (configurable) dynamically scheduled processor with:
//!
//! - ideal instruction fetch past any number of branches per cycle, gshare +
//!   correlated-target-buffer + return-address-stack prediction with
//!   speculative, repairable global history;
//! - unlimited register renaming over a slab [`rob::Rob`] implemented as a
//!   linked list (optionally segmented, Appendix A.4) supporting arbitrary
//!   insertion and removal;
//! - aggressive memory disambiguation: loads issue ahead of unresolved
//!   stores, violations repaired by selective reissue;
//! - full misprediction recovery either by complete squash (`BASE`) or by
//!   **control independence** (`CI`): reconvergent-point detection (software
//!   post-dominators or the hardware heuristics of A.5), selective squash,
//!   restart sequences that insert the correct control-dependent path into
//!   the middle of the window, redispatch sequences that repair register
//!   dependences and re-predict branches under corrected history (A.3), and
//!   simple/optimal preemption of overlapping restarts (A.1);
//! - the branch completion models of A.2 (`non-spec`, `spec-C`, `spec-D`,
//!   `spec`) with optional oracle suppression of false mispredictions
//!   (`*-HFM`);
//! - a 64KB 4-way data cache (2-cycle hit / 14-cycle miss, perfect L2) or an
//!   ideal cache.
//!
//! Every run self-verifies: the retired instruction stream is compared,
//! value for value, against the functional emulator ([`ci_emu`]).
//!
//! # Example
//!
//! ```
//! use ci_core::{simulate, PipelineConfig};
//! use ci_workloads::{Workload, WorkloadParams};
//!
//! let program = Workload::GoLike.build(&WorkloadParams { scale: 100, seed: 7 });
//! let base = simulate(&program, PipelineConfig::base(256), 20_000).unwrap();
//! let ci = simulate(&program, PipelineConfig::ci(256), 20_000).unwrap();
//! assert_eq!(base.retired, ci.retired); // same architectural work
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod activity;
mod cache;
mod config;
mod engine;
mod exec;
mod recon;
mod recover;
mod regfile;
mod retire;
pub mod rob;
mod stats;
mod wakeup;

pub use activity::CycleActivity;
pub use cache::DataCache;
pub use config::{
    CacheModel, CompletionModel, PipelineConfig, Preemption, ReconStrategy, RedispatchMode,
    RepredictMode, SquashMode,
};
pub use engine::Pipeline;
pub use recon::ReconDetector;
pub use regfile::{MapTable, PhysReg, PhysRegFile};
pub use stats::Stats;

use ci_emu::EmuError;
use ci_isa::Program;

/// Run `program` through the detailed pipeline until its architectural trace
/// (bounded by `max_insts`) retires, returning the statistics.
///
/// # Errors
/// Propagates [`EmuError`] if the program's correct path leaves the program.
///
/// # Panics
/// Panics (with `config.check`) if the simulator retires anything that
/// disagrees with the functional emulator — a simulator bug, never a workload
/// property.
pub fn simulate(
    program: &Program,
    config: PipelineConfig,
    max_insts: u64,
) -> Result<Stats, EmuError> {
    let mut p = Pipeline::new(program, config, max_insts)?;
    Ok(p.run())
}

/// Like [`simulate`], but with an observability probe attached: every
/// pipeline event feeds `probe`, which is returned alongside the statistics
/// so callers can read its accumulated state.
///
/// With [`ci_obs::NoopProbe`] this compiles to exactly the [`simulate`]
/// path (the probe is statically monomorphized away); with a real sink such
/// as [`ci_obs::MetricsProbe`] or [`ci_obs::FlightRecorder`] the simulated
/// machine is unchanged — probes observe, they never steer.
///
/// # Errors
/// Propagates [`EmuError`] if the program's correct path leaves the program.
pub fn simulate_probed<P: ci_obs::Probe>(
    program: &Program,
    config: PipelineConfig,
    max_insts: u64,
    probe: P,
) -> Result<(Stats, P), EmuError> {
    let mut p = Pipeline::with_probe(program, config, max_insts, probe)?;
    let stats = p.run();
    Ok((stats, p.into_probe()))
}

/// Everything a profiled simulation produces: the simulated statistics plus
/// the host-side measurements ([`simulate_profiled`]).
#[derive(Debug)]
pub struct ProfiledRun<P, F> {
    /// The simulated machine's statistics — bit-identical to an unprofiled
    /// run of the same cell.
    pub stats: Stats,
    /// The probe, with whatever it accumulated.
    pub probe: P,
    /// The profiler holding the per-stage host-time span tree.
    pub profiler: F,
    /// Per-cycle stage-activity counters.
    pub activity: CycleActivity,
}

/// Like [`simulate_probed`], but additionally attributes the simulator's
/// *host* wall time to pipeline stages through `profiler` and collects
/// per-cycle stage-activity counters.
///
/// The span tree has a `"setup"` root covering architectural-reference
/// construction (with the functional emulation under `"emu_trace"`) and a
/// `"cycle_loop"` root whose children are the per-stage spans: `complete`,
/// `recovery`, `retire`, `fetch` (which includes dispatch), and `issue`
/// (which includes execution). Profilers observe host time only — the
/// simulated machine and its [`Stats`] are unchanged.
///
/// # Errors
/// Propagates [`EmuError`] if the program's correct path leaves the program.
pub fn simulate_profiled<P: ci_obs::Probe, F: ci_obs::Profiler>(
    program: &Program,
    config: PipelineConfig,
    max_insts: u64,
    probe: P,
    profiler: F,
) -> Result<ProfiledRun<P, F>, EmuError> {
    let mut p = Pipeline::with_probe_and_profiler(program, config, max_insts, probe, profiler)?;
    let stats = p.run();
    let (probe, profiler, activity) = p.into_parts();
    Ok(ProfiledRun {
        stats,
        probe,
        profiler,
        activity,
    })
}
