//! Issue, execution, writeback and value-driven selective reissue.
//!
//! All three stages are event-driven: the issue stage picks from a ready
//! set fed by the age queue and waiter chains, writeback pops a completion
//! heap instead of scanning for finished executions, and the reissue
//! cascades drain per-register consumer chains / per-address load lists.
//! Every drain snapshots its candidates, filters them with the exact
//! predicate the old full-window walk used, sorts the survivors by window
//! key, and re-checks liveness while processing — so the observable event
//! stream is byte-identical to the walk-based implementation
//! (`tests/rob_equivalence.rs` pins this).

use crate::engine::{EState, Pipeline};
use crate::rob::InstId;
use crate::wakeup::Status;
use ci_emu::exec::{alu_result, branch_taken, effective_addr};
use ci_isa::InstClass;
use ci_obs::{Event, Probe, Profiler, ReissueKind};

impl<P: Probe, F: Profiler> Pipeline<'_, P, F> {
    /// Select and issue up to `width` ready instructions, oldest first.
    /// Instructions remain in the window and may issue again after
    /// invalidation (selective reissue, Section 3.2.4).
    pub(crate) fn issue_stage(&mut self) {
        // Entries whose two-cycle age gate opens now become candidates.
        let mut due = self.take_ids();
        self.wake.take_due_young(self.now, &mut due);
        for id in due.drain(..) {
            self.classify_for_issue(id);
        }
        self.put_ids(due);

        // Validate the ready set against the full issue predicate and order
        // the survivors by window position. The set may hold stale ids
        // (squashed entries, lapsed flags); the predicate filters them.
        let mut cands = self.take_keyed();
        for i in 0..self.wake.ready.len() {
            let id = self.wake.ready[i];
            if !self.wake.is_ready_flagged(id) || !self.rob.alive(id) {
                continue;
            }
            let e = self.rob.get(id);
            if e.state != EState::Waiting || self.now < e.fetched_at + 2 {
                continue;
            }
            if !e.srcs.iter().flatten().all(|s| self.regs.ready(s.phys)) {
                continue;
            }
            cands.push((self.rob.key(id), id));
        }
        cands.sort_unstable();
        cands.dedup();
        cands.truncate(self.cfg.width);
        self.activity.cur_issued += cands.len() as u32;
        for &(_, id) in &cands {
            self.wake.clear_ready(id);
            self.execute(id);
        }
        self.put_keyed(cands);

        // Compact the ready vector: entries that issued, died, or were
        // re-parked have lost their flag.
        let mut ready = std::mem::take(&mut self.wake.ready);
        ready.retain(|&id| self.wake.is_ready_flagged(id));
        self.wake.ready = ready;
    }

    /// Execute `id` immediately, scheduling its completion.
    fn execute(&mut self, id: InstId) {
        let (class, inst, pc, srcs) = {
            let e = self.rob.get(id);
            (e.class, e.inst, e.pc, e.srcs)
        };
        // Operand lookup by architectural register: `sources()` omits r0 and
        // compacts, so positional indexing would misattribute operands.
        let lookup = |r: ci_isa::Reg| -> u64 {
            if r.is_zero() {
                0
            } else {
                srcs.iter()
                    .flatten()
                    .find(|s| s.arch == r)
                    .map_or(0, |s| self.regs.value(s.phys))
            }
        };
        let a = lookup(inst.rs1);
        let b = lookup(inst.rs2);
        let src_dspec = srcs.iter().flatten().any(|s| self.regs.dspec(s.phys));

        let mut result = 0u64;
        let mut addr = None;
        let mut exec_next = None;
        let mut taken = false;
        let mut src_store = None;
        let mut dspec = src_dspec;

        let base_latency = self.cfg.latencies.execute(class);
        let mut done_at = self.now + base_latency;

        match class {
            InstClass::IntAlu | InstClass::IntMul | InstClass::IntDiv => {
                result = alu_result(inst.op, a, b, inst.imm);
            }
            InstClass::Load => {
                let ea = effective_addr(a, inst.imm);
                addr = Some(ea);
                let key = self.rob.key(id);
                // Youngest older Done store to the same address forwards; any
                // older store without final values makes the load data-
                // speculative. The store membership set replaces the window
                // walk: an unordered pass computes the same two facts.
                let mut forward: Option<(u64, InstId)> = None;
                let mut unknown_older_store = false;
                for i in 0..self.wake.stores.len() {
                    let sid = self.wake.stores[i];
                    if !self.rob.alive(sid) {
                        continue;
                    }
                    let sk = self.rob.key(sid);
                    if sk >= key {
                        continue;
                    }
                    let se = self.rob.get(sid);
                    if se.state == EState::Done {
                        if se.addr == Some(ea) && forward.is_none_or(|(fk, _)| fk < sk) {
                            forward = Some((sk, sid));
                        }
                    } else {
                        unknown_older_store = true;
                    }
                }
                match forward {
                    Some((_, sid)) => {
                        result = self.rob.get(sid).result;
                        src_store = Some(sid);
                        done_at = self.now + base_latency + 1; // store-queue forward
                    }
                    None => {
                        result = self.memory.read(ea);
                        done_at = self.now + base_latency + self.cache.access(ea);
                    }
                }
                dspec = dspec || unknown_older_store;
            }
            InstClass::Store => {
                let ea = effective_addr(a, inst.imm);
                addr = Some(ea);
                result = b; // the stored value
            }
            InstClass::CondBranch => {
                taken = branch_taken(inst.op, a, b);
                exec_next = Some(if taken {
                    inst.static_target().unwrap_or(pc.next())
                } else {
                    pc.next()
                });
            }
            InstClass::Jump => exec_next = Some(inst.static_target().unwrap_or(pc.next())),
            InstClass::Call => {
                result = u64::from(pc.next().0);
                exec_next = Some(inst.static_target().unwrap_or(pc.next()));
            }
            InstClass::Return | InstClass::IndirectJump => {
                result = u64::from(pc.next().0);
                exec_next = Some(ci_isa::Pc(a.wrapping_add(inst.imm as u64) as u32));
            }
            InstClass::Halt => exec_next = Some(pc.next()),
        }

        let reissue = {
            let e = self.rob.get_mut(id);
            e.issue_count += 1;
            e.result = result;
            e.addr = addr;
            e.exec_next = exec_next;
            e.taken = taken;
            e.src_store = src_store;
            e.dspec = dspec;
            e.issue_count > 1
        };
        self.set_state(id, EState::Executing { done_at });
        self.mark_unresolved(id);
        // Wakeup registration: the completion event, consumer membership for
        // every source register (live producers only — a dead producer can
        // never complete, so the registration would never drain), and the
        // executed-load address index.
        self.wake.schedule_completion(id, done_at);
        for s in srcs.iter().flatten() {
            if self
                .wake
                .producer_of(s.phys.0)
                .is_some_and(|pid| self.rob.alive(pid))
            {
                self.wake.add_consumer(s.phys.0, id);
            }
        }
        if class == InstClass::Load {
            self.wake
                .register_load(id, addr.expect("executed load has addr"));
        }
        self.probe
            .record(self.now, Event::Issue { pc: pc.0, reissue });
    }

    /// Complete instructions whose execution finishes this cycle: write
    /// results, cascade invalidations to consumers that issued under stale
    /// versions, and run memory-ordering checks for stores.
    pub(crate) fn writeback(&mut self) {
        // Compact the store membership set (squashed stores drop out); done
        // here so disambiguation passes stay proportional to live stores.
        {
            let rob = &self.rob;
            self.wake.stores.retain(|&s| rob.alive(s));
        }
        let mut due = self.take_ids();
        self.wake.take_due_completions(self.now, &mut due);
        if due.is_empty() {
            self.put_ids(due);
            return;
        }
        // Snapshot-filter: events are candidates; an entry re-issued with a
        // different completion cycle, squashed, or already completed is
        // stale. Survivors are processed in window order, exactly as the
        // old full scan visited them, with a liveness re-check because a
        // cascade from an earlier completion this cycle may invalidate or
        // even squash (restart cancellation) a later one.
        // The filter reads the packed status/done_at columns (kept in sync
        // by `set_state`), not the entry payloads.
        let mut cands = self.take_keyed();
        for &id in &due {
            if self.rob.alive(id)
                && self.wake.status_of(id) == Status::Executing
                && self.wake.done_at_of(id) <= self.now
            {
                cands.push((self.rob.key(id), id));
            }
        }
        self.put_ids(due);
        cands.sort_unstable();
        cands.dedup();
        for &(_, id) in &cands {
            if !self.rob.alive(id)
                || self.wake.status_of(id) != Status::Executing
                || self.wake.done_at_of(id) > self.now
            {
                continue;
            }
            let (dest, class, dspec, result, pc) = {
                let e = self.rob.get(id);
                (e.dest, e.class, e.dspec, e.result, e.pc)
            };
            self.set_state(id, EState::Done);
            self.activity.cur_completed += 1;
            self.probe.record(self.now, Event::Complete { pc: pc.0 });
            if let Some((_, p)) = dest {
                self.regs.write(p, result, dspec);
                self.wake_waiters_of(p);
                self.invalidate_consumers_of(p, id);
            }
            if class == InstClass::Store {
                self.store_violation_check(id);
            }
        }
        self.put_keyed(cands);
    }

    /// Re-evaluate the issue wait of entries parked on a just-written
    /// register (they become ready, or re-park on another source).
    fn wake_waiters_of(&mut self, p: crate::regfile::PhysReg) {
        let mut woken = self.take_ids();
        self.wake.drain_waiters(p.0, &mut woken);
        for id in woken.drain(..) {
            self.classify_for_issue(id);
        }
        self.put_ids(woken);
    }

    /// Invalidate issued consumers of physical register `p` (they issued
    /// before this write and must reissue with the new value).
    fn invalidate_consumers_of(&mut self, p: crate::regfile::PhysReg, producer: InstId) {
        let pkey = self.rob.key(producer);
        let mut drained = self.take_ids();
        self.wake.drain_consumers(p.0, &mut drained);
        if drained.is_empty() {
            self.put_ids(drained);
            return;
        }
        let mut victims = self.take_keyed();
        for &id in &drained {
            if id == producer || !self.rob.alive(id) {
                continue;
            }
            let k = self.rob.key(id);
            if k <= pkey {
                continue;
            }
            let e = self.rob.get(id);
            if e.state == EState::Waiting {
                continue;
            }
            if !e.srcs.iter().flatten().any(|s| s.phys == p) {
                continue;
            }
            victims.push((k, id));
        }
        self.put_ids(drained);
        victims.sort_unstable();
        victims.dedup();
        for &(_, v) in &victims {
            // Invalidating one victim can cascade (cancelled restarts squash
            // instructions), killing later victims before their turn.
            if !self.rob.alive(v) {
                continue;
            }
            let pc = self.rob.get(v).pc;
            self.probe.record(
                self.now,
                Event::Reissue {
                    pc: pc.0,
                    kind: ReissueKind::Value,
                },
            );
            self.invalidate(v);
        }
        self.put_keyed(victims);
    }

    /// Invalidate an issued/completed instruction so it reissues.
    pub(crate) fn invalidate(&mut self, id: InstId) {
        if !self.rob.alive(id) {
            return;
        }
        {
            let e = self.rob.get(id);
            if e.state == EState::Waiting {
                return;
            }
            // An invalidated store's forwarded value is revoked: dependent
            // loads must reissue (they will re-disambiguate).
            if e.class == InstClass::Store {
                self.reissue_loads_of_squashed_store(id);
            }
        }
        {
            let e = self.rob.get_mut(id);
            if e.state == EState::Waiting {
                return;
            }
            if e.survived && e.saved_done {
                e.saved_done = false;
                e.discarded = true;
            }
        }
        self.set_state(id, EState::Waiting);
        self.mark_unresolved(id);
        // A restart whose branch is re-executing may be refilling a path the
        // new outcome contradicts: cancel it (a fresh recovery will follow
        // the re-execution if still needed).
        self.cancel_restarts_of(id);
        // Back to the issue pool.
        self.classify_for_issue(id);
    }

    /// When a store resolves (or re-resolves) its address and data: younger
    /// loads that executed against the same address without seeing this
    /// store must reissue (memory-ordering violation, repaired selectively).
    fn store_violation_check(&mut self, store: InstId) {
        let skey = self.rob.key(store);
        let saddr = self.rob.get(store).addr;
        let Some(sa) = saddr else { return };
        let mut cand = self.take_ids();
        self.wake.loads_at(sa, &mut cand);
        let mut victims = self.take_keyed();
        for &id in &cand {
            if !self.rob.alive(id) {
                continue;
            }
            let k = self.rob.key(id);
            if k <= skey {
                continue;
            }
            let e = self.rob.get(id);
            if e.class != InstClass::Load || e.state == EState::Waiting {
                continue;
            }
            if e.addr != saddr {
                continue;
            }
            // The load saw an older store (or memory); if its source is
            // older than this store — including already-retired sources,
            // which are older than anything in the window — it missed
            // this store's value.
            let missed = match e.src_store {
                Some(src) => !self.rob.alive(src) || self.rob.key(src) < skey,
                None => true,
            };
            if missed {
                victims.push((k, id));
            }
        }
        self.put_ids(cand);
        victims.sort_unstable();
        victims.dedup();
        for &(_, v) in &victims {
            if !self.rob.alive(v) {
                continue;
            }
            let pc = {
                let e = self.rob.get_mut(v);
                e.mem_reissues += 1;
                e.pc
            };
            self.probe.record(
                self.now,
                Event::Reissue {
                    pc: pc.0,
                    kind: ReissueKind::Memory,
                },
            );
            self.invalidate(v);
        }
        self.put_keyed(victims);
    }

    /// Loads that forwarded from a store being squashed must reissue. Any
    /// non-`Waiting` load with `src_store == store` executed at the store's
    /// current address (invalidating the store repairs its loads first), so
    /// the per-address index finds every victim.
    pub(crate) fn reissue_loads_of_squashed_store(&mut self, store: InstId) {
        let Some(sa) = self.rob.get(store).addr else {
            return;
        };
        let mut cand = self.take_ids();
        self.wake.loads_at(sa, &mut cand);
        let mut victims = self.take_keyed();
        for &id in &cand {
            if !self.rob.alive(id) {
                continue;
            }
            let e = self.rob.get(id);
            if e.class != InstClass::Load || e.state == EState::Waiting {
                continue;
            }
            if e.src_store != Some(store) {
                continue;
            }
            victims.push((self.rob.key(id), id));
        }
        self.put_ids(cand);
        victims.sort_unstable();
        victims.dedup();
        for &(_, v) in &victims {
            if !self.rob.alive(v) {
                continue;
            }
            let pc = {
                let e = self.rob.get_mut(v);
                e.mem_reissues += 1;
                e.pc
            };
            self.probe.record(
                self.now,
                Event::Reissue {
                    pc: pc.0,
                    kind: ReissueKind::Memory,
                },
            );
            self.invalidate(v);
        }
        self.put_keyed(victims);
    }
}
