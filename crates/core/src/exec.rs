//! Issue, execution, writeback and value-driven selective reissue.

use crate::engine::{EState, Pipeline};
use crate::rob::InstId;
use ci_emu::exec::{alu_result, branch_taken, effective_addr};
use ci_isa::InstClass;
use ci_obs::{Event, Probe, Profiler, ReissueKind};

impl<P: Probe, F: Profiler> Pipeline<'_, P, F> {
    /// Select and issue up to `width` ready instructions, oldest first.
    /// Instructions remain in the window and may issue again after
    /// invalidation (selective reissue, Section 3.2.4).
    pub(crate) fn issue_stage(&mut self) {
        let mut picked: Vec<InstId> = Vec::with_capacity(self.cfg.width);
        for id in self.rob.iter() {
            if picked.len() >= self.cfg.width {
                break;
            }
            let e = self.rob.get(id);
            if e.state != EState::Waiting || self.now < e.fetched_at + 2 {
                continue;
            }
            if !e.srcs.iter().flatten().all(|s| self.regs.ready(s.phys)) {
                continue;
            }
            picked.push(id);
        }
        self.activity.cur_issued += picked.len() as u32;
        for id in picked {
            self.execute(id);
        }
    }

    /// Execute `id` immediately, scheduling its completion.
    fn execute(&mut self, id: InstId) {
        let (class, inst, pc, srcs) = {
            let e = self.rob.get(id);
            (e.class, e.inst, e.pc, e.srcs)
        };
        // Operand lookup by architectural register: `sources()` omits r0 and
        // compacts, so positional indexing would misattribute operands.
        let lookup = |r: ci_isa::Reg| -> u64 {
            if r.is_zero() {
                0
            } else {
                srcs.iter()
                    .flatten()
                    .find(|s| s.arch == r)
                    .map_or(0, |s| self.regs.value(s.phys))
            }
        };
        let a = lookup(inst.rs1);
        let b = lookup(inst.rs2);
        let src_dspec = srcs.iter().flatten().any(|s| self.regs.dspec(s.phys));

        let mut result = 0u64;
        let mut addr = None;
        let mut exec_next = None;
        let mut taken = false;
        let mut src_store = None;
        let mut dspec = src_dspec;

        let base_latency = self.cfg.latencies.execute(class);
        let mut done_at = self.now + base_latency;

        match class {
            InstClass::IntAlu | InstClass::IntMul | InstClass::IntDiv => {
                result = alu_result(inst.op, a, b, inst.imm);
            }
            InstClass::Load => {
                let ea = effective_addr(a, inst.imm);
                addr = Some(ea);
                let key = self.rob.key(id);
                // Youngest older Done store to the same address forwards.
                let mut forward: Option<InstId> = None;
                let mut unknown_older_store = false;
                for sid in self.rob.iter() {
                    if self.rob.key(sid) >= key {
                        break;
                    }
                    let se = self.rob.get(sid);
                    if se.class == InstClass::Store {
                        if se.state == EState::Done {
                            if se.addr == Some(ea) {
                                forward = Some(sid);
                            }
                        } else {
                            unknown_older_store = true;
                        }
                    }
                }
                match forward {
                    Some(sid) => {
                        result = self.rob.get(sid).result;
                        src_store = Some(sid);
                        done_at = self.now + base_latency + 1; // store-queue forward
                    }
                    None => {
                        result = self.memory.read(ea);
                        done_at = self.now + base_latency + self.cache.access(ea);
                    }
                }
                dspec = dspec || unknown_older_store;
            }
            InstClass::Store => {
                let ea = effective_addr(a, inst.imm);
                addr = Some(ea);
                result = b; // the stored value
            }
            InstClass::CondBranch => {
                taken = branch_taken(inst.op, a, b);
                exec_next = Some(if taken {
                    inst.static_target().unwrap_or(pc.next())
                } else {
                    pc.next()
                });
            }
            InstClass::Jump => exec_next = Some(inst.static_target().unwrap_or(pc.next())),
            InstClass::Call => {
                result = u64::from(pc.next().0);
                exec_next = Some(inst.static_target().unwrap_or(pc.next()));
            }
            InstClass::Return | InstClass::IndirectJump => {
                result = u64::from(pc.next().0);
                exec_next = Some(ci_isa::Pc(a.wrapping_add(inst.imm as u64) as u32));
            }
            InstClass::Halt => exec_next = Some(pc.next()),
        }

        let e = self.rob.get_mut(id);
        e.state = EState::Executing { done_at };
        e.issue_count += 1;
        let reissue = e.issue_count > 1;
        e.result = result;
        e.addr = addr;
        e.exec_next = exec_next;
        e.taken = taken;
        e.src_store = src_store;
        e.dspec = dspec;
        e.resolved = false;
        self.probe
            .record(self.now, Event::Issue { pc: pc.0, reissue });
    }

    /// Complete instructions whose execution finishes this cycle: write
    /// results, cascade invalidations to consumers that issued under stale
    /// versions, and run memory-ordering checks for stores.
    pub(crate) fn writeback(&mut self) {
        let finishing: Vec<InstId> = self
            .rob
            .iter()
            .filter(|&id| {
                matches!(self.rob.get(id).state, EState::Executing { done_at } if done_at <= self.now)
            })
            .collect();
        for id in finishing {
            // A cascade from an earlier completion this cycle may have
            // invalidated or even squashed this entry (restart
            // cancellation); its in-flight execution is dropped.
            if !self.rob.alive(id) {
                continue;
            }
            if !matches!(self.rob.get(id).state, EState::Executing { done_at } if done_at <= self.now)
            {
                continue;
            }
            let (dest, class, dspec, result, pc) = {
                let e = self.rob.get_mut(id);
                e.state = EState::Done;
                (e.dest, e.class, e.dspec, e.result, e.pc)
            };
            self.activity.cur_completed += 1;
            self.probe.record(self.now, Event::Complete { pc: pc.0 });
            if let Some((_, p)) = dest {
                self.regs.write(p, result, dspec);
                self.invalidate_consumers_of(p, id);
            }
            if class == InstClass::Store {
                self.store_violation_check(id);
            }
        }
    }

    /// Invalidate issued consumers of physical register `p` (they issued
    /// before this write and must reissue with the new value).
    fn invalidate_consumers_of(&mut self, p: crate::regfile::PhysReg, producer: InstId) {
        let pkey = self.rob.key(producer);
        let victims: Vec<InstId> = self
            .rob
            .iter()
            .filter(|&id| {
                if id == producer || self.rob.key(id) <= pkey {
                    return false;
                }
                let e = self.rob.get(id);
                if e.state == EState::Waiting {
                    return false;
                }
                e.srcs.iter().flatten().any(|s| s.phys == p)
            })
            .collect();
        for v in victims {
            // Invalidating one victim can cascade (cancelled restarts squash
            // instructions), killing later victims before their turn.
            if !self.rob.alive(v) {
                continue;
            }
            let pc = self.rob.get(v).pc;
            self.probe.record(
                self.now,
                Event::Reissue {
                    pc: pc.0,
                    kind: ReissueKind::Value,
                },
            );
            self.invalidate(v);
        }
    }

    /// Invalidate an issued/completed instruction so it reissues.
    pub(crate) fn invalidate(&mut self, id: InstId) {
        if !self.rob.alive(id) {
            return;
        }
        {
            let e = self.rob.get(id);
            if e.state == EState::Waiting {
                return;
            }
            // An invalidated store's forwarded value is revoked: dependent
            // loads must reissue (they will re-disambiguate).
            if e.class == InstClass::Store {
                self.reissue_loads_of_squashed_store(id);
            }
        }
        let e = self.rob.get_mut(id);
        if e.state == EState::Waiting {
            return;
        }
        e.state = EState::Waiting;
        e.resolved = false;
        if e.survived && e.saved_done {
            e.saved_done = false;
            e.discarded = true;
        }
        // A restart whose branch is re-executing may be refilling a path the
        // new outcome contradicts: cancel it (a fresh recovery will follow
        // the re-execution if still needed).
        self.cancel_restarts_of(id);
    }

    /// When a store resolves (or re-resolves) its address and data: younger
    /// loads that executed against the same address without seeing this
    /// store must reissue (memory-ordering violation, repaired selectively).
    fn store_violation_check(&mut self, store: InstId) {
        let skey = self.rob.key(store);
        let saddr = self.rob.get(store).addr;
        let victims: Vec<InstId> = self
            .rob
            .iter()
            .filter(|&id| {
                if self.rob.key(id) <= skey {
                    return false;
                }
                let e = self.rob.get(id);
                if e.class != InstClass::Load || e.state == EState::Waiting {
                    return false;
                }
                if e.addr != saddr {
                    return false;
                }
                // The load saw an older store (or memory); if its source is
                // older than this store — including already-retired sources,
                // which are older than anything in the window — it missed
                // this store's value.
                match e.src_store {
                    Some(src) => !self.rob.alive(src) || self.rob.key(src) < skey,
                    None => true,
                }
            })
            .collect();
        for v in victims {
            if !self.rob.alive(v) {
                continue;
            }
            let e = self.rob.get_mut(v);
            e.mem_reissues += 1;
            let pc = e.pc;
            self.probe.record(
                self.now,
                Event::Reissue {
                    pc: pc.0,
                    kind: ReissueKind::Memory,
                },
            );
            self.invalidate(v);
        }
    }

    /// Loads that forwarded from a store being squashed must reissue.
    pub(crate) fn reissue_loads_of_squashed_store(&mut self, store: InstId) {
        let victims: Vec<InstId> = self
            .rob
            .iter()
            .filter(|&id| {
                let e = self.rob.get(id);
                e.class == InstClass::Load
                    && e.state != EState::Waiting
                    && e.src_store == Some(store)
            })
            .collect();
        for v in victims {
            if !self.rob.alive(v) {
                continue;
            }
            let e = self.rob.get_mut(v);
            e.mem_reissues += 1;
            let pc = e.pc;
            self.probe.record(
                self.now,
                Event::Reissue {
                    pc: pc.0,
                    kind: ReissueKind::Memory,
                },
            );
            self.invalidate(v);
        }
    }
}
