//! Unbounded physical register file and register map tables.
//!
//! The paper's machines assume an unlimited number of physical registers
//! (output and anti-dependences are fully eliminated). The simulator
//! allocates a fresh physical register per dispatched destination and never
//! recycles them; squashed instructions' registers simply go stale, which is
//! also what lets control-independent instructions keep *using* stale values
//! until the redispatch sequence remaps them — the paper's false-misprediction
//! mechanism arises from exactly this.

use ci_isa::Reg;

/// A physical register name.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PhysReg(pub u32);

#[derive(Clone, Copy, Debug)]
struct PhysEntry {
    value: u64,
    ready: bool,
    /// Bumped on every write; consumers that issued under an older version
    /// must reissue.
    version: u32,
    /// Whether the value is data-speculative (produced by, or derived from, a
    /// load that issued ahead of unresolved stores) — Appendix A.2's operand
    /// classification.
    dspec: bool,
}

/// The physical register file.
#[derive(Clone, Debug, Default)]
pub struct PhysRegFile {
    regs: Vec<PhysEntry>,
}

impl PhysRegFile {
    /// Create a file with the 32 architectural registers pre-allocated as
    /// ready zeroes (`PhysReg(0)..PhysReg(31)`).
    #[must_use]
    pub fn new() -> PhysRegFile {
        PhysRegFile {
            regs: (0..Reg::COUNT)
                .map(|_| PhysEntry {
                    value: 0,
                    ready: true,
                    version: 0,
                    dspec: false,
                })
                .collect(),
        }
    }

    /// Allocate a fresh, not-ready register.
    pub fn alloc(&mut self) -> PhysReg {
        let id = PhysReg(self.regs.len() as u32);
        self.regs.push(PhysEntry {
            value: 0,
            ready: false,
            version: 0,
            dspec: false,
        });
        id
    }

    /// Whether `p` holds a produced value.
    #[must_use]
    pub fn ready(&self, p: PhysReg) -> bool {
        self.regs[p.0 as usize].ready
    }

    /// The current value of `p` (zero if never written).
    #[must_use]
    pub fn value(&self, p: PhysReg) -> u64 {
        self.regs[p.0 as usize].value
    }

    /// The write version of `p`.
    #[must_use]
    pub fn version(&self, p: PhysReg) -> u32 {
        self.regs[p.0 as usize].version
    }

    /// Whether `p`'s value is data-speculative.
    #[must_use]
    pub fn dspec(&self, p: PhysReg) -> bool {
        self.regs[p.0 as usize].dspec
    }

    /// Write `value` to `p`, marking it ready and bumping its version.
    pub fn write(&mut self, p: PhysReg, value: u64, dspec: bool) {
        let e = &mut self.regs[p.0 as usize];
        e.value = value;
        e.ready = true;
        e.version = e.version.wrapping_add(1);
        e.dspec = dspec;
    }

    /// Number of allocated physical registers.
    #[must_use]
    pub fn len(&self) -> usize {
        self.regs.len()
    }

    /// Whether the file is empty (never true).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.regs.is_empty()
    }
}

/// An architectural→physical register map.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MapTable {
    map: [PhysReg; Reg::COUNT],
}

impl MapTable {
    /// The initial map: architectural register `n` maps to `PhysReg(n)`.
    #[must_use]
    pub fn initial() -> MapTable {
        let mut map = [PhysReg(0); Reg::COUNT];
        for (i, m) in map.iter_mut().enumerate() {
            *m = PhysReg(i as u32);
        }
        MapTable { map }
    }

    /// Current mapping of `r`.
    #[must_use]
    pub fn get(&self, r: Reg) -> PhysReg {
        self.map[r.number() as usize]
    }

    /// Remap `r` to `p`.
    pub fn set(&mut self, r: Reg, p: PhysReg) {
        if !r.is_zero() {
            self.map[r.number() as usize] = p;
        }
    }
}

impl Default for MapTable {
    fn default() -> Self {
        MapTable::initial()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_file_is_ready_zero() {
        let f = PhysRegFile::new();
        assert_eq!(f.len(), 32);
        assert!(f.ready(PhysReg(5)));
        assert_eq!(f.value(PhysReg(5)), 0);
        assert!(!f.dspec(PhysReg(5)));
    }

    #[test]
    fn alloc_write_cycle() {
        let mut f = PhysRegFile::new();
        let p = f.alloc();
        assert!(!f.ready(p));
        let v0 = f.version(p);
        f.write(p, 42, true);
        assert!(f.ready(p));
        assert_eq!(f.value(p), 42);
        assert!(f.dspec(p));
        assert_eq!(f.version(p), v0 + 1);
        f.write(p, 43, false);
        assert_eq!(f.version(p), v0 + 2);
        assert!(!f.dspec(p));
    }

    #[test]
    fn map_table_r0_pinned() {
        let mut m = MapTable::initial();
        assert_eq!(m.get(Reg::R7), PhysReg(7));
        m.set(Reg::R7, PhysReg(99));
        assert_eq!(m.get(Reg::R7), PhysReg(99));
        m.set(Reg::R0, PhysReg(99));
        assert_eq!(m.get(Reg::R0), PhysReg(0), "r0 mapping is immutable");
    }
}
