//! Vendored, dependency-free shim implementing the subset of the `criterion`
//! API this workspace uses.
//!
//! The build environment has no network access, so the real `criterion`
//! crate cannot be fetched; this path dependency keeps the bench sources
//! unchanged and still produces wall-clock measurements. Differences from
//! the real crate: no statistical regression analysis, no HTML reports —
//! each benchmark is calibrated to a minimum sample duration, run
//! `sample_size` times, and summarized as min/mean/max time per iteration
//! (plus throughput when configured).

#![forbid(unsafe_code)]

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// Throughput annotation for a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Timer handed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `f` over this sample's iteration count.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    filter: Option<String>,
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        // cargo bench passes `--bench` plus any user filter; treat the first
        // non-flag argument as a substring filter like the real crate.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion {
            filter,
            default_sample_size: 20,
        }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_owned(),
            sample_size: self.default_sample_size,
            throughput: None,
            criterion: self,
        }
    }

    /// Run a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let sample_size = self.default_sample_size;
        self.run_one(id, sample_size, None, f);
        self
    }

    fn matches(&self, id: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| id.contains(f))
    }

    fn run_one<F: FnMut(&mut Bencher)>(
        &mut self,
        id: &str,
        sample_size: usize,
        throughput: Option<Throughput>,
        mut f: F,
    ) {
        if !self.matches(id) {
            return;
        }
        // Calibrate the per-sample iteration count to a minimum duration so
        // timer granularity does not dominate.
        let min_sample = Duration::from_millis(20);
        let mut iters = 1u64;
        loop {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            if b.elapsed >= min_sample || iters >= 1 << 24 {
                break;
            }
            let grow = if b.elapsed.is_zero() {
                8
            } else {
                (min_sample.as_nanos() / b.elapsed.as_nanos().max(1) + 1).min(8) as u64
            };
            iters = iters.saturating_mul(grow.max(2));
        }
        let mut per_iter: Vec<f64> = Vec::with_capacity(sample_size);
        for _ in 0..sample_size.max(1) {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            per_iter.push(b.elapsed.as_secs_f64() / iters as f64);
        }
        per_iter.sort_by(f64::total_cmp);
        let min = per_iter[0];
        let max = per_iter[per_iter.len() - 1];
        let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
        let thrpt = match throughput {
            Some(Throughput::Elements(n)) => {
                format!("  thrpt: {}/s", si(n as f64 / mean, "elem"))
            }
            Some(Throughput::Bytes(n)) => format!("  thrpt: {}/s", si(n as f64 / mean, "B")),
            None => String::new(),
        };
        println!(
            "{id:<40} time: [{} {} {}]{thrpt}  ({} samples x {iters} iters)",
            fmt_time(min),
            fmt_time(mean),
            fmt_time(max),
            per_iter.len(),
        );
    }
}

/// A named collection of benchmarks sharing sample-size and throughput
/// settings.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Annotate benchmarks with work-per-iteration for throughput reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        let (n, t) = (self.sample_size, self.throughput);
        self.criterion.run_one(&full, n, t, f);
        self
    }

    /// Close the group (reporting is immediate in this shim).
    pub fn finish(self) {}
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.4} s")
    } else if secs >= 1e-3 {
        format!("{:.4} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.4} us", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

fn si(rate: f64, unit: &str) -> String {
    if rate >= 1e9 {
        format!("{:.3} G{unit}", rate / 1e9)
    } else if rate >= 1e6 {
        format!("{:.3} M{unit}", rate / 1e6)
    } else if rate >= 1e3 {
        format!("{:.3} K{unit}", rate / 1e3)
    } else {
        format!("{rate:.3} {unit}")
    }
}

/// Collect benchmark functions under one group entry point.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_elapsed() {
        let mut b = Bencher {
            iters: 100,
            elapsed: Duration::ZERO,
        };
        b.iter(|| black_box(2u64.pow(10)));
        assert!(b.elapsed > Duration::ZERO || b.iters == 100);
    }

    #[test]
    fn formatting() {
        assert!(fmt_time(2.0).ends_with(" s"));
        assert!(fmt_time(2e-3).ends_with(" ms"));
        assert!(fmt_time(2e-6).ends_with(" us"));
        assert!(fmt_time(2e-9).ends_with(" ns"));
        assert!(si(5e9, "elem").starts_with("5.000 G"));
        assert!(si(5e6, "B").starts_with("5.000 M"));
        assert!(si(5e3, "x").starts_with("5.000 K"));
        assert!(si(5.0, "x").starts_with("5.000 x"));
    }

    #[test]
    fn groups_run_and_filter() {
        let mut c = Criterion {
            filter: Some("zzz".into()),
            default_sample_size: 2,
        };
        // Filtered out: closure must never run.
        c.bench_function("abc", |_| panic!("must be filtered"));
        let mut g = c.benchmark_group("g");
        g.sample_size(2).throughput(Throughput::Elements(1));
        g.bench_function("abc", |_| panic!("must be filtered"));
        g.finish();
    }
}
