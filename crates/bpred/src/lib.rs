//! Branch prediction substrate.
//!
//! Implements the predictors used throughout the paper:
//!
//! - [`Gshare`]: 2^16-entry gshare conditional-branch predictor (McFarling)
//!   with explicit [`GlobalHistory`], so callers own the speculative history —
//!   required for the paper's re-predict sequences and history repair after
//!   mispredictions (Appendix A.3).
//! - [`CorrelatedTargetBuffer`]: target prediction for indirect calls and
//!   jumps (Chang/Hao/Patt style, history-hashed index).
//! - [`ReturnAddressStack`]: checkpointable return-address stack; with
//!   unbounded depth and retirement-order use it is the paper's "perfect"
//!   RAS.
//! - [`ConfidenceEstimator`]: resetting-counter branch confidence
//!   (Jacobsen/Rotenberg/Smith), used in the false-misprediction discussion.
//! - [`TfrTable`] and [`TfrStats`]: true/false-misprediction history
//!   tracking and the cumulative-coverage analysis behind Figure 10.
//! - [`PredictorSuite`]: the paper's full front-end prediction stack in one
//!   convenient bundle.
//!
//! # Example
//!
//! ```
//! use ci_bpred::{Gshare, GlobalHistory};
//! use ci_isa::Pc;
//!
//! let mut g = Gshare::new(12);
//! let h = GlobalHistory::new().pushed(true).pushed(false);
//! // Train a branch under this history: always taken.
//! g.update(Pc(5), h, true);
//! g.update(Pc(5), h, true);
//! assert!(g.predict(Pc(5), h));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod confidence;
mod ctb;
mod gshare;
mod ras;
mod suite;
mod tfr;

pub use confidence::ConfidenceEstimator;
pub use ctb::CorrelatedTargetBuffer;
pub use gshare::{GlobalHistory, Gshare};
pub use ras::ReturnAddressStack;
pub use suite::{Prediction, PredictorConfig, PredictorSuite};
pub use tfr::{CoveragePoint, TfrIndexing, TfrStats, TfrTable};
