//! Resetting-counter branch confidence estimation.

use crate::GlobalHistory;
use ci_isa::Pc;

/// A resetting-counter confidence estimator (Jacobsen, Rotenberg & Smith,
/// MICRO-29): a table of saturating counters indexed like gshare; each
/// correct prediction increments the counter, each misprediction resets it to
/// zero. A prediction is *high confidence* when the counter has reached a
/// threshold.
///
/// ```
/// use ci_bpred::{ConfidenceEstimator, GlobalHistory};
/// use ci_isa::Pc;
///
/// let mut c = ConfidenceEstimator::new(10, 4);
/// let h = GlobalHistory::new();
/// assert!(!c.high_confidence(Pc(1), h));
/// for _ in 0..4 {
///     c.update(Pc(1), h, true); // four correct predictions
/// }
/// assert!(c.high_confidence(Pc(1), h));
/// c.update(Pc(1), h, false); // one misprediction resets
/// assert!(!c.high_confidence(Pc(1), h));
/// ```
#[derive(Clone, Debug)]
pub struct ConfidenceEstimator {
    counters: Vec<u8>,
    index_bits: u32,
    threshold: u8,
}

impl ConfidenceEstimator {
    /// Create an estimator with `2^index_bits` counters and the given
    /// high-confidence `threshold` (counters saturate at 15).
    ///
    /// # Panics
    /// Panics if `index_bits` is 0 or greater than 28, or `threshold` is 0 or
    /// greater than 15.
    #[must_use]
    pub fn new(index_bits: u32, threshold: u8) -> ConfidenceEstimator {
        assert!((1..=28).contains(&index_bits), "index_bits out of range");
        assert!((1..=15).contains(&threshold), "threshold out of range");
        ConfidenceEstimator {
            counters: vec![0; 1 << index_bits],
            index_bits,
            threshold,
        }
    }

    fn index(&self, pc: Pc, hist: GlobalHistory) -> usize {
        let mask = (1u64 << self.index_bits) - 1;
        ((u64::from(pc.0) ^ hist.bits(self.index_bits)) & mask) as usize
    }

    /// Whether the prediction for `pc` under `hist` is high confidence.
    #[must_use]
    pub fn high_confidence(&self, pc: Pc, hist: GlobalHistory) -> bool {
        self.counters[self.index(pc, hist)] >= self.threshold
    }

    /// Record whether the prediction for this branch was `correct`.
    pub fn update(&mut self, pc: Pc, hist: GlobalHistory, correct: bool) {
        let i = self.index(pc, hist);
        let c = &mut self.counters[i];
        if correct {
            *c = (*c + 1).min(15);
        } else {
            *c = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_saturates_at_15() {
        let mut c = ConfidenceEstimator::new(4, 15);
        let h = GlobalHistory::new();
        for _ in 0..100 {
            c.update(Pc(0), h, true);
        }
        assert!(c.high_confidence(Pc(0), h));
    }

    #[test]
    fn reset_on_mispredict() {
        let mut c = ConfidenceEstimator::new(4, 2);
        let h = GlobalHistory::new();
        c.update(Pc(0), h, true);
        c.update(Pc(0), h, true);
        assert!(c.high_confidence(Pc(0), h));
        c.update(Pc(0), h, false);
        assert!(!c.high_confidence(Pc(0), h));
        c.update(Pc(0), h, true);
        assert!(!c.high_confidence(Pc(0), h)); // needs two again
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn rejects_zero_threshold() {
        let _ = ConfidenceEstimator::new(4, 0);
    }
}
