//! Return address stack.

use ci_isa::Pc;

/// A return-address stack with optional depth bound and cheap whole-stack
/// checkpointing.
///
/// The paper's idealized study assumes a *perfect* RAS; an unbounded stack
/// ([`ReturnAddressStack::perfect`]) consulted and updated in program order is
/// exactly that. The pipeline simulator snapshots the stack at each fetched
/// control instruction and restores it on recovery, which keeps the stack
/// consistent across squashes and restart sequences.
///
/// ```
/// use ci_bpred::ReturnAddressStack;
/// use ci_isa::Pc;
///
/// let mut ras = ReturnAddressStack::perfect();
/// ras.push(Pc(10));
/// ras.push(Pc(20));
/// assert_eq!(ras.pop(), Some(Pc(20)));
/// assert_eq!(ras.pop(), Some(Pc(10)));
/// assert_eq!(ras.pop(), None);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ReturnAddressStack {
    stack: Vec<Pc>,
    max_depth: Option<usize>,
}

impl ReturnAddressStack {
    /// An unbounded ("perfect") stack.
    #[must_use]
    pub fn perfect() -> ReturnAddressStack {
        ReturnAddressStack {
            stack: Vec::new(),
            max_depth: None,
        }
    }

    /// A stack bounded to `depth` entries; pushes beyond the bound drop the
    /// oldest entry (a real hardware RAS overwrites circularly).
    #[must_use]
    pub fn bounded(depth: usize) -> ReturnAddressStack {
        ReturnAddressStack {
            stack: Vec::new(),
            max_depth: Some(depth),
        }
    }

    /// Push a return address (on a call).
    pub fn push(&mut self, ret: Pc) {
        if let Some(d) = self.max_depth {
            if self.stack.len() == d && d > 0 {
                self.stack.remove(0);
            } else if d == 0 {
                return;
            }
        }
        self.stack.push(ret);
    }

    /// Pop the predicted return address (on a return).
    pub fn pop(&mut self) -> Option<Pc> {
        self.stack.pop()
    }

    /// Current depth.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.stack.len()
    }

    /// Snapshot the entire stack for later [`ReturnAddressStack::restore`].
    #[must_use]
    pub fn snapshot(&self) -> ReturnAddressStack {
        self.clone()
    }

    /// Restore a snapshot taken earlier.
    pub fn restore(&mut self, snap: &ReturnAddressStack) {
        self.stack.clone_from(&snap.stack);
        self.max_depth = snap.max_depth;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifo_order() {
        let mut r = ReturnAddressStack::perfect();
        r.push(Pc(1));
        r.push(Pc(2));
        r.push(Pc(3));
        assert_eq!(r.depth(), 3);
        assert_eq!(r.pop(), Some(Pc(3)));
        assert_eq!(r.pop(), Some(Pc(2)));
        assert_eq!(r.pop(), Some(Pc(1)));
        assert_eq!(r.pop(), None);
    }

    #[test]
    fn bounded_drops_oldest() {
        let mut r = ReturnAddressStack::bounded(2);
        r.push(Pc(1));
        r.push(Pc(2));
        r.push(Pc(3));
        assert_eq!(r.depth(), 2);
        assert_eq!(r.pop(), Some(Pc(3)));
        assert_eq!(r.pop(), Some(Pc(2)));
        assert_eq!(r.pop(), None);
    }

    #[test]
    fn zero_depth_never_stores() {
        let mut r = ReturnAddressStack::bounded(0);
        r.push(Pc(1));
        assert_eq!(r.pop(), None);
    }

    #[test]
    fn snapshot_restore() {
        let mut r = ReturnAddressStack::perfect();
        r.push(Pc(1));
        let snap = r.snapshot();
        r.push(Pc(2));
        r.pop();
        r.pop();
        assert_eq!(r.depth(), 0);
        r.restore(&snap);
        assert_eq!(r.depth(), 1);
        assert_eq!(r.pop(), Some(Pc(1)));
    }
}
