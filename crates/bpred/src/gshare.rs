//! The gshare conditional-branch predictor and global branch history.

use ci_isa::Pc;

/// A global branch-history register.
///
/// Histories are value types deliberately separated from the predictor: the
/// pipeline simulator keeps a *speculative* history at the fetch unit, stores
/// the pre-prediction history with every in-flight branch, repairs it on
/// mispredictions and replays it during re-predict sequences — all of which
/// need history to be cheap to copy and explicit to pass around.
///
/// ```
/// use ci_bpred::GlobalHistory;
/// let mut h = GlobalHistory::new();
/// h.push(true);
/// h.push(false);
/// assert_eq!(h.bits(2), 0b10);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct GlobalHistory(u64);

impl GlobalHistory {
    /// An empty (all not-taken) history.
    #[must_use]
    pub fn new() -> GlobalHistory {
        GlobalHistory(0)
    }

    /// Shift in one branch outcome (`true` = taken) as the newest bit.
    pub fn push(&mut self, taken: bool) {
        self.0 = (self.0 << 1) | u64::from(taken);
    }

    /// A copy of this history with one more outcome pushed.
    #[must_use]
    pub fn pushed(mut self, taken: bool) -> GlobalHistory {
        self.push(taken);
        self
    }

    /// The newest `n` bits of history (`n <= 64`).
    #[must_use]
    pub fn bits(self, n: u32) -> u64 {
        if n == 0 {
            0
        } else if n >= 64 {
            self.0
        } else {
            self.0 & ((1u64 << n) - 1)
        }
    }

    /// The raw 64-bit history register.
    #[must_use]
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl From<u64> for GlobalHistory {
    fn from(v: u64) -> Self {
        GlobalHistory(v)
    }
}

/// A gshare two-level adaptive predictor: a table of 2-bit saturating
/// counters indexed by `pc XOR global-history`.
///
/// The paper uses a 2^16-entry table ([`Gshare::paper_default`]).
#[derive(Clone, Debug)]
pub struct Gshare {
    counters: Vec<u8>,
    index_bits: u32,
}

impl Gshare {
    /// Create a gshare predictor with `2^index_bits` counters, initialized to
    /// weakly not-taken.
    ///
    /// # Panics
    /// Panics if `index_bits` is 0 or greater than 28.
    #[must_use]
    pub fn new(index_bits: u32) -> Gshare {
        assert!((1..=28).contains(&index_bits), "index_bits out of range");
        Gshare {
            counters: vec![1; 1 << index_bits],
            index_bits,
        }
    }

    /// The paper's configuration: 2^16 entries.
    #[must_use]
    pub fn paper_default() -> Gshare {
        Gshare::new(16)
    }

    fn index(&self, pc: Pc, hist: GlobalHistory) -> usize {
        let mask = (1u64 << self.index_bits) - 1;
        ((u64::from(pc.0) ^ hist.bits(self.index_bits)) & mask) as usize
    }

    /// Predict the direction of the branch at `pc` under history `hist`.
    #[must_use]
    pub fn predict(&self, pc: Pc, hist: GlobalHistory) -> bool {
        self.counters[self.index(pc, hist)] >= 2
    }

    /// Train the counter for (`pc`, `hist`) toward the actual outcome.
    pub fn update(&mut self, pc: Pc, hist: GlobalHistory, taken: bool) {
        let i = self.index(pc, hist);
        let c = &mut self.counters[i];
        if taken {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }
    }

    /// Number of table entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.counters.len()
    }

    /// Whether the table is empty (never true for a constructed predictor).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn history_shifting() {
        let mut h = GlobalHistory::new();
        h.push(true);
        h.push(true);
        h.push(false);
        assert_eq!(h.bits(3), 0b110);
        assert_eq!(h.bits(2), 0b10);
        assert_eq!(h.bits(0), 0);
        assert_eq!(h.pushed(true).bits(4), 0b1101);
        assert_eq!(GlobalHistory::from(5u64).raw(), 5);
        assert_eq!(GlobalHistory::from(u64::MAX).bits(64), u64::MAX);
    }

    #[test]
    fn learns_direction() {
        let mut g = Gshare::new(10);
        let h = GlobalHistory::new();
        assert!(!g.predict(Pc(4), h)); // initialized weakly not-taken
        g.update(Pc(4), h, true);
        g.update(Pc(4), h, true);
        assert!(g.predict(Pc(4), h));
        g.update(Pc(4), h, false);
        g.update(Pc(4), h, false);
        g.update(Pc(4), h, false);
        assert!(!g.predict(Pc(4), h));
    }

    #[test]
    fn history_disambiguates_correlated_branch() {
        // Same PC, alternating pattern: with history the predictor can learn
        // both contexts; counters saturate in opposite directions.
        let mut g = Gshare::new(10);
        let mut h = GlobalHistory::new();
        let mut correct = 0;
        let mut total = 0;
        for i in 0..400 {
            let taken = i % 2 == 0;
            if i >= 100 {
                total += 1;
                correct += i32::from(g.predict(Pc(8), h) == taken);
            }
            g.update(Pc(8), h, taken);
            h.push(taken);
        }
        assert_eq!(
            correct, total,
            "alternating pattern should be fully learned"
        );
    }

    #[test]
    fn counters_saturate() {
        let mut g = Gshare::new(4);
        let h = GlobalHistory::new();
        for _ in 0..10 {
            g.update(Pc(0), h, true);
        }
        // One not-taken outcome must not flip a saturated counter.
        g.update(Pc(0), h, false);
        assert!(g.predict(Pc(0), h));
    }

    #[test]
    #[should_panic(expected = "index_bits")]
    fn rejects_zero_bits() {
        let _ = Gshare::new(0);
    }

    #[test]
    fn paper_default_size() {
        assert_eq!(Gshare::paper_default().len(), 1 << 16);
        assert!(!Gshare::paper_default().is_empty());
    }
}
