//! Correlated target buffer for indirect jumps.

use crate::GlobalHistory;
use ci_isa::Pc;

/// A correlated target buffer: a tag-less table of predicted targets for
/// indirect jumps and calls, indexed by `pc XOR global-history` (after Chang,
/// Hao & Patt). The paper uses a 2^16-entry instance.
///
/// ```
/// use ci_bpred::{CorrelatedTargetBuffer, GlobalHistory};
/// use ci_isa::Pc;
///
/// let mut ctb = CorrelatedTargetBuffer::new(10);
/// let h = GlobalHistory::new();
/// assert_eq!(ctb.predict(Pc(3), h), None);
/// ctb.update(Pc(3), h, Pc(77));
/// assert_eq!(ctb.predict(Pc(3), h), Some(Pc(77)));
/// ```
#[derive(Clone, Debug)]
pub struct CorrelatedTargetBuffer {
    targets: Vec<Option<Pc>>,
    index_bits: u32,
}

impl CorrelatedTargetBuffer {
    /// Create a buffer with `2^index_bits` entries.
    ///
    /// # Panics
    /// Panics if `index_bits` is 0 or greater than 28.
    #[must_use]
    pub fn new(index_bits: u32) -> CorrelatedTargetBuffer {
        assert!((1..=28).contains(&index_bits), "index_bits out of range");
        CorrelatedTargetBuffer {
            targets: vec![None; 1 << index_bits],
            index_bits,
        }
    }

    /// The paper's configuration: 2^16 entries.
    #[must_use]
    pub fn paper_default() -> CorrelatedTargetBuffer {
        CorrelatedTargetBuffer::new(16)
    }

    fn index(&self, pc: Pc, hist: GlobalHistory) -> usize {
        let mask = (1u64 << self.index_bits) - 1;
        ((u64::from(pc.0) ^ hist.bits(self.index_bits)) & mask) as usize
    }

    /// Predicted target for the indirect jump at `pc`, if the entry has ever
    /// been trained.
    #[must_use]
    pub fn predict(&self, pc: Pc, hist: GlobalHistory) -> Option<Pc> {
        self.targets[self.index(pc, hist)]
    }

    /// Record the actual `target` of the indirect jump at `pc`.
    pub fn update(&mut self, pc: Pc, hist: GlobalHistory, target: Pc) {
        let i = self.index(pc, hist);
        self.targets[i] = Some(target);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn history_correlates_targets() {
        let mut ctb = CorrelatedTargetBuffer::new(8);
        let h0 = GlobalHistory::from(0b01u64);
        let h1 = GlobalHistory::from(0b10u64);
        ctb.update(Pc(9), h0, Pc(100));
        ctb.update(Pc(9), h1, Pc(200));
        assert_eq!(ctb.predict(Pc(9), h0), Some(Pc(100)));
        assert_eq!(ctb.predict(Pc(9), h1), Some(Pc(200)));
    }

    #[test]
    fn aliasing_overwrites() {
        let mut ctb = CorrelatedTargetBuffer::new(4);
        let h = GlobalHistory::new();
        ctb.update(Pc(1), h, Pc(10));
        ctb.update(Pc(1 + 16), h, Pc(20)); // same index (16-entry table)
        assert_eq!(ctb.predict(Pc(1), h), Some(Pc(20)));
    }

    #[test]
    fn paper_default_size() {
        let ctb = CorrelatedTargetBuffer::paper_default();
        assert_eq!(ctb.targets.len(), 1 << 16);
    }
}
