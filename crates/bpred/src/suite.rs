//! The paper's full front-end prediction stack as one bundle.

use crate::{CorrelatedTargetBuffer, GlobalHistory, Gshare, ReturnAddressStack};
use ci_isa::{Inst, InstClass, Pc};

/// Configuration for a [`PredictorSuite`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PredictorConfig {
    /// log2 of the gshare table size (paper: 16).
    pub gshare_bits: u32,
    /// log2 of the correlated target buffer size (paper: 16).
    pub ctb_bits: u32,
    /// Return-address-stack depth; `None` is unbounded ("perfect" when used
    /// in program order, as in the paper's ideal study).
    pub ras_depth: Option<usize>,
}

impl PredictorConfig {
    /// The paper's configuration: 2^16 gshare, 2^16 CTB, perfect RAS.
    #[must_use]
    pub fn paper_default() -> PredictorConfig {
        PredictorConfig {
            gshare_bits: 16,
            ctb_bits: 16,
            ras_depth: None,
        }
    }
}

impl Default for PredictorConfig {
    fn default() -> Self {
        PredictorConfig::paper_default()
    }
}

/// A prediction for one control-transfer instruction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Prediction {
    /// Predicted next PC.
    pub next_pc: Pc,
    /// For conditional branches, the predicted direction.
    pub taken: Option<bool>,
}

/// Gshare + correlated target buffer + return address stack, stepped in
/// program (retirement) order.
///
/// This is the reference predictor used to characterize workloads (Table 1)
/// and to drive the idealized models of Section 2, which — like Lam & Wilson's
/// study — assume every branch is predicted under the architecturally correct
/// global history. The pipeline simulator instead uses the component
/// predictors directly with its own speculative history management.
///
/// ```
/// use ci_bpred::{PredictorConfig, PredictorSuite};
/// use ci_isa::{Asm, Pc, Reg};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut a = Asm::new();
/// a.bne(Reg::R1, Reg::R0, "skip");
/// a.label("skip")?;
/// a.halt();
/// let p = a.assemble()?;
/// let mut suite = PredictorSuite::new(PredictorConfig::paper_default());
/// let branch = *p.fetch(Pc(0)).unwrap();
/// // Step the (not-taken) branch through the predictor.
/// let pred = suite.step(Pc(0), &branch, Pc(1), false);
/// assert_eq!(pred.taken, Some(false));
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct PredictorSuite {
    gshare: Gshare,
    ctb: CorrelatedTargetBuffer,
    ras: ReturnAddressStack,
    hist: GlobalHistory,
}

impl PredictorSuite {
    /// Create a suite from `config`.
    #[must_use]
    pub fn new(config: PredictorConfig) -> PredictorSuite {
        PredictorSuite {
            gshare: Gshare::new(config.gshare_bits),
            ctb: CorrelatedTargetBuffer::new(config.ctb_bits),
            ras: match config.ras_depth {
                None => ReturnAddressStack::perfect(),
                Some(d) => ReturnAddressStack::bounded(d),
            },
            hist: GlobalHistory::new(),
        }
    }

    /// The current (architecturally correct) global history.
    #[must_use]
    pub fn history(&self) -> GlobalHistory {
        self.hist
    }

    /// Predict the instruction at `pc`, then immediately train with the
    /// actual outcome (`actual_next`, `taken`) — program-order operation.
    ///
    /// Returns the prediction that a fetch unit would have acted on.
    pub fn step(&mut self, pc: Pc, inst: &Inst, actual_next: Pc, taken: bool) -> Prediction {
        let fallthrough = pc.next();
        match inst.class() {
            InstClass::CondBranch => {
                let pred_taken = self.gshare.predict(pc, self.hist);
                let target = inst.static_target().unwrap_or(fallthrough);
                let next_pc = if pred_taken { target } else { fallthrough };
                self.gshare.update(pc, self.hist, taken);
                self.hist.push(taken);
                Prediction {
                    next_pc,
                    taken: Some(pred_taken),
                }
            }
            InstClass::Jump => Prediction {
                next_pc: inst.static_target().unwrap_or(fallthrough),
                taken: None,
            },
            InstClass::Call => {
                self.ras.push(fallthrough);
                Prediction {
                    next_pc: inst.static_target().unwrap_or(fallthrough),
                    taken: None,
                }
            }
            InstClass::Return => {
                let next_pc = self.ras.pop().unwrap_or(fallthrough);
                Prediction {
                    next_pc,
                    taken: None,
                }
            }
            InstClass::IndirectJump => {
                let next_pc = self.ctb.predict(pc, self.hist).unwrap_or(fallthrough);
                self.ctb.update(pc, self.hist, actual_next);
                if inst.dest().is_some() {
                    // Indirect call: push the return address.
                    self.ras.push(fallthrough);
                }
                Prediction {
                    next_pc,
                    taken: None,
                }
            }
            _ => Prediction {
                next_pc: fallthrough,
                taken: None,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ci_isa::{Asm, Reg};

    #[test]
    fn returns_are_perfect_in_program_order() {
        let mut a = Asm::new();
        a.call("f"); // pc 0
        a.halt(); // pc 1
        a.label("f").unwrap();
        a.ret(); // pc 2
        let p = a.assemble().unwrap();
        let mut s = PredictorSuite::new(PredictorConfig::paper_default());
        let call = s.step(Pc(0), p.fetch(Pc(0)).unwrap(), Pc(2), false);
        assert_eq!(call.next_pc, Pc(2));
        let ret = s.step(Pc(2), p.fetch(Pc(2)).unwrap(), Pc(1), false);
        assert_eq!(ret.next_pc, Pc(1));
    }

    #[test]
    fn indirect_jump_trains_ctb() {
        let mut a = Asm::new();
        a.jalr(Reg::R0, Reg::R5, 0);
        a.halt();
        a.halt();
        let p = a.assemble().unwrap();
        let inst = *p.fetch(Pc(0)).unwrap();
        let mut s = PredictorSuite::new(PredictorConfig::paper_default());
        let first = s.step(Pc(0), &inst, Pc(2), false);
        assert_eq!(first.next_pc, Pc(1)); // untrained: fallthrough guess
        let second = s.step(Pc(0), &inst, Pc(2), false);
        assert_eq!(second.next_pc, Pc(2)); // trained
    }

    #[test]
    fn conditional_branch_uses_history() {
        let mut a = Asm::new();
        a.bne(Reg::R1, Reg::R0, Pc(0));
        let p = a.assemble().unwrap();
        let inst = *p.fetch(Pc(0)).unwrap();
        let mut s = PredictorSuite::new(PredictorConfig {
            gshare_bits: 10,
            ctb_bits: 4,
            ras_depth: None,
        });
        // Alternating outcomes become perfectly predictable with history.
        let mut correct = 0;
        for i in 0..200 {
            let taken = i % 2 == 0;
            let actual = if taken { Pc(0) } else { Pc(1) };
            let pred = s.step(Pc(0), &inst, actual, taken);
            if i >= 100 && pred.next_pc == actual {
                correct += 1;
            }
        }
        assert_eq!(correct, 100);
    }

    #[test]
    fn non_control_falls_through() {
        let mut a = Asm::new();
        a.nop();
        let p = a.assemble().unwrap();
        let mut s = PredictorSuite::new(PredictorConfig::paper_default());
        let pred = s.step(Pc(0), p.fetch(Pc(0)).unwrap(), Pc(1), false);
        assert_eq!(pred.next_pc, Pc(1));
        assert_eq!(pred.taken, None);
    }
}
