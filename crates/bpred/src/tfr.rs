//! True/false-misprediction history (TFR) tracking — the machinery behind the
//! paper's Figure 10.
//!
//! A *false misprediction* occurs when a correctly predicted branch executes
//! with speculative, incorrect operands and therefore appears mispredicted.
//! The paper proposes monitoring, per static branch or per dynamic TFR
//! pattern, how many of a branch's apparent mispredictions are true vs false,
//! and delaying completion of branches likely to produce false mispredictions.

use crate::GlobalHistory;
use ci_isa::Pc;
use std::collections::HashMap;

/// How TFR statistics are keyed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TfrIndexing {
    /// Per static branch (the paper's `static` profiling scheme).
    StaticPc,
    /// Per current TFR pattern, table indexed by PC (`dynamic(pc)`).
    DynamicPc,
    /// Per current TFR pattern, table indexed by PC XOR global history
    /// (`dynamic(xor)`, gshare-like).
    DynamicXor,
}

/// A table of 16-bit true/false-misprediction shift registers.
///
/// Each entry records the recent misprediction character of the branches that
/// map to it: a `1` bit is shifted in for a false misprediction, a `0` for a
/// true one. Updated only on (apparent) mispredictions — this is the paper's
/// TFR, the misprediction-only analogue of the CIR.
#[derive(Clone, Debug)]
pub struct TfrTable {
    regs: Vec<u16>,
    index_bits: u32,
}

impl TfrTable {
    /// Create a table with `2^index_bits` shift registers.
    ///
    /// # Panics
    /// Panics if `index_bits` is 0 or greater than 28.
    #[must_use]
    pub fn new(index_bits: u32) -> TfrTable {
        assert!((1..=28).contains(&index_bits), "index_bits out of range");
        TfrTable {
            regs: vec![0; 1 << index_bits],
            index_bits,
        }
    }

    /// The paper's configuration: 2^16 registers.
    #[must_use]
    pub fn paper_default() -> TfrTable {
        TfrTable::new(16)
    }

    fn index(&self, pc: Pc, hist: GlobalHistory, indexing: TfrIndexing) -> usize {
        let mask = (1u64 << self.index_bits) - 1;
        let key = match indexing {
            TfrIndexing::StaticPc | TfrIndexing::DynamicPc => u64::from(pc.0),
            TfrIndexing::DynamicXor => u64::from(pc.0) ^ hist.bits(self.index_bits),
        };
        (key & mask) as usize
    }

    /// The current TFR pattern a branch at `pc` maps to.
    #[must_use]
    pub fn pattern(&self, pc: Pc, hist: GlobalHistory, indexing: TfrIndexing) -> u16 {
        self.regs[self.index(pc, hist, indexing)]
    }

    /// Record an apparent misprediction: `false_mispred` is whether it was a
    /// false one.
    pub fn record(
        &mut self,
        pc: Pc,
        hist: GlobalHistory,
        indexing: TfrIndexing,
        false_mispred: bool,
    ) {
        let i = self.index(pc, hist, indexing);
        self.regs[i] = (self.regs[i] << 1) | u16::from(false_mispred);
    }
}

/// One point on a cumulative true/false-misprediction coverage curve
/// (Figure 10): by delaying all branches in the keys covered so far,
/// `cum_false` of all false mispredictions would be prevented at the cost of
/// delaying `cum_true` of all true mispredictions.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CoveragePoint {
    /// Cumulative fraction of true mispredictions delayed, in `[0, 1]`.
    pub cum_true: f64,
    /// Cumulative fraction of false mispredictions prevented, in `[0, 1]`.
    pub cum_false: f64,
}

/// Offline collector of per-key true/false misprediction counts.
///
/// Keys are opaque: use the static branch PC for the `static` scheme or a TFR
/// pattern (from [`TfrTable::pattern`]) for the dynamic schemes.
///
/// ```
/// use ci_bpred::TfrStats;
///
/// let mut s = TfrStats::new();
/// s.record(1, false); // branch 1: one true misprediction
/// s.record(2, true);  // branch 2: one false misprediction
/// let curve = s.coverage_curve();
/// // Covering branch 2 first prevents all false mispredictions while
/// // delaying no true ones.
/// assert_eq!(curve[0].cum_false, 1.0);
/// assert_eq!(curve[0].cum_true, 0.0);
/// ```
#[derive(Clone, Default, PartialEq, Eq)]
pub struct TfrStats {
    counts: HashMap<u64, (u64, u64)>, // key -> (true, false)
}

impl std::fmt::Debug for TfrStats {
    /// Renders entries sorted by key: `HashMap` iteration order varies per
    /// process, and golden fixtures fingerprint debug output.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_map()
            .entries(self.entries().into_iter().map(|(k, t, fa)| (k, (t, fa))))
            .finish()
    }
}

impl TfrStats {
    /// Create an empty collector.
    #[must_use]
    pub fn new() -> TfrStats {
        TfrStats::default()
    }

    /// Record one apparent misprediction for `key`.
    pub fn record(&mut self, key: u64, false_mispred: bool) {
        let e = self.counts.entry(key).or_insert((0, 0));
        if false_mispred {
            e.1 += 1;
        } else {
            e.0 += 1;
        }
    }

    /// The raw `(key, true, false)` entries, sorted by key — a canonical
    /// form suitable for hashing or lossless serialization.
    #[must_use]
    pub fn entries(&self) -> Vec<(u64, u64, u64)> {
        let mut v: Vec<(u64, u64, u64)> =
            self.counts.iter().map(|(&k, &(t, f))| (k, t, f)).collect();
        v.sort_unstable();
        v
    }

    /// Rebuild a collector from [`TfrStats::entries`] output. Duplicate keys
    /// accumulate.
    #[must_use]
    pub fn from_entries(entries: impl IntoIterator<Item = (u64, u64, u64)>) -> TfrStats {
        let mut s = TfrStats::new();
        for (k, t, f) in entries {
            let e = s.counts.entry(k).or_insert((0, 0));
            e.0 += t;
            e.1 += f;
        }
        s
    }

    /// Total (true, false) mispredictions recorded.
    #[must_use]
    pub fn totals(&self) -> (u64, u64) {
        self.counts
            .values()
            .fold((0, 0), |(t, f), (kt, kf)| (t + kt, f + kf))
    }

    /// The cumulative coverage curve: keys sorted from highest to lowest
    /// false-misprediction rate, with one point per key prefix.
    ///
    /// Empty if nothing was recorded.
    #[must_use]
    pub fn coverage_curve(&self) -> Vec<CoveragePoint> {
        let (total_t, total_f) = self.totals();
        if total_t + total_f == 0 {
            return Vec::new();
        }
        let mut keys: Vec<(&u64, &(u64, u64))> = self.counts.iter().collect();
        keys.sort_by(|(ka, (ta, fa)), (kb, (tb, fb))| {
            // false rate descending; ties broken by key for determinism
            let ra = *fa as f64 / (*ta + *fa) as f64;
            let rb = *fb as f64 / (*tb + *fb) as f64;
            rb.partial_cmp(&ra).unwrap().then(ka.cmp(kb))
        });
        let mut out = Vec::with_capacity(keys.len());
        let (mut ct, mut cf) = (0u64, 0u64);
        for (_, (t, f)) in keys {
            ct += t;
            cf += f;
            out.push(CoveragePoint {
                cum_true: if total_t == 0 {
                    0.0
                } else {
                    ct as f64 / total_t as f64
                },
                cum_false: if total_f == 0 {
                    0.0
                } else {
                    cf as f64 / total_f as f64
                },
            });
        }
        out
    }

    /// The largest fraction of false mispredictions detectable while delaying
    /// at most `true_budget` (fraction) of true mispredictions.
    #[must_use]
    pub fn false_coverage_at(&self, true_budget: f64) -> f64 {
        self.coverage_curve()
            .iter()
            .filter(|p| p.cum_true <= true_budget + 1e-12)
            .map(|p| p.cum_false)
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_patterns_shift() {
        let mut t = TfrTable::new(8);
        let h = GlobalHistory::new();
        t.record(Pc(3), h, TfrIndexing::DynamicPc, true);
        t.record(Pc(3), h, TfrIndexing::DynamicPc, false);
        t.record(Pc(3), h, TfrIndexing::DynamicPc, true);
        assert_eq!(t.pattern(Pc(3), h, TfrIndexing::DynamicPc), 0b101);
    }

    #[test]
    fn xor_indexing_separates_contexts() {
        let mut t = TfrTable::new(8);
        let h0 = GlobalHistory::from(0u64);
        let h1 = GlobalHistory::from(1u64);
        t.record(Pc(2), h0, TfrIndexing::DynamicXor, true);
        assert_eq!(t.pattern(Pc(2), h0, TfrIndexing::DynamicXor), 1);
        assert_eq!(t.pattern(Pc(2), h1, TfrIndexing::DynamicXor), 0);
    }

    #[test]
    fn curve_orders_by_false_rate() {
        let mut s = TfrStats::new();
        // key 1: pure true; key 2: pure false; key 3: mixed.
        for _ in 0..10 {
            s.record(1, false);
        }
        for _ in 0..10 {
            s.record(2, true);
        }
        s.record(3, true);
        s.record(3, false);
        let curve = s.coverage_curve();
        assert_eq!(curve.len(), 3);
        // First point covers key 2 (rate 1.0).
        assert!((curve[0].cum_false - 10.0 / 11.0).abs() < 1e-9);
        assert_eq!(curve[0].cum_true, 0.0);
        // Last point covers everything.
        assert!((curve[2].cum_true - 1.0).abs() < 1e-9);
        assert!((curve[2].cum_false - 1.0).abs() < 1e-9);
        assert_eq!(s.totals(), (11, 11));
    }

    #[test]
    fn budgeted_coverage() {
        let mut s = TfrStats::new();
        for _ in 0..9 {
            s.record(1, false);
        }
        s.record(1, true);
        for _ in 0..9 {
            s.record(2, true);
        }
        s.record(2, false);
        // Covering key 2 alone: 90% of false, 10% of true.
        assert!((s.false_coverage_at(0.2) - 0.9).abs() < 1e-9);
        assert!((s.false_coverage_at(1.0) - 1.0).abs() < 1e-9);
        assert_eq!(s.false_coverage_at(0.0), 0.0);
    }

    #[test]
    fn empty_curve() {
        assert!(TfrStats::new().coverage_curve().is_empty());
        assert_eq!(TfrStats::new().totals(), (0, 0));
    }
}
