//! Edge-case tests for the predictor structures: RAS depth-bound behavior,
//! CTB index aliasing, and confidence-counter saturation.

use ci_bpred::{ConfidenceEstimator, CorrelatedTargetBuffer, GlobalHistory, ReturnAddressStack};
use ci_isa::Pc;

#[test]
fn ras_underflow_is_empty_not_garbage() {
    let mut r = ReturnAddressStack::perfect();
    for _ in 0..8 {
        assert_eq!(r.pop(), None);
    }
    // A stack that underflowed still accepts pushes normally.
    r.push(Pc(7));
    assert_eq!(r.pop(), Some(Pc(7)));
    assert_eq!(r.pop(), None);
}

#[test]
fn ras_overflow_keeps_newest_in_lifo_order() {
    // Push far past the bound: the stack must retain exactly the newest
    // `depth` addresses, popped newest-first (a hardware RAS overwrites the
    // oldest slot circularly).
    let mut r = ReturnAddressStack::bounded(4);
    for i in 0..100u32 {
        r.push(Pc(i));
    }
    assert_eq!(r.depth(), 4);
    for i in (96..100u32).rev() {
        assert_eq!(r.pop(), Some(Pc(i)));
    }
    assert_eq!(r.pop(), None);
}

#[test]
fn ras_alternating_wraparound_tracks_matched_pairs() {
    // call/return pairs interleaved with overflow: as long as the nesting
    // depth stays within the bound, predictions stay exact even after the
    // stack has wrapped many times.
    let mut r = ReturnAddressStack::bounded(3);
    for round in 0..50u32 {
        let base = round * 10;
        r.push(Pc(base));
        r.push(Pc(base + 1));
        assert_eq!(r.pop(), Some(Pc(base + 1)));
        assert_eq!(r.pop(), Some(Pc(base)));
        assert_eq!(r.depth(), 0);
    }
}

#[test]
fn ras_snapshot_restore_across_overflow() {
    let mut r = ReturnAddressStack::bounded(2);
    r.push(Pc(1));
    r.push(Pc(2));
    let snap = r.snapshot();
    // Overflow after the snapshot: Pc(1) is dropped from the live stack.
    r.push(Pc(3));
    r.push(Pc(4));
    assert_eq!(r.depth(), 2);
    // Restore rewinds both contents and bound.
    r.restore(&snap);
    assert_eq!(r.pop(), Some(Pc(2)));
    assert_eq!(r.pop(), Some(Pc(1)));
    assert_eq!(r.pop(), None);
}

#[test]
fn ras_zero_depth_snapshot_roundtrip() {
    let mut r = ReturnAddressStack::bounded(0);
    r.push(Pc(1));
    let snap = r.snapshot();
    r.restore(&snap);
    assert_eq!(r.depth(), 0);
    assert_eq!(r.pop(), None);
}

#[test]
fn ctb_aliased_pcs_clobber_each_other() {
    // A tag-less table: two PCs that differ only above the index bits map to
    // the same entry, so training one retrains the other.
    let ctb_bits = 4;
    let mut ctb = CorrelatedTargetBuffer::new(ctb_bits);
    let h = GlobalHistory::new();
    let a = Pc(3);
    let b = Pc(3 + (1 << ctb_bits));
    ctb.update(a, h, Pc(100));
    assert_eq!(ctb.predict(a, h), Some(Pc(100)));
    // The alias reads the same slot...
    assert_eq!(ctb.predict(b, h), Some(Pc(100)));
    // ...and writing it clobbers the original.
    ctb.update(b, h, Pc(200));
    assert_eq!(ctb.predict(a, h), Some(Pc(200)));
}

#[test]
fn ctb_history_xor_can_dealias() {
    // The same static jump under different global histories occupies
    // different slots, so a history that differs inside the index window
    // separates the two paths to an indirect jump.
    let mut ctb = CorrelatedTargetBuffer::new(4);
    let h0 = GlobalHistory::from(0b0001u64);
    let h1 = GlobalHistory::from(0b0010u64);
    ctb.update(Pc(5), h0, Pc(60));
    ctb.update(Pc(5), h1, Pc(70));
    assert_eq!(ctb.predict(Pc(5), h0), Some(Pc(60)));
    assert_eq!(ctb.predict(Pc(5), h1), Some(Pc(70)));
}

#[test]
fn confidence_saturates_and_single_reset_clears() {
    let h = GlobalHistory::new();
    let mut c = ConfidenceEstimator::new(6, 8);
    // Far past saturation: the counter must pin at its ceiling, not wrap.
    for _ in 0..1000 {
        c.update(Pc(42), h, true);
    }
    assert!(c.high_confidence(Pc(42), h));
    // One misprediction resets to zero regardless of how saturated it was.
    c.update(Pc(42), h, false);
    assert!(!c.high_confidence(Pc(42), h));
    // And it takes the full threshold count to become confident again.
    for i in 0..8 {
        assert!(!c.high_confidence(Pc(42), h), "confident after only {i}");
        c.update(Pc(42), h, true);
    }
    assert!(c.high_confidence(Pc(42), h));
}

#[test]
fn confidence_threshold_boundary_exact() {
    let h = GlobalHistory::new();
    for threshold in 1..=15u8 {
        let mut c = ConfidenceEstimator::new(4, threshold);
        for _ in 0..threshold - 1 {
            c.update(Pc(9), h, true);
        }
        assert!(!c.high_confidence(Pc(9), h), "threshold {threshold}");
        c.update(Pc(9), h, true);
        assert!(c.high_confidence(Pc(9), h), "threshold {threshold}");
    }
}

#[test]
fn confidence_aliasing_shares_counters() {
    // Like the CTB, the estimator is tag-less: an aliased branch inherits
    // (and can destroy) another branch's confidence.
    let h = GlobalHistory::new();
    let bits = 4;
    let mut c = ConfidenceEstimator::new(bits, 4);
    let a = Pc(1);
    let b = Pc(1 + (1 << bits));
    for _ in 0..4 {
        c.update(a, h, true);
    }
    assert!(c.high_confidence(b, h), "alias reads the same counter");
    c.update(b, h, false);
    assert!(!c.high_confidence(a, h), "alias reset destroys confidence");
}
