//! Property tests: predictor learning, history handling and TFR-curve
//! invariants.

use ci_bpred::{GlobalHistory, Gshare, ReturnAddressStack, TfrStats};
use ci_isa::Pc;
use proptest::prelude::*;

proptest! {
    #[test]
    fn gshare_learns_any_fixed_direction(pc in 0u32..10_000, hist in any::<u64>(), dir in any::<bool>()) {
        let mut g = Gshare::new(14);
        let h = GlobalHistory::from(hist);
        for _ in 0..4 {
            g.update(Pc(pc), h, dir);
        }
        prop_assert_eq!(g.predict(Pc(pc), h), dir);
    }

    #[test]
    fn history_bits_mask_raw(hist in any::<u64>(), n in 0u32..=64) {
        let h = GlobalHistory::from(hist);
        let bits = h.bits(n);
        if n == 0 {
            prop_assert_eq!(bits, 0);
        } else if n < 64 {
            prop_assert_eq!(bits, hist & ((1u64 << n) - 1));
        } else {
            prop_assert_eq!(bits, hist);
        }
    }

    #[test]
    fn ras_is_lifo(pushes in prop::collection::vec(0u32..1_000_000, 0..40)) {
        let mut ras = ReturnAddressStack::perfect();
        for &p in &pushes {
            ras.push(Pc(p));
        }
        for &p in pushes.iter().rev() {
            prop_assert_eq!(ras.pop(), Some(Pc(p)));
        }
        prop_assert_eq!(ras.pop(), None);
    }

    #[test]
    fn coverage_curve_is_monotone_and_complete(
        events in prop::collection::vec((0u64..30, any::<bool>()), 1..300)
    ) {
        let mut s = TfrStats::new();
        for (key, is_false) in &events {
            s.record(*key, *is_false);
        }
        let curve = s.coverage_curve();
        prop_assert!(!curve.is_empty());
        // Monotone non-decreasing in both axes.
        for w in curve.windows(2) {
            prop_assert!(w[1].cum_true >= w[0].cum_true - 1e-12);
            prop_assert!(w[1].cum_false >= w[0].cum_false - 1e-12);
        }
        // The full prefix covers everything that exists.
        let last = curve.last().unwrap();
        let (t, f) = s.totals();
        if t > 0 {
            prop_assert!((last.cum_true - 1.0).abs() < 1e-9);
        }
        if f > 0 {
            prop_assert!((last.cum_false - 1.0).abs() < 1e-9);
        }
        // Budgeted coverage is monotone in the budget.
        prop_assert!(s.false_coverage_at(0.5) >= s.false_coverage_at(0.1) - 1e-12);
    }
}
