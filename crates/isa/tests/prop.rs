//! Property tests: instruction classification and assembler invariants.

use ci_isa::{Asm, Inst, InstClass, Op, Pc, Reg};
use proptest::prelude::*;

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0u8..32).prop_map(|n| Reg::try_from(n).unwrap())
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        Just(Op::Add),
        Just(Op::Sub),
        Just(Op::Mul),
        Just(Op::Div),
        Just(Op::And),
        Just(Op::Or),
        Just(Op::Xor),
        Just(Op::Sll),
        Just(Op::Srl),
        Just(Op::Slt),
        Just(Op::Sltu),
        Just(Op::Addi),
        Just(Op::Andi),
        Just(Op::Ori),
        Just(Op::Xori),
        Just(Op::Slti),
        Just(Op::Slli),
        Just(Op::Srli),
        Just(Op::Load),
        Just(Op::Store),
        Just(Op::Beq),
        Just(Op::Bne),
        Just(Op::Blt),
        Just(Op::Bge),
        Just(Op::Jump),
        Just(Op::Jal),
        Just(Op::Jalr),
        Just(Op::Halt),
        Just(Op::Nop),
    ]
}

proptest! {
    #[test]
    fn classification_is_internally_consistent(
        op in arb_op(), rd in arb_reg(), rs1 in arb_reg(), rs2 in arb_reg(), imm in -1000i64..1000
    ) {
        let inst = Inst { op, rd, rs1, rs2, imm };
        let class = inst.class();
        // Destination writers never include stores, branches, jumps, halt, nop.
        if matches!(class, InstClass::Store | InstClass::CondBranch | InstClass::Jump | InstClass::Halt) {
            prop_assert_eq!(inst.dest(), None);
        }
        // dest() never reports r0.
        if let Some(d) = inst.dest() {
            prop_assert!(!d.is_zero());
        }
        // sources() never yields r0 and yields at most two registers.
        let srcs: Vec<Reg> = inst.sources().collect();
        prop_assert!(srcs.len() <= 2);
        prop_assert!(srcs.iter().all(|r| !r.is_zero()));
        // Control classification agrees with prediction requirements.
        if class.needs_prediction() {
            prop_assert!(class.is_control());
        }
        // Static targets exist exactly for direct control flow.
        match class {
            InstClass::CondBranch | InstClass::Jump | InstClass::Call => {
                prop_assert!(inst.static_target().is_some());
            }
            _ => prop_assert_eq!(inst.static_target(), None),
        }
        // Display never panics or produces empty text.
        prop_assert!(!inst.to_string().is_empty());
    }

    #[test]
    fn assembled_branch_targets_resolve_in_range(n_blocks in 1usize..20, seed in 0u64..1000) {
        // Build a program of `n_blocks` labelled blocks with pseudo-random
        // forward/backward branches between them.
        let mut a = Asm::new();
        let mut s = seed;
        for b in 0..n_blocks {
            a.label(&format!("b{b}")).unwrap();
            a.addi(Reg::R1, Reg::R1, 1);
            s = s.wrapping_mul(6364136223846793005).wrapping_add(7);
            let target = (s >> 33) as usize % n_blocks;
            a.beq(Reg::R1, Reg::R2, format!("b{target}").as_str());
        }
        a.halt();
        let p = a.assemble().unwrap();
        for (i, inst) in p.insts().iter().enumerate() {
            if let Some(t) = inst.static_target() {
                prop_assert!(t.index() < p.len(), "target {t} out of range at {i}");
            }
        }
        // Every label resolves to a PC inside the program.
        for (_, pc) in p.labels() {
            prop_assert!(pc.index() < p.len());
        }
        prop_assert_eq!(p.entry(), Pc(0));
    }
}
