//! Instructions, opcodes and instruction classes.

use crate::{Pc, Reg};
use std::fmt;

/// Operation codes of the ISA.
///
/// Conditional branches and direct jumps carry an absolute target [`Pc`] in
/// the instruction's immediate field (the assembler resolves labels to
/// absolute targets). Indirect control flow (`Jalr`) takes its target from a
/// register.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Op {
    /// `rd = rs1 + rs2`
    Add,
    /// `rd = rs1 - rs2`
    Sub,
    /// `rd = rs1 * rs2` (3-cycle class)
    Mul,
    /// `rd = rs1 / rs2` unsigned; `u64::MAX` on division by zero (12-cycle class)
    Div,
    /// `rd = rs1 & rs2`
    And,
    /// `rd = rs1 | rs2`
    Or,
    /// `rd = rs1 ^ rs2`
    Xor,
    /// `rd = rs1 << (rs2 & 63)`
    Sll,
    /// `rd = rs1 >> (rs2 & 63)` (logical)
    Srl,
    /// `rd = (rs1 as i64) < (rs2 as i64)`
    Slt,
    /// `rd = rs1 < rs2` (unsigned)
    Sltu,
    /// `rd = rs1 + imm`
    Addi,
    /// `rd = rs1 & imm`
    Andi,
    /// `rd = rs1 | imm`
    Ori,
    /// `rd = rs1 ^ imm`
    Xori,
    /// `rd = (rs1 as i64) < imm`
    Slti,
    /// `rd = rs1 << (imm & 63)`
    Slli,
    /// `rd = rs1 >> (imm & 63)` (logical)
    Srli,
    /// `rd = mem[rs1 + imm]`
    Load,
    /// `mem[rs1 + imm] = rs2`
    Store,
    /// branch to target if `rs1 == rs2`
    Beq,
    /// branch to target if `rs1 != rs2`
    Bne,
    /// branch to target if `(rs1 as i64) < (rs2 as i64)`
    Blt,
    /// branch to target if `(rs1 as i64) >= (rs2 as i64)`
    Bge,
    /// unconditional direct jump to target
    Jump,
    /// call: `rd = pc + 1`, jump to target
    Jal,
    /// indirect: `rd = pc + 1`, jump to `rs1 + imm`. With `rd == r0`,
    /// `rs1 == ra`, `imm == 0` this is the canonical return instruction.
    Jalr,
    /// stop the machine
    Halt,
    /// no operation
    Nop,
}

/// Coarse instruction classification used by timing models, predictors and
/// statistics.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum InstClass {
    /// Single-cycle integer ALU operation (including `Nop`).
    IntAlu,
    /// Integer multiply.
    IntMul,
    /// Integer divide.
    IntDiv,
    /// Memory load.
    Load,
    /// Memory store.
    Store,
    /// Conditional branch.
    CondBranch,
    /// Unconditional direct jump.
    Jump,
    /// Direct call (`jal`).
    Call,
    /// Canonical subroutine return (`jalr r0, ra, 0`).
    Return,
    /// Indirect jump or indirect call (non-return `jalr`).
    IndirectJump,
    /// Machine halt.
    Halt,
}

impl InstClass {
    /// Whether instructions of this class redirect control flow
    /// (conditionally or unconditionally).
    #[must_use]
    pub fn is_control(self) -> bool {
        matches!(
            self,
            InstClass::CondBranch
                | InstClass::Jump
                | InstClass::Call
                | InstClass::Return
                | InstClass::IndirectJump
        )
    }

    /// Whether the next PC of this class is not known at decode time: either a
    /// conditional branch (direction unknown) or indirect control flow (target
    /// unknown).
    #[must_use]
    pub fn needs_prediction(self) -> bool {
        matches!(
            self,
            InstClass::CondBranch | InstClass::Return | InstClass::IndirectJump
        )
    }

    /// Whether this class accesses data memory.
    #[must_use]
    pub fn is_mem(self) -> bool {
        matches!(self, InstClass::Load | InstClass::Store)
    }
}

impl fmt::Display for InstClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            InstClass::IntAlu => "alu",
            InstClass::IntMul => "mul",
            InstClass::IntDiv => "div",
            InstClass::Load => "load",
            InstClass::Store => "store",
            InstClass::CondBranch => "branch",
            InstClass::Jump => "jump",
            InstClass::Call => "call",
            InstClass::Return => "return",
            InstClass::IndirectJump => "ijump",
            InstClass::Halt => "halt",
        };
        f.write_str(s)
    }
}

/// A decoded instruction.
///
/// All operand fields are always present; operations that do not use a field
/// ignore it (the constructors on [`crate::Asm`] set unused fields to `r0` /
/// zero). For branches and direct jumps, `imm` holds the absolute target PC.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Inst {
    /// Operation code.
    pub op: Op,
    /// Destination register (`r0` when unused; writes to `r0` are discarded).
    pub rd: Reg,
    /// First source register.
    pub rs1: Reg,
    /// Second source register.
    pub rs2: Reg,
    /// Immediate operand, or the absolute branch/jump target for control ops.
    pub imm: i64,
}

impl Inst {
    /// A canonical `nop`.
    #[must_use]
    pub fn nop() -> Inst {
        Inst {
            op: Op::Nop,
            rd: Reg::R0,
            rs1: Reg::R0,
            rs2: Reg::R0,
            imm: 0,
        }
    }

    /// The instruction's class. See [`InstClass`].
    #[must_use]
    pub fn class(&self) -> InstClass {
        match self.op {
            Op::Mul => InstClass::IntMul,
            Op::Div => InstClass::IntDiv,
            Op::Load => InstClass::Load,
            Op::Store => InstClass::Store,
            Op::Beq | Op::Bne | Op::Blt | Op::Bge => InstClass::CondBranch,
            Op::Jump => InstClass::Jump,
            Op::Jal => InstClass::Call,
            Op::Jalr => {
                if self.rd == Reg::R0 && self.rs1 == Reg::RA && self.imm == 0 {
                    InstClass::Return
                } else {
                    InstClass::IndirectJump
                }
            }
            Op::Halt => InstClass::Halt,
            _ => InstClass::IntAlu,
        }
    }

    /// The architectural destination register, if this instruction writes one.
    ///
    /// Writes to `r0` are architectural no-ops and reported as `None`.
    #[must_use]
    pub fn dest(&self) -> Option<Reg> {
        let rd = match self.op {
            Op::Store | Op::Beq | Op::Bne | Op::Blt | Op::Bge | Op::Jump | Op::Halt | Op::Nop => {
                return None
            }
            _ => self.rd,
        };
        if rd.is_zero() {
            None
        } else {
            Some(rd)
        }
    }

    /// The architectural source registers read by this instruction.
    ///
    /// `r0` sources are omitted (their value is constant).
    pub fn sources(&self) -> impl Iterator<Item = Reg> {
        let (a, b) = match self.op {
            Op::Add
            | Op::Sub
            | Op::Mul
            | Op::Div
            | Op::And
            | Op::Or
            | Op::Xor
            | Op::Sll
            | Op::Srl
            | Op::Slt
            | Op::Sltu => (Some(self.rs1), Some(self.rs2)),
            Op::Addi
            | Op::Andi
            | Op::Ori
            | Op::Xori
            | Op::Slti
            | Op::Slli
            | Op::Srli
            | Op::Load => (Some(self.rs1), None),
            Op::Store => (Some(self.rs1), Some(self.rs2)),
            Op::Beq | Op::Bne | Op::Blt | Op::Bge => (Some(self.rs1), Some(self.rs2)),
            Op::Jalr => (Some(self.rs1), None),
            Op::Jump | Op::Jal | Op::Halt | Op::Nop => (None, None),
        };
        [a, b].into_iter().flatten().filter(|r| !r.is_zero())
    }

    /// For branches, direct jumps and calls: the statically encoded target.
    #[must_use]
    pub fn static_target(&self) -> Option<Pc> {
        match self.op {
            Op::Beq | Op::Bne | Op::Blt | Op::Bge | Op::Jump | Op::Jal => Some(Pc(self.imm as u32)),
            _ => None,
        }
    }

    /// Whether this is a conditional branch whose target is at or before its
    /// own PC (a loop-closing, "backward" branch as seen by a decoder).
    #[must_use]
    pub fn is_backward_branch(&self, pc: Pc) -> bool {
        self.class() == InstClass::CondBranch && self.static_target().is_some_and(|t| t <= pc)
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.op {
            Op::Add
            | Op::Sub
            | Op::Mul
            | Op::Div
            | Op::And
            | Op::Or
            | Op::Xor
            | Op::Sll
            | Op::Srl
            | Op::Slt
            | Op::Sltu => write!(
                f,
                "{} {}, {}, {}",
                format!("{:?}", self.op).to_lowercase(),
                self.rd,
                self.rs1,
                self.rs2
            ),
            Op::Addi | Op::Andi | Op::Ori | Op::Xori | Op::Slti | Op::Slli | Op::Srli => write!(
                f,
                "{} {}, {}, {}",
                format!("{:?}", self.op).to_lowercase(),
                self.rd,
                self.rs1,
                self.imm
            ),
            Op::Load => write!(f, "load {}, {}({})", self.rd, self.imm, self.rs1),
            Op::Store => write!(f, "store {}, {}({})", self.rs2, self.imm, self.rs1),
            Op::Beq | Op::Bne | Op::Blt | Op::Bge => write!(
                f,
                "{} {}, {}, @{}",
                format!("{:?}", self.op).to_lowercase(),
                self.rs1,
                self.rs2,
                self.imm
            ),
            Op::Jump => write!(f, "jump @{}", self.imm),
            Op::Jal => write!(f, "jal {}, @{}", self.rd, self.imm),
            Op::Jalr => {
                if self.class() == InstClass::Return {
                    write!(f, "ret")
                } else {
                    write!(f, "jalr {}, {}({})", self.rd, self.imm, self.rs1)
                }
            }
            Op::Halt => write!(f, "halt"),
            Op::Nop => write!(f, "nop"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inst(op: Op, rd: Reg, rs1: Reg, rs2: Reg, imm: i64) -> Inst {
        Inst {
            op,
            rd,
            rs1,
            rs2,
            imm,
        }
    }

    #[test]
    fn classes() {
        assert_eq!(
            inst(Op::Add, Reg::R1, Reg::R2, Reg::R3, 0).class(),
            InstClass::IntAlu
        );
        assert_eq!(
            inst(Op::Mul, Reg::R1, Reg::R2, Reg::R3, 0).class(),
            InstClass::IntMul
        );
        assert_eq!(
            inst(Op::Load, Reg::R1, Reg::R2, Reg::R0, 8).class(),
            InstClass::Load
        );
        assert_eq!(
            inst(Op::Beq, Reg::R0, Reg::R1, Reg::R2, 7).class(),
            InstClass::CondBranch
        );
        assert_eq!(
            inst(Op::Jal, Reg::RA, Reg::R0, Reg::R0, 7).class(),
            InstClass::Call
        );
        let ret = inst(Op::Jalr, Reg::R0, Reg::RA, Reg::R0, 0);
        assert_eq!(ret.class(), InstClass::Return);
        let ij = inst(Op::Jalr, Reg::R0, Reg::R5, Reg::R0, 0);
        assert_eq!(ij.class(), InstClass::IndirectJump);
    }

    #[test]
    fn class_predicates() {
        assert!(InstClass::CondBranch.is_control());
        assert!(InstClass::CondBranch.needs_prediction());
        assert!(!InstClass::Jump.needs_prediction());
        assert!(InstClass::Return.needs_prediction());
        assert!(InstClass::Load.is_mem());
        assert!(!InstClass::IntAlu.is_mem());
    }

    #[test]
    fn dest_and_sources() {
        let i = inst(Op::Add, Reg::R1, Reg::R2, Reg::R0, 0);
        assert_eq!(i.dest(), Some(Reg::R1));
        assert_eq!(i.sources().collect::<Vec<_>>(), vec![Reg::R2]);

        let store = inst(Op::Store, Reg::R0, Reg::R2, Reg::R3, 4);
        assert_eq!(store.dest(), None);
        assert_eq!(store.sources().collect::<Vec<_>>(), vec![Reg::R2, Reg::R3]);

        // Writes to r0 are discarded.
        let z = inst(Op::Add, Reg::R0, Reg::R1, Reg::R2, 0);
        assert_eq!(z.dest(), None);
    }

    #[test]
    fn static_targets_and_backward() {
        let b = inst(Op::Bne, Reg::R0, Reg::R1, Reg::R0, 3);
        assert_eq!(b.static_target(), Some(Pc(3)));
        assert!(b.is_backward_branch(Pc(10)));
        assert!(!b.is_backward_branch(Pc(1)));
        assert_eq!(
            inst(Op::Add, Reg::R1, Reg::R2, Reg::R3, 0).static_target(),
            None
        );
    }

    #[test]
    fn display_smoke() {
        assert_eq!(
            inst(Op::Add, Reg::R1, Reg::R2, Reg::R3, 0).to_string(),
            "add r1, r2, r3"
        );
        assert_eq!(
            inst(Op::Load, Reg::R1, Reg::R2, Reg::R0, 8).to_string(),
            "load r1, 8(r2)"
        );
        assert_eq!(
            inst(Op::Jalr, Reg::R0, Reg::RA, Reg::R0, 0).to_string(),
            "ret"
        );
        assert_eq!(Inst::nop().to_string(), "nop");
    }
}
