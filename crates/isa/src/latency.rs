//! Execution latency model.

use crate::InstClass;

/// Execution latencies (in cycles) per instruction class.
///
/// Loads and stores are split into address generation (modelled here) plus a
/// cache access whose latency the memory system of each simulator supplies;
/// [`LatencyModel::execute`] therefore reports only the address-generation
/// component for memory operations.
///
/// ```
/// use ci_isa::{InstClass, LatencyModel};
/// let lat = LatencyModel::default();
/// assert_eq!(lat.execute(InstClass::IntAlu), 1);
/// assert_eq!(lat.execute(InstClass::IntMul), 3);
/// assert_eq!(lat.execute(InstClass::Load), 1); // address generation only
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct LatencyModel {
    /// Single-cycle integer operations (ALU, branches, jumps, halt, nop).
    pub int_alu: u64,
    /// Integer multiply.
    pub int_mul: u64,
    /// Integer divide.
    pub int_div: u64,
    /// Address generation for loads and stores.
    pub addr_gen: u64,
}

impl LatencyModel {
    /// The paper's latencies: 1-cycle ALU/address generation, 3-cycle
    /// multiply, 12-cycle divide.
    #[must_use]
    pub fn new() -> LatencyModel {
        LatencyModel {
            int_alu: 1,
            int_mul: 3,
            int_div: 12,
            addr_gen: 1,
        }
    }

    /// Execution latency of `class`, excluding any cache access for memory
    /// operations (address generation only).
    #[must_use]
    pub fn execute(&self, class: InstClass) -> u64 {
        match class {
            InstClass::IntMul => self.int_mul,
            InstClass::IntDiv => self.int_div,
            InstClass::Load | InstClass::Store => self.addr_gen,
            _ => self.int_alu,
        }
    }
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let l = LatencyModel::default();
        assert_eq!(l.execute(InstClass::IntAlu), 1);
        assert_eq!(l.execute(InstClass::CondBranch), 1);
        assert_eq!(l.execute(InstClass::IntMul), 3);
        assert_eq!(l.execute(InstClass::IntDiv), 12);
        assert_eq!(l.execute(InstClass::Store), 1);
        assert_eq!(l, LatencyModel::new());
    }

    #[test]
    fn custom_latencies_respected() {
        let l = LatencyModel {
            int_mul: 5,
            ..LatencyModel::new()
        };
        assert_eq!(l.execute(InstClass::IntMul), 5);
        assert_eq!(l.execute(InstClass::IntAlu), 1);
    }
}
