//! RISC-style instruction set for the control-independence simulation suite.
//!
//! This crate defines the architectural substrate shared by every simulator in
//! the workspace: registers ([`Reg`]), program counters ([`Pc`]), memory
//! addresses ([`Addr`]), instructions ([`Inst`], [`Op`], [`InstClass`]),
//! assembled [`Program`]s, an [`Asm`] builder for writing programs with
//! symbolic labels, and a configurable [`LatencyModel`].
//!
//! The ISA is deliberately simple — a classic three-operand RISC with 32
//! integer registers, word-addressed memory and absolute branch targets — so
//! that the interesting machinery (branch prediction, post-dominator analysis,
//! selective squashing) lives in the layers above, exactly as in the paper's
//! SimpleScalar-based setup.
//!
//! # Example
//!
//! ```
//! use ci_isa::{Asm, Reg};
//!
//! # fn main() -> Result<(), ci_isa::AsmError> {
//! let mut a = Asm::new();
//! a.li(Reg::R1, 10);          // r1 = 10
//! a.li(Reg::R2, 0);           // r2 = 0 (accumulator)
//! a.label("loop")?;
//! a.add(Reg::R2, Reg::R2, Reg::R1);
//! a.addi(Reg::R1, Reg::R1, -1);
//! a.bne(Reg::R1, Reg::R0, "loop");
//! a.halt();
//! let program = a.assemble()?;
//! assert_eq!(program.len(), 6);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod asm;
mod inst;
mod latency;
mod program;
mod reg;

pub use asm::{Asm, AsmError, Target};
pub use inst::{Inst, InstClass, Op};
pub use latency::LatencyModel;
pub use program::Program;
pub use reg::Reg;

use std::fmt;

/// A program counter: an index into a [`Program`]'s instruction vector.
///
/// One word is one instruction, so `Pc(n)` names the `n`-th instruction and
/// fall-through from `Pc(n)` is `Pc(n + 1)`.
///
/// ```
/// use ci_isa::Pc;
/// let pc = Pc(4);
/// assert_eq!(pc.next(), Pc(5));
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Pc(pub u32);

impl Pc {
    /// The fall-through successor of this program counter.
    #[must_use]
    pub fn next(self) -> Pc {
        Pc(self.0 + 1)
    }

    /// This program counter as a `usize` index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Pc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{}", self.0)
    }
}

impl From<u32> for Pc {
    fn from(v: u32) -> Self {
        Pc(v)
    }
}

/// A data-memory address. Memory is word-addressed: each [`Addr`] names one
/// 64-bit word.
///
/// ```
/// use ci_isa::Addr;
/// let a = Addr(0x100);
/// assert_eq!(a.offset(2), Addr(0x102));
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Addr(pub u64);

impl Addr {
    /// The address `n` words past this one (wrapping).
    #[must_use]
    pub fn offset(self, n: u64) -> Addr {
        Addr(self.0.wrapping_add(n))
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:#x}]", self.0)
    }
}

impl From<u64> for Addr {
    fn from(v: u64) -> Self {
        Addr(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pc_next_and_index() {
        assert_eq!(Pc(0).next(), Pc(1));
        assert_eq!(Pc(41).index(), 41);
        assert_eq!(Pc::from(7u32), Pc(7));
    }

    #[test]
    fn addr_offset_wraps() {
        assert_eq!(Addr(u64::MAX).offset(1), Addr(0));
        assert_eq!(Addr::from(3u64), Addr(3));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Pc(3).to_string(), "@3");
        assert_eq!(Addr(16).to_string(), "[0x10]");
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(Pc(3) < Pc(10));
        assert!(Addr(3) < Addr(10));
    }
}
