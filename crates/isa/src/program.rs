//! Assembled programs.

use crate::{Addr, Inst, Pc};
use std::collections::BTreeMap;
use std::fmt;

/// An assembled program: instructions, an entry point, an initial data-memory
/// image, plus side tables produced by the assembler (labels for diagnostics
/// and the possible targets of each indirect jump).
///
/// The indirect-target table stands in for the paper's "software can aid the
/// hardware" hint channel: the assembler knows the targets of jump-table
/// dispatches and records them so the CFG analysis can build complete
/// control-flow edges.
///
/// Programs are constructed with [`crate::Asm`]; see the crate-level example.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Program {
    insts: Vec<Inst>,
    entry: Pc,
    labels: BTreeMap<String, Pc>,
    indirect_targets: BTreeMap<Pc, Vec<Pc>>,
    data: Vec<(Addr, u64)>,
}

impl Program {
    pub(crate) fn from_parts(
        insts: Vec<Inst>,
        entry: Pc,
        labels: BTreeMap<String, Pc>,
        indirect_targets: BTreeMap<Pc, Vec<Pc>>,
        data: Vec<(Addr, u64)>,
    ) -> Program {
        Program {
            insts,
            entry,
            labels,
            indirect_targets,
            data,
        }
    }

    /// Number of static instructions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether the program contains no instructions.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// The entry-point PC.
    #[must_use]
    pub fn entry(&self) -> Pc {
        self.entry
    }

    /// The instruction at `pc`, or `None` past the end of the program.
    #[must_use]
    pub fn fetch(&self, pc: Pc) -> Option<&Inst> {
        self.insts.get(pc.index())
    }

    /// All instructions in program order.
    #[must_use]
    pub fn insts(&self) -> &[Inst] {
        &self.insts
    }

    /// The PC bound to `label`, if any.
    #[must_use]
    pub fn label(&self, label: &str) -> Option<Pc> {
        self.labels.get(label).copied()
    }

    /// All labels in the program, in name order.
    pub fn labels(&self) -> impl Iterator<Item = (&str, Pc)> {
        self.labels.iter().map(|(n, pc)| (n.as_str(), *pc))
    }

    /// Software-provided possible targets of the indirect jump at `pc`
    /// (empty for returns and for indirect jumps without hints).
    #[must_use]
    pub fn indirect_targets(&self, pc: Pc) -> &[Pc] {
        self.indirect_targets.get(&pc).map_or(&[], Vec::as_slice)
    }

    /// The initial data-memory image as `(address, value)` pairs.
    #[must_use]
    pub fn data(&self) -> &[(Addr, u64)] {
        &self.data
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let by_pc: BTreeMap<Pc, &str> = self
            .labels
            .iter()
            .map(|(n, pc)| (*pc, n.as_str()))
            .collect();
        for (i, inst) in self.insts.iter().enumerate() {
            let pc = Pc(i as u32);
            if let Some(name) = by_pc.get(&pc) {
                writeln!(f, "{name}:")?;
            }
            writeln!(f, "  {pc:>6}  {inst}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Asm, Reg};

    fn tiny() -> Program {
        let mut a = Asm::new();
        a.label("start").unwrap();
        a.li(Reg::R1, 1);
        a.halt();
        a.word(Addr(0x10), 42);
        a.assemble().unwrap()
    }

    #[test]
    fn fetch_and_len() {
        let p = tiny();
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
        assert!(p.fetch(Pc(0)).is_some());
        assert!(p.fetch(Pc(2)).is_none());
        assert_eq!(p.entry(), Pc(0));
    }

    #[test]
    fn labels_and_data() {
        let p = tiny();
        assert_eq!(p.label("start"), Some(Pc(0)));
        assert_eq!(p.label("missing"), None);
        assert_eq!(p.labels().count(), 1);
        assert_eq!(p.data(), &[(Addr(0x10), 42)]);
    }

    #[test]
    fn indirect_targets_default_empty() {
        let p = tiny();
        assert!(p.indirect_targets(Pc(0)).is_empty());
    }

    #[test]
    fn display_includes_labels() {
        let text = tiny().to_string();
        assert!(text.contains("start:"));
        assert!(text.contains("halt"));
    }
}
