//! A small assembler: builds [`Program`]s with symbolic labels.

use crate::{Addr, Inst, Op, Pc, Program, Reg};
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// Errors produced while building or assembling a program.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum AsmError {
    /// The same label was bound twice.
    DuplicateLabel(String),
    /// A referenced label was never bound.
    UndefinedLabel(String),
    /// A register number outside `0..32` was used.
    BadRegister(u8),
    /// `assemble` was called on a program with no instructions.
    EmptyProgram,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::DuplicateLabel(l) => write!(f, "label `{l}` bound more than once"),
            AsmError::UndefinedLabel(l) => write!(f, "label `{l}` referenced but never bound"),
            AsmError::BadRegister(n) => write!(f, "register number {n} out of range"),
            AsmError::EmptyProgram => write!(f, "program contains no instructions"),
        }
    }
}

impl Error for AsmError {}

/// A branch/jump target: either an already resolved absolute [`Pc`] or a
/// symbolic label resolved at [`Asm::assemble`] time.
///
/// Constructed implicitly from `&str` (label) or [`Pc`] arguments to the
/// branch/jump emitters.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Target {
    /// An absolute, already-resolved PC.
    Abs(Pc),
    /// A symbolic label.
    Label(String),
}

impl From<&str> for Target {
    fn from(s: &str) -> Self {
        Target::Label(s.to_owned())
    }
}

impl From<String> for Target {
    fn from(s: String) -> Self {
        Target::Label(s)
    }
}

impl From<&String> for Target {
    fn from(s: &String) -> Self {
        Target::Label(s.clone())
    }
}

impl From<Pc> for Target {
    fn from(pc: Pc) -> Self {
        Target::Abs(pc)
    }
}

#[derive(Clone, Debug)]
struct Pending {
    inst: Inst,
    target: Option<Target>,
}

#[derive(Clone, Debug)]
enum DataWord {
    Value(u64),
    LabelPc(String),
}

/// Builder for [`Program`]s.
///
/// Instruction-emitting methods append one instruction each and return the
/// builder for chaining where that reads well. Labels are bound with
/// [`Asm::label`] and may be referenced before they are bound; everything is
/// resolved by [`Asm::assemble`].
///
/// See the [crate-level example](crate) for typical use.
#[derive(Clone, Debug, Default)]
pub struct Asm {
    insts: Vec<Pending>,
    labels: BTreeMap<String, Pc>,
    indirect_hints: BTreeMap<Pc, Vec<Target>>,
    data: Vec<(Addr, DataWord)>,
    entry: Option<Target>,
}

impl Asm {
    /// Create an empty builder.
    #[must_use]
    pub fn new() -> Asm {
        Asm::default()
    }

    /// The PC the next emitted instruction will occupy.
    #[must_use]
    pub fn here(&self) -> Pc {
        Pc(self.insts.len() as u32)
    }

    /// Bind `name` to the current position.
    ///
    /// # Errors
    /// Returns [`AsmError::DuplicateLabel`] if `name` is already bound.
    pub fn label(&mut self, name: &str) -> Result<Pc, AsmError> {
        let pc = self.here();
        if self.labels.insert(name.to_owned(), pc).is_some() {
            return Err(AsmError::DuplicateLabel(name.to_owned()));
        }
        Ok(pc)
    }

    fn push(&mut self, inst: Inst) -> &mut Self {
        self.insts.push(Pending { inst, target: None });
        self
    }

    fn push_target(&mut self, inst: Inst, target: Target) -> &mut Self {
        self.insts.push(Pending {
            inst,
            target: Some(target),
        });
        self
    }

    fn rrr(&mut self, op: Op, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.push(Inst {
            op,
            rd,
            rs1,
            rs2,
            imm: 0,
        })
    }

    fn rri(&mut self, op: Op, rd: Reg, rs1: Reg, imm: i64) -> &mut Self {
        self.push(Inst {
            op,
            rd,
            rs1,
            rs2: Reg::R0,
            imm,
        })
    }

    /// `rd = rs1 + rs2`
    pub fn add(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.rrr(Op::Add, rd, rs1, rs2)
    }
    /// `rd = rs1 - rs2`
    pub fn sub(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.rrr(Op::Sub, rd, rs1, rs2)
    }
    /// `rd = rs1 * rs2`
    pub fn mul(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.rrr(Op::Mul, rd, rs1, rs2)
    }
    /// `rd = rs1 / rs2` (unsigned; `u64::MAX` on divide-by-zero)
    pub fn div(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.rrr(Op::Div, rd, rs1, rs2)
    }
    /// `rd = rs1 & rs2`
    pub fn and(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.rrr(Op::And, rd, rs1, rs2)
    }
    /// `rd = rs1 | rs2`
    pub fn or(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.rrr(Op::Or, rd, rs1, rs2)
    }
    /// `rd = rs1 ^ rs2`
    pub fn xor(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.rrr(Op::Xor, rd, rs1, rs2)
    }
    /// `rd = rs1 << (rs2 & 63)`
    pub fn sll(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.rrr(Op::Sll, rd, rs1, rs2)
    }
    /// `rd = rs1 >> (rs2 & 63)`
    pub fn srl(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.rrr(Op::Srl, rd, rs1, rs2)
    }
    /// `rd = (rs1 as i64) < (rs2 as i64)`
    pub fn slt(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.rrr(Op::Slt, rd, rs1, rs2)
    }
    /// `rd = rs1 < rs2` (unsigned)
    pub fn sltu(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.rrr(Op::Sltu, rd, rs1, rs2)
    }
    /// `rd = rs1 + imm`
    pub fn addi(&mut self, rd: Reg, rs1: Reg, imm: i64) -> &mut Self {
        self.rri(Op::Addi, rd, rs1, imm)
    }
    /// `rd = rs1 & imm`
    pub fn andi(&mut self, rd: Reg, rs1: Reg, imm: i64) -> &mut Self {
        self.rri(Op::Andi, rd, rs1, imm)
    }
    /// `rd = rs1 | imm`
    pub fn ori(&mut self, rd: Reg, rs1: Reg, imm: i64) -> &mut Self {
        self.rri(Op::Ori, rd, rs1, imm)
    }
    /// `rd = rs1 ^ imm`
    pub fn xori(&mut self, rd: Reg, rs1: Reg, imm: i64) -> &mut Self {
        self.rri(Op::Xori, rd, rs1, imm)
    }
    /// `rd = (rs1 as i64) < imm`
    pub fn slti(&mut self, rd: Reg, rs1: Reg, imm: i64) -> &mut Self {
        self.rri(Op::Slti, rd, rs1, imm)
    }
    /// `rd = rs1 << (imm & 63)`
    pub fn slli(&mut self, rd: Reg, rs1: Reg, imm: i64) -> &mut Self {
        self.rri(Op::Slli, rd, rs1, imm)
    }
    /// `rd = rs1 >> (imm & 63)`
    pub fn srli(&mut self, rd: Reg, rs1: Reg, imm: i64) -> &mut Self {
        self.rri(Op::Srli, rd, rs1, imm)
    }
    /// Pseudo-op: `rd = imm` (an `addi` from `r0`).
    pub fn li(&mut self, rd: Reg, imm: i64) -> &mut Self {
        self.addi(rd, Reg::R0, imm)
    }
    /// Pseudo-op: `rd = rs` (an `addi` of zero).
    pub fn mv(&mut self, rd: Reg, rs: Reg) -> &mut Self {
        self.addi(rd, rs, 0)
    }
    /// `rd = mem[rs1 + imm]`
    pub fn load(&mut self, rd: Reg, rs1: Reg, imm: i64) -> &mut Self {
        self.rri(Op::Load, rd, rs1, imm)
    }
    /// `mem[rs1 + imm] = src`
    pub fn store(&mut self, src: Reg, rs1: Reg, imm: i64) -> &mut Self {
        self.push(Inst {
            op: Op::Store,
            rd: Reg::R0,
            rs1,
            rs2: src,
            imm,
        })
    }

    fn branch(&mut self, op: Op, rs1: Reg, rs2: Reg, target: impl Into<Target>) -> &mut Self {
        self.push_target(
            Inst {
                op,
                rd: Reg::R0,
                rs1,
                rs2,
                imm: 0,
            },
            target.into(),
        )
    }

    /// Branch to `target` if `rs1 == rs2`.
    pub fn beq(&mut self, rs1: Reg, rs2: Reg, target: impl Into<Target>) -> &mut Self {
        self.branch(Op::Beq, rs1, rs2, target)
    }
    /// Branch to `target` if `rs1 != rs2`.
    pub fn bne(&mut self, rs1: Reg, rs2: Reg, target: impl Into<Target>) -> &mut Self {
        self.branch(Op::Bne, rs1, rs2, target)
    }
    /// Branch to `target` if `(rs1 as i64) < (rs2 as i64)`.
    pub fn blt(&mut self, rs1: Reg, rs2: Reg, target: impl Into<Target>) -> &mut Self {
        self.branch(Op::Blt, rs1, rs2, target)
    }
    /// Branch to `target` if `(rs1 as i64) >= (rs2 as i64)`.
    pub fn bge(&mut self, rs1: Reg, rs2: Reg, target: impl Into<Target>) -> &mut Self {
        self.branch(Op::Bge, rs1, rs2, target)
    }

    /// Unconditional jump to `target`.
    pub fn jump(&mut self, target: impl Into<Target>) -> &mut Self {
        self.push_target(
            Inst {
                op: Op::Jump,
                rd: Reg::R0,
                rs1: Reg::R0,
                rs2: Reg::R0,
                imm: 0,
            },
            target.into(),
        )
    }

    /// Call: `ra = pc + 1`, jump to `target`.
    pub fn call(&mut self, target: impl Into<Target>) -> &mut Self {
        self.push_target(
            Inst {
                op: Op::Jal,
                rd: Reg::RA,
                rs1: Reg::R0,
                rs2: Reg::R0,
                imm: 0,
            },
            target.into(),
        )
    }

    /// Return: `jalr r0, ra, 0`.
    pub fn ret(&mut self) -> &mut Self {
        self.push(Inst {
            op: Op::Jalr,
            rd: Reg::R0,
            rs1: Reg::RA,
            rs2: Reg::R0,
            imm: 0,
        })
    }

    /// Indirect jump to `rs1 + imm`, writing the return address to `rd`.
    pub fn jalr(&mut self, rd: Reg, rs1: Reg, imm: i64) -> &mut Self {
        self.push(Inst {
            op: Op::Jalr,
            rd,
            rs1,
            rs2: Reg::R0,
            imm,
        })
    }

    /// Indirect jump with a software hint listing its possible targets (the
    /// compiler-assisted channel used for jump-table dispatch).
    pub fn jalr_hinted(&mut self, rd: Reg, rs1: Reg, imm: i64, targets: &[&str]) -> &mut Self {
        let pc = self.here();
        self.indirect_hints
            .insert(pc, targets.iter().map(|t| Target::from(*t)).collect());
        self.jalr(rd, rs1, imm)
    }

    /// Stop the machine.
    pub fn halt(&mut self) -> &mut Self {
        self.push(Inst {
            op: Op::Halt,
            rd: Reg::R0,
            rs1: Reg::R0,
            rs2: Reg::R0,
            imm: 0,
        })
    }

    /// No operation.
    pub fn nop(&mut self) -> &mut Self {
        self.push(Inst::nop())
    }

    /// Place `value` at data address `addr` in the initial memory image.
    pub fn word(&mut self, addr: Addr, value: u64) -> &mut Self {
        self.data.push((addr, DataWord::Value(value)));
        self
    }

    /// Place consecutive `values` starting at `addr`.
    pub fn words(&mut self, addr: Addr, values: &[u64]) -> &mut Self {
        for (i, v) in values.iter().enumerate() {
            self.word(addr.offset(i as u64), *v);
        }
        self
    }

    /// Place the PC of `label` (as a `u64`) at `addr` — used to build jump
    /// tables in data memory.
    pub fn word_label(&mut self, addr: Addr, label: &str) -> &mut Self {
        self.data.push((addr, DataWord::LabelPc(label.to_owned())));
        self
    }

    /// Set the entry point to `label` (default: `Pc(0)`).
    pub fn entry(&mut self, label: &str) -> &mut Self {
        self.entry = Some(Target::from(label));
        self
    }

    fn resolve(&self, target: &Target) -> Result<Pc, AsmError> {
        match target {
            Target::Abs(pc) => Ok(*pc),
            Target::Label(name) => self
                .labels
                .get(name)
                .copied()
                .ok_or_else(|| AsmError::UndefinedLabel(name.clone())),
        }
    }

    /// Resolve all labels and produce the final [`Program`].
    ///
    /// # Errors
    /// Returns [`AsmError::UndefinedLabel`] for dangling references and
    /// [`AsmError::EmptyProgram`] if no instructions were emitted.
    pub fn assemble(&self) -> Result<Program, AsmError> {
        if self.insts.is_empty() {
            return Err(AsmError::EmptyProgram);
        }
        let mut insts = Vec::with_capacity(self.insts.len());
        for p in &self.insts {
            let mut inst = p.inst;
            if let Some(t) = &p.target {
                inst.imm = i64::from(self.resolve(t)?.0);
            }
            insts.push(inst);
        }
        let mut hints = BTreeMap::new();
        for (pc, targets) in &self.indirect_hints {
            let resolved: Result<Vec<Pc>, AsmError> =
                targets.iter().map(|t| self.resolve(t)).collect();
            hints.insert(*pc, resolved?);
        }
        let mut data = Vec::with_capacity(self.data.len());
        for (addr, w) in &self.data {
            let v = match w {
                DataWord::Value(v) => *v,
                DataWord::LabelPc(l) => u64::from(self.resolve(&Target::Label(l.clone()))?.0),
            };
            data.push((*addr, v));
        }
        let entry = match &self.entry {
            Some(t) => self.resolve(t)?,
            None => Pc(0),
        };
        Ok(Program::from_parts(
            insts,
            entry,
            self.labels.clone(),
            hints,
            data,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::InstClass;

    #[test]
    fn forward_and_backward_labels_resolve() {
        let mut a = Asm::new();
        a.beq(Reg::R1, Reg::R0, "end"); // forward reference
        a.label("top").unwrap();
        a.addi(Reg::R1, Reg::R1, -1);
        a.bne(Reg::R1, Reg::R0, "top"); // backward reference
        a.label("end").unwrap();
        a.halt();
        let p = a.assemble().unwrap();
        assert_eq!(p.fetch(Pc(0)).unwrap().static_target(), Some(Pc(3)));
        assert_eq!(p.fetch(Pc(2)).unwrap().static_target(), Some(Pc(1)));
    }

    #[test]
    fn duplicate_label_rejected() {
        let mut a = Asm::new();
        a.label("x").unwrap();
        assert_eq!(a.label("x"), Err(AsmError::DuplicateLabel("x".into())));
    }

    #[test]
    fn undefined_label_rejected() {
        let mut a = Asm::new();
        a.jump("nowhere");
        assert_eq!(
            a.assemble(),
            Err(AsmError::UndefinedLabel("nowhere".into()))
        );
    }

    #[test]
    fn empty_program_rejected() {
        assert_eq!(Asm::new().assemble(), Err(AsmError::EmptyProgram));
    }

    #[test]
    fn entry_point() {
        let mut a = Asm::new();
        a.nop();
        a.label("main").unwrap();
        a.halt();
        a.entry("main");
        let p = a.assemble().unwrap();
        assert_eq!(p.entry(), Pc(1));
    }

    #[test]
    fn jump_table_hints_and_data_labels() {
        let mut a = Asm::new();
        a.load(Reg::R1, Reg::R0, 0x100);
        a.jalr_hinted(Reg::R0, Reg::R1, 0, &["case_a", "case_b"]);
        a.label("case_a").unwrap();
        a.halt();
        a.label("case_b").unwrap();
        a.halt();
        a.word_label(Addr(0x100), "case_b");
        let p = a.assemble().unwrap();
        assert_eq!(p.indirect_targets(Pc(1)), &[Pc(2), Pc(3)]);
        assert_eq!(p.data(), &[(Addr(0x100), 3)]);
    }

    #[test]
    fn pseudo_ops_expand() {
        let mut a = Asm::new();
        a.li(Reg::R1, 7).mv(Reg::R2, Reg::R1).ret();
        let p = a.assemble().unwrap();
        assert_eq!(p.fetch(Pc(0)).unwrap().op, Op::Addi);
        assert_eq!(
            p.fetch(Pc(1)).unwrap().sources().collect::<Vec<_>>(),
            vec![Reg::R1]
        );
        assert_eq!(p.fetch(Pc(2)).unwrap().class(), InstClass::Return);
    }

    #[test]
    fn abs_pc_targets_work() {
        let mut a = Asm::new();
        a.jump(Pc(0));
        let p = a.assemble().unwrap();
        assert_eq!(p.fetch(Pc(0)).unwrap().static_target(), Some(Pc(0)));
    }

    #[test]
    fn words_places_consecutively() {
        let mut a = Asm::new();
        a.nop();
        a.words(Addr(8), &[1, 2, 3]);
        let p = a.assemble().unwrap();
        assert_eq!(p.data(), &[(Addr(8), 1), (Addr(9), 2), (Addr(10), 3)]);
    }
}
