//! Architectural integer registers.

use std::fmt;

/// One of the 32 architectural integer registers.
///
/// [`Reg::R0`] is hard-wired to zero: writes to it are discarded and reads
/// always return `0`. By convention [`Reg::RA`] (`r31`) is the link register
/// written by calls and [`Reg::SP`] (`r30`) is the stack pointer, but nothing
/// in the ISA enforces the convention.
///
/// ```
/// use ci_isa::Reg;
/// assert_eq!(Reg::R5.number(), 5);
/// assert_eq!(Reg::try_from(5u8)?, Reg::R5);
/// # Ok::<(), ci_isa::AsmError>(())
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(u8);

impl Reg {
    /// Number of architectural registers.
    pub const COUNT: usize = 32;

    /// The hard-wired zero register.
    pub const R0: Reg = Reg(0);
    /// General-purpose register `r1`.
    pub const R1: Reg = Reg(1);
    /// General-purpose register `r2`.
    pub const R2: Reg = Reg(2);
    /// General-purpose register `r3`.
    pub const R3: Reg = Reg(3);
    /// General-purpose register `r4`.
    pub const R4: Reg = Reg(4);
    /// General-purpose register `r5`.
    pub const R5: Reg = Reg(5);
    /// General-purpose register `r6`.
    pub const R6: Reg = Reg(6);
    /// General-purpose register `r7`.
    pub const R7: Reg = Reg(7);
    /// General-purpose register `r8`.
    pub const R8: Reg = Reg(8);
    /// General-purpose register `r9`.
    pub const R9: Reg = Reg(9);
    /// General-purpose register `r10`.
    pub const R10: Reg = Reg(10);
    /// General-purpose register `r11`.
    pub const R11: Reg = Reg(11);
    /// General-purpose register `r12`.
    pub const R12: Reg = Reg(12);
    /// General-purpose register `r13`.
    pub const R13: Reg = Reg(13);
    /// General-purpose register `r14`.
    pub const R14: Reg = Reg(14);
    /// General-purpose register `r15`.
    pub const R15: Reg = Reg(15);
    /// General-purpose register `r16`.
    pub const R16: Reg = Reg(16);
    /// General-purpose register `r17`.
    pub const R17: Reg = Reg(17);
    /// General-purpose register `r18`.
    pub const R18: Reg = Reg(18);
    /// General-purpose register `r19`.
    pub const R19: Reg = Reg(19);
    /// General-purpose register `r20`.
    pub const R20: Reg = Reg(20);
    /// General-purpose register `r21`.
    pub const R21: Reg = Reg(21);
    /// General-purpose register `r22`.
    pub const R22: Reg = Reg(22);
    /// General-purpose register `r23`.
    pub const R23: Reg = Reg(23);
    /// General-purpose register `r24`.
    pub const R24: Reg = Reg(24);
    /// General-purpose register `r25`.
    pub const R25: Reg = Reg(25);
    /// General-purpose register `r26`.
    pub const R26: Reg = Reg(26);
    /// General-purpose register `r27`.
    pub const R27: Reg = Reg(27);
    /// General-purpose register `r28`.
    pub const R28: Reg = Reg(28);
    /// General-purpose register `r29`.
    pub const R29: Reg = Reg(29);
    /// Conventional stack pointer (`r30`).
    pub const SP: Reg = Reg(30);
    /// Conventional link register (`r31`), written by `jal`.
    pub const RA: Reg = Reg(31);

    /// The register's number, `0..=31`.
    #[must_use]
    pub fn number(self) -> u8 {
        self.0
    }

    /// Whether this is the hard-wired zero register.
    #[must_use]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Iterate over every architectural register, `r0` through `r31`.
    pub fn all() -> impl Iterator<Item = Reg> {
        (0..Self::COUNT as u8).map(Reg)
    }
}

impl TryFrom<u8> for Reg {
    type Error = crate::AsmError;

    fn try_from(n: u8) -> Result<Self, Self::Error> {
        if (n as usize) < Self::COUNT {
            Ok(Reg(n))
        } else {
            Err(crate::AsmError::BadRegister(n))
        }
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Reg::RA => write!(f, "ra"),
            Reg::SP => write!(f, "sp"),
            r => write!(f, "r{}", r.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numbers_round_trip() {
        for r in Reg::all() {
            assert_eq!(Reg::try_from(r.number()).unwrap(), r);
        }
        assert_eq!(Reg::all().count(), Reg::COUNT);
    }

    #[test]
    fn out_of_range_rejected() {
        assert!(Reg::try_from(32).is_err());
        assert!(Reg::try_from(200).is_err());
    }

    #[test]
    fn zero_register() {
        assert!(Reg::R0.is_zero());
        assert!(!Reg::R1.is_zero());
    }

    #[test]
    fn display_names() {
        assert_eq!(Reg::R7.to_string(), "r7");
        assert_eq!(Reg::RA.to_string(), "ra");
        assert_eq!(Reg::SP.to_string(), "sp");
    }
}
