//! Vendored, dependency-free shim implementing the subset of the `proptest`
//! API this workspace uses.
//!
//! The build environment has no network access, so the real `proptest` crate
//! cannot be fetched; this path dependency keeps the property-test sources
//! unchanged. Differences from the real crate:
//!
//! - cases are generated from a deterministic per-test RNG (seeded from the
//!   test's module path and name), so runs are reproducible;
//! - there is no shrinking: a failing case reports the generated inputs and
//!   panics;
//! - only the strategies the workspace uses are provided: integer ranges,
//!   [`strategy::Just`], `prop_map`, `prop_oneof!`, tuples, `any` for
//!   primitive types and [`collection::vec`].

#![forbid(unsafe_code)]

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;

    /// A source of random values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draw one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Clone, Copy, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Output of [`Strategy::prop_map`].
    #[derive(Clone, Copy, Debug)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Uniform choice between several strategies of one type (the output of
    /// `prop_oneof!`).
    #[derive(Clone, Debug)]
    pub struct OneOf<S>(pub Vec<S>);

    impl<S: Strategy> Strategy for OneOf<S> {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> S::Value {
            assert!(!self.0.is_empty(), "prop_oneof! needs at least one arm");
            let i = rng.below(self.0.len() as u64) as usize;
            self.0[i].sample(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = self.end.wrapping_sub(self.start) as u64;
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = hi.wrapping_sub(lo) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add(rng.below(span + 1) as $t)
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($(($($n:ident $i:tt),+))*) => {$(
            impl<$($n: Strategy),+> Strategy for ($($n,)+) {
                type Value = ($($n::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$i.sample(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A 0)
        (A 0, B 1)
        (A 0, B 1, C 2)
        (A 0, B 1, C 2, D 3)
        (A 0, B 1, C 2, D 3, E 4)
    }

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Draw an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy yielding arbitrary values of `T` (the output of [`any`]).
    #[derive(Clone, Copy, Debug, Default)]
    pub struct Any<T>(core::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The `any::<T>()` strategy of the real crate.
    #[must_use]
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(core::marker::PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Acceptable length specifications for [`vec`].
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty vec length range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy producing vectors of values from an element strategy.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        elem: S,
        len: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.hi_inclusive - self.len.lo + 1) as u64;
            let n = self.len.lo + rng.below(span) as usize;
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }

    /// A vector whose length is drawn from `len` and whose elements are
    /// drawn from `elem`.
    pub fn vec<S: Strategy>(elem: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            len: len.into(),
        }
    }
}

pub mod test_runner {
    //! Deterministic case generation.

    /// Configuration accepted by `proptest! { #![proptest_config(..)] .. }`.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of cases to generate per test.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(256);
            ProptestConfig { cases }
        }
    }

    /// SplitMix64 generator; deterministic per test.
    #[derive(Clone, Debug)]
    pub struct TestRng(u64);

    impl TestRng {
        /// Seed from a test's fully qualified name (stable across runs).
        #[must_use]
        pub fn deterministic(name: &str) -> TestRng {
            let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng(h)
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `0..n` (`n > 0`).
        pub fn below(&mut self, n: u64) -> u64 {
            assert!(n > 0);
            self.next_u64() % n
        }
    }
}

pub mod prelude {
    //! The glob-import surface (`use proptest::prelude::*`).

    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Module alias matching the real prelude's `prop` re-export
    /// (`prop::collection::vec(..)`).
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Assert a condition inside a property; reports the generated inputs on
/// failure.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Uniform choice among strategies (all arms must share one strategy type in
/// this shim).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf(vec![$($strat),+])
    };
}

/// Define property tests: each `fn name(arg in strategy, ..) { body }` runs
/// `cases` times over deterministically generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!($config; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(
            <$crate::test_runner::ProptestConfig as ::core::default::Default>::default();
            $($rest)*
        );
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_items {
    ($config:expr;) => {};
    ($config:expr;
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            // The shim's `ProptestConfig` has fewer fields than the real
            // crate's, which can make `..Default::default()` at call sites
            // redundant here even though it is idiomatic upstream.
            #[allow(clippy::needless_update)]
            let config = $config;
            let mut rng = $crate::test_runner::TestRng::deterministic(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for __case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                let __inputs = format!(
                    concat!($(stringify!($arg), " = {:?}; "),+),
                    $(&$arg),+
                );
                let __outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(move || $body),
                );
                if let Err(e) = __outcome {
                    eprintln!(
                        "proptest case {}/{} of `{}` failed with inputs: {}",
                        __case + 1,
                        config.cases,
                        stringify!($name),
                        __inputs
                    );
                    ::std::panic::resume_unwind(e);
                }
            }
        }
        $crate::__proptest_items!($config; $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64 })]

        #[test]
        fn ranges_respect_bounds(a in 3u32..17, b in -5i64..=5, c in 0usize..1) {
            prop_assert!((3..17).contains(&a));
            prop_assert!((-5..=5).contains(&b));
            prop_assert_eq!(c, 0);
        }

        #[test]
        fn combinators_compose(
            v in prop::collection::vec((0u64..10, any::<bool>()), 1..8),
            j in prop_oneof![Just(1u8), Just(2u8)],
            m in (0u8..4).prop_map(|x| u32::from(x) * 100),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 8);
            prop_assert!(v.iter().all(|(n, _)| *n < 10));
            prop_assert!(j == 1 || j == 2);
            prop_assert!(m % 100 == 0 && m <= 300);
        }
    }

    #[test]
    fn rng_is_deterministic() {
        let mut a = crate::test_runner::TestRng::deterministic("x");
        let mut b = crate::test_runner::TestRng::deterministic("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
