//! Property tests for the corpus mutation engine.
//!
//! The fuzzer's value rests on three guarantees: every mutant stays inside
//! the generator's safety envelope (well-formed: bounded nesting, bounded
//! trip counts, compute-register discipline, no recursion), mutation is a
//! pure function of `(program, seed)` so campaigns replay exactly, and
//! mutants still *terminate* — the emitted program runs to completion on
//! the functional emulator rather than spinning forever.

use ci_difftest::{is_well_formed, mutate};
use ci_emu::run_trace;
use ci_workloads::random_structured;
use proptest::prelude::*;
use proptest::test_runner::ProptestConfig;

proptest! {
    #[test]
    fn mutants_stay_well_formed(
        pseed in any::<u64>(), hint in 8usize..160, mseed in any::<u64>()
    ) {
        let base = random_structured(pseed, hint);
        prop_assert!(is_well_formed(&base), "generator output must be well-formed");
        let (mutant, kind) = mutate(&base, mseed);
        prop_assert!(
            is_well_formed(&mutant),
            "mutation {} broke well-formedness", kind.name()
        );
    }

    #[test]
    fn mutation_is_deterministic(
        pseed in any::<u64>(), hint in 8usize..120, mseed in any::<u64>()
    ) {
        let base = random_structured(pseed, hint);
        let (a, ka) = mutate(&base, mseed);
        let (b, kb) = mutate(&base, mseed);
        prop_assert_eq!(ka.name(), kb.name());
        prop_assert_eq!(a, b);
    }

    #[test]
    fn mutants_change_the_program(
        pseed in any::<u64>(), hint in 8usize..120, mseed in any::<u64>()
    ) {
        let base = random_structured(pseed, hint);
        let (mutant, _) = mutate(&base, mseed);
        prop_assert_ne!(mutant, base);
    }
}

proptest! {
    // Emulation per case makes these pricier; fewer cases suffice.
    #![proptest_config(ProptestConfig { cases: 48 })]

    #[test]
    fn mutation_chains_terminate(
        pseed in any::<u64>(), hint in 8usize..80, mseed in any::<u64>()
    ) {
        let mut program = random_structured(pseed, hint);
        for round in 0..3u64 {
            let (next, _) = mutate(&program, mseed.wrapping_add(round));
            program = next;
        }
        prop_assert!(is_well_formed(&program));
        let trace = run_trace(&program.emit(), 5_000_000)
            .expect("well-formed mutants must emulate without faulting");
        prop_assert!(trace.completed(), "mutant did not halt within 5M instructions");
    }
}
