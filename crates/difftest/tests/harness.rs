//! End-to-end tests for the differential fuzzing harness: clean campaigns,
//! worker-count independence, forced-failure shrinking, and artifact
//! round-trips.

use ci_difftest::{
    check_program, run_fuzz, run_locked, shrink, silence_panics, trial_seed, Artifact, FuzzOptions,
    ShrinkStats, TrialSpec,
};
use ci_workloads::random_structured;

#[test]
fn fuzz_campaign_seed1_is_clean() {
    // A slice of the acceptance campaign (`fuzz --iters 200 --seed 1`): every
    // trial must pass every lockstep and dominance check.
    let summary = run_fuzz(&FuzzOptions {
        seed: 1,
        iters: Some(40),
        workers: 2,
        ..FuzzOptions::default()
    });
    assert_eq!(summary.trials, 40);
    assert!(
        summary.clean(),
        "trials failed: {:?}",
        summary
            .artifacts
            .iter()
            .map(|a| a.trial_seed)
            .collect::<Vec<_>>()
    );
}

#[test]
fn campaigns_are_worker_count_independent() {
    // Trial i always derives from trial_seed(seed, i), so the set of
    // explored trials — and therefore the findings — cannot depend on the
    // worker pool's size or scheduling.
    let run = |workers| {
        run_fuzz(&FuzzOptions {
            seed: 77,
            iters: Some(12),
            workers,
            ..FuzzOptions::default()
        })
    };
    let solo = run(1);
    let pool = run(4);
    assert_eq!(solo.trials, pool.trials);
    assert_eq!(solo.failed, pool.failed);
    let seeds =
        |s: &ci_difftest::FuzzSummary| s.artifacts.iter().map(|a| a.trial_seed).collect::<Vec<_>>();
    assert_eq!(seeds(&solo), seeds(&pool));
    // And the per-trial seeds themselves are pure functions of (seed, i).
    for i in 0..12 {
        assert_eq!(trial_seed(77, i), trial_seed(77, i));
    }
}

#[test]
fn coverage_campaigns_are_worker_count_independent() {
    // Coverage-guided campaigns are stateful (later rounds mutate earlier
    // discoveries), so worker independence is a stronger claim than for
    // pure-random fuzzing: tasks derive from (campaign seed, global index,
    // corpus snapshot) and merge at round barriers in index order, making
    // the whole trajectory a pure function of the options.
    let run = |workers| {
        ci_difftest::run_campaign(&FuzzOptions {
            seed: 0xC07E,
            iters: Some(18),
            workers,
            mode: ci_difftest::FuzzMode::Coverage,
            round_size: 6,
            ..FuzzOptions::default()
        })
        .expect("in-memory campaign cannot fail")
    };
    let solo = run(1);
    let pool = run(4);
    assert_eq!(solo.trials, pool.trials);
    assert_eq!(solo.failed, pool.failed);
    assert_eq!(solo.edges, pool.edges);
    assert_eq!(solo.mutated, pool.mutated);
    assert_eq!(solo.rejected, pool.rejected);
    assert_eq!(solo.new_entries, pool.new_entries);
}

#[test]
fn corrupted_oracle_shrinks_to_a_small_repro() {
    // Feed the shrinker a failure manufactured with the corrupt_oracle_entry
    // test hook: the divergence fires on the first retirement, so the
    // minimal reproducer must collapse to a tiny fraction of the original.
    silence_panics();
    let spec = TrialSpec::generate(0xFEED_FACE);
    let original = random_structured(spec.program_seed, spec.size_hint);
    let (_, ci_config) = spec.detailed_variants()[1];
    let fails = |candidate: &ci_workloads::StructuredProgram| {
        let p = candidate.emit();
        !p.is_empty()
            && run_locked(&p, ci_config, spec.max_insts, Some(0))
                .panic
                .is_some()
    };
    assert!(fails(&original), "the corrupt hook must trip the checker");
    let (min, stats): (_, ShrinkStats) = shrink(&original, 2000, fails);
    assert!(fails(&min), "shrinking must preserve the failure");
    assert!(
        stats.final_nodes * 4 <= stats.original_nodes,
        "repro too large: {} of {} nodes",
        stats.final_nodes,
        stats.original_nodes
    );
    assert!(
        min.emit().len() * 4 <= original.emit().len(),
        "emitted repro too large: {} of {} instructions",
        min.emit().len(),
        original.emit().len()
    );
}

#[test]
fn artifacts_round_trip_and_replay() {
    // A rendered artifact is self-contained: parse() recovers the program
    // and spec coordinates, and replay() reproduces the recorded verdict.
    let ts = trial_seed(1, 3);
    let spec = TrialSpec::generate(ts);
    let program = random_structured(spec.program_seed, spec.size_hint);
    let (_, failures) = check_program(&program.emit(), &spec);
    let art = Artifact {
        trial_seed: ts,
        program,
        shrink: ShrinkStats::default(),
        failures,
    };
    let parsed = Artifact::parse(&art.render()).expect("rendered artifacts parse back");
    assert_eq!(parsed.trial_seed, art.trial_seed);
    assert_eq!(parsed.program.emit(), art.program.emit());
    let replayed = ci_difftest::replay(&parsed);
    assert_eq!(replayed.failures.len(), art.failures.len());
}

#[test]
fn extreme_trial_seeds_round_trip_through_artifacts() {
    // u64 seeds above 2^53 cannot survive a JSON float; the artifact must
    // carry them losslessly.
    for ts in [u64::MAX, 0xd9fb_da74_a9f7_ddb4, 1] {
        let art = Artifact {
            trial_seed: ts,
            program: random_structured(5, 30),
            shrink: ShrinkStats::default(),
            failures: Vec::new(),
        };
        let parsed = Artifact::parse(&art.render()).expect("parse");
        assert_eq!(parsed.trial_seed, ts);
    }
}
