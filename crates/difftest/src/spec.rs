//! Trial specification: the randomized coordinates of one differential test.

use ci_core::{
    CacheModel, CompletionModel, PipelineConfig, Preemption, ReconStrategy, RedispatchMode,
    RepredictMode, SquashMode,
};
use ci_workloads::SplitMix64;

/// Everything needed to reproduce one fuzz trial: program coordinates plus
/// the shared pipeline configuration its detailed models run under.
///
/// A spec is a pure function of its trial seed ([`TrialSpec::generate`]), so
/// `(fuzz seed, trial index)` fully determines the trial regardless of
/// worker count or scheduling.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TrialSpec {
    /// Seed for [`ci_workloads::random_structured`].
    pub program_seed: u64,
    /// Size hint for the program generator.
    pub size_hint: usize,
    /// Shared configuration; the trial derives the BASE variant by setting
    /// [`SquashMode::Full`] and the CI-I variant by
    /// [`RedispatchMode::Instant`].
    pub config: PipelineConfig,
    /// Window size for the six idealized models (detailed models use
    /// `config.window`).
    pub ideal_window: usize,
    /// Architectural trace bound.
    pub max_insts: u64,
}

/// All reconvergence strategies the simulator supports: software
/// post-dominators plus every hardware heuristic combination (including the
/// degenerate all-off detector, which must still verify — it just never
/// reconverges).
pub(crate) const RECON_STRATEGIES: [ReconStrategy; 9] = {
    let mut out = [ReconStrategy {
        postdominator: true,
        returns: false,
        loops: false,
        ltb: false,
    }; 9];
    let mut i = 0;
    while i < 8 {
        out[i + 1] = ReconStrategy {
            postdominator: false,
            returns: i & 1 != 0,
            loops: i & 2 != 0,
            ltb: i & 4 != 0,
        };
        i += 1;
    }
    out
};

impl TrialSpec {
    /// Derive the spec for one trial from its seed.
    #[must_use]
    pub fn generate(trial_seed: u64) -> TrialSpec {
        let mut rng = SplitMix64::new(trial_seed);
        let program_seed = rng.next_u64();
        let size_hint = 8 + rng.below(192) as usize;

        let window = [17, 24, 32, 64, 128, 256][rng.below(6) as usize];
        let width = [4, 8, 16][rng.below(3) as usize];
        let segment = [1, 1, 4, 16][rng.below(4) as usize];
        let recon = RECON_STRATEGIES[rng.below(RECON_STRATEGIES.len() as u64) as usize];
        let preemption = if rng.chance(30) {
            Preemption::Optimal
        } else {
            Preemption::Simple
        };
        let completion = [
            CompletionModel::SpecC,
            CompletionModel::SpecC,
            CompletionModel::NonSpec,
            CompletionModel::SpecD,
            CompletionModel::Spec,
        ][rng.below(5) as usize];
        let repredict = [
            RepredictMode::Heuristic,
            RepredictMode::Heuristic,
            RepredictMode::None,
            RepredictMode::Oracle,
        ][rng.below(4) as usize];
        let cache = match rng.below(4) {
            0 => CacheModel::Ideal {
                latency: 1 + rng.below(3),
            },
            1 => CacheModel::paper_realistic(),
            2 => CacheModel::Realistic {
                words: 1024,
                ways: 2,
                line_words: 4,
                hit: 1 + rng.below(2),
                miss: 6 + rng.below(12),
            },
            _ => CacheModel::Realistic {
                words: 512,
                ways: 1,
                line_words: 4,
                hit: 1,
                miss: 8,
            },
        };
        let predictor_bits = 8 + rng.below(7) as u32;
        let hide_false_mispredictions = rng.chance(15);
        let oracle_ghr = rng.chance(15);

        let config = PipelineConfig {
            width,
            segment,
            recon,
            preemption,
            completion,
            repredict,
            cache,
            predictor_bits,
            hide_false_mispredictions,
            oracle_ghr,
            ..PipelineConfig::ci(window)
        };

        TrialSpec {
            program_seed,
            size_hint,
            config,
            ideal_window: [24, 64, 128, 256][rng.below(4) as usize],
            max_insts: 25_000,
        }
    }

    /// The three detailed-pipeline variants this spec exercises, with the
    /// paper's labels.
    #[must_use]
    pub fn detailed_variants(&self) -> [(&'static str, PipelineConfig); 3] {
        [
            (
                "BASE",
                PipelineConfig {
                    squash: SquashMode::Full,
                    redispatch: RedispatchMode::Pipelined,
                    ..self.config
                },
            ),
            (
                "CI",
                PipelineConfig {
                    squash: SquashMode::ControlIndependence,
                    redispatch: RedispatchMode::Pipelined,
                    ..self.config
                },
            ),
            (
                "CI-I",
                PipelineConfig {
                    squash: SquashMode::ControlIndependence,
                    redispatch: RedispatchMode::Instant,
                    ..self.config
                },
            ),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_are_deterministic_and_seed_sensitive() {
        assert_eq!(TrialSpec::generate(7), TrialSpec::generate(7));
        assert_ne!(TrialSpec::generate(7), TrialSpec::generate(8));
    }

    #[test]
    fn recon_table_covers_software_and_all_hardware_combos() {
        assert!(RECON_STRATEGIES[0].postdominator);
        let mut seen = std::collections::HashSet::new();
        for s in &RECON_STRATEGIES[1..] {
            assert!(!s.postdominator);
            seen.insert((s.returns, s.loops, s.ltb));
        }
        assert_eq!(seen.len(), 8);
    }

    #[test]
    fn variants_share_everything_but_recovery() {
        let s = TrialSpec::generate(42);
        let [(_, b), (_, c), (_, i)] = s.detailed_variants();
        assert_eq!(b.squash, SquashMode::Full);
        assert_eq!(c.squash, SquashMode::ControlIndependence);
        assert_eq!(i.redispatch, RedispatchMode::Instant);
        assert_eq!(b.window, c.window);
        assert_eq!(c.cache, i.cache);
        assert!(b.check && c.check && i.check);
    }

    #[test]
    fn sampled_cache_geometries_are_constructible() {
        for seed in 0..200 {
            let s = TrialSpec::generate(seed);
            let _ = ci_core::DataCache::new(s.config.cache);
        }
    }
}
