//! The persistent, checksummed seed corpus.
//!
//! Every coverage-novel program the fuzzer finds becomes a corpus entry: a
//! self-contained `corpus_entry/v1` JSON file holding the statement tree,
//! the trial seed whose configuration it ran under, the coverage bits it
//! contributed at discovery, and an FNV-1a checksum over the payload. The
//! corpus directory is the campaign's durable state — future campaigns load
//! it, seed the coverage map from the stored bits, and mutate the stored
//! programs instead of starting from scratch.
//!
//! The on-disk handling follows the runner cache's trust model
//! ([`ci_runner::persist::quarantine_cache_file`]): a file that fails to
//! parse or whose checksum does not match its payload is *quarantined* —
//! moved under `<dir>/quarantine/` with a reason header — never silently
//! dropped or, worse, trusted. Entries are deduplicated by coverage
//! signature digest, so re-adding an already-known behaviour is a no-op.

use crate::artifact::{program_from_json, program_to_json};
use ci_obs::json::{self, JsonValue};
use ci_obs::CoverageSignature;
use ci_runner::fnv1a;
use ci_runner::persist::quarantine_cache_file;
use ci_workloads::StructuredProgram;
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

/// Format tag stamped into every entry file.
pub const ENTRY_FORMAT: &str = "corpus_entry/v1";

/// How an entry got into the corpus.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SeedOrigin {
    /// Drawn fresh from the spec's program generator.
    Generated,
    /// Produced by mutating another corpus entry.
    Mutated,
    /// Checked-in regression reproducer (never evicted, always replayed).
    Regression,
}

impl SeedOrigin {
    /// Stable lowercase name (file field).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            SeedOrigin::Generated => "generated",
            SeedOrigin::Mutated => "mutated",
            SeedOrigin::Regression => "regression",
        }
    }

    /// Parse a [`SeedOrigin::name`] back.
    #[must_use]
    pub fn from_name(s: &str) -> Option<SeedOrigin> {
        [
            SeedOrigin::Generated,
            SeedOrigin::Mutated,
            SeedOrigin::Regression,
        ]
        .into_iter()
        .find(|o| o.name() == s)
    }
}

/// One corpus seed: a program plus the coordinates and coverage evidence of
/// the trial that earned it a place.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CorpusEntry {
    /// File-name-safe identifier (regression entries carry their bug name;
    /// discovered entries are named after their signature digest).
    pub name: String,
    /// How the entry was produced.
    pub origin: SeedOrigin,
    /// Trial seed whose [`crate::TrialSpec`] configuration the entry ran
    /// under when it demonstrated novelty.
    pub trial_seed: u64,
    /// The program itself, as an editable statement tree.
    pub program: StructuredProgram,
    /// Coverage signature the entry exhibited at discovery.
    pub signature: CoverageSignature,
    /// Edges that were globally new when the entry was admitted.
    pub novel_edges: usize,
}

impl CorpusEntry {
    /// Digest of the entry's coverage signature — the corpus dedup key.
    #[must_use]
    pub fn digest(&self) -> u64 {
        self.signature.digest()
    }

    /// Render the entry as its on-disk JSON document (checksummed).
    #[must_use]
    pub fn render(&self) -> String {
        let payload = self.payload();
        let check = fnv1a(payload.render().as_bytes());
        let mut pairs = match payload {
            JsonValue::Obj(pairs) => pairs,
            _ => unreachable!("payload is an object"),
        };
        pairs.push((
            "check".to_owned(),
            JsonValue::from(format!("{check:#018x}")),
        ));
        JsonValue::Obj(pairs).render()
    }

    fn payload(&self) -> JsonValue {
        JsonValue::obj([
            ("format", JsonValue::from(ENTRY_FORMAT)),
            ("name", JsonValue::from(self.name.as_str())),
            ("origin", JsonValue::from(self.origin.name())),
            (
                "trial_seed",
                JsonValue::from(format!("{:#018x}", self.trial_seed)),
            ),
            ("novel_edges", JsonValue::from(self.novel_edges)),
            (
                "bits",
                JsonValue::Arr(
                    self.signature
                        .bits()
                        .into_iter()
                        .map(|b| JsonValue::I64(i64::from(b)))
                        .collect(),
                ),
            ),
            ("program", program_to_json(&self.program)),
        ])
    }

    /// Parse an entry from [`CorpusEntry::render`] output, verifying its
    /// checksum.
    ///
    /// # Errors
    /// Returns a description of the first structural or integrity problem.
    pub fn parse(text: &str) -> Result<CorpusEntry, String> {
        let v = json::parse(text).map_err(|e| e.to_string())?;
        let format = v
            .get("format")
            .and_then(JsonValue::as_str)
            .ok_or("missing format")?;
        if format != ENTRY_FORMAT {
            return Err(format!("unsupported corpus entry format {format:?}"));
        }
        let stored_check = v
            .get("check")
            .and_then(JsonValue::as_str)
            .ok_or("missing check")?;
        let stored_check = u64::from_str_radix(stored_check.trim_start_matches("0x"), 16)
            .map_err(|e| format!("bad check field: {e}"))?;

        let name = v
            .get("name")
            .and_then(JsonValue::as_str)
            .ok_or("missing name")?
            .to_owned();
        let origin = v
            .get("origin")
            .and_then(JsonValue::as_str)
            .and_then(SeedOrigin::from_name)
            .ok_or("missing or unknown origin")?;
        let seed_s = v
            .get("trial_seed")
            .and_then(JsonValue::as_str)
            .ok_or("missing trial_seed")?;
        let trial_seed = u64::from_str_radix(seed_s.trim_start_matches("0x"), 16)
            .map_err(|e| format!("bad trial_seed {seed_s:?}: {e}"))?;
        let novel_edges = v
            .get("novel_edges")
            .and_then(JsonValue::as_i64)
            .ok_or("missing novel_edges")? as usize;
        let mut bits = Vec::new();
        for b in v
            .get("bits")
            .and_then(JsonValue::as_array)
            .ok_or("missing bits")?
        {
            let n = b.as_i64().ok_or("bits must be integers")?;
            bits.push(u32::try_from(n).map_err(|_| format!("bit index {n} out of range"))?);
        }
        let signature = CoverageSignature::from_bits(&bits).ok_or("bit index out of range")?;
        let program = program_from_json(v.get("program").ok_or("missing program")?)?;

        let entry = CorpusEntry {
            name,
            origin,
            trial_seed,
            program,
            signature,
            novel_edges,
        };
        let expect = fnv1a(entry.payload().render().as_bytes());
        if expect != stored_check {
            return Err(format!(
                "checksum mismatch: stored {stored_check:#018x}, payload hashes to {expect:#018x}"
            ));
        }
        Ok(entry)
    }

    /// The entry's on-disk file name.
    #[must_use]
    pub fn file_name(&self) -> String {
        format!("{}.json", self.name)
    }
}

/// An in-memory corpus, deduplicated by coverage-signature digest.
#[derive(Clone, Debug, Default)]
pub struct Corpus {
    entries: Vec<CorpusEntry>,
    seen: BTreeSet<u64>,
}

impl Corpus {
    /// An empty corpus.
    #[must_use]
    pub fn new() -> Corpus {
        Corpus::default()
    }

    /// Entries in admission order.
    #[must_use]
    pub fn entries(&self) -> &[CorpusEntry] {
        &self.entries
    }

    /// Number of entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the corpus holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Admit `entry` unless an entry with the same coverage-signature
    /// digest is already present; reports whether it was admitted.
    pub fn add(&mut self, entry: CorpusEntry) -> bool {
        if !self.seen.insert(entry.digest()) {
            return false;
        }
        self.entries.push(entry);
        true
    }

    /// Load every `*.json` entry under `dir` (sorted by file name, so load
    /// order is host-independent). Files that fail parsing or checksum
    /// verification are quarantined under `<dir>/quarantine/` and reported
    /// in the second return value; a missing directory yields an empty
    /// corpus.
    ///
    /// # Errors
    /// Returns filesystem errors (unreadable directory, failed quarantine
    /// write) as strings; individual corrupt entries are not errors.
    pub fn load(dir: &Path) -> Result<(Corpus, Vec<PathBuf>), String> {
        let mut corpus = Corpus::new();
        let mut quarantined = Vec::new();
        if !dir.exists() {
            return Ok((corpus, quarantined));
        }
        let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
            .map_err(|e| format!("reading corpus dir {}: {e}", dir.display()))?
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| p.is_file() && p.extension().is_some_and(|x| x == "json"))
            .collect();
        files.sort();
        for path in files {
            let content = std::fs::read_to_string(&path)
                .map_err(|e| format!("reading {}: {e}", path.display()))?;
            match CorpusEntry::parse(&content) {
                Ok(entry) => {
                    corpus.add(entry);
                }
                Err(reason) => {
                    let qpath = quarantine_cache_file(dir, &path, &content, &reason)
                        .map_err(|e| format!("quarantining {}: {e}", path.display()))?;
                    quarantined.push(qpath);
                }
            }
        }
        Ok((corpus, quarantined))
    }

    /// Write every entry to `dir` (created if missing), one file per entry,
    /// atomically (write to `.tmp`, then rename). Existing files for other
    /// entries are left alone. Returns how many files were written.
    ///
    /// # Errors
    /// Propagates filesystem errors as strings.
    pub fn save(&self, dir: &Path) -> Result<usize, String> {
        std::fs::create_dir_all(dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
        let mut written = 0;
        for entry in &self.entries {
            let path = dir.join(entry.file_name());
            let rendered = entry.render();
            if let Ok(existing) = std::fs::read_to_string(&path) {
                if existing == rendered {
                    continue;
                }
            }
            let tmp = dir.join(format!("{}.tmp", entry.file_name()));
            std::fs::write(&tmp, &rendered)
                .map_err(|e| format!("writing {}: {e}", tmp.display()))?;
            std::fs::rename(&tmp, &path)
                .map_err(|e| format!("renaming into {}: {e}", path.display()))?;
            written += 1;
        }
        Ok(written)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ci_workloads::random_structured;

    fn entry(name: &str, seed: u64) -> CorpusEntry {
        let mut signature = CoverageSignature::new();
        for i in 0..8 {
            signature.insert(seed.wrapping_mul(31).wrapping_add(i));
        }
        CorpusEntry {
            name: name.to_owned(),
            origin: SeedOrigin::Generated,
            trial_seed: seed,
            program: random_structured(seed, 40),
            signature,
            novel_edges: 8,
        }
    }

    #[test]
    fn entries_round_trip_byte_identically() {
        let e = entry("seed-0001", 77);
        let text = e.render();
        let back = CorpusEntry::parse(&text).unwrap();
        assert_eq!(back, e);
        // Byte-identical re-render: save/load/save is a fixed point.
        assert_eq!(back.render(), text);
    }

    #[test]
    fn tampered_entries_are_rejected() {
        let text = entry("seed-0002", 5).render();
        // Flip the trial seed in place; the checksum must catch it.
        let tampered = text.replace(
            "trial_seed\":\"0x0000000000000005",
            "trial_seed\":\"0x0000000000000006",
        );
        assert_ne!(tampered, text, "replacement must hit");
        let err = CorpusEntry::parse(&tampered).unwrap_err();
        assert!(err.contains("checksum mismatch"), "{err}");
        // Truncation and garbage are structural errors.
        assert!(CorpusEntry::parse("not json").is_err());
        assert!(CorpusEntry::parse("{}").is_err());
    }

    #[test]
    fn corpus_dedups_by_signature_digest() {
        let mut c = Corpus::new();
        assert!(c.add(entry("a", 1)));
        assert!(!c.add(entry("b", 1)), "same signature must dedup");
        assert!(c.add(entry("c", 2)));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn save_load_round_trips_and_quarantines_tampering() {
        let dir = std::env::temp_dir().join(format!("ci-corpus-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        let mut c = Corpus::new();
        c.add(entry("seed-a", 10));
        c.add(entry("seed-b", 11));
        assert_eq!(c.save(&dir).unwrap(), 2);
        // Unchanged entries are not rewritten.
        assert_eq!(c.save(&dir).unwrap(), 0);

        let (loaded, quarantined) = Corpus::load(&dir).unwrap();
        assert!(quarantined.is_empty());
        assert_eq!(loaded.len(), 2);
        let mut names: Vec<&str> = loaded.entries().iter().map(|e| e.name.as_str()).collect();
        names.sort_unstable();
        assert_eq!(names, ["seed-a", "seed-b"]);
        for (orig, back) in c.entries().iter().zip(
            // load() sorts by file name, which here matches admission order.
            loaded.entries(),
        ) {
            assert_eq!(orig, back);
        }

        // Corrupt one file on disk: reload quarantines it, keeps the other.
        let victim = dir.join("seed-a.json");
        let mut content = std::fs::read_to_string(&victim).unwrap();
        content.push_str("garbage");
        std::fs::write(&victim, &content).unwrap();
        let (reloaded, quarantined) = Corpus::load(&dir).unwrap();
        assert_eq!(reloaded.len(), 1);
        assert_eq!(reloaded.entries()[0].name, "seed-b");
        assert_eq!(quarantined.len(), 1);
        assert!(!victim.exists(), "corrupt file must be moved away");
        assert!(quarantined[0].exists());
        let qbody = std::fs::read_to_string(&quarantined[0]).unwrap();
        assert!(qbody.starts_with('#'), "quarantine keeps a reason header");

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_of_missing_dir_is_empty() {
        let dir = std::env::temp_dir().join("ci-corpus-definitely-missing");
        let (c, q) = Corpus::load(&dir).unwrap();
        assert!(c.is_empty());
        assert!(q.is_empty());
    }
}
