//! Coverage-guided mutation over [`StructuredProgram`] statement trees.
//!
//! The corpus fuzzer does not generate every trial from scratch: once a
//! program has demonstrated novel coverage it becomes a *parent*, and new
//! trials are structural edits of it — duplicate or splice subtrees, flip
//! branch conditions, perturb loop trip counts, rewrite individual ops.
//! Edits stay inside the invariants that make [`StructuredProgram::emit`]
//! safe by construction:
//!
//! - ops (and branch operands) only touch [`COMPUTE_REGS`] — never the
//!   emitter's scratch register or a live loop counter;
//! - loop nesting never exceeds [`MAX_LOOP_NEST`] (deeper nesting would
//!   alias an outer loop's counter register and hang the program);
//! - leaf functions never gain a [`Stmt::Call`] (a call inside a function
//!   body emits real recursion with no base case);
//! - trip counts and total node count stay bounded, so dynamic length
//!   cannot blow up unrecognisably past the trial's instruction budget.
//!
//! [`is_well_formed`] checks exactly these invariants and is the contract
//! the property tests enforce: *every* mutation of a well-formed program is
//! well-formed, emits, and halts. Mutation is a pure function of
//! `(program, seed)`, so a corpus entry's whole lineage replays from
//! integers.

use ci_isa::Reg;
use ci_workloads::{
    CondKind, SimpleOp, SplitMix64, Stmt, StructuredProgram, COMPUTE_REGS, MAX_LOOP_NEST,
};

/// Maximum statement nodes a mutated program may hold. The generator clamps
/// its size hint to 400, so this leaves mutation headroom without letting
/// repeated duplication grow programs beyond what a trial budget can run.
pub const MAX_NODES: usize = 512;

/// Maximum loop trip count a mutation may set (the generator itself stays
/// at 3; a bit more room exercises deeper restart nesting).
pub const MAX_TRIPS: u32 = 6;

/// The structural edit a call to [`mutate`] performed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MutationKind {
    /// Replaced one straight-line op with a freshly drawn one.
    PerturbOp,
    /// Inverted an `if` condition (or swapped its operands).
    FlipCond,
    /// Changed a loop's constant trip count.
    PerturbTrips,
    /// Changed one register's initial value.
    PerturbInit,
    /// Duplicated a statement in place (subtree and all).
    Duplicate,
    /// Deleted a statement (subtree and all).
    Delete,
    /// Swapped two statements within one block.
    Swap,
    /// Copied a random subtree into a random other block.
    Splice,
    /// Inserted a freshly drawn op at a random position.
    InsertOp,
    /// Wrapped a statement in a new skip-style `if`.
    WrapIf,
}

impl MutationKind {
    /// Every kind, in the order [`mutate`] samples them.
    pub const ALL: [MutationKind; 10] = [
        MutationKind::PerturbOp,
        MutationKind::FlipCond,
        MutationKind::PerturbTrips,
        MutationKind::PerturbInit,
        MutationKind::Duplicate,
        MutationKind::Delete,
        MutationKind::Swap,
        MutationKind::Splice,
        MutationKind::InsertOp,
        MutationKind::WrapIf,
    ];

    /// Stable lowercase name (for reports).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            MutationKind::PerturbOp => "perturb-op",
            MutationKind::FlipCond => "flip-cond",
            MutationKind::PerturbTrips => "perturb-trips",
            MutationKind::PerturbInit => "perturb-init",
            MutationKind::Duplicate => "duplicate",
            MutationKind::Delete => "delete",
            MutationKind::Swap => "swap",
            MutationKind::Splice => "splice",
            MutationKind::InsertOp => "insert-op",
            MutationKind::WrapIf => "wrap-if",
        }
    }
}

/// Apply one structural mutation to `program`, deterministically from
/// `seed`. The result is guaranteed well-formed when the input is: each
/// sampled edit is validated with [`is_well_formed`] and resampled on
/// violation, with a fallback edit (insert or delete one op) that is always
/// legal.
#[must_use]
pub fn mutate(program: &StructuredProgram, seed: u64) -> (StructuredProgram, MutationKind) {
    let mut rng = SplitMix64::new(seed);
    for _ in 0..16 {
        let kind = MutationKind::ALL[rng.below(MutationKind::ALL.len() as u64) as usize];
        let mut candidate = program.clone();
        if apply(&mut candidate, kind, &mut rng)
            && candidate != *program
            && is_well_formed(&candidate)
        {
            return (candidate, kind);
        }
    }
    // Fallback: grow or (at the node cap) shrink by one op — always legal.
    let mut candidate = program.clone();
    if candidate.node_count() < MAX_NODES {
        candidate.body.push(Stmt::Op(random_op(&mut rng)));
        (candidate, MutationKind::InsertOp)
    } else {
        candidate.body.pop();
        (candidate, MutationKind::Delete)
    }
}

/// Whether `program` satisfies every invariant the emitter's
/// safe-by-construction argument rests on (see the module docs). Generated
/// programs satisfy this; [`mutate`] preserves it.
#[must_use]
pub fn is_well_formed(program: &StructuredProgram) -> bool {
    program.node_count() <= MAX_NODES
        && program
            .init
            .iter()
            .all(|(r, v)| is_compute(*r) && v.unsigned_abs() <= 1 << 20)
        && block_ok(&program.body, 0, false)
        && program.funcs.iter().all(|f| block_ok(f, 0, true))
}

fn block_ok(stmts: &[Stmt], loop_depth: usize, in_func: bool) -> bool {
    stmts.iter().all(|s| match s {
        Stmt::Op(op) => op_ok(op),
        Stmt::If {
            a, b, then, els, ..
        } => {
            is_compute(*a)
                && is_compute(*b)
                && block_ok(then, loop_depth, in_func)
                && els
                    .as_ref()
                    .is_none_or(|e| block_ok(e, loop_depth, in_func))
        }
        Stmt::Loop { trips, body } => {
            (1..=MAX_TRIPS).contains(trips)
                && loop_depth < MAX_LOOP_NEST
                && block_ok(body, loop_depth + 1, in_func)
        }
        Stmt::Call(_) => !in_func,
    })
}

fn is_compute(r: Reg) -> bool {
    COMPUTE_REGS.contains(&r)
}

fn op_ok(op: &SimpleOp) -> bool {
    match *op {
        SimpleOp::Add(rd, a, b)
        | SimpleOp::Sub(rd, a, b)
        | SimpleOp::Xor(rd, a, b)
        | SimpleOp::And(rd, a, b)
        | SimpleOp::Or(rd, a, b)
        | SimpleOp::Mul(rd, a, b)
        | SimpleOp::Slt(rd, a, b) => is_compute(rd) && is_compute(a) && is_compute(b),
        SimpleOp::Addi(rd, rs, imm) => is_compute(rd) && is_compute(rs) && imm.unsigned_abs() <= 64,
        SimpleOp::Srli(rd, rs, sh) => is_compute(rd) && is_compute(rs) && (0..=63).contains(&sh),
        // Absolute addresses stay inside the 0..64 data region the
        // generator uses (the indexed forms mask to 64..96 themselves).
        SimpleOp::Load(rd, addr) => is_compute(rd) && (0..64).contains(&addr),
        SimpleOp::Store(rs, addr) => is_compute(rs) && (0..64).contains(&addr),
        SimpleOp::IndexedLoad { base, rd } => is_compute(base) && is_compute(rd),
        SimpleOp::IndexedStore { base, rs } => is_compute(base) && is_compute(rs),
    }
}

// ---------------------------------------------------------------------------
// Tree navigation: every statement is a direct child of exactly one block
// (the body, an `if` arm, a loop body, or a function), so all edits reduce
// to "visit the n-th block / the n-th matching statement".

/// Walk every block in deterministic pre-order (body, nested arms, then each
/// function); stop when `f` returns `true`. `f` receives the block, the
/// number of enclosing loops, and whether it lies inside a leaf function.
fn walk_blocks<F>(program: &mut StructuredProgram, f: &mut F) -> bool
where
    F: FnMut(&mut Vec<Stmt>, usize, bool) -> bool,
{
    if walk_block(&mut program.body, 0, false, f) {
        return true;
    }
    for func in &mut program.funcs {
        if walk_block(func, 0, true, f) {
            return true;
        }
    }
    false
}

fn walk_block<F>(block: &mut Vec<Stmt>, loop_depth: usize, in_func: bool, f: &mut F) -> bool
where
    F: FnMut(&mut Vec<Stmt>, usize, bool) -> bool,
{
    if f(block, loop_depth, in_func) {
        return true;
    }
    for s in block.iter_mut() {
        match s {
            Stmt::If { then, els, .. } => {
                if walk_block(then, loop_depth, in_func, f) {
                    return true;
                }
                if let Some(e) = els {
                    if walk_block(e, loop_depth, in_func, f) {
                        return true;
                    }
                }
            }
            Stmt::Loop { body, .. } => {
                if walk_block(body, loop_depth + 1, in_func, f) {
                    return true;
                }
            }
            Stmt::Op(_) | Stmt::Call(_) => {}
        }
    }
    false
}

/// Apply `f` to the `n`-th statement (pre-order) satisfying `pred`; `false`
/// when fewer than `n + 1` statements match.
fn edit_nth_stmt<P, F>(program: &mut StructuredProgram, n: usize, pred: P, f: F) -> bool
where
    P: Fn(&Stmt) -> bool,
    F: FnOnce(&mut Stmt),
{
    let mut f = Some(f);
    let mut remaining = n;
    walk_blocks(program, &mut |block, _, _| {
        for s in block.iter_mut() {
            if pred(s) {
                if remaining == 0 {
                    if let Some(f) = f.take() {
                        f(s);
                    }
                    return true;
                }
                remaining -= 1;
            }
        }
        false
    })
}

fn count_stmts<P: Fn(&Stmt) -> bool>(program: &mut StructuredProgram, pred: P) -> usize {
    let mut n = 0;
    walk_blocks(program, &mut |block, _, _| {
        n += block.iter().filter(|s| pred(s)).count();
        false
    });
    n
}

/// Shape of every block, in walk order: (direct-child count, loop depth,
/// in-function flag).
fn block_shapes(program: &mut StructuredProgram) -> Vec<(usize, usize, bool)> {
    let mut shapes = Vec::new();
    walk_blocks(program, &mut |block, depth, in_func| {
        shapes.push((block.len(), depth, in_func));
        false
    });
    shapes
}

/// Apply `f` to the `idx`-th block in walk order.
fn edit_block<F: FnOnce(&mut Vec<Stmt>)>(
    program: &mut StructuredProgram,
    idx: usize,
    f: F,
) -> bool {
    let mut f = Some(f);
    let mut i = 0;
    walk_blocks(program, &mut |block, _, _| {
        if i == idx {
            if let Some(f) = f.take() {
                f(block);
            }
            return true;
        }
        i += 1;
        false
    })
}

/// Deepest loop nesting inside a subtree (0 for loop-free statements).
fn subtree_nest(s: &Stmt) -> usize {
    match s {
        Stmt::Op(_) | Stmt::Call(_) => 0,
        Stmt::If { then, els, .. } => block_nest(then).max(els.as_deref().map_or(0, block_nest)),
        Stmt::Loop { body, .. } => 1 + block_nest(body),
    }
}

fn block_nest(stmts: &[Stmt]) -> usize {
    stmts.iter().map(subtree_nest).max().unwrap_or(0)
}

fn subtree_has_call(s: &Stmt) -> bool {
    match s {
        Stmt::Call(_) => true,
        Stmt::Op(_) => false,
        Stmt::If { then, els, .. } => {
            then.iter().any(subtree_has_call)
                || els.as_ref().is_some_and(|e| e.iter().any(subtree_has_call))
        }
        Stmt::Loop { body, .. } => body.iter().any(subtree_has_call),
    }
}

// ---------------------------------------------------------------------------
// The edits themselves.

fn apply(p: &mut StructuredProgram, kind: MutationKind, rng: &mut SplitMix64) -> bool {
    match kind {
        MutationKind::PerturbOp => {
            let n = count_stmts(p, |s| matches!(s, Stmt::Op(_)));
            if n == 0 {
                return false;
            }
            let target = rng.below(n as u64) as usize;
            let op = random_op(rng);
            edit_nth_stmt(
                p,
                target,
                |s| matches!(s, Stmt::Op(_)),
                |s| *s = Stmt::Op(op),
            )
        }
        MutationKind::FlipCond => {
            let n = count_stmts(p, |s| matches!(s, Stmt::If { .. }));
            if n == 0 {
                return false;
            }
            let target = rng.below(n as u64) as usize;
            let swap_operands = rng.chance(33);
            edit_nth_stmt(
                p,
                target,
                |s| matches!(s, Stmt::If { .. }),
                |s| {
                    if let Stmt::If { kind, a, b, .. } = s {
                        if swap_operands {
                            std::mem::swap(a, b);
                        } else {
                            *kind = match kind {
                                CondKind::Eq => CondKind::Ne,
                                CondKind::Ne => CondKind::Eq,
                                CondKind::Lt => CondKind::Ge,
                                CondKind::Ge => CondKind::Lt,
                            };
                        }
                    }
                },
            )
        }
        MutationKind::PerturbTrips => {
            let n = count_stmts(p, |s| matches!(s, Stmt::Loop { .. }));
            if n == 0 {
                return false;
            }
            let target = rng.below(n as u64) as usize;
            let new_trips = 1 + rng.below(u64::from(MAX_TRIPS)) as u32;
            edit_nth_stmt(
                p,
                target,
                |s| matches!(s, Stmt::Loop { .. }),
                |s| {
                    if let Stmt::Loop { trips, .. } = s {
                        *trips = new_trips;
                    }
                },
            )
        }
        MutationKind::PerturbInit => {
            if p.init.is_empty() {
                return false;
            }
            let i = rng.below(p.init.len() as u64) as usize;
            p.init[i].1 = rng.below(2048) as i64 - 1024;
            true
        }
        MutationKind::Duplicate => {
            let shapes = block_shapes(p);
            let budget = MAX_NODES - p.node_count().min(MAX_NODES);
            let Some(block_idx) = pick_block(&shapes, rng, |&(len, _, _)| len > 0) else {
                return false;
            };
            let i = rng.below(shapes[block_idx].0 as u64) as usize;
            let mut grew = false;
            edit_block(p, block_idx, |block| {
                if block[i].node_count() <= budget {
                    let copy = block[i].clone();
                    block.insert(i + 1, copy);
                    grew = true;
                }
            });
            grew
        }
        MutationKind::Delete => {
            let shapes = block_shapes(p);
            let Some(block_idx) = pick_block(&shapes, rng, |&(len, _, _)| len > 0) else {
                return false;
            };
            let i = rng.below(shapes[block_idx].0 as u64) as usize;
            edit_block(p, block_idx, |block| {
                block.remove(i);
            })
        }
        MutationKind::Swap => {
            let shapes = block_shapes(p);
            let Some(block_idx) = pick_block(&shapes, rng, |&(len, _, _)| len > 1) else {
                return false;
            };
            let len = shapes[block_idx].0 as u64;
            let i = rng.below(len) as usize;
            let j = rng.below(len) as usize;
            if i == j {
                return false;
            }
            edit_block(p, block_idx, |block| block.swap(i, j))
        }
        MutationKind::Splice => {
            let n = count_stmts(p, |_| true);
            if n == 0 {
                return false;
            }
            // Copy a random subtree out...
            let source = rng.below(n as u64) as usize;
            let mut donor = None;
            edit_nth_stmt(p, source, |_| true, |s| donor = Some(s.clone()));
            let Some(donor) = donor else { return false };
            let nest = subtree_nest(&donor);
            let has_call = subtree_has_call(&donor);
            let budget = MAX_NODES - p.node_count().min(MAX_NODES);
            if donor.node_count() > budget {
                return false;
            }
            // ...into a block where it keeps every invariant.
            let shapes = block_shapes(p);
            let Some(block_idx) = pick_block(&shapes, rng, |&(_, depth, in_func)| {
                depth + nest <= MAX_LOOP_NEST && !(in_func && has_call)
            }) else {
                return false;
            };
            let at = rng.below(shapes[block_idx].0 as u64 + 1) as usize;
            edit_block(p, block_idx, |block| block.insert(at, donor))
        }
        MutationKind::InsertOp => {
            if p.node_count() >= MAX_NODES {
                return false;
            }
            let shapes = block_shapes(p);
            let Some(block_idx) = pick_block(&shapes, rng, |_| true) else {
                return false;
            };
            let at = rng.below(shapes[block_idx].0 as u64 + 1) as usize;
            let op = random_op(rng);
            edit_block(p, block_idx, |block| block.insert(at, Stmt::Op(op)))
        }
        MutationKind::WrapIf => {
            if p.node_count() >= MAX_NODES {
                return false;
            }
            let shapes = block_shapes(p);
            let Some(block_idx) = pick_block(&shapes, rng, |&(len, _, _)| len > 0) else {
                return false;
            };
            let i = rng.below(shapes[block_idx].0 as u64) as usize;
            let kind = match rng.below(4) {
                0 => CondKind::Eq,
                1 => CondKind::Ne,
                2 => CondKind::Lt,
                _ => CondKind::Ge,
            };
            let (a, b) = (random_reg(rng), random_reg(rng));
            edit_block(p, block_idx, |block| {
                let inner = block.remove(i);
                block.insert(
                    i,
                    Stmt::If {
                        kind,
                        a,
                        b,
                        then: vec![inner],
                        els: None,
                    },
                );
            })
        }
    }
}

/// Uniform choice among blocks passing `keep`; `None` when none do.
fn pick_block<F: Fn(&(usize, usize, bool)) -> bool>(
    shapes: &[(usize, usize, bool)],
    rng: &mut SplitMix64,
    keep: F,
) -> Option<usize> {
    let eligible: Vec<usize> = (0..shapes.len()).filter(|&i| keep(&shapes[i])).collect();
    if eligible.is_empty() {
        None
    } else {
        Some(eligible[rng.below(eligible.len() as u64) as usize])
    }
}

fn random_reg(rng: &mut SplitMix64) -> Reg {
    COMPUTE_REGS[rng.below(COMPUTE_REGS.len() as u64) as usize]
}

/// Draw a fresh straight-line op over the compute registers (same
/// distribution family as the generator's).
fn random_op(rng: &mut SplitMix64) -> SimpleOp {
    let rd = random_reg(rng);
    let rs1 = random_reg(rng);
    let rs2 = random_reg(rng);
    match rng.below(12) {
        0 => SimpleOp::Add(rd, rs1, rs2),
        1 => SimpleOp::Sub(rd, rs1, rs2),
        2 => SimpleOp::Xor(rd, rs1, rs2),
        3 => SimpleOp::And(rd, rs1, rs2),
        4 => SimpleOp::Or(rd, rs1, rs2),
        5 => SimpleOp::Mul(rd, rs1, rs2),
        6 => SimpleOp::Addi(rd, rs1, rng.below(64) as i64 - 32),
        7 => SimpleOp::Srli(rd, rs1, rng.below(8) as i64),
        8 => SimpleOp::Slt(rd, rs1, rs2),
        9 => SimpleOp::Load(rd, rng.below(64) as i64),
        10 => SimpleOp::Store(rs1, rng.below(64) as i64),
        _ => {
            let base = random_reg(rng);
            if rng.chance(50) {
                SimpleOp::IndexedLoad { base, rd }
            } else {
                SimpleOp::IndexedStore { base, rs: rs1 }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ci_workloads::random_structured;

    #[test]
    fn generated_programs_are_well_formed() {
        for seed in 0..50 {
            let p = random_structured(seed, 20 + (seed as usize % 200));
            assert!(is_well_formed(&p), "seed {seed} not well-formed");
        }
    }

    #[test]
    fn mutation_is_deterministic() {
        let p = random_structured(7, 80);
        for seed in 0..20 {
            assert_eq!(mutate(&p, seed), mutate(&p, seed), "seed {seed}");
        }
    }

    #[test]
    fn mutation_changes_the_program() {
        let p = random_structured(11, 60);
        let mut distinct = 0;
        for seed in 0..40 {
            let (m, _) = mutate(&p, seed);
            if m != p {
                distinct += 1;
            }
        }
        // Every mutation must actually edit; the no-op guard in `mutate`
        // enforces it except through the fallback, which also edits.
        assert_eq!(distinct, 40);
    }

    #[test]
    fn all_kinds_are_reachable() {
        let p = random_structured(3, 120);
        let mut seen = std::collections::BTreeSet::new();
        for seed in 0..4000 {
            let (_, kind) = mutate(&p, seed);
            seen.insert(kind.name());
        }
        for kind in MutationKind::ALL {
            assert!(seen.contains(kind.name()), "{} never sampled", kind.name());
        }
    }

    #[test]
    fn deep_mutation_chains_stay_well_formed_and_halt() {
        let mut rng = SplitMix64::new(0xC0FFEE);
        for start in 0..8 {
            let mut p = random_structured(start, 60);
            for step in 0..25 {
                let (m, kind) = mutate(&p, rng.next_u64());
                assert!(
                    is_well_formed(&m),
                    "start {start} step {step}: {} broke well-formedness",
                    kind.name()
                );
                p = m;
            }
            // Well-formedness implies termination; prove it on the final
            // program of each chain (the slowest part of this test).
            let t = ci_emu::run_trace(&p.emit(), 2_000_000).expect("emits a valid program");
            assert!(t.completed(), "start {start}: mutant did not halt");
        }
    }

    #[test]
    fn well_formedness_rejects_each_violation() {
        let base = random_structured(5, 40);
        assert!(is_well_formed(&base));

        // Reserved register in an op.
        let mut bad = base.clone();
        bad.body
            .push(Stmt::Op(SimpleOp::Addi(Reg::R20, Reg::R1, 1)));
        assert!(!is_well_formed(&bad));

        // Call inside a leaf function.
        let mut bad = base.clone();
        bad.funcs.push(vec![Stmt::Call(0)]);
        assert!(!is_well_formed(&bad));

        // Loop nesting past the counter banks.
        let mut bad = base.clone();
        let mut nest = Stmt::Loop {
            trips: 1,
            body: vec![],
        };
        for _ in 0..MAX_LOOP_NEST {
            nest = Stmt::Loop {
                trips: 1,
                body: vec![nest],
            };
        }
        bad.body.push(nest);
        assert!(!is_well_formed(&bad));

        // Zero or oversized trip counts.
        let mut bad = base.clone();
        bad.body.push(Stmt::Loop {
            trips: 0,
            body: vec![],
        });
        assert!(!is_well_formed(&bad));
        let mut bad = base.clone();
        bad.body.push(Stmt::Loop {
            trips: MAX_TRIPS + 1,
            body: vec![],
        });
        assert!(!is_well_formed(&bad));

        // Out-of-region absolute address.
        let mut bad = base;
        bad.body.push(Stmt::Op(SimpleOp::Load(Reg::R1, 4096)));
        assert!(!is_well_formed(&bad));
    }
}
