//! One fuzz trial: generate, run every model in lockstep, check invariants.

use crate::coverage::{trial_salts, TrialCoverage};
use crate::lockstep::run_locked_salted;
use crate::spec::TrialSpec;
use ci_core::{CacheModel, SquashMode, Stats};
use ci_emu::{run_trace, Trace};
use ci_ideal::{simulate as simulate_ideal, IdealConfig, IdealResult, ModelKind, StudyInput};
use ci_isa::Program;
use ci_workloads::random_structured;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// What went wrong in a failed check.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FailureKind {
    /// The functional emulator rejected the program (generator bug).
    Trace,
    /// A pipeline run panicked: oracle-checker divergence, forward-progress
    /// failure, or an internal invariant.
    Panic,
    /// The retired PC stream differs from the emulator trace (caught by the
    /// harness's independent comparison).
    Divergence,
    /// A statistics counter violated a sanity invariant.
    StatsSanity,
    /// A cross-model cycle-count dominance relation was violated.
    ModelInvariant,
}

impl FailureKind {
    /// Stable lowercase name (artifact key).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            FailureKind::Trace => "trace",
            FailureKind::Panic => "panic",
            FailureKind::Divergence => "divergence",
            FailureKind::StatsSanity => "stats-sanity",
            FailureKind::ModelInvariant => "model-invariant",
        }
    }

    /// Parse a [`FailureKind::name`] back.
    #[must_use]
    pub fn from_name(s: &str) -> Option<FailureKind> {
        [
            FailureKind::Trace,
            FailureKind::Panic,
            FailureKind::Divergence,
            FailureKind::StatsSanity,
            FailureKind::ModelInvariant,
        ]
        .into_iter()
        .find(|k| k.name() == s)
    }
}

/// One failed check.
#[derive(Clone, Debug)]
pub struct Failure {
    /// What class of check failed.
    pub kind: FailureKind,
    /// Which model ("BASE", "CI", "CI-I", an ideal model name, or "emu").
    pub model: String,
    /// Divergence report / panic message / violated inequality.
    pub detail: String,
    /// Flight-recorder transcript of the failing run, when one exists
    /// (panics embed theirs in `detail` already).
    pub flight: String,
}

/// Result of one trial.
#[derive(Clone, Debug)]
pub struct TrialOutcome {
    /// The trial's coordinates.
    pub spec: TrialSpec,
    /// Static instruction count of the generated program.
    pub program_len: usize,
    /// Dynamic (emulated) instruction count.
    pub dynamic_len: usize,
    /// Every failed check, empty when the trial passed.
    pub failures: Vec<Failure>,
}

impl TrialOutcome {
    /// Whether every check passed.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Run one trial end to end: generate the program from the spec and check it.
#[must_use]
pub fn run_trial(spec: &TrialSpec) -> TrialOutcome {
    let program = random_structured(spec.program_seed, spec.size_hint).emit();
    let (dynamic_len, failures) = check_program(&program, spec);
    TrialOutcome {
        spec: *spec,
        program_len: program.len(),
        dynamic_len,
        failures,
    }
}

/// Run every lockstep and invariant check on an explicit `program` (used by
/// [`run_trial`], by the shrinker's predicate, and by artifact replay).
/// Returns the dynamic instruction count and all failures found.
#[must_use]
pub fn check_program(program: &Program, spec: &TrialSpec) -> (usize, Vec<Failure>) {
    let (dynamic_len, failures, _) = check_program_cov(program, spec);
    (dynamic_len, failures)
}

/// [`check_program`] that additionally extracts the trial's coverage: the
/// union of the three detailed machines' salted event-bigram signatures
/// (see [`crate::coverage`]). The coverage-guided fuzzer calls this; plain
/// correctness callers use [`check_program`].
#[must_use]
pub fn check_program_cov(
    program: &Program,
    spec: &TrialSpec,
) -> (usize, Vec<Failure>, TrialCoverage) {
    let mut failures = Vec::new();
    let mut coverage = TrialCoverage::default();

    let trace = match run_trace(program, spec.max_insts) {
        Ok(t) => t,
        Err(e) => {
            failures.push(Failure {
                kind: FailureKind::Trace,
                model: "emu".to_owned(),
                detail: format!("emulator rejected the program: {e}"),
                flight: String::new(),
            });
            return (0, failures, coverage);
        }
    };

    // Detailed pipeline: BASE / CI / CI-I in lockstep with the oracle
    // checker armed, plus the harness's own retired-stream comparison.
    let salts = trial_salts(spec);
    for (machine, (name, config)) in spec.detailed_variants().into_iter().enumerate() {
        let run = run_locked_salted(program, config, spec.max_insts, None, salts[machine]);
        coverage.absorb(salts[machine], &run.coverage, run.max_restart_depth);
        if let Some(msg) = &run.panic {
            failures.push(Failure {
                kind: FailureKind::Panic,
                model: name.to_owned(),
                detail: msg.clone(),
                flight: String::new(),
            });
            continue;
        }
        if let Some(report) = run.divergence(&trace) {
            failures.push(Failure {
                kind: FailureKind::Divergence,
                model: name.to_owned(),
                detail: report,
                flight: run.flight.clone(),
            });
        }
        let stats = run.stats.as_ref().expect("non-panicked run has stats");
        if let Some(report) = stats_sanity(stats, &config, trace.len() as u64) {
            failures.push(Failure {
                kind: FailureKind::StatsSanity,
                model: name.to_owned(),
                detail: report,
                flight: run.flight.clone(),
            });
        }
    }

    // The six idealized models and their dominance relations.
    failures.extend(ideal_invariants(program, spec, &trace));

    (trace.len(), failures, coverage)
}

/// Counter sanity for one detailed run. Only invariants that hold by
/// construction are checked — anything stochastic belongs to the paper's
/// tables, not here.
fn stats_sanity(s: &Stats, config: &ci_core::PipelineConfig, trace_len: u64) -> Option<String> {
    let err = |what: String| Some(what);
    if s.retired != trace_len {
        return err(format!("retired {} != emulated {trace_len}", s.retired));
    }
    if trace_len > 0 && s.cycles == 0 {
        return err("zero cycles for nonzero work".to_owned());
    }
    if s.retired > s.cycles.saturating_mul(config.width as u64) {
        return err(format!(
            "retired {} exceeds cycles*width {}*{}",
            s.retired, s.cycles, config.width
        ));
    }
    if s.issues < s.retired {
        return err(format!(
            "issues {} < retired {} (every retired instruction issued at least once)",
            s.issues, s.retired
        ));
    }
    if s.predictions > s.retired {
        return err(format!(
            "predictions {} > retired {}",
            s.predictions, s.retired
        ));
    }
    if s.arch_mispredictions > s.predictions {
        return err(format!(
            "mispredictions {} > predictions {}",
            s.arch_mispredictions, s.predictions
        ));
    }
    if s.reconverged > s.recoveries {
        return err(format!(
            "reconverged {} > recoveries {}",
            s.reconverged, s.recoveries
        ));
    }
    if s.fetch_saved > s.retired {
        return err(format!(
            "fetch_saved {} > retired {}",
            s.fetch_saved, s.retired
        ));
    }
    if s.work_saved + s.work_discarded + s.only_fetched > s.fetch_saved {
        return err(format!(
            "work taxonomy {}+{}+{} > fetch_saved {}",
            s.work_saved, s.work_discarded, s.only_fetched, s.fetch_saved
        ));
    }
    if s.mem_violation_reissues + s.reg_violation_reissues > s.issues {
        return err(format!(
            "violation reissues {}+{} > issues {}",
            s.mem_violation_reissues, s.reg_violation_reissues, s.issues
        ));
    }
    if config.squash == SquashMode::Full
        && (s.reconverged != 0 || s.inserted != 0 || s.fetch_saved != 0)
    {
        return err(format!(
            "BASE machine exercised CI machinery: reconverged={} inserted={} fetch_saved={}",
            s.reconverged, s.inserted, s.fetch_saved
        ));
    }
    if matches!(config.cache, CacheModel::Ideal { .. })
        && (s.cache_hits != 0 || s.cache_misses != 0)
    {
        return err(format!(
            "ideal cache reported hits={} misses={}",
            s.cache_hits, s.cache_misses
        ));
    }
    None
}

/// Cross-model dominance with the tolerance the paper itself notes (fetch
/// reordering can cost a few percent): `a` must not exceed `b` by more than
/// 5% plus a small absolute slack for very short programs.
fn dominates(faster: u64, slower: u64) -> bool {
    (faster as f64) <= (slower as f64) * 1.05 + 16.0
}

fn ideal_invariants(program: &Program, spec: &TrialSpec, trace: &Trace) -> Vec<Failure> {
    let mut failures = Vec::new();
    let window = spec.ideal_window;
    let run = catch_unwind(AssertUnwindSafe(|| {
        let input = StudyInput::build(program, spec.max_insts)?;
        let mut results = Vec::with_capacity(ModelKind::ALL.len());
        for model in ModelKind::ALL {
            results.push(simulate_ideal(
                &input,
                &IdealConfig {
                    model,
                    window,
                    ..IdealConfig::default()
                },
            ));
        }
        Ok::<Vec<IdealResult>, ci_emu::EmuError>(results)
    }));
    let results = match run {
        Ok(Ok(r)) => r,
        Ok(Err(e)) => {
            failures.push(Failure {
                kind: FailureKind::Trace,
                model: "ideal".to_owned(),
                detail: format!("study input construction failed: {e}"),
                flight: String::new(),
            });
            return failures;
        }
        Err(payload) => {
            let msg = payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_owned()))
                .unwrap_or_else(|| "non-string panic payload".to_owned());
            failures.push(Failure {
                kind: FailureKind::Panic,
                model: "ideal".to_owned(),
                detail: msg,
                flight: String::new(),
            });
            return failures;
        }
    };

    let cycles = |m: ModelKind| {
        let i = ModelKind::ALL.iter().position(|k| *k == m).expect("all");
        results[i].cycles
    };
    for (model, r) in ModelKind::ALL.iter().zip(&results) {
        if r.retired != trace.len() as u64 {
            failures.push(Failure {
                kind: FailureKind::Divergence,
                model: model.to_string(),
                detail: format!(
                    "ideal model retired {} of {} emulated instructions (window {window})",
                    r.retired,
                    trace.len()
                ),
                flight: String::new(),
            });
        }
    }

    // (faster, slower, why) — the paper's dominance relations: the oracle is
    // fastest; every CI model beats complete squash; false dependences never
    // help; wasted wrong-path resources never help.
    let relations: [(ModelKind, ModelKind, &str); 9] = [
        (ModelKind::Oracle, ModelKind::Base, "oracle beats base"),
        (ModelKind::Oracle, ModelKind::NwrNfd, "oracle beats nWR-nFD"),
        (ModelKind::Oracle, ModelKind::NwrFd, "oracle beats nWR-FD"),
        (ModelKind::Oracle, ModelKind::WrNfd, "oracle beats WR-nFD"),
        (ModelKind::Oracle, ModelKind::WrFd, "oracle beats WR-FD"),
        (ModelKind::NwrNfd, ModelKind::Base, "nWR-nFD beats base"),
        (
            ModelKind::NwrNfd,
            ModelKind::NwrFd,
            "nFD beats FD (no waste)",
        ),
        (ModelKind::WrNfd, ModelKind::WrFd, "nFD beats FD (waste)"),
        (ModelKind::NwrNfd, ModelKind::WrNfd, "nWR beats WR (no FD)"),
    ];
    for (fast, slow, why) in relations {
        let (cf, cs) = (cycles(fast), cycles(slow));
        if !dominates(cf, cs) {
            failures.push(Failure {
                kind: FailureKind::ModelInvariant,
                model: fast.to_string(),
                detail: format!("{why}: {fast} took {cf} cycles vs {slow} {cs} (window {window})"),
                flight: String::new(),
            });
        }
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_handful_of_trials_pass_clean() {
        for trial_seed in 0..6 {
            let out = run_trial(&TrialSpec::generate(trial_seed));
            assert!(
                out.passed(),
                "trial {trial_seed} failed: {:?}",
                out.failures
                    .iter()
                    .map(|f| format!("{} [{}]: {}", f.kind.name(), f.model, f.detail))
                    .collect::<Vec<_>>()
            );
            assert!(out.dynamic_len > 0);
        }
    }

    #[test]
    fn failure_kind_names_round_trip() {
        for k in [
            FailureKind::Trace,
            FailureKind::Panic,
            FailureKind::Divergence,
            FailureKind::StatsSanity,
            FailureKind::ModelInvariant,
        ] {
            assert_eq!(FailureKind::from_name(k.name()), Some(k));
        }
        assert_eq!(FailureKind::from_name("nope"), None);
    }
}
