//! Self-contained, replayable failure artifacts.
//!
//! An artifact captures everything about one failing trial in a single JSON
//! document: the (shrunk) structured program, the trial seed, what the
//! shrinker did, and every failure with its divergence report and
//! flight-recorder transcript. The pipeline configuration and the assembled
//! listing are embedded too — those are for the human reading the file; the
//! machine-readable replay needs only the trial seed (a [`TrialSpec`] is a
//! pure function of it) and the statement tree.

use crate::shrink::ShrinkStats;
use crate::spec::TrialSpec;
use crate::trial::{check_program, Failure, FailureKind, TrialOutcome};
use ci_isa::Reg;
use ci_obs::json::{self, JsonValue};
use ci_workloads::{CondKind, SimpleOp, Stmt, StructuredProgram};

/// Format version stamped into every artifact.
const VERSION: i64 = 1;

/// A replayable record of one failing fuzz trial.
#[derive(Clone, Debug)]
pub struct Artifact {
    /// Seed the trial's [`TrialSpec`] derives from.
    pub trial_seed: u64,
    /// The failing program, after shrinking.
    pub program: StructuredProgram,
    /// What the shrinker did to get here.
    pub shrink: ShrinkStats,
    /// The failures observed on `program` (re-derivable via [`replay`]).
    pub failures: Vec<Failure>,
}

impl Artifact {
    /// Serialize to a self-contained JSON document.
    #[must_use]
    pub fn render(&self) -> String {
        let spec = TrialSpec::generate(self.trial_seed);
        JsonValue::obj([
            ("version", JsonValue::I64(VERSION)),
            // As a hex string: JSON numbers (f64 beyond 2^53) cannot hold
            // every u64 losslessly.
            (
                "trial_seed",
                JsonValue::from(format!("{:#018x}", self.trial_seed)),
            ),
            ("program", program_to_json(&self.program)),
            (
                "shrink",
                JsonValue::obj([
                    (
                        "original_nodes",
                        JsonValue::from(self.shrink.original_nodes),
                    ),
                    ("final_nodes", JsonValue::from(self.shrink.final_nodes)),
                    ("tests", JsonValue::from(self.shrink.tests)),
                    ("accepted", JsonValue::from(self.shrink.accepted)),
                ]),
            ),
            (
                "failures",
                JsonValue::Arr(
                    self.failures
                        .iter()
                        .map(|f| {
                            JsonValue::obj([
                                ("kind", JsonValue::from(f.kind.name())),
                                ("model", JsonValue::from(f.model.as_str())),
                                ("detail", JsonValue::from(f.detail.as_str())),
                                ("flight", JsonValue::from(f.flight.as_str())),
                            ])
                        })
                        .collect(),
                ),
            ),
            // Human-readable context; ignored by `parse` (re-derived from
            // `trial_seed` and `program` instead, so it can never go stale).
            ("config", JsonValue::from(format!("{:?}", spec.config))),
            ("ideal_window", JsonValue::from(spec.ideal_window)),
            ("listing", JsonValue::from(self.program.emit().to_string())),
        ])
        .render()
    }

    /// Parse an artifact back from [`Artifact::render`] output.
    ///
    /// # Errors
    /// Returns a description of the first structural problem found.
    pub fn parse(text: &str) -> Result<Artifact, String> {
        let v = json::parse(text).map_err(|e| e.to_string())?;
        let version = v
            .get("version")
            .and_then(JsonValue::as_i64)
            .ok_or("missing version")?;
        if version != VERSION {
            return Err(format!("unsupported artifact version {version}"));
        }
        let seed_field = v.get("trial_seed").ok_or("missing trial_seed")?;
        let trial_seed = if let Some(s) = seed_field.as_str() {
            u64::from_str_radix(s.trim_start_matches("0x"), 16)
                .map_err(|e| format!("bad trial_seed {s:?}: {e}"))?
        } else {
            seed_field.as_i64().ok_or("missing trial_seed")? as u64
        };
        let program = program_from_json(v.get("program").ok_or("missing program")?)?;
        let shrink = v
            .get("shrink")
            .map_or(Ok::<_, String>(ShrinkStats::default()), |s| {
                let field = |k: &str| {
                    s.get(k)
                        .and_then(JsonValue::as_i64)
                        .map(|n| n as usize)
                        .ok_or_else(|| format!("shrink.{k} missing"))
                };
                Ok(ShrinkStats {
                    original_nodes: field("original_nodes")?,
                    final_nodes: field("final_nodes")?,
                    tests: field("tests")?,
                    accepted: field("accepted")?,
                })
            })?;
        let mut failures = Vec::new();
        if let Some(arr) = v.get("failures").and_then(JsonValue::as_array) {
            for f in arr {
                let str_field = |k: &str| {
                    f.get(k)
                        .and_then(JsonValue::as_str)
                        .map(str::to_owned)
                        .ok_or_else(|| format!("failure field {k} missing"))
                };
                failures.push(Failure {
                    kind: FailureKind::from_name(&str_field("kind")?)
                        .ok_or("unknown failure kind")?,
                    model: str_field("model")?,
                    detail: str_field("detail")?,
                    flight: str_field("flight")?,
                });
            }
        }
        Ok(Artifact {
            trial_seed,
            program,
            shrink,
            failures,
        })
    }
}

/// Re-run an artifact's program under its trial's configuration and report
/// what fails now. Fully deterministic: the spec is re-derived from the
/// artifact's trial seed and the program re-emitted from its statement tree.
#[must_use]
pub fn replay(artifact: &Artifact) -> TrialOutcome {
    let spec = TrialSpec::generate(artifact.trial_seed);
    let program = artifact.program.emit();
    let (dynamic_len, failures) = check_program(&program, &spec);
    TrialOutcome {
        spec,
        program_len: program.len(),
        dynamic_len,
        failures,
    }
}

// ---- program (de)serialization -------------------------------------------

fn reg(r: Reg) -> JsonValue {
    JsonValue::I64(i64::from(r.number()))
}

fn op_to_json(op: &SimpleOp) -> JsonValue {
    let arr = |items: Vec<JsonValue>| JsonValue::Arr(items);
    match *op {
        SimpleOp::Add(d, a, b) => arr(vec!["add".into(), reg(d), reg(a), reg(b)]),
        SimpleOp::Sub(d, a, b) => arr(vec!["sub".into(), reg(d), reg(a), reg(b)]),
        SimpleOp::Xor(d, a, b) => arr(vec!["xor".into(), reg(d), reg(a), reg(b)]),
        SimpleOp::And(d, a, b) => arr(vec!["and".into(), reg(d), reg(a), reg(b)]),
        SimpleOp::Or(d, a, b) => arr(vec!["or".into(), reg(d), reg(a), reg(b)]),
        SimpleOp::Mul(d, a, b) => arr(vec!["mul".into(), reg(d), reg(a), reg(b)]),
        SimpleOp::Slt(d, a, b) => arr(vec!["slt".into(), reg(d), reg(a), reg(b)]),
        SimpleOp::Addi(d, a, i) => arr(vec!["addi".into(), reg(d), reg(a), JsonValue::I64(i)]),
        SimpleOp::Srli(d, a, i) => arr(vec!["srli".into(), reg(d), reg(a), JsonValue::I64(i)]),
        SimpleOp::Load(d, i) => arr(vec!["load".into(), reg(d), JsonValue::I64(i)]),
        SimpleOp::Store(s, i) => arr(vec!["store".into(), reg(s), JsonValue::I64(i)]),
        SimpleOp::IndexedLoad { base, rd } => arr(vec!["iload".into(), reg(base), reg(rd)]),
        SimpleOp::IndexedStore { base, rs } => arr(vec!["istore".into(), reg(base), reg(rs)]),
    }
}

fn cond_name(k: CondKind) -> &'static str {
    match k {
        CondKind::Eq => "eq",
        CondKind::Ne => "ne",
        CondKind::Lt => "lt",
        CondKind::Ge => "ge",
    }
}

fn stmt_to_json(s: &Stmt) -> JsonValue {
    match s {
        Stmt::Op(op) => op_to_json(op),
        Stmt::If {
            kind,
            a,
            b,
            then,
            els,
        } => {
            let mut pairs = vec![
                ("if".to_owned(), JsonValue::from(cond_name(*kind))),
                ("a".to_owned(), reg(*a)),
                ("b".to_owned(), reg(*b)),
                ("then".to_owned(), stmts_to_json(then)),
            ];
            if let Some(els) = els {
                pairs.push(("els".to_owned(), stmts_to_json(els)));
            }
            JsonValue::Obj(pairs)
        }
        Stmt::Loop { trips, body } => JsonValue::obj([
            ("loop", JsonValue::from(*trips)),
            ("body", stmts_to_json(body)),
        ]),
        Stmt::Call(idx) => JsonValue::obj([("call", JsonValue::from(*idx))]),
    }
}

fn stmts_to_json(stmts: &[Stmt]) -> JsonValue {
    JsonValue::Arr(stmts.iter().map(stmt_to_json).collect())
}

pub(crate) fn program_to_json(p: &StructuredProgram) -> JsonValue {
    JsonValue::obj([
        (
            "init",
            JsonValue::Arr(
                p.init
                    .iter()
                    .map(|&(r, v)| JsonValue::Arr(vec![reg(r), JsonValue::I64(v)]))
                    .collect(),
            ),
        ),
        ("body", stmts_to_json(&p.body)),
        (
            "funcs",
            JsonValue::Arr(p.funcs.iter().map(|f| stmts_to_json(f)).collect()),
        ),
    ])
}

fn parse_reg(v: &JsonValue) -> Result<Reg, String> {
    let n = v.as_i64().ok_or("register must be a number")?;
    let n = u8::try_from(n).map_err(|_| format!("register {n} out of range"))?;
    Reg::try_from(n).map_err(|e| e.to_string())
}

fn parse_i64(v: &JsonValue) -> Result<i64, String> {
    v.as_i64().ok_or_else(|| "expected an integer".to_owned())
}

fn parse_op(items: &[JsonValue]) -> Result<SimpleOp, String> {
    let name = items
        .first()
        .and_then(JsonValue::as_str)
        .ok_or("op array must start with a name")?;
    let r = |i: usize| parse_reg(items.get(i).ok_or("op too short")?);
    let n = |i: usize| parse_i64(items.get(i).ok_or("op too short")?);
    Ok(match name {
        "add" => SimpleOp::Add(r(1)?, r(2)?, r(3)?),
        "sub" => SimpleOp::Sub(r(1)?, r(2)?, r(3)?),
        "xor" => SimpleOp::Xor(r(1)?, r(2)?, r(3)?),
        "and" => SimpleOp::And(r(1)?, r(2)?, r(3)?),
        "or" => SimpleOp::Or(r(1)?, r(2)?, r(3)?),
        "mul" => SimpleOp::Mul(r(1)?, r(2)?, r(3)?),
        "slt" => SimpleOp::Slt(r(1)?, r(2)?, r(3)?),
        "addi" => SimpleOp::Addi(r(1)?, r(2)?, n(3)?),
        "srli" => SimpleOp::Srli(r(1)?, r(2)?, n(3)?),
        "load" => SimpleOp::Load(r(1)?, n(2)?),
        "store" => SimpleOp::Store(r(1)?, n(2)?),
        "iload" => SimpleOp::IndexedLoad {
            base: r(1)?,
            rd: r(2)?,
        },
        "istore" => SimpleOp::IndexedStore {
            base: r(1)?,
            rs: r(2)?,
        },
        other => return Err(format!("unknown op {other}")),
    })
}

fn parse_cond(s: &str) -> Result<CondKind, String> {
    Ok(match s {
        "eq" => CondKind::Eq,
        "ne" => CondKind::Ne,
        "lt" => CondKind::Lt,
        "ge" => CondKind::Ge,
        other => return Err(format!("unknown condition {other}")),
    })
}

fn parse_stmt(v: &JsonValue) -> Result<Stmt, String> {
    if let Some(items) = v.as_array() {
        return Ok(Stmt::Op(parse_op(items)?));
    }
    if let Some(cond) = v.get("if") {
        let kind = parse_cond(cond.as_str().ok_or("if condition must be a string")?)?;
        let a = parse_reg(v.get("a").ok_or("if missing a")?)?;
        let b = parse_reg(v.get("b").ok_or("if missing b")?)?;
        let then = parse_stmts(v.get("then").ok_or("if missing then")?)?;
        let els = v.get("els").map(parse_stmts).transpose()?;
        return Ok(Stmt::If {
            kind,
            a,
            b,
            then,
            els,
        });
    }
    if let Some(trips) = v.get("loop") {
        let trips = u32::try_from(parse_i64(trips)?).map_err(|_| "bad trip count")?;
        let body = parse_stmts(v.get("body").ok_or("loop missing body")?)?;
        return Ok(Stmt::Loop { trips, body });
    }
    if let Some(idx) = v.get("call") {
        let idx = usize::try_from(parse_i64(idx)?).map_err(|_| "bad call index")?;
        return Ok(Stmt::Call(idx));
    }
    Err("unrecognized statement".to_owned())
}

fn parse_stmts(v: &JsonValue) -> Result<Vec<Stmt>, String> {
    v.as_array()
        .ok_or("statement list must be an array")?
        .iter()
        .map(parse_stmt)
        .collect()
}

pub(crate) fn program_from_json(v: &JsonValue) -> Result<StructuredProgram, String> {
    let mut init = Vec::new();
    for pair in v
        .get("init")
        .and_then(JsonValue::as_array)
        .ok_or("program missing init")?
    {
        let pair = pair.as_array().ok_or("init entry must be [reg, value]")?;
        if pair.len() != 2 {
            return Err("init entry must be [reg, value]".to_owned());
        }
        init.push((parse_reg(&pair[0])?, parse_i64(&pair[1])?));
    }
    let body = parse_stmts(v.get("body").ok_or("program missing body")?)?;
    let funcs = v
        .get("funcs")
        .and_then(JsonValue::as_array)
        .ok_or("program missing funcs")?
        .iter()
        .map(parse_stmts)
        .collect::<Result<Vec<_>, _>>()?;
    Ok(StructuredProgram { init, body, funcs })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ci_workloads::random_structured;

    #[test]
    fn programs_round_trip_through_json() {
        for seed in [0, 1, 17, 99] {
            let sp = random_structured(seed, 150);
            let back = program_from_json(&program_to_json(&sp)).unwrap();
            assert_eq!(sp, back, "seed {seed}");
            assert_eq!(sp.emit(), back.emit(), "seed {seed}");
        }
    }

    #[test]
    fn artifacts_round_trip_and_replay_deterministically() {
        let trial_seed = 12;
        let spec = TrialSpec::generate(trial_seed);
        let artifact = Artifact {
            trial_seed,
            program: random_structured(spec.program_seed, spec.size_hint),
            shrink: ShrinkStats {
                original_nodes: 40,
                final_nodes: 40,
                tests: 0,
                accepted: 0,
            },
            failures: vec![Failure {
                kind: FailureKind::Divergence,
                model: "CI".to_owned(),
                detail: "made-up \"detail\"\nwith newline".to_owned(),
                flight: "cycle 1: ...".to_owned(),
            }],
        };
        let text = artifact.render();
        let back = Artifact::parse(&text).unwrap();
        assert_eq!(back.trial_seed, trial_seed);
        assert_eq!(back.program, artifact.program);
        assert_eq!(back.shrink, artifact.shrink);
        assert_eq!(back.failures.len(), 1);
        assert_eq!(back.failures[0].kind, FailureKind::Divergence);
        assert_eq!(back.failures[0].detail, artifact.failures[0].detail);

        // A healthy program replays clean, and the outcome is identical to a
        // fresh trial on the same seed.
        let outcome = replay(&back);
        assert!(outcome.passed(), "{:?}", outcome.failures);
        let fresh = crate::trial::run_trial(&spec);
        assert_eq!(outcome.dynamic_len, fresh.dynamic_len);
    }

    #[test]
    fn artifact_embeds_human_context() {
        let artifact = Artifact {
            trial_seed: 3,
            program: random_structured(5, 30),
            shrink: ShrinkStats::default(),
            failures: Vec::new(),
        };
        let text = artifact.render();
        let v = ci_obs::json::parse(&text).unwrap();
        assert!(v
            .get("config")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("window"));
        assert!(!v.get("listing").unwrap().as_str().unwrap().is_empty());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Artifact::parse("not json").is_err());
        assert!(Artifact::parse("{}").is_err());
        assert!(Artifact::parse(r#"{"version":99,"trial_seed":1}"#).is_err());
    }
}
