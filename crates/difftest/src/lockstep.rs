//! Lockstep execution of one detailed-pipeline configuration against the
//! functional emulator, with panic capture and retirement-stream logging.

use ci_core::{Pipeline, PipelineConfig, Stats};
use ci_emu::Trace;
use ci_isa::Program;
use ci_obs::{CoverageRecorder, CoverageSignature, Event, FlightRecorder, Probe};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Probe used by every lockstep run: a bounded flight recorder (for failure
/// transcripts), an independent log of retired PCs (so the harness
/// re-verifies the retirement stream itself instead of trusting the
/// pipeline's internal checker alone), and a coverage recorder feeding the
/// corpus-guided fuzzer's novelty signal.
#[derive(Debug, Default)]
pub(crate) struct DiffProbe {
    pub flight: FlightRecorder,
    pub retired_pcs: Vec<u32>,
    pub coverage: CoverageRecorder,
}

impl DiffProbe {
    fn with_salt(salt: u64) -> DiffProbe {
        DiffProbe {
            coverage: CoverageRecorder::with_salt(salt),
            ..DiffProbe::default()
        }
    }
}

impl Probe for DiffProbe {
    #[inline]
    fn record(&mut self, cycle: u64, event: Event) {
        if let Event::Retire { pc, .. } = event {
            self.retired_pcs.push(pc);
        }
        self.coverage.record(cycle, event);
        self.flight.record(cycle, event);
    }

    fn dump(&self) -> Option<String> {
        self.flight.dump()
    }
}

/// Outcome of one detailed-pipeline run under a lockstep check.
#[derive(Debug)]
pub struct LockstepRun {
    /// Statistics, when the run completed without panicking.
    pub stats: Option<Stats>,
    /// Retired PC stream observed through the probe.
    pub retired_pcs: Vec<u32>,
    /// Panic message, when the run died (oracle-checker divergence, forward
    /// progress failure, or any internal invariant violation).
    pub panic: Option<String>,
    /// Flight-recorder transcript (the machine's final cycles).
    pub flight: String,
    /// Coverage signature observed through the probe (empty when the run
    /// panicked — the probe dies with the unwound pipeline).
    pub coverage: CoverageSignature,
    /// Deepest restart nesting the run reached (0 when it panicked).
    pub max_restart_depth: u32,
}

impl LockstepRun {
    /// Whether the run completed and its retired PC stream is bit-identical
    /// to the emulator's correct-path trace.
    #[must_use]
    pub fn matches(&self, trace: &Trace) -> bool {
        self.panic.is_none() && self.divergence(trace).is_none()
    }

    /// First divergence between the retired PC stream and the trace, as a
    /// human-readable report; `None` when the streams are identical.
    #[must_use]
    pub fn divergence(&self, trace: &Trace) -> Option<String> {
        let want = trace.insts();
        if self.retired_pcs.len() != want.len() {
            return Some(format!(
                "retired {} instructions, emulator executed {}",
                self.retired_pcs.len(),
                want.len()
            ));
        }
        for (i, (got, want)) in self.retired_pcs.iter().zip(want).enumerate() {
            if *got != want.pc.0 {
                return Some(format!(
                    "retirement {i}: pipeline retired pc {got}, emulator executed {}",
                    want.summary()
                ));
            }
        }
        None
    }
}

/// Run `program` through the detailed pipeline under `config`, capturing
/// panics (the built-in oracle checker panics on divergence) instead of
/// aborting the fuzzing process. `corrupt` optionally poisons one
/// architectural-reference entry before the run — the test hook used to
/// exercise the failure and shrinking paths on demand.
#[must_use]
pub fn run_locked(
    program: &Program,
    config: PipelineConfig,
    max_insts: u64,
    corrupt: Option<usize>,
) -> LockstepRun {
    run_locked_salted(program, config, max_insts, corrupt, 0)
}

/// [`run_locked`] with an explicit coverage salt: every edge the run's
/// coverage recorder sets folds `salt` in, so different machine variants
/// and handling modes land in distinct regions of the campaign map.
#[must_use]
pub fn run_locked_salted(
    program: &Program,
    config: PipelineConfig,
    max_insts: u64,
    corrupt: Option<usize>,
    salt: u64,
) -> LockstepRun {
    let result = catch_unwind(AssertUnwindSafe(|| {
        let mut p = Pipeline::with_probe(program, config, max_insts, DiffProbe::with_salt(salt))
            .expect("trial programs have valid traces");
        if let Some(idx) = corrupt {
            p.corrupt_oracle_entry(idx);
        }
        let stats = p.run();
        let probe = p.into_probe();
        (stats, probe)
    }));
    match result {
        Ok((stats, probe)) => LockstepRun {
            stats: Some(stats),
            retired_pcs: probe.retired_pcs,
            panic: None,
            flight: probe.flight.render(),
            max_restart_depth: probe.coverage.max_depth(),
            coverage: probe.coverage.into_signature(),
        },
        Err(payload) => {
            let msg = payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_owned()))
                .unwrap_or_else(|| "non-string panic payload".to_owned());
            LockstepRun {
                stats: None,
                retired_pcs: Vec::new(),
                panic: Some(msg),
                flight: String::new(),
                coverage: CoverageSignature::new(),
                max_restart_depth: 0,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ci_core::PipelineConfig;
    use ci_emu::run_trace;
    use ci_workloads::random_program;

    #[test]
    fn clean_runs_match_the_trace() {
        let p = random_program(11, 60);
        let trace = run_trace(&p, 25_000).unwrap();
        let run = run_locked(&p, PipelineConfig::ci(64), 25_000, None);
        assert!(run.panic.is_none(), "{:?}", run.panic);
        assert!(run.matches(&trace));
        assert_eq!(run.stats.unwrap().retired, trace.len() as u64);
    }

    #[test]
    fn corrupted_oracle_is_caught_not_fatal() {
        crate::fuzz::silence_panics();
        let p = random_program(11, 60);
        let run = run_locked(&p, PipelineConfig::ci(64), 25_000, Some(3));
        let msg = run
            .panic
            .expect("corrupted reference must trip the checker");
        assert!(msg.contains("diverges from the emulator"), "{msg}");
    }
}
