//! The fuzzing loops: a deterministic random trial stream ([`run_fuzz`]) and
//! the corpus-driven, coverage-guided campaign ([`run_campaign`]).
//!
//! Both are worker-count independent. The random loop gets this for free:
//! trial `i` of a campaign with seed `s` always runs the spec derived from
//! `mix(s, i)` — a pure function — so `--workers 8` and `--workers 1`
//! explore exactly the same trials, just in a different order.
//!
//! The coverage-guided loop is *stateful* (what gets mutated depends on what
//! the corpus holds), so it runs in **rounds**: each round snapshots the
//! corpus, derives every trial in the round purely from `(campaign seed,
//! global trial index, snapshot)`, executes the batch on the
//! [`ci_runner::run_batch`] work-stealing pool, and then merges results into
//! the coverage map and corpus **in global trial-index order** at the round
//! barrier. Worker count affects only which thread runs which trial, never
//! which trials exist or the order their novelty is judged in — the same
//! discipline, one level up, as the random loop's.

use crate::artifact::Artifact;
use crate::corpus::{Corpus, CorpusEntry, SeedOrigin};
use crate::coverage::CoverageMap;
use crate::mutate::mutate;
use crate::shrink::shrink;
use crate::spec::TrialSpec;
use crate::trial::{check_program, check_program_cov, run_trial, Failure};
use crate::TrialCoverage;
use ci_obs::json::JsonValue;
use ci_report::{f as fmt_f, Table};
use ci_workloads::{random_structured, SplitMix64, StructuredProgram};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, Once};
use std::time::{Duration, Instant};

/// How a campaign chooses its trial programs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum FuzzMode {
    /// Every trial is freshly generated from its trial seed (the classic
    /// loop; coverage is still measured, but never guides).
    #[default]
    Random,
    /// Corpus-driven: trials mutate coverage-novel seeds, weighted by the
    /// energy of the edges they contributed.
    Coverage,
}

impl FuzzMode {
    /// Stable lowercase name (CLI value, report field).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            FuzzMode::Random => "random",
            FuzzMode::Coverage => "coverage",
        }
    }

    /// Parse a [`FuzzMode::name`] back.
    #[must_use]
    pub fn from_name(s: &str) -> Option<FuzzMode> {
        [FuzzMode::Random, FuzzMode::Coverage]
            .into_iter()
            .find(|m| m.name() == s)
    }
}

/// Campaign configuration.
#[derive(Clone, Debug)]
pub struct FuzzOptions {
    /// Campaign seed; trial `i` uses spec seed `mix(seed, i)`.
    pub seed: u64,
    /// Number of trials; `None` means run until the time budget expires.
    pub iters: Option<u64>,
    /// Wall-clock budget; workers stop picking up new trials once elapsed
    /// (checked at round boundaries in coverage mode).
    pub time_budget: Option<Duration>,
    /// Worker threads (clamped to at least 1).
    pub workers: usize,
    /// Where to write failure artifacts; `None` keeps them in memory only.
    pub artifact_dir: Option<PathBuf>,
    /// Cap on artifacts written/retained (further failures are only counted).
    pub max_artifacts: usize,
    /// Predicate evaluations the shrinker may spend per failure.
    pub shrink_budget: usize,
    /// Trial selection strategy ([`run_campaign`] only; [`run_fuzz`] is
    /// always [`FuzzMode::Random`]).
    pub mode: FuzzMode,
    /// Persistent corpus directory: loaded (and coverage-seeded) before the
    /// campaign, saved with any new entries after. `None` keeps the corpus
    /// in memory for the campaign only.
    pub corpus_dir: Option<PathBuf>,
    /// Trials per round in coverage mode (the batch between corpus-merge
    /// barriers; clamped to at least 1).
    pub round_size: usize,
}

impl Default for FuzzOptions {
    fn default() -> Self {
        FuzzOptions {
            seed: 0,
            iters: Some(100),
            time_budget: None,
            workers: 1,
            artifact_dir: None,
            max_artifacts: 5,
            shrink_budget: 400,
            mode: FuzzMode::Random,
            corpus_dir: None,
            round_size: 24,
        }
    }
}

/// What a campaign found.
#[derive(Debug, Default)]
pub struct FuzzSummary {
    /// Campaign seed (echoed into reports).
    pub seed: u64,
    /// Mode the campaign ran in.
    pub mode: FuzzMode,
    /// Trials completed (including rejected mutants, which consume a trial
    /// index but never execute the pipelines).
    pub trials: u64,
    /// Trials with at least one failed check.
    pub failed: u64,
    /// Shrunk artifacts for the first [`FuzzOptions::max_artifacts`]
    /// failures, in trial order.
    pub artifacts: Vec<Artifact>,
    /// Paths written when [`FuzzOptions::artifact_dir`] was set.
    pub written: Vec<PathBuf>,
    /// Wall-clock time spent.
    pub elapsed: Duration,
    /// Rounds executed (coverage mode; random mode counts one).
    pub rounds: u64,
    /// Trials generated fresh from their trial seed.
    pub generated: u64,
    /// Trials produced by mutating a corpus seed.
    pub mutated: u64,
    /// Mutants rejected by the pre-screen (program exceeded the trial's
    /// instruction budget before halting).
    pub rejected: u64,
    /// Distinct coverage edges observed, corpus seeding included.
    pub edges: usize,
    /// Edges contributed by corpus seeding alone, before any trial ran —
    /// the host-speed-independent floor a CI baseline can gate on.
    pub seeded_edges: usize,
    /// Corpus entries after the campaign.
    pub corpus_entries: usize,
    /// Entries this campaign admitted.
    pub new_entries: usize,
    /// Corpus files quarantined at load (corrupt or tampered).
    pub quarantined: Vec<PathBuf>,
}

impl FuzzSummary {
    /// Whether every trial passed every check.
    #[must_use]
    pub fn clean(&self) -> bool {
        self.failed == 0
    }

    /// Trials that actually exercised the pipelines.
    #[must_use]
    pub fn execs(&self) -> u64 {
        self.trials - self.rejected
    }

    /// Mean executions per discovered edge.
    #[must_use]
    pub fn execs_per_edge(&self) -> f64 {
        if self.edges == 0 {
            0.0
        } else {
            self.execs() as f64 / self.edges as f64
        }
    }

    /// The campaign's coverage dashboard as a `coverage_report/v1` JSON
    /// document.
    #[must_use]
    pub fn coverage_json(&self) -> String {
        JsonValue::obj([
            ("format", JsonValue::from("coverage_report/v1")),
            ("seed", JsonValue::from(format!("{:#018x}", self.seed))),
            ("mode", JsonValue::from(self.mode.name())),
            ("trials", JsonValue::from(self.trials)),
            ("rounds", JsonValue::from(self.rounds)),
            ("generated", JsonValue::from(self.generated)),
            ("mutated", JsonValue::from(self.mutated)),
            ("rejected", JsonValue::from(self.rejected)),
            ("failed", JsonValue::from(self.failed)),
            ("edges", JsonValue::from(self.edges)),
            ("seeded_edges", JsonValue::from(self.seeded_edges)),
            ("corpus_entries", JsonValue::from(self.corpus_entries)),
            ("new_entries", JsonValue::from(self.new_entries)),
            ("quarantined", JsonValue::from(self.quarantined.len())),
            ("execs_per_edge", JsonValue::from(self.execs_per_edge())),
            (
                "elapsed_ms",
                JsonValue::from(self.elapsed.as_millis() as u64),
            ),
        ])
        .render()
    }

    /// The same dashboard as a rendered text table.
    #[must_use]
    pub fn coverage_table(&self) -> String {
        let mut t = Table::new(&format!(
            "fuzz coverage — mode {}, seed {:#x}",
            self.mode.name(),
            self.seed
        ));
        t.headers(&["metric", "value"]);
        let mut row = |k: &str, v: String| {
            t.row(vec![k.to_owned(), v]);
        };
        row("trials", self.trials.to_string());
        row("rounds", self.rounds.to_string());
        row("generated", self.generated.to_string());
        row("mutated", self.mutated.to_string());
        row("rejected", self.rejected.to_string());
        row("failed", self.failed.to_string());
        row("edges", self.edges.to_string());
        row("seeded edges", self.seeded_edges.to_string());
        row("corpus entries", self.corpus_entries.to_string());
        row("new entries", self.new_entries.to_string());
        row("execs/edge", fmt_f(self.execs_per_edge(), 2));
        row("elapsed", format!("{:.2?}", self.elapsed));
        t.render()
    }
}

/// Mix a campaign seed and trial index into a trial seed (splitmix-style
/// golden-ratio spread keeps neighbouring indices decorrelated).
#[must_use]
pub fn trial_seed(campaign_seed: u64, index: u64) -> u64 {
    campaign_seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17)
}

/// Install a process-wide panic hook that suppresses the default stderr
/// report. The harness converts pipeline panics (oracle-checker divergences)
/// into findings via `catch_unwind`; without this, every caught panic would
/// still spray a backtrace banner. Idempotent.
pub fn silence_panics() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        std::panic::set_hook(Box::new(|_| {}));
    });
}

struct Shared {
    next: AtomicU64,
    done: AtomicU64,
    failed: AtomicU64,
    stop: AtomicBool,
    findings: Mutex<Vec<(u64, Artifact)>>,
}

/// Run a classic random fuzzing campaign. Deterministic for fixed `seed` +
/// `iters` (time-budget campaigns stop at a scheduling-dependent trial
/// count, but every trial they do run is still individually reproducible
/// from its index). Ignores [`FuzzOptions::mode`]; coverage-guided
/// campaigns go through [`run_campaign`].
#[must_use]
pub fn run_fuzz(opts: &FuzzOptions) -> FuzzSummary {
    silence_panics();
    let start = Instant::now();
    let iters = match (opts.iters, opts.time_budget) {
        (Some(n), _) => n,
        (None, Some(_)) => u64::MAX,
        (None, None) => 100,
    };
    let shared = Shared {
        next: AtomicU64::new(0),
        done: AtomicU64::new(0),
        failed: AtomicU64::new(0),
        stop: AtomicBool::new(false),
        findings: Mutex::new(Vec::new()),
    };
    let workers = opts.workers.max(1);

    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| worker(opts, iters, start, &shared));
        }
    });

    let mut findings = shared.findings.into_inner().expect("no worker panics");
    findings.sort_by_key(|(idx, _)| *idx);
    findings.truncate(opts.max_artifacts);

    let trials = shared.done.into_inner();
    let mut summary = FuzzSummary {
        seed: opts.seed,
        mode: FuzzMode::Random,
        trials,
        generated: trials,
        failed: shared.failed.into_inner(),
        artifacts: findings.into_iter().map(|(_, a)| a).collect(),
        elapsed: start.elapsed(),
        rounds: 1,
        ..FuzzSummary::default()
    };
    write_artifacts(opts, &mut summary);
    summary
}

fn worker(opts: &FuzzOptions, iters: u64, start: Instant, shared: &Shared) {
    loop {
        if shared.stop.load(Ordering::Relaxed) {
            return;
        }
        if let Some(budget) = opts.time_budget {
            if start.elapsed() >= budget {
                return;
            }
        }
        let idx = shared.next.fetch_add(1, Ordering::Relaxed);
        if idx >= iters {
            return;
        }
        let tseed = trial_seed(opts.seed, idx);
        let spec = TrialSpec::generate(tseed);
        let outcome = run_trial(&spec);
        shared.done.fetch_add(1, Ordering::Relaxed);
        if outcome.passed() {
            continue;
        }
        let nth = shared.failed.fetch_add(1, Ordering::Relaxed);
        if nth as usize >= opts.max_artifacts {
            continue; // counted, but not worth another shrink campaign
        }
        let original = random_structured(spec.program_seed, spec.size_hint);
        let artifact = shrink_to_artifact(&original, tseed, &spec, opts.shrink_budget);
        shared
            .findings
            .lock()
            .expect("no worker panics")
            .push((idx, artifact));
    }
}

fn shrink_to_artifact(
    original: &StructuredProgram,
    tseed: u64,
    spec: &TrialSpec,
    budget: usize,
) -> Artifact {
    let (min, stats) = shrink(original, budget, |candidate| {
        !check_program(&candidate.emit(), spec).1.is_empty()
    });
    let (_, failures) = check_program(&min.emit(), spec);
    Artifact {
        trial_seed: tseed,
        program: min,
        shrink: stats,
        failures,
    }
}

fn write_artifacts(opts: &FuzzOptions, summary: &mut FuzzSummary) {
    if let Some(dir) = &opts.artifact_dir {
        let _ = std::fs::create_dir_all(dir);
        for artifact in &summary.artifacts {
            let path = dir.join(format!("fuzz-{:016x}.json", artifact.trial_seed));
            if std::fs::write(&path, artifact.render()).is_ok() {
                summary.written.push(path);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Coverage-guided campaign.

/// A corpus seed's state at a round boundary: the program to mutate plus
/// the energy weighting parent selection draws against.
struct SeedState {
    program: StructuredProgram,
    novel_edges: usize,
    selections: u64,
}

impl SeedState {
    /// Selection weight: proportional to the edges the seed contributed,
    /// decayed as it gets picked, never zero (every seed stays reachable).
    fn energy(&self) -> u64 {
        ((self.novel_edges.max(1) as u64) * 16 / (1 + self.selections)).max(1)
    }
}

enum TaskKind {
    Generated,
    Mutated { parent: usize },
}

struct RoundTask {
    idx: u64,
    tseed: u64,
    spec: TrialSpec,
    program: StructuredProgram,
    kind: TaskKind,
}

struct TrialResult {
    rejected: bool,
    failures: Vec<Failure>,
    coverage: TrialCoverage,
}

/// Derive round trial `idx` purely from the campaign seed and the corpus
/// snapshot — the function whose purity makes coverage campaigns
/// worker-count independent.
fn derive_task(campaign_seed: u64, idx: u64, mode: FuzzMode, snapshot: &[SeedState]) -> RoundTask {
    let tseed = trial_seed(campaign_seed, idx);
    let spec = TrialSpec::generate(tseed);
    // A separate stream from the spec's: scheduling decisions must not
    // perturb the config the trial runs under.
    let mut rng = SplitMix64::new(tseed ^ 0xC0E_FACE_5EED);
    let generate = mode == FuzzMode::Random || snapshot.is_empty() || rng.chance(30);
    if generate {
        return RoundTask {
            idx,
            tseed,
            spec,
            program: random_structured(spec.program_seed, spec.size_hint),
            kind: TaskKind::Generated,
        };
    }
    let parent = pick_parent(snapshot, &mut rng);
    let mut program = snapshot[parent].program.clone();
    let steps = 1 + rng.below(3);
    for _ in 0..steps {
        program = mutate(&program, rng.next_u64()).0;
    }
    RoundTask {
        idx,
        tseed,
        spec,
        program,
        kind: TaskKind::Mutated { parent },
    }
}

/// Energy-weighted seed selection over the round snapshot.
fn pick_parent(snapshot: &[SeedState], rng: &mut SplitMix64) -> usize {
    let total: u64 = snapshot.iter().map(SeedState::energy).sum();
    let mut roll = rng.below(total.max(1));
    for (i, s) in snapshot.iter().enumerate() {
        let e = s.energy();
        if roll < e {
            return i;
        }
        roll -= e;
    }
    snapshot.len() - 1
}

/// Run a coverage-guided (or coverage-*measured* random) campaign.
///
/// Loads the corpus from [`FuzzOptions::corpus_dir`] (quarantining corrupt
/// entries), seeds the coverage map from the stored signatures, then runs
/// trials in rounds of [`FuzzOptions::round_size`]: snapshot the corpus,
/// derive every trial in the round from `(seed, index, snapshot)`, execute
/// the batch on the shared worker pool, and merge coverage and corpus
/// admissions at the barrier in trial-index order. Saves new corpus
/// entries back to disk before returning.
///
/// Deterministic for fixed `seed` + `iters`, for any worker count.
///
/// # Errors
/// Returns a message when the corpus directory cannot be read or written —
/// harness errors, distinct from findings (which land in the summary).
pub fn run_campaign(opts: &FuzzOptions) -> Result<FuzzSummary, String> {
    silence_panics();
    let start = Instant::now();
    let iters = match (opts.iters, opts.time_budget) {
        (Some(n), _) => n,
        (None, Some(_)) => u64::MAX,
        (None, None) => 100,
    };
    let workers = opts.workers.max(1);
    let round_size = opts.round_size.max(1) as u64;

    let (mut corpus, quarantined) = match &opts.corpus_dir {
        Some(dir) if opts.mode == FuzzMode::Coverage => Corpus::load(dir)?,
        _ => (Corpus::new(), Vec::new()),
    };
    let mut map = CoverageMap::new();
    for entry in corpus.entries() {
        map.seed(&entry.signature);
    }
    let seeded_edges = map.edges();
    let mut states: Vec<SeedState> = corpus
        .entries()
        .iter()
        .map(|e| SeedState {
            program: e.program.clone(),
            novel_edges: e.novel_edges,
            selections: 0,
        })
        .collect();

    let mut summary = FuzzSummary {
        seed: opts.seed,
        mode: opts.mode,
        seeded_edges,
        quarantined,
        ..FuzzSummary::default()
    };
    let mut findings: Vec<(u64, Artifact)> = Vec::new();

    let mut next = 0u64;
    while next < iters {
        if let Some(budget) = opts.time_budget {
            if start.elapsed() >= budget {
                break;
            }
        }
        let n = round_size.min(iters - next);
        let tasks: Vec<RoundTask> = (next..next + n)
            .map(|idx| derive_task(opts.seed, idx, opts.mode, &states))
            .collect();

        // Execute the batch; slot k collects trial k's result.
        let results: Mutex<Vec<Option<TrialResult>>> =
            Mutex::new((0..tasks.len()).map(|_| None).collect());
        let jobs: Vec<_> = tasks
            .iter()
            .enumerate()
            .map(|(k, task)| {
                let results = &results;
                move || {
                    let result = run_task(task);
                    results.lock().expect("no job panics")[k] = Some(result);
                }
            })
            .collect();
        ci_runner::pool::run_batch(workers, jobs);

        // Barrier: merge in global trial-index order.
        let round_results = results.into_inner().expect("no job panics");
        for (task, result) in tasks.iter().zip(round_results) {
            let result = result.expect("every job ran");
            summary.trials += 1;
            match task.kind {
                TaskKind::Generated => summary.generated += 1,
                TaskKind::Mutated { parent } => {
                    summary.mutated += 1;
                    states[parent].selections += 1;
                }
            }
            if result.rejected {
                summary.rejected += 1;
                continue;
            }
            let novel = map.novelty(&result.coverage);
            map.merge(&result.coverage);
            if novel > 0 && opts.mode == FuzzMode::Coverage {
                let entry = CorpusEntry {
                    name: format!("seed-{:016x}", result.coverage.signature.digest()),
                    origin: match task.kind {
                        TaskKind::Generated => SeedOrigin::Generated,
                        TaskKind::Mutated { .. } => SeedOrigin::Mutated,
                    },
                    trial_seed: task.tseed,
                    program: task.program.clone(),
                    signature: result.coverage.signature.clone(),
                    novel_edges: novel,
                };
                if corpus.add(entry) {
                    summary.new_entries += 1;
                    states.push(SeedState {
                        program: task.program.clone(),
                        novel_edges: novel,
                        selections: 0,
                    });
                }
            }
            if !result.failures.is_empty() {
                summary.failed += 1;
                if findings.len() < opts.max_artifacts {
                    findings.push((
                        task.idx,
                        shrink_to_artifact(
                            &task.program,
                            task.tseed,
                            &task.spec,
                            opts.shrink_budget,
                        ),
                    ));
                }
            }
        }
        summary.rounds += 1;
        next += n;
    }

    summary.edges = map.edges();
    summary.corpus_entries = corpus.len();
    summary.artifacts = findings.into_iter().map(|(_, a)| a).collect();
    summary.elapsed = start.elapsed();
    write_artifacts(opts, &mut summary);
    if let Some(dir) = &opts.corpus_dir {
        if opts.mode == FuzzMode::Coverage {
            corpus.save(dir)?;
        }
    }
    Ok(summary)
}

fn run_task(task: &RoundTask) -> TrialResult {
    let program = task.program.emit();
    if matches!(task.kind, TaskKind::Mutated { .. }) {
        // Pre-screen mutants: a well-formed mutant always halts, but
        // stacked duplications can push its dynamic length past the trial
        // budget — that is a rejected input, not a finding.
        match ci_emu::run_trace(&program, task.spec.max_insts) {
            Ok(trace) if trace.completed() => {}
            _ => {
                return TrialResult {
                    rejected: true,
                    failures: Vec::new(),
                    coverage: TrialCoverage::default(),
                }
            }
        }
    }
    let (_, failures, coverage) = check_program_cov(&program, &task.spec);
    TrialResult {
        rejected: false,
        failures,
        coverage,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_short_clean_campaign() {
        let summary = run_fuzz(&FuzzOptions {
            seed: 1,
            iters: Some(8),
            workers: 2,
            ..FuzzOptions::default()
        });
        assert_eq!(summary.trials, 8);
        assert!(summary.clean(), "{:?}", summary.artifacts);
        assert!(summary.artifacts.is_empty());
    }

    #[test]
    fn trial_seeds_are_spread() {
        let a = trial_seed(42, 0);
        let b = trial_seed(42, 1);
        let c = trial_seed(43, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        // Same coordinates, same seed: worker-count independence rests here.
        assert_eq!(trial_seed(42, 1), b);
    }

    #[test]
    fn time_budget_campaigns_terminate() {
        let summary = run_fuzz(&FuzzOptions {
            seed: 2,
            iters: None,
            time_budget: Some(Duration::from_millis(300)),
            workers: 2,
            ..FuzzOptions::default()
        });
        assert!(summary.trials >= 1);
        assert!(summary.clean(), "{:?}", summary.artifacts);
    }

    #[test]
    fn coverage_campaign_accumulates_edges_and_corpus() {
        let summary = run_campaign(&FuzzOptions {
            seed: 5,
            iters: Some(10),
            workers: 2,
            mode: FuzzMode::Coverage,
            round_size: 5,
            ..FuzzOptions::default()
        })
        .unwrap();
        assert_eq!(summary.trials, 10);
        assert_eq!(summary.rounds, 2);
        assert!(summary.clean(), "{:?}", summary.artifacts);
        assert!(summary.edges > 0, "trials must contribute coverage");
        assert!(
            summary.new_entries > 0,
            "novel trials must enter the corpus"
        );
        assert_eq!(summary.corpus_entries, summary.new_entries);
        // The second round mutates the first round's admissions.
        assert!(summary.mutated > 0, "round 2 should mutate round 1 seeds");
    }

    #[test]
    fn random_mode_measures_but_never_admits() {
        let summary = run_campaign(&FuzzOptions {
            seed: 5,
            iters: Some(6),
            mode: FuzzMode::Random,
            round_size: 3,
            ..FuzzOptions::default()
        })
        .unwrap();
        assert_eq!(summary.trials, 6);
        assert_eq!(summary.generated, 6);
        assert_eq!(summary.mutated, 0);
        assert!(summary.edges > 0);
        assert_eq!(summary.corpus_entries, 0);
    }

    #[test]
    fn reports_render_both_ways() {
        let summary = run_campaign(&FuzzOptions {
            seed: 9,
            iters: Some(4),
            mode: FuzzMode::Coverage,
            round_size: 4,
            ..FuzzOptions::default()
        })
        .unwrap();
        let json = summary.coverage_json();
        let v = ci_obs::json::parse(&json).unwrap();
        assert_eq!(
            v.get("format").unwrap().as_str(),
            Some("coverage_report/v1")
        );
        assert_eq!(v.get("trials").unwrap().as_i64(), Some(4));
        assert!(v.get("edges").unwrap().as_i64().unwrap() > 0);
        let table = summary.coverage_table();
        assert!(table.contains("edges"), "{table}");
    }

    #[test]
    fn mode_names_round_trip() {
        for m in [FuzzMode::Random, FuzzMode::Coverage] {
            assert_eq!(FuzzMode::from_name(m.name()), Some(m));
        }
        assert_eq!(FuzzMode::from_name("nope"), None);
    }
}
