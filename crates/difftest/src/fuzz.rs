//! The fuzzing loop: a deterministic trial stream drained by a worker pool.
//!
//! Trial `i` of a campaign with seed `s` always runs the spec derived from
//! `mix(s, i)` — a pure function — so a campaign's findings are independent
//! of worker count and thread scheduling: `--workers 8` and `--workers 1`
//! explore exactly the same trials, just in a different order.

use crate::artifact::Artifact;
use crate::shrink::shrink;
use crate::spec::TrialSpec;
use crate::trial::{check_program, run_trial};
use ci_workloads::random_structured;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, Once};
use std::time::{Duration, Instant};

/// Campaign configuration.
#[derive(Clone, Debug)]
pub struct FuzzOptions {
    /// Campaign seed; trial `i` uses spec seed `mix(seed, i)`.
    pub seed: u64,
    /// Number of trials; `None` means run until the time budget expires.
    pub iters: Option<u64>,
    /// Wall-clock budget; workers stop picking up new trials once elapsed.
    pub time_budget: Option<Duration>,
    /// Worker threads (clamped to at least 1).
    pub workers: usize,
    /// Where to write failure artifacts; `None` keeps them in memory only.
    pub artifact_dir: Option<PathBuf>,
    /// Cap on artifacts written/retained (further failures are only counted).
    pub max_artifacts: usize,
    /// Predicate evaluations the shrinker may spend per failure.
    pub shrink_budget: usize,
}

impl Default for FuzzOptions {
    fn default() -> Self {
        FuzzOptions {
            seed: 0,
            iters: Some(100),
            time_budget: None,
            workers: 1,
            artifact_dir: None,
            max_artifacts: 5,
            shrink_budget: 400,
        }
    }
}

/// What a campaign found.
#[derive(Debug, Default)]
pub struct FuzzSummary {
    /// Trials completed.
    pub trials: u64,
    /// Trials with at least one failed check.
    pub failed: u64,
    /// Shrunk artifacts for the first [`FuzzOptions::max_artifacts`]
    /// failures, in trial order.
    pub artifacts: Vec<Artifact>,
    /// Paths written when [`FuzzOptions::artifact_dir`] was set.
    pub written: Vec<PathBuf>,
    /// Wall-clock time spent.
    pub elapsed: Duration,
}

impl FuzzSummary {
    /// Whether every trial passed every check.
    #[must_use]
    pub fn clean(&self) -> bool {
        self.failed == 0
    }
}

/// Mix a campaign seed and trial index into a trial seed (splitmix-style
/// golden-ratio spread keeps neighbouring indices decorrelated).
#[must_use]
pub fn trial_seed(campaign_seed: u64, index: u64) -> u64 {
    campaign_seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17)
}

/// Install a process-wide panic hook that suppresses the default stderr
/// report. The harness converts pipeline panics (oracle-checker divergences)
/// into findings via `catch_unwind`; without this, every caught panic would
/// still spray a backtrace banner. Idempotent.
pub fn silence_panics() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        std::panic::set_hook(Box::new(|_| {}));
    });
}

struct Shared {
    next: AtomicU64,
    done: AtomicU64,
    failed: AtomicU64,
    stop: AtomicBool,
    findings: Mutex<Vec<(u64, Artifact)>>,
}

/// Run a fuzzing campaign. Deterministic for fixed `seed` + `iters`
/// (time-budget campaigns stop at a scheduling-dependent trial count, but
/// every trial they do run is still individually reproducible from its
/// index).
#[must_use]
pub fn run_fuzz(opts: &FuzzOptions) -> FuzzSummary {
    silence_panics();
    let start = Instant::now();
    let iters = match (opts.iters, opts.time_budget) {
        (Some(n), _) => n,
        (None, Some(_)) => u64::MAX,
        (None, None) => 100,
    };
    let shared = Shared {
        next: AtomicU64::new(0),
        done: AtomicU64::new(0),
        failed: AtomicU64::new(0),
        stop: AtomicBool::new(false),
        findings: Mutex::new(Vec::new()),
    };
    let workers = opts.workers.max(1);

    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| worker(opts, iters, start, &shared));
        }
    });

    let mut findings = shared.findings.into_inner().expect("no worker panics");
    findings.sort_by_key(|(idx, _)| *idx);
    findings.truncate(opts.max_artifacts);

    let mut summary = FuzzSummary {
        trials: shared.done.into_inner(),
        failed: shared.failed.into_inner(),
        artifacts: findings.into_iter().map(|(_, a)| a).collect(),
        written: Vec::new(),
        elapsed: start.elapsed(),
    };
    if let Some(dir) = &opts.artifact_dir {
        let _ = std::fs::create_dir_all(dir);
        for artifact in &summary.artifacts {
            let path = dir.join(format!("fuzz-{:016x}.json", artifact.trial_seed));
            if std::fs::write(&path, artifact.render()).is_ok() {
                summary.written.push(path);
            }
        }
    }
    summary
}

fn worker(opts: &FuzzOptions, iters: u64, start: Instant, shared: &Shared) {
    loop {
        if shared.stop.load(Ordering::Relaxed) {
            return;
        }
        if let Some(budget) = opts.time_budget {
            if start.elapsed() >= budget {
                return;
            }
        }
        let idx = shared.next.fetch_add(1, Ordering::Relaxed);
        if idx >= iters {
            return;
        }
        let tseed = trial_seed(opts.seed, idx);
        let spec = TrialSpec::generate(tseed);
        let outcome = run_trial(&spec);
        shared.done.fetch_add(1, Ordering::Relaxed);
        if outcome.passed() {
            continue;
        }
        let nth = shared.failed.fetch_add(1, Ordering::Relaxed);
        if nth as usize >= opts.max_artifacts {
            continue; // counted, but not worth another shrink campaign
        }
        let original = random_structured(spec.program_seed, spec.size_hint);
        let (min, stats) = shrink(&original, opts.shrink_budget, |candidate| {
            !check_program(&candidate.emit(), &spec).1.is_empty()
        });
        let (_, failures) = check_program(&min.emit(), &spec);
        let artifact = Artifact {
            trial_seed: tseed,
            program: min,
            shrink: stats,
            failures,
        };
        shared
            .findings
            .lock()
            .expect("no worker panics")
            .push((idx, artifact));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_short_clean_campaign() {
        let summary = run_fuzz(&FuzzOptions {
            seed: 1,
            iters: Some(8),
            workers: 2,
            ..FuzzOptions::default()
        });
        assert_eq!(summary.trials, 8);
        assert!(summary.clean(), "{:?}", summary.artifacts);
        assert!(summary.artifacts.is_empty());
    }

    #[test]
    fn trial_seeds_are_spread() {
        let a = trial_seed(42, 0);
        let b = trial_seed(42, 1);
        let c = trial_seed(43, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        // Same coordinates, same seed: worker-count independence rests here.
        assert_eq!(trial_seed(42, 1), b);
    }

    #[test]
    fn time_budget_campaigns_terminate() {
        let summary = run_fuzz(&FuzzOptions {
            seed: 2,
            iters: None,
            time_budget: Some(Duration::from_millis(300)),
            workers: 2,
            ..FuzzOptions::default()
        });
        assert!(summary.trials >= 1);
        assert!(summary.clean(), "{:?}", summary.artifacts);
    }
}
