//! Automatic test-case reduction over [`StructuredProgram`] trees.
//!
//! Greedy delta debugging: propose one structural edit at a time (delete a
//! chunk of statements, drop an else arm, inline a diamond or loop body,
//! halve a loop's trip count, drop a register seed), keep the edit if the
//! failure predicate still fires on the re-emitted program, restart the pass
//! after every accepted edit. Because labels and branch targets are
//! regenerated on every [`StructuredProgram::emit`], no edit can produce an
//! unassemblable program — every candidate is a valid, terminating program.

use ci_workloads::{Stmt, StructuredProgram};

/// What the shrinker did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShrinkStats {
    /// Statement nodes in the original failing program.
    pub original_nodes: usize,
    /// Statement nodes in the reduced program.
    pub final_nodes: usize,
    /// Predicate evaluations spent.
    pub tests: usize,
    /// Edits that preserved the failure and were kept.
    pub accepted: usize,
}

/// Which statement list an edit targets.
#[derive(Clone, Copy, Debug)]
enum Root {
    Body,
    Func(usize),
}

/// One descent step from a statement list into a nested list.
#[derive(Clone, Copy, Debug)]
enum Step {
    /// Into the then-arm of the `If` at this index.
    Then(usize),
    /// Into the else-arm of the `If` at this index.
    Els(usize),
    /// Into the body of the `Loop` at this index.
    Body(usize),
}

/// Address of one statement list inside a program.
#[derive(Clone, Debug)]
struct ListPath {
    root: Root,
    steps: Vec<Step>,
}

/// One candidate reduction.
#[derive(Clone, Debug)]
enum Edit {
    /// Remove `list[start..start + len]`.
    DeleteRange {
        at: ListPath,
        start: usize,
        len: usize,
    },
    /// Replace the `If` at `list[idx]` with its then-arm statements.
    InlineThen { at: ListPath, idx: usize },
    /// Drop the else arm of the `If` at `list[idx]` (keep the branch).
    DropEls { at: ListPath, idx: usize },
    /// Replace the `Loop` at `list[idx]` with one copy of its body.
    InlineLoop { at: ListPath, idx: usize },
    /// Halve the trip count of the `Loop` at `list[idx]`.
    HalveTrips { at: ListPath, idx: usize },
    /// Remove register seed `init[idx]`.
    DeleteInit { idx: usize },
}

fn list<'p>(p: &'p StructuredProgram, path: &ListPath) -> Option<&'p Vec<Stmt>> {
    let mut cur = match path.root {
        Root::Body => &p.body,
        Root::Func(i) => p.funcs.get(i)?,
    };
    for step in &path.steps {
        cur = match (step, cur.get(step_idx(*step))?) {
            (Step::Then(_), Stmt::If { then, .. }) => then,
            (Step::Els(_), Stmt::If { els: Some(e), .. }) => e,
            (Step::Body(_), Stmt::Loop { body, .. }) => body,
            _ => return None,
        };
    }
    Some(cur)
}

fn list_mut<'p>(p: &'p mut StructuredProgram, path: &ListPath) -> Option<&'p mut Vec<Stmt>> {
    let mut cur = match path.root {
        Root::Body => &mut p.body,
        Root::Func(i) => p.funcs.get_mut(i)?,
    };
    for step in &path.steps {
        cur = match (step, cur.get_mut(step_idx(*step))?) {
            (Step::Then(_), Stmt::If { then, .. }) => then,
            (Step::Els(_), Stmt::If { els: Some(e), .. }) => e,
            (Step::Body(_), Stmt::Loop { body, .. }) => body,
            _ => return None,
        };
    }
    Some(cur)
}

fn step_idx(s: Step) -> usize {
    match s {
        Step::Then(i) | Step::Els(i) | Step::Body(i) => i,
    }
}

/// Every statement list in the program, outermost first.
fn collect_paths(p: &StructuredProgram) -> Vec<ListPath> {
    fn descend(stmts: &[Stmt], here: &ListPath, out: &mut Vec<ListPath>) {
        out.push(here.clone());
        for (i, s) in stmts.iter().enumerate() {
            match s {
                Stmt::If { then, els, .. } => {
                    let mut t = here.clone();
                    t.steps.push(Step::Then(i));
                    descend(then, &t, out);
                    if let Some(els) = els {
                        let mut e = here.clone();
                        e.steps.push(Step::Els(i));
                        descend(els, &e, out);
                    }
                }
                Stmt::Loop { body, .. } => {
                    let mut b = here.clone();
                    b.steps.push(Step::Body(i));
                    descend(body, &b, out);
                }
                Stmt::Op(_) | Stmt::Call(_) => {}
            }
        }
    }
    let mut out = Vec::new();
    descend(
        &p.body,
        &ListPath {
            root: Root::Body,
            steps: Vec::new(),
        },
        &mut out,
    );
    for (i, f) in p.funcs.iter().enumerate() {
        descend(
            f,
            &ListPath {
                root: Root::Func(i),
                steps: Vec::new(),
            },
            &mut out,
        );
    }
    out
}

/// All candidate edits for the current program, most aggressive first:
/// whole-list and large-chunk deletions before single statements, structure
/// collapses, then trip halvings and init pruning.
fn candidates(p: &StructuredProgram) -> Vec<Edit> {
    let mut out = Vec::new();
    let paths = collect_paths(p);

    // Chunk deletions: per list, sizes n, n/2, …, 1 at every aligned offset.
    for path in &paths {
        let n = list(p, path).map_or(0, Vec::len);
        let mut size = n;
        while size >= 1 {
            let mut start = 0;
            while start < n {
                out.push(Edit::DeleteRange {
                    at: path.clone(),
                    start,
                    len: size.min(n - start),
                });
                start += size;
            }
            if size == 1 {
                break;
            }
            size /= 2;
        }
    }

    // Structural collapses and loop weakenings.
    for path in &paths {
        let Some(stmts) = list(p, path) else { continue };
        for (idx, s) in stmts.iter().enumerate() {
            match s {
                Stmt::If { els, .. } => {
                    out.push(Edit::InlineThen {
                        at: path.clone(),
                        idx,
                    });
                    if els.is_some() {
                        out.push(Edit::DropEls {
                            at: path.clone(),
                            idx,
                        });
                    }
                }
                Stmt::Loop { trips, .. } => {
                    out.push(Edit::InlineLoop {
                        at: path.clone(),
                        idx,
                    });
                    if *trips > 1 {
                        out.push(Edit::HalveTrips {
                            at: path.clone(),
                            idx,
                        });
                    }
                }
                Stmt::Op(_) | Stmt::Call(_) => {}
            }
        }
    }

    for idx in 0..p.init.len() {
        out.push(Edit::DeleteInit { idx });
    }
    out
}

/// Apply one edit, returning the edited program (`None` when the edit no
/// longer applies — paths are recomputed every round, so this only guards
/// internal races).
fn apply(p: &StructuredProgram, edit: &Edit) -> Option<StructuredProgram> {
    let mut out = p.clone();
    match edit {
        Edit::DeleteRange { at, start, len } => {
            let l = list_mut(&mut out, at)?;
            if *start + *len > l.len() || *len == 0 {
                return None;
            }
            l.drain(*start..*start + *len);
        }
        Edit::InlineThen { at, idx } => {
            let l = list_mut(&mut out, at)?;
            let Stmt::If { then, .. } = l.get(*idx)? else {
                return None;
            };
            let then = then.clone();
            l.splice(*idx..=*idx, then);
        }
        Edit::DropEls { at, idx } => {
            let l = list_mut(&mut out, at)?;
            let Stmt::If { els, .. } = l.get_mut(*idx)? else {
                return None;
            };
            els.take()?;
        }
        Edit::InlineLoop { at, idx } => {
            let l = list_mut(&mut out, at)?;
            let Stmt::Loop { body, .. } = l.get(*idx)? else {
                return None;
            };
            let body = body.clone();
            l.splice(*idx..=*idx, body);
        }
        Edit::HalveTrips { at, idx } => {
            let l = list_mut(&mut out, at)?;
            let Stmt::Loop { trips, .. } = l.get_mut(*idx)? else {
                return None;
            };
            if *trips <= 1 {
                return None;
            }
            *trips /= 2;
        }
        Edit::DeleteInit { idx } => {
            if *idx >= out.init.len() {
                return None;
            }
            out.init.remove(*idx);
        }
    }
    // Empty functions are fine (emit handles them), but drop trailing ones so
    // the reduced artifact is as small as it looks.
    while out.funcs.last().is_some_and(Vec::is_empty) {
        out.funcs.pop();
    }
    Some(out)
}

/// Reduce `start` to a (locally) minimal program on which `fails` still
/// returns `true`. `fails(start)` is assumed true; `budget` caps predicate
/// evaluations (each one typically re-runs the whole lockstep check).
pub fn shrink<F>(
    start: &StructuredProgram,
    budget: usize,
    mut fails: F,
) -> (StructuredProgram, ShrinkStats)
where
    F: FnMut(&StructuredProgram) -> bool,
{
    let mut stats = ShrinkStats {
        original_nodes: start.node_count(),
        ..ShrinkStats::default()
    };
    let mut cur = start.clone();
    'outer: loop {
        for edit in candidates(&cur) {
            if stats.tests >= budget {
                break 'outer;
            }
            let Some(next) = apply(&cur, &edit) else {
                continue;
            };
            // Only consider genuinely smaller programs (trip halving keeps
            // node count but reduces dynamic length; allow it too).
            let smaller = next.node_count() < cur.node_count()
                || next.init.len() < cur.init.len()
                || matches!(edit, Edit::HalveTrips { .. });
            if !smaller {
                continue;
            }
            stats.tests += 1;
            if fails(&next) {
                stats.accepted += 1;
                cur = next;
                continue 'outer; // paths changed; restart the pass
            }
        }
        break; // full pass with no accepted edit: local minimum
    }
    stats.final_nodes = cur.node_count();
    (cur, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ci_isa::Reg;
    use ci_workloads::{random_structured, SimpleOp};

    fn has_mul(stmts: &[Stmt]) -> bool {
        stmts.iter().any(|s| match s {
            Stmt::Op(SimpleOp::Mul(..)) => true,
            Stmt::Op(_) | Stmt::Call(_) => false,
            Stmt::If { then, els, .. } => has_mul(then) || els.as_ref().is_some_and(|e| has_mul(e)),
            Stmt::Loop { body, .. } => has_mul(body),
        })
    }

    fn program_has_mul(p: &StructuredProgram) -> bool {
        has_mul(&p.body) || p.funcs.iter().any(|f| has_mul(f))
    }

    #[test]
    fn shrinks_to_the_predicate_kernel() {
        // Find a seed whose program contains a multiply, then shrink with
        // "contains a multiply" as the failure — the reduced program should
        // be almost nothing but that multiply.
        let mut tried = 0;
        for seed in 0.. {
            let sp = random_structured(seed, 120);
            if !program_has_mul(&sp) {
                continue;
            }
            tried += 1;
            let (min, stats) = shrink(&sp, 5_000, program_has_mul);
            assert!(program_has_mul(&min));
            assert_eq!(stats.original_nodes, sp.node_count());
            assert_eq!(stats.final_nodes, min.node_count());
            assert!(
                min.node_count() <= 2,
                "expected near-singleton, got {} nodes from {}",
                min.node_count(),
                sp.node_count()
            );
            assert!(!min.emit().is_empty());
            if tried == 3 {
                break;
            }
        }
    }

    #[test]
    fn shrink_respects_the_budget() {
        let sp = random_structured(5, 200);
        let (_, stats) = shrink(&sp, 7, |_| false);
        assert!(stats.tests <= 7);
        assert_eq!(stats.accepted, 0);
        assert_eq!(stats.final_nodes, stats.original_nodes);
    }

    #[test]
    fn edits_never_break_emission() {
        // Every single-edit neighbour of a generated program must still
        // assemble and terminate.
        let sp = random_structured(33, 80);
        let mut checked = 0;
        for edit in candidates(&sp) {
            if let Some(next) = apply(&sp, &edit) {
                let p = next.emit();
                let t = ci_emu::run_trace(&p, 100_000).unwrap();
                assert!(t.completed(), "edit {edit:?} broke termination");
                checked += 1;
            }
        }
        assert!(checked > 20, "only {checked} applicable edits");
    }

    #[test]
    fn init_pruning_reaches_empty_when_allowed() {
        let sp = StructuredProgram {
            init: vec![(Reg::R1, 1), (Reg::R2, 2)],
            body: vec![Stmt::Op(SimpleOp::Add(Reg::R3, Reg::R1, Reg::R2))],
            funcs: vec![],
        };
        let (min, _) = shrink(&sp, 100, |_| true);
        assert!(min.init.is_empty());
        assert!(min.body.is_empty());
    }
}
