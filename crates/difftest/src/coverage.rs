//! Trial-level coverage: salted per-machine signatures, config-derived
//! features, and the campaign-global coverage map.
//!
//! Each trial runs the three detailed machines (BASE / CI / CI-I) with a
//! [`ci_obs::CoverageRecorder`] attached. The recorder hashes **event
//! bigrams with restart-depth context** (see `ci-obs`); this module decides
//! *which key space* each machine's edges land in and folds in the features
//! only the harness can see:
//!
//! - **Machine × handling-mode salt.** An edge exercised under selective
//!   squash with non-speculative completion is a different verification
//!   target from the same event sequence under full squash — the recovery
//!   code paths involved are different. Each machine's recorder is salted
//!   with [`mode_salt`], a hash of the machine index and the
//!   recovery-relevant configuration axes (completion model, preemption,
//!   repredict mode, reconvergence family, window/segment class). The
//!   deliberately *excluded* axes (cache geometry, predictor size, exact
//!   window size) shape behaviour that already shows up in the event
//!   stream; salting by them would reward config enumeration instead of
//!   behavioural novelty.
//! - **Restart-depth × handling-mode buckets.** The maximum restart
//!   nesting depth each machine reached is folded in as its own feature,
//!   one bit per (mode, depth) bucket — a campaign that has driven CI-I
//!   with optimal preemption to depth 3 has verified something a depth-1
//!   campaign has not.
//!
//! The union of the three salted signatures is the trial's
//! [`TrialCoverage`]; [`CoverageMap`] accumulates trials and reports how
//! many edges each one contributed.

use crate::spec::TrialSpec;
use ci_core::{CompletionModel, PipelineConfig, Preemption, RepredictMode};
use ci_obs::{mix64, CoverageSignature};

/// Coverage extracted from one trial: the union of the three machines'
/// salted signatures plus depth-bucket features.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TrialCoverage {
    /// Union signature across BASE / CI / CI-I.
    pub signature: CoverageSignature,
    /// Deepest restart nesting any machine reached.
    pub max_restart_depth: u32,
}

impl TrialCoverage {
    /// Distinct edges in the union signature.
    #[must_use]
    pub fn edges(&self) -> usize {
        self.signature.count()
    }

    /// Fold one machine's run into the trial: merge its signature and add
    /// the (mode, max-depth) bucket features.
    pub fn absorb(&mut self, salt: u64, sig: &CoverageSignature, max_depth: u32) {
        self.signature.merge(sig);
        // One bit per depth reached under this mode: depth 3 implies the
        // campaign also saw 1 and 2, so set the whole prefix — a deeper
        // trial strictly dominates a shallower one.
        for d in 1..=max_depth.min(7) {
            self.signature
                .insert(mix64(salt ^ 0xDEEB_u64 << 32 ^ u64::from(d)));
        }
        self.max_restart_depth = self.max_restart_depth.max(max_depth);
    }
}

/// Stable bucket for the recovery-relevant configuration axes of one
/// machine run. `machine` is the variant index (0 = BASE, 1 = CI,
/// 2 = CI-I) from [`TrialSpec::detailed_variants`].
#[must_use]
pub fn mode_salt(machine: usize, config: &PipelineConfig) -> u64 {
    let completion = match config.completion {
        CompletionModel::SpecC => 0u64,
        CompletionModel::NonSpec => 1,
        CompletionModel::SpecD => 2,
        CompletionModel::Spec => 3,
    };
    let preemption = match config.preemption {
        Preemption::Simple => 0u64,
        Preemption::Optimal => 1,
    };
    let repredict = match config.repredict {
        RepredictMode::Heuristic => 0u64,
        RepredictMode::None => 1,
        RepredictMode::Oracle => 2,
    };
    // Reconvergence family, not exact heuristic mix: software post-dominator
    // vs how many hardware detectors are armed.
    let recon = if config.recon.postdominator {
        0u64
    } else {
        1 + u64::from(config.recon.returns)
            + u64::from(config.recon.loops)
            + u64::from(config.recon.ltb)
    };
    // Window/segment class: tiny vs small vs large windows behave
    // differently under restart pressure; segmentation changes capacity
    // accounting.
    let window_class = match config.window {
        0..=24 => 0u64,
        25..=64 => 1,
        _ => 2,
    };
    let segmented = u64::from(config.segment > 1);
    mix64(
        (machine as u64) << 40
            | completion << 32
            | preemption << 28
            | repredict << 24
            | recon << 16
            | window_class << 8
            | segmented,
    )
}

/// Per-machine salts for one trial spec, in `detailed_variants` order.
#[must_use]
pub fn trial_salts(spec: &TrialSpec) -> [u64; 3] {
    let variants = spec.detailed_variants();
    [
        mode_salt(0, &variants[0].1),
        mode_salt(1, &variants[1].1),
        mode_salt(2, &variants[2].1),
    ]
}

/// The campaign-global accumulated coverage map.
#[derive(Clone, Debug, Default)]
pub struct CoverageMap {
    map: CoverageSignature,
    /// Trials merged in (executions).
    pub execs: u64,
}

impl CoverageMap {
    /// An empty map.
    #[must_use]
    pub fn new() -> CoverageMap {
        CoverageMap::default()
    }

    /// Total distinct edges observed.
    #[must_use]
    pub fn edges(&self) -> usize {
        self.map.count()
    }

    /// Merge one trial's coverage; returns how many of its edges were new.
    pub fn merge(&mut self, cov: &TrialCoverage) -> usize {
        self.execs += 1;
        self.map.merge(&cov.signature)
    }

    /// Merge a bare signature (corpus seeding) without counting an
    /// execution; returns how many edges were new.
    pub fn seed(&mut self, sig: &CoverageSignature) -> usize {
        self.map.merge(sig)
    }

    /// How many of `cov`'s edges the map has not seen yet.
    #[must_use]
    pub fn novelty(&self, cov: &TrialCoverage) -> usize {
        cov.signature.novel_against(&self.map)
    }

    /// Mean executions per discovered edge (`execs / edges`); `0.0` when
    /// nothing has been discovered.
    #[must_use]
    pub fn execs_per_edge(&self) -> f64 {
        let e = self.edges();
        if e == 0 {
            0.0
        } else {
            self.execs as f64 / e as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ci_core::SquashMode;

    #[test]
    fn mode_salts_separate_machines_and_modes() {
        let spec = TrialSpec::generate(3);
        let [a, b, c] = trial_salts(&spec);
        assert_ne!(a, b);
        assert_ne!(b, c);
        // Changing a recovery-relevant axis moves the salt...
        let mut other = spec.config;
        other.completion = if other.completion == CompletionModel::NonSpec {
            CompletionModel::Spec
        } else {
            CompletionModel::NonSpec
        };
        assert_ne!(mode_salt(1, &spec.config), mode_salt(1, &other));
        // ...changing an excluded axis (predictor size) does not.
        let mut pred = spec.config;
        pred.predictor_bits += 1;
        assert_eq!(mode_salt(1, &spec.config), mode_salt(1, &pred));
        // And the salt ignores the squash field itself (the machine index
        // already encodes the variant).
        let mut squash = spec.config;
        squash.squash = SquashMode::Full;
        assert_eq!(mode_salt(1, &spec.config), mode_salt(1, &squash));
    }

    #[test]
    fn depth_buckets_are_prefix_closed_and_mode_keyed() {
        let mut shallow = TrialCoverage::default();
        shallow.absorb(7, &CoverageSignature::new(), 1);
        let mut deep = TrialCoverage::default();
        deep.absorb(7, &CoverageSignature::new(), 3);
        assert_eq!(shallow.edges(), 1);
        assert_eq!(deep.edges(), 3);
        assert_eq!(deep.signature.novel_against(&shallow.signature), 2);
        assert_eq!(shallow.signature.novel_against(&deep.signature), 0);

        let mut other_mode = TrialCoverage::default();
        other_mode.absorb(8, &CoverageSignature::new(), 1);
        assert_eq!(other_mode.signature.novel_against(&shallow.signature), 1);
        assert_eq!(deep.max_restart_depth, 3);
    }

    #[test]
    fn map_tracks_novelty_and_execs() {
        let mut map = CoverageMap::new();
        let mut cov = TrialCoverage::default();
        let mut sig = CoverageSignature::new();
        sig.insert(1);
        sig.insert(2);
        cov.absorb(0, &sig, 0);
        assert_eq!(map.novelty(&cov), 2);
        assert_eq!(map.merge(&cov), 2);
        assert_eq!(map.merge(&cov), 0);
        assert_eq!(map.execs, 2);
        assert_eq!(map.edges(), 2);
        assert!((map.execs_per_edge() - 1.0).abs() < f64::EPSILON);
    }
}
