//! Differential co-simulation fuzzing for the control-independence suite.
//!
//! The detailed execution-driven pipeline (`ci-core`) must retire the exact
//! dynamic instruction stream the functional emulator (`ci-emu`) produces —
//! across every recovery strategy, window size, cache model and predictor
//! configuration, and through every restart/redispatch corner case. This
//! crate is the machine that hunts violations:
//!
//! 1. **Generate** — a random structured program
//!    ([`ci_workloads::random_structured`]) and a random [`TrialSpec`]
//!    sweeping [`ci_core::PipelineConfig`] (window/width/segment, all
//!    reconvergence strategies, completion models, repredict modes, cache
//!    models, predictor sizes).
//! 2. **Lockstep** — run the detailed pipeline (BASE, CI and CI-I variants)
//!    with the oracle checker armed and a [`ci_obs::FlightRecorder`]
//!    attached; independently compare the retired PC stream against the
//!    emulator trace, and the six idealized models of Section 2 against
//!    their paper-mandated dominance relations.
//! 3. **Check invariants** — bit-exact retirement, `retired == emulated`,
//!    counter sanity, and the cross-model cycle orderings
//!    (oracle fastest, base slowest among CI models, `FD` never beats
//!    `nFD`, wasted resources never help).
//! 4. **Shrink** — on failure, delete-block and halve-iteration passes over
//!    the structured program, re-running the failing check after each edit,
//!    until a minimal reproducer remains ([`shrink`]).
//! 5. **Report** — a self-contained JSON [`Artifact`]: the shrunk program
//!    (re-emittable statement tree *and* assembled listing), the full
//!    configuration, the divergence report and the flight-recorder
//!    transcript. [`replay`] re-runs an artifact deterministically.
//!
//! The `ci-bench` binary `fuzz` drives [`run_fuzz`] from the command line
//! with a `std::thread` worker pool (one seeded RNG stream per trial, so
//! results are independent of worker count and scheduling).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod artifact;
mod corpus;
mod coverage;
mod fuzz;
mod lockstep;
mod mutate;
mod shrink;
mod spec;
mod trial;

pub use artifact::{replay, Artifact};
pub use corpus::{Corpus, CorpusEntry, SeedOrigin};
pub use coverage::{mode_salt, trial_salts, CoverageMap, TrialCoverage};
pub use fuzz::{
    run_campaign, run_fuzz, silence_panics, trial_seed, FuzzMode, FuzzOptions, FuzzSummary,
};
pub use lockstep::{run_locked, run_locked_salted, LockstepRun};
pub use mutate::{is_well_formed, mutate, MutationKind};
pub use shrink::{shrink, ShrinkStats};
pub use spec::TrialSpec;
pub use trial::{check_program, check_program_cov, run_trial, Failure, FailureKind, TrialOutcome};
