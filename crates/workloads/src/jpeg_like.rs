//! The `ijpeg` analogue: nested predictable loops, high ILP, occasional
//! data-dependent clamp branches.
//!
//! JPEG-style kernels sweep fixed-size blocks with loop bounds a history
//! predictor learns perfectly; the only misprediction sources are value
//! clamps. Iterations are data-independent, so the workload is rich in
//! parallelism and any misprediction wastes a lot of potential work — the
//! property the paper highlights for ijpeg.

use crate::{SplitMix64, WorkloadParams};
use ci_isa::{Addr, Asm, Program, Reg};

const DATA: u64 = 0x1000;
const DATA_WORDS: u64 = 4096;
const OUT: u64 = 0x6000;
const BLOCK: i64 = 8;
/// Fraction (percent) of pixels engineered to exceed the clamp threshold.
const CLAMP_PERCENT: u64 = 12;
const THRESHOLD: i64 = 4096;

pub(crate) fn build(params: &WorkloadParams) -> Program {
    let mut rng = SplitMix64::new(params.seed);
    // Pixel data. Brightness clusters per 8-pixel block, as in real images:
    // a bright block's pixels all clamp, a dark block's never do. Clustering
    // keeps the branch-history entropy low (one random event per block, not
    // eight), which is what makes real ijpeg predictable.
    let mut data: Vec<u64> = Vec::with_capacity(DATA_WORDS as usize);
    while data.len() < DATA_WORDS as usize {
        let bright = rng.chance(CLAMP_PERCENT);
        for _ in 0..BLOCK {
            // Within-cluster noise: bright pixels clamp 80% of the time,
            // dark pixels 5% — tuned to land near ijpeg's 6.8% rate.
            let clamps = if bright {
                rng.chance(80)
            } else {
                rng.chance(5)
            };
            data.push(if clamps {
                // 3v/4 alone already exceeds the threshold.
                (THRESHOLD as u64) * 2 + rng.below(1024)
            } else {
                // 3v/4 + 255 stays below the threshold.
                rng.below(THRESHOLD as u64 / 2)
            });
        }
    }

    let mut a = Asm::new();
    a.words(Addr(DATA), &data);

    // r10 = block index, r11 = #blocks, r12 = data base, r13 = checksum,
    // r21 = clamp threshold, r22 = out base, r23 = block length.
    a.li(Reg::R10, 0);
    a.li(Reg::R11, i64::from(params.scale));
    a.li(Reg::R12, DATA as i64);
    a.li(Reg::R13, 0);
    a.li(Reg::R21, THRESHOLD);
    a.li(Reg::R22, OUT as i64);
    a.li(Reg::R23, BLOCK);

    a.label("outer").unwrap();
    // base offset = (block & 511) * 8
    a.andi(Reg::R1, Reg::R10, 511);
    a.slli(Reg::R1, Reg::R1, 3);
    a.add(Reg::R2, Reg::R12, Reg::R1); // in base
    a.add(Reg::R9, Reg::R22, Reg::R1); // out base
    a.li(Reg::R20, 0); // k

    a.label("inner").unwrap();
    a.add(Reg::R3, Reg::R2, Reg::R20);
    a.load(Reg::R4, Reg::R3, 0); // v — independent across iterations
                                 // Filter arithmetic: v' = (3v >> 2) + (v & 255)
    a.slli(Reg::R5, Reg::R4, 1);
    a.add(Reg::R5, Reg::R5, Reg::R4);
    a.srli(Reg::R5, Reg::R5, 2);
    a.andi(Reg::R6, Reg::R4, 255);
    a.add(Reg::R5, Reg::R5, Reg::R6);
    // Clamp (the only hard-to-predict branch; not taken for bright
    // pixels, which then take the longer requantize path — the incorrect
    // control-dependent region of a clamp misprediction is ~10 instructions,
    // matching ijpeg's Table 2 restart distances).
    a.blt(Reg::R5, Reg::R21, "no_clamp");
    a.srli(Reg::R6, Reg::R5, 3);
    a.add(Reg::R5, Reg::R21, Reg::R6);
    a.andi(Reg::R5, Reg::R5, 8191);
    a.srli(Reg::R6, Reg::R5, 2);
    a.sub(Reg::R5, Reg::R5, Reg::R6);
    a.andi(Reg::R6, Reg::R5, 63);
    a.add(Reg::R5, Reg::R5, Reg::R6);
    a.blt(Reg::R5, Reg::R21, "no_clamp");
    a.mv(Reg::R5, Reg::R21);
    a.label("no_clamp").unwrap();
    a.add(Reg::R7, Reg::R9, Reg::R20);
    a.store(Reg::R5, Reg::R7, 0);
    a.add(Reg::R13, Reg::R13, Reg::R5);
    a.addi(Reg::R20, Reg::R20, 1);
    a.blt(Reg::R20, Reg::R23, "inner"); // fully learnable 8-iteration loop

    a.addi(Reg::R10, Reg::R10, 1);
    a.blt(Reg::R10, Reg::R11, "outer");

    a.store(Reg::R13, Reg::R0, 0x100);
    a.halt();
    a.assemble().expect("jpeg_like assembles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use ci_emu::run_trace;
    use ci_isa::InstClass;

    #[test]
    fn halts_and_processes_blocks() {
        let p = build(&WorkloadParams { scale: 10, seed: 3 });
        let t = run_trace(&p, 100_000).unwrap();
        assert!(t.completed());
        let stores = t
            .insts()
            .iter()
            .filter(|d| d.class() == InstClass::Store)
            .count();
        assert_eq!(stores, 10 * 8 + 1); // 8 pixels per block + checksum
    }

    #[test]
    fn clamp_rate_matches_engineering() {
        let p = build(&WorkloadParams {
            scale: 200,
            seed: 3,
        });
        let t = run_trace(&p, 1_000_000).unwrap();
        // Count clamp branches (blt r5, r21) that were NOT taken (= clamped).
        let clamp_pc = {
            // Find the blt whose sources are r5, r21.
            p.insts()
                .iter()
                .position(|i| {
                    i.class() == InstClass::CondBranch && i.rs1 == Reg::R5 && i.rs2 == Reg::R21
                })
                .unwrap() as u32
        };
        let (taken, total) = t
            .insts()
            .iter()
            .filter(|d| d.pc.0 == clamp_pc)
            .fold((0u32, 0u32), |(tk, tot), d| {
                (tk + u32::from(d.taken), tot + 1)
            });
        let clamped_frac = 1.0 - f64::from(taken) / f64::from(total);
        assert!(
            (0.05..0.25).contains(&clamped_frac),
            "clamp fraction {clamped_frac:.3} out of range"
        );
    }
}
