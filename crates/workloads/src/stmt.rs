//! Statement-level structured-program representation.
//!
//! [`random_program`](crate::random_program) generates programs through this
//! intermediate form rather than emitting assembly directly: a
//! [`StructuredProgram`] is a tree of [`Stmt`] nodes (straight-line ops,
//! if/else diamonds, constant-trip-count loops, leaf-function calls) that can
//! be *edited* — statements deleted, loop trip counts halved — and re-emitted
//! as a valid, guaranteed-terminating [`Program`]. That editability is what
//! the differential fuzzing harness's automatic shrinker (`ci-difftest`)
//! operates on: labels and branch targets are regenerated on every
//! [`StructuredProgram::emit`], so no structural edit can dangle a reference.
//!
//! Termination is a structural invariant, not a property to re-check: loops
//! carry a constant trip count, there is no recursion (functions are leaves),
//! and control flow otherwise only moves forward.

use ci_isa::{Asm, Program, Reg};

/// A straight-line operation (no control flow).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SimpleOp {
    /// `rd = rs1 + rs2`
    Add(Reg, Reg, Reg),
    /// `rd = rs1 - rs2`
    Sub(Reg, Reg, Reg),
    /// `rd = rs1 ^ rs2`
    Xor(Reg, Reg, Reg),
    /// `rd = rs1 & rs2`
    And(Reg, Reg, Reg),
    /// `rd = rs1 | rs2`
    Or(Reg, Reg, Reg),
    /// `rd = rs1 * rs2`
    Mul(Reg, Reg, Reg),
    /// `rd = rs1 + imm`
    Addi(Reg, Reg, i64),
    /// `rd = rs1 >> imm`
    Srli(Reg, Reg, i64),
    /// `rd = (rs1 < rs2) as u64` (signed)
    Slt(Reg, Reg, Reg),
    /// `rd = mem[imm]` (absolute, off `r0`)
    Load(Reg, i64),
    /// `mem[imm] = rs` (absolute, off `r0`)
    Store(Reg, i64),
    /// `r9 = base & 31; rd = mem[r9 + 64]` — data-dependent address.
    IndexedLoad {
        /// Register whose value (masked) forms the address.
        base: Reg,
        /// Destination of the load.
        rd: Reg,
    },
    /// `r9 = base & 31; mem[r9 + 64] = rs` — data-dependent address.
    IndexedStore {
        /// Register whose value (masked) forms the address.
        base: Reg,
        /// Register stored.
        rs: Reg,
    },
}

/// Comparison selecting a conditional branch op.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CondKind {
    /// `beq`
    Eq,
    /// `bne`
    Ne,
    /// `blt`
    Lt,
    /// `bge`
    Ge,
}

/// One structured statement.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Stmt {
    /// A straight-line operation.
    Op(SimpleOp),
    /// An if/else diamond: when the branch `cond(a, b)` is *taken* control
    /// skips to `els` (or to the join when `els` is `None` — a skip-style
    /// branch with no else arm).
    If {
        /// Branch condition.
        kind: CondKind,
        /// Left comparison operand.
        a: Reg,
        /// Right comparison operand.
        b: Reg,
        /// Fall-through arm (branch not taken).
        then: Vec<Stmt>,
        /// Taken arm; `None` emits a skip-style branch.
        els: Option<Vec<Stmt>>,
    },
    /// A counted loop executing `body` exactly `trips` times (`trips >= 1`;
    /// `0` is clamped to `1` at emission so shrinking can never hang a
    /// backward branch on an uninitialized counter).
    Loop {
        /// Constant trip count.
        trips: u32,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// A call to leaf function `funcs[idx]` (modulo the function count, so
    /// structural edits can never dangle the index).
    Call(usize),
}

impl Stmt {
    /// Number of statement nodes in this subtree (the shrinker's size
    /// metric).
    #[must_use]
    pub fn node_count(&self) -> usize {
        match self {
            Stmt::Op(_) | Stmt::Call(_) => 1,
            Stmt::If { then, els, .. } => {
                1 + count_nodes(then) + els.as_ref().map_or(0, |e| count_nodes(e))
            }
            Stmt::Loop { body, .. } => 1 + count_nodes(body),
        }
    }
}

/// Total node count of a statement list.
#[must_use]
pub fn count_nodes(stmts: &[Stmt]) -> usize {
    stmts.iter().map(Stmt::node_count).sum()
}

/// A complete structured program: register initialization, a main body, and
/// straight-line leaf functions callable from the body.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StructuredProgram {
    /// `li` register seeds emitted before the body.
    pub init: Vec<(Reg, i64)>,
    /// Main body; falls through to `halt`.
    pub body: Vec<Stmt>,
    /// Leaf functions (no loops or calls inside, by generator convention —
    /// the emitter does not enforce it, but recursion is impossible since
    /// calls only name this table and only the generator places them).
    pub funcs: Vec<Vec<Stmt>>,
}

impl StructuredProgram {
    /// Total statement nodes across body and functions.
    #[must_use]
    pub fn node_count(&self) -> usize {
        count_nodes(&self.body) + self.funcs.iter().map(|f| count_nodes(f)).sum::<usize>()
    }

    /// Assemble into an executable [`Program`]. Labels are freshly generated,
    /// so any structurally valid tree emits successfully.
    ///
    /// # Panics
    /// Panics only on internal assembler errors, which would be a bug in
    /// this module.
    #[must_use]
    pub fn emit(&self) -> Program {
        let mut e = Emitter {
            a: Asm::new(),
            label_n: 0,
            counters: BODY_COUNTERS,
        };
        for &(r, v) in &self.init {
            e.a.li(r, v);
        }
        let n_funcs = self.funcs.len();
        e.stmts(&self.body, 0, n_funcs);
        e.a.halt();
        e.counters = FUNC_COUNTERS;
        for (i, f) in self.funcs.iter().enumerate() {
            e.a.label(&format!("fn_{i}"))
                .expect("function labels are unique");
            e.stmts(f, 0, n_funcs);
            e.a.ret();
        }
        e.a.assemble().expect("structured programs always assemble")
    }
}

/// Registers that generated/mutated [`SimpleOp`]s may read and write.
///
/// Everything outside this set is reserved infrastructure: `r0` is the
/// zero register, `r9` is the emitter's indexed-address scratch, and
/// `r20`–`r25` are loop counters. A structured program whose ops stay
/// inside this set can never clobber a live loop counter, which is what
/// makes termination a structural invariant — the fuzzing harness's
/// mutation engine (`ci-difftest`) checks against this table.
pub const COMPUTE_REGS: [Reg; 8] = [
    Reg::R1,
    Reg::R2,
    Reg::R3,
    Reg::R4,
    Reg::R5,
    Reg::R6,
    Reg::R7,
    Reg::R8,
];

/// Deepest loop nesting the emitter supports: each bank below holds this
/// many counter registers, indexed by depth modulo the bank size. Nesting
/// deeper than this would alias an outer loop's live counter and hang the
/// program, so structural editors (shrinker, mutator) must stay within it.
pub const MAX_LOOP_NEST: usize = 3;

/// Loop counter registers by loop-nesting depth; reserved by the generator
/// (never produced by [`SimpleOp`] destinations). The main body and the leaf
/// functions draw from disjoint banks: a function's loop must not clobber
/// the counter of a caller's loop enclosing the call site.
const BODY_COUNTERS: [Reg; MAX_LOOP_NEST] = [Reg::R20, Reg::R21, Reg::R22];
const FUNC_COUNTERS: [Reg; MAX_LOOP_NEST] = [Reg::R23, Reg::R24, Reg::R25];

struct Emitter {
    a: Asm,
    label_n: u32,
    counters: [Reg; MAX_LOOP_NEST],
}

impl Emitter {
    fn fresh(&mut self, base: &str) -> String {
        self.label_n += 1;
        format!("{base}_{}", self.label_n)
    }

    fn stmts(&mut self, list: &[Stmt], loop_depth: usize, n_funcs: usize) {
        for s in list {
            self.stmt(s, loop_depth, n_funcs);
        }
    }

    fn stmt(&mut self, s: &Stmt, loop_depth: usize, n_funcs: usize) {
        match s {
            Stmt::Op(op) => self.op(*op),
            Stmt::If {
                kind,
                a,
                b,
                then,
                els,
            } => {
                let else_l = self.fresh("else");
                match kind {
                    CondKind::Eq => self.a.beq(*a, *b, else_l.as_str()),
                    CondKind::Ne => self.a.bne(*a, *b, else_l.as_str()),
                    CondKind::Lt => self.a.blt(*a, *b, else_l.as_str()),
                    CondKind::Ge => self.a.bge(*a, *b, else_l.as_str()),
                };
                match els {
                    Some(els) => {
                        let join_l = self.fresh("join");
                        self.stmts(then, loop_depth, n_funcs);
                        self.a.jump(join_l.as_str());
                        self.a.label(&else_l).expect("fresh");
                        self.stmts(els, loop_depth, n_funcs);
                        self.a.label(&join_l).expect("fresh");
                    }
                    None => {
                        self.stmts(then, loop_depth, n_funcs);
                        self.a.label(&else_l).expect("fresh");
                    }
                }
            }
            Stmt::Loop { trips, body } => {
                let top = self.fresh("top");
                let counter = self.counters[loop_depth % self.counters.len()];
                self.a.li(counter, i64::from((*trips).max(1)));
                self.a.label(&top).expect("fresh");
                self.stmts(body, loop_depth + 1, n_funcs);
                self.a.addi(counter, counter, -1);
                self.a.bne(counter, Reg::R0, top.as_str());
            }
            Stmt::Call(idx) => {
                if n_funcs > 0 {
                    self.a.call(format!("fn_{}", idx % n_funcs).as_str());
                }
            }
        }
    }

    fn op(&mut self, op: SimpleOp) {
        match op {
            SimpleOp::Add(rd, rs1, rs2) => {
                self.a.add(rd, rs1, rs2);
            }
            SimpleOp::Sub(rd, rs1, rs2) => {
                self.a.sub(rd, rs1, rs2);
            }
            SimpleOp::Xor(rd, rs1, rs2) => {
                self.a.xor(rd, rs1, rs2);
            }
            SimpleOp::And(rd, rs1, rs2) => {
                self.a.and(rd, rs1, rs2);
            }
            SimpleOp::Or(rd, rs1, rs2) => {
                self.a.or(rd, rs1, rs2);
            }
            SimpleOp::Mul(rd, rs1, rs2) => {
                self.a.mul(rd, rs1, rs2);
            }
            SimpleOp::Addi(rd, rs1, imm) => {
                self.a.addi(rd, rs1, imm);
            }
            SimpleOp::Srli(rd, rs1, imm) => {
                self.a.srli(rd, rs1, imm);
            }
            SimpleOp::Slt(rd, rs1, rs2) => {
                self.a.slt(rd, rs1, rs2);
            }
            SimpleOp::Load(rd, imm) => {
                self.a.load(rd, Reg::R0, imm);
            }
            SimpleOp::Store(rs, imm) => {
                self.a.store(rs, Reg::R0, imm);
            }
            SimpleOp::IndexedLoad { base, rd } => {
                self.a.andi(Reg::R9, base, 31);
                self.a.load(rd, Reg::R9, 64);
            }
            SimpleOp::IndexedStore { base, rs } => {
                self.a.andi(Reg::R9, base, 31);
                self.a.store(rs, Reg::R9, 64);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> StructuredProgram {
        StructuredProgram {
            init: vec![(Reg::R1, 5), (Reg::R2, -3)],
            body: vec![
                Stmt::Op(SimpleOp::Add(Reg::R3, Reg::R1, Reg::R2)),
                Stmt::If {
                    kind: CondKind::Lt,
                    a: Reg::R3,
                    b: Reg::R1,
                    then: vec![Stmt::Op(SimpleOp::Addi(Reg::R4, Reg::R3, 7))],
                    els: Some(vec![Stmt::Op(SimpleOp::Xor(Reg::R4, Reg::R1, Reg::R2))]),
                },
                Stmt::Loop {
                    trips: 3,
                    body: vec![Stmt::Op(SimpleOp::Store(Reg::R4, 16)), Stmt::Call(0)],
                },
            ],
            funcs: vec![vec![Stmt::Op(SimpleOp::Addi(Reg::R5, Reg::R5, 1))]],
        }
    }

    #[test]
    fn emits_and_halts() {
        let p = sample().emit();
        let t = ci_emu::run_trace(&p, 10_000).unwrap();
        assert!(t.completed());
    }

    #[test]
    fn emit_is_deterministic() {
        assert_eq!(sample().emit(), sample().emit());
    }

    #[test]
    fn node_count_counts_the_tree() {
        let sp = sample();
        // add, if, then-addi, else-xor, loop, store, call, fn-addi = 8
        assert_eq!(sp.node_count(), 8);
    }

    #[test]
    fn zero_trip_loops_are_clamped() {
        let sp = StructuredProgram {
            init: vec![],
            body: vec![Stmt::Loop {
                trips: 0,
                body: vec![Stmt::Op(SimpleOp::Addi(Reg::R1, Reg::R1, 1))],
            }],
            funcs: vec![],
        };
        let t = ci_emu::run_trace(&sp.emit(), 1_000).unwrap();
        assert!(t.completed());
    }

    #[test]
    fn dangling_call_indices_wrap() {
        let sp = StructuredProgram {
            init: vec![],
            body: vec![Stmt::Call(7)],
            funcs: vec![vec![Stmt::Op(SimpleOp::Addi(Reg::R1, Reg::R1, 1))]],
        };
        let t = ci_emu::run_trace(&sp.emit(), 1_000).unwrap();
        assert!(t.completed());
    }

    #[test]
    fn calls_without_functions_vanish() {
        let sp = StructuredProgram {
            init: vec![],
            body: vec![Stmt::Call(0), Stmt::Op(SimpleOp::Addi(Reg::R1, Reg::R1, 1))],
            funcs: vec![],
        };
        let t = ci_emu::run_trace(&sp.emit(), 1_000).unwrap();
        assert!(t.completed());
        assert_eq!(t.len(), 2); // addi + halt
    }
}
