//! Synthetic SPEC95-integer-analogue workloads.
//!
//! The paper evaluates on five SPEC95 integer benchmarks compiled for
//! SimpleScalar. Those binaries (and inputs) are unavailable here, so this
//! crate provides five synthetic programs written in the suite's own ISA, each
//! engineered to reproduce the *control-flow and data-flow character* the
//! paper reports for its counterpart (Table 1 and the per-benchmark
//! discussion):
//!
//! | Workload                      | Character reproduced |
//! |-------------------------------|----------------------|
//! | [`Workload::GccLike`]         | irregular control flow: skewed jump-table switch, nested ifs, helper calls; moderate (~8%) misprediction rate |
//! | [`Workload::GoLike`]          | data-dependent, hard-to-predict branches (~17%) |
//! | [`Workload::CompressLike`]    | hash-table update loop: long serial dependence chains, frequent store→load aliasing, many memory-order violations |
//! | [`Workload::JpegLike`]        | nested predictable loops, high ILP, occasional data-dependent clamp branches |
//! | [`Workload::VortexLike`]      | call-heavy, highly predictable branches (~1-2%) |
//!
//! The interesting quantities in the paper — misprediction rates, distances to
//! reconvergence, control-dependent vs control-independent data dependences,
//! memory-ordering behaviour — are all first-class knobs of these programs, so
//! the *shape* of every experiment carries over even though absolute IPC does
//! not.
//!
//! The crate also provides [`random_program`], a generator of random but
//! well-structured, guaranteed-terminating programs used by the property
//! tests throughout the workspace.
//!
//! # Example
//!
//! ```
//! use ci_workloads::{Workload, WorkloadParams};
//!
//! let program = Workload::GoLike.build(&WorkloadParams { scale: 100, seed: 42 });
//! let trace = ci_emu::run_trace(&program, 1_000_000).unwrap();
//! assert!(trace.completed());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod compress_like;
mod gcc_like;
mod go_like;
mod jpeg_like;
mod random;
mod rng;
pub mod stmt;
mod vortex_like;

pub use random::{random_program, random_structured};
pub use rng::SplitMix64;
pub use stmt::{
    count_nodes, CondKind, SimpleOp, Stmt, StructuredProgram, COMPUTE_REGS, MAX_LOOP_NEST,
};

use ci_isa::Program;
use std::fmt;

/// Parameters controlling a workload build.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct WorkloadParams {
    /// Outer-loop iteration count; dynamic instruction count scales roughly
    /// linearly (see [`Workload::default_scale`] for calibrated defaults).
    pub scale: u32,
    /// Seed for the workload's embedded data (branch-feeding values, hash
    /// keys, pixel data, ...).
    pub seed: u64,
}

impl Default for WorkloadParams {
    fn default() -> Self {
        WorkloadParams {
            scale: 1_000,
            seed: 0x5EED,
        }
    }
}

/// The five synthetic benchmark programs (see the crate docs for what each
/// models).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Workload {
    /// `gcc`-analogue: irregular control flow.
    GccLike,
    /// `go`-analogue: hard-to-predict branches.
    GoLike,
    /// `compress`-analogue: serial chains, store→load aliasing.
    CompressLike,
    /// `ijpeg`-analogue: predictable loops, high ILP.
    JpegLike,
    /// `vortex`-analogue: call-heavy, highly predictable.
    VortexLike,
}

impl Workload {
    /// All five workloads, in the paper's Table 1 order.
    pub const ALL: [Workload; 5] = [
        Workload::GccLike,
        Workload::GoLike,
        Workload::CompressLike,
        Workload::JpegLike,
        Workload::VortexLike,
    ];

    /// The workload's short name, matching the paper's benchmark labels.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Workload::GccLike => "gcc",
            Workload::GoLike => "go",
            Workload::CompressLike => "compress",
            Workload::JpegLike => "jpeg",
            Workload::VortexLike => "vortex",
        }
    }

    /// Build the workload's program.
    ///
    /// # Panics
    /// Panics only on internal assembler errors, which would be a bug in this
    /// crate.
    #[must_use]
    pub fn build(self, params: &WorkloadParams) -> Program {
        match self {
            Workload::GccLike => gcc_like::build(params),
            Workload::GoLike => go_like::build(params),
            Workload::CompressLike => compress_like::build(params),
            Workload::JpegLike => jpeg_like::build(params),
            Workload::VortexLike => vortex_like::build(params),
        }
    }

    /// A scale yielding roughly `target_dyn_insts` dynamic instructions.
    #[must_use]
    pub fn scale_for(self, target_dyn_insts: u64) -> u32 {
        // Measured dynamic instructions per outer iteration.
        let per_iter = match self {
            Workload::GccLike => 29,
            Workload::GoLike => 42,
            Workload::CompressLike => 20,
            Workload::JpegLike => 121,
            Workload::VortexLike => 20,
        };
        u32::try_from((target_dyn_insts / per_iter).max(1)).unwrap_or(u32::MAX)
    }

    /// The default scale used by examples and tests (~200k dynamic
    /// instructions).
    #[must_use]
    pub fn default_scale(self) -> u32 {
        self.scale_for(200_000)
    }
}

impl fmt::Display for Workload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ci_emu::run_trace;

    #[test]
    fn all_workloads_assemble_and_halt() {
        for w in Workload::ALL {
            let p = w.build(&WorkloadParams { scale: 50, seed: 7 });
            let t = run_trace(&p, 2_000_000).unwrap_or_else(|e| panic!("{w}: {e}"));
            assert!(t.completed(), "{w} did not halt");
            assert!(t.len() > 500, "{w} too short: {}", t.len());
        }
    }

    #[test]
    fn scale_changes_dynamic_length_roughly_linearly() {
        for w in Workload::ALL {
            let p1 = w.build(&WorkloadParams { scale: 50, seed: 7 });
            let p2 = w.build(&WorkloadParams {
                scale: 100,
                seed: 7,
            });
            let t1 = run_trace(&p1, 10_000_000).unwrap().len() as f64;
            let t2 = run_trace(&p2, 10_000_000).unwrap().len() as f64;
            let ratio = t2 / t1;
            assert!(
                (1.6..=2.4).contains(&ratio),
                "{w}: scale 2x changed length by {ratio:.2}x"
            );
        }
    }

    #[test]
    fn seed_changes_data_not_structure() {
        for w in Workload::ALL {
            let p1 = w.build(&WorkloadParams { scale: 20, seed: 1 });
            let p2 = w.build(&WorkloadParams { scale: 20, seed: 2 });
            assert_eq!(p1.len(), p2.len(), "{w}: static code depends on seed");
        }
    }

    #[test]
    fn builds_are_deterministic() {
        for w in Workload::ALL {
            let params = WorkloadParams { scale: 30, seed: 9 };
            assert_eq!(w.build(&params), w.build(&params), "{w}");
        }
    }

    #[test]
    fn names_and_display() {
        assert_eq!(Workload::GccLike.name(), "gcc");
        assert_eq!(Workload::CompressLike.to_string(), "compress");
        assert_eq!(Workload::ALL.len(), 5);
    }

    #[test]
    fn scale_for_is_sane() {
        for w in Workload::ALL {
            assert!(w.scale_for(200_000) > 100);
            assert!(w.default_scale() > 0);
        }
    }
}
