//! The `vortex` analogue: call-heavy object-store code with highly
//! predictable branches.
//!
//! Vortex spends its time in small routines whose branches almost always go
//! the same way; its paper misprediction rate is only 1.4%, so control
//! independence buys little. We reproduce that with a loop calling three
//! small functions, periodic (learnable) branches, and one rare data-driven
//! branch.

use crate::{SplitMix64, WorkloadParams};
use ci_isa::{Addr, Asm, Program, Reg};

const DATA: u64 = 0x1000;
const DATA_WORDS: u64 = 2048;
const STORE_REGION: u64 = 0x5000;
const OUT: u64 = 0x100;
/// Percent of records flagged "dirty" (feeds the one unpredictable branch).
const DIRTY_PERCENT: u64 = 6;

pub(crate) fn build(params: &WorkloadParams) -> Program {
    let mut rng = SplitMix64::new(params.seed);
    let data: Vec<u64> = (0..DATA_WORDS)
        .map(|_| {
            let v = rng.next_u64() & !1;
            if rng.chance(DIRTY_PERCENT) {
                v | 1
            } else {
                v
            }
        })
        .collect();

    let mut a = Asm::new();
    a.words(Addr(DATA), &data);

    // r10 = i, r11 = N, r12 = data base, r13 = acc, r18 = store region.
    a.li(Reg::R10, 0);
    a.li(Reg::R11, i64::from(params.scale));
    a.li(Reg::R12, DATA as i64);
    a.li(Reg::R13, 0);
    a.li(Reg::R18, STORE_REGION as i64);

    a.label("loop").unwrap();
    a.call("lookup");
    a.call("update");
    a.call("check");
    a.addi(Reg::R10, Reg::R10, 1);
    a.blt(Reg::R10, Reg::R11, "loop");
    a.store(Reg::R13, Reg::R0, OUT as i64);
    a.halt();

    // lookup: r3 = record, r4 = key field; branch on impossible condition
    // (always not taken — perfectly predictable).
    a.label("lookup").unwrap();
    a.andi(Reg::R1, Reg::R10, (DATA_WORDS - 1) as i64);
    a.add(Reg::R2, Reg::R12, Reg::R1);
    a.load(Reg::R3, Reg::R2, 0);
    a.ori(Reg::R4, Reg::R3, 2); // r4 can never be zero
    a.beq(Reg::R4, Reg::R0, "lookup_null");
    a.srli(Reg::R4, Reg::R3, 8);
    a.ret();
    a.label("lookup_null").unwrap();
    a.li(Reg::R4, 0);
    a.ret();

    // update: periodic flush every 4th record (learnable with history).
    a.label("update").unwrap();
    a.andi(Reg::R5, Reg::R10, 3);
    a.bne(Reg::R5, Reg::R0, "no_flush");
    a.andi(Reg::R6, Reg::R10, 255);
    a.add(Reg::R6, Reg::R18, Reg::R6);
    a.store(Reg::R13, Reg::R6, 0);
    a.label("no_flush").unwrap();
    a.add(Reg::R13, Reg::R13, Reg::R4);
    a.ret();

    // check: the one rare, data-driven branch (dirty records only).
    a.label("check").unwrap();
    a.andi(Reg::R7, Reg::R3, 1);
    a.bne(Reg::R7, Reg::R0, "dirty");
    a.ret();
    a.label("dirty").unwrap();
    a.xor(Reg::R13, Reg::R13, Reg::R3);
    a.addi(Reg::R13, Reg::R13, 3);
    a.ret();

    a.assemble().expect("vortex_like assembles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use ci_emu::run_trace;
    use ci_isa::InstClass;

    #[test]
    fn halts_with_heavy_call_traffic() {
        let p = build(&WorkloadParams {
            scale: 100,
            seed: 5,
        });
        let t = run_trace(&p, 100_000).unwrap();
        assert!(t.completed());
        let calls = t
            .insts()
            .iter()
            .filter(|d| d.class() == InstClass::Call)
            .count();
        let rets = t
            .insts()
            .iter()
            .filter(|d| d.class() == InstClass::Return)
            .count();
        assert_eq!(calls, 300);
        assert_eq!(calls, rets);
    }

    #[test]
    fn impossible_branch_never_taken() {
        let p = build(&WorkloadParams { scale: 50, seed: 5 });
        let t = run_trace(&p, 100_000).unwrap();
        let lookup_null = p.label("lookup_null").unwrap();
        assert!(!t.insts().iter().any(|d| d.pc == lookup_null));
    }
}
