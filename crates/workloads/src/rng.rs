//! Deterministic pseudo-random number generation for workload data.

/// A SplitMix64 generator.
///
/// Used to synthesize workload data deterministically from a seed; kept
/// in-crate (rather than depending on `rand`) so that workload bytes are
/// stable across dependency upgrades — experiment outputs must be
/// reproducible bit-for-bit.
///
/// ```
/// use ci_workloads::SplitMix64;
/// let mut a = SplitMix64::new(1);
/// let mut b = SplitMix64::new(1);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from `seed`.
    #[must_use]
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..bound` (`bound > 0`).
    ///
    /// # Panics
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        self.next_u64() % bound
    }

    /// `true` with probability `percent`/100.
    pub fn chance(&mut self, percent: u64) -> bool {
        self.below(100) < percent
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = SplitMix64::new(3);
        let mut b = SplitMix64::new(3);
        let mut c = SplitMix64::new(4);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn below_in_range() {
        let mut r = SplitMix64::new(7);
        for _ in 0..1000 {
            assert!(r.below(10) < 10);
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = SplitMix64::new(7);
        assert!(!(0..100).any(|_| r.chance(0)));
        assert!((0..100).all(|_| r.chance(100)));
    }

    #[test]
    fn distribution_roughly_uniform() {
        let mut r = SplitMix64::new(11);
        let mut counts = [0u32; 4];
        for _ in 0..4000 {
            counts[r.below(4) as usize] += 1;
        }
        for c in counts {
            assert!((800..1200).contains(&c), "skewed: {counts:?}");
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn below_zero_bound_panics() {
        SplitMix64::new(1).below(0);
    }
}
