//! The `go` analogue: control-intensive code with data-dependent,
//! hard-to-predict branches.
//!
//! Go's evaluation functions branch on board state that is effectively random
//! to a predictor. We reproduce that with branches on individual bits of
//! pseudo-random data, with structural properties tuned to the paper:
//!
//! - iterations are (almost) mutually independent, so ILP grows with window
//!   size and wasted window space (the `WR` factor) has a visible cost;
//! - branch conditions sit behind a dependent (pointer-chasing) load, so
//!   mispredictions take several cycles to resolve;
//! - one branch is *skip-style* over value updates, so its wrong path
//!   creates false data dependences against pre-branch producers (the `FD`
//!   factor);
//! - the main diamond arms are 9-14 instructions long, matching go's Table 2
//!   restart distances.

use crate::{SplitMix64, WorkloadParams};
use ci_isa::{Addr, Asm, Program, Reg};

const DATA: u64 = 0x1000;
const DATA_WORDS: u64 = 2048;
const OUT: u64 = 0x100;

pub(crate) fn build(params: &WorkloadParams) -> Program {
    let mut rng = SplitMix64::new(params.seed);
    // Board-like data: values double as chase indices.
    let data: Vec<u64> = (0..DATA_WORDS).map(|_| rng.next_u64()).collect();

    let mut a = Asm::new();
    a.words(Addr(DATA), &data);

    // r10 = i, r11 = N, r12 = data base, r13 = checksum (one chain op per
    // iteration — deliberately not the bottleneck).
    a.li(Reg::R10, 0);
    a.li(Reg::R11, i64::from(params.scale));
    a.li(Reg::R12, DATA as i64);
    a.li(Reg::R13, 0);

    a.label("outer").unwrap();
    a.andi(Reg::R1, Reg::R10, (DATA_WORDS - 1) as i64);
    a.add(Reg::R2, Reg::R12, Reg::R1);
    a.load(Reg::R3, Reg::R2, 0); // x = data[i]
                                 // Pointer chase: the branch condition depends on a second-level load,
                                 // so resolving a misprediction takes a handful of cycles.
    a.andi(Reg::R4, Reg::R3, (DATA_WORDS - 1) as i64);
    a.add(Reg::R4, Reg::R12, Reg::R4);
    a.load(Reg::R5, Reg::R4, 0); // y = data[x & mask]

    // Branch 1 (~25% to the else arm): a 14-vs-9 instruction diamond
    // computing r6.
    a.andi(Reg::R6, Reg::R5, 3);
    a.beq(Reg::R6, Reg::R0, "b1_else");
    a.slli(Reg::R6, Reg::R5, 1);
    a.add(Reg::R6, Reg::R6, Reg::R5);
    a.srli(Reg::R7, Reg::R5, 7);
    a.xor(Reg::R6, Reg::R6, Reg::R7);
    a.andi(Reg::R7, Reg::R6, 1023);
    a.add(Reg::R6, Reg::R6, Reg::R7);
    a.slli(Reg::R7, Reg::R7, 2);
    a.sub(Reg::R6, Reg::R6, Reg::R7);
    a.ori(Reg::R6, Reg::R6, 1);
    a.srli(Reg::R7, Reg::R6, 3);
    a.add(Reg::R6, Reg::R6, Reg::R7);
    a.xori(Reg::R6, Reg::R6, 0x55);
    a.jump("b1_join");
    a.label("b1_else").unwrap();
    a.addi(Reg::R6, Reg::R5, 7);
    a.xor(Reg::R7, Reg::R5, Reg::R6);
    a.slli(Reg::R7, Reg::R7, 1);
    a.add(Reg::R6, Reg::R6, Reg::R7);
    a.andi(Reg::R6, Reg::R6, 0xffff);
    a.srli(Reg::R7, Reg::R6, 4);
    a.xor(Reg::R6, Reg::R6, Reg::R7);
    a.addi(Reg::R6, Reg::R6, 13);
    a.label("b1_join").unwrap();

    // Branch 2 (skip-style, skipped only ~25% of the time): the block
    // REWRITES r6 from x, so when it is fetched down a wrong path (the
    // common predicted direction) it clobbers a value control-independent
    // code truly gets from the diamond above — the false-data-dependence
    // structure the FD models charge for.
    a.xor(Reg::R7, Reg::R5, Reg::R13); // condition reads the checksum chain,
    a.andi(Reg::R7, Reg::R7, 6); // so repairs compound across iterations
    a.beq(Reg::R7, Reg::R0, "b2_skip");
    a.srli(Reg::R6, Reg::R3, 4);
    a.andi(Reg::R6, Reg::R6, 255);
    a.slli(Reg::R7, Reg::R6, 1);
    a.add(Reg::R6, Reg::R6, Reg::R7);
    a.xori(Reg::R6, Reg::R6, 0x2a);
    a.ori(Reg::R6, Reg::R6, 2);
    a.label("b2_skip").unwrap();

    // Branch 3 (taken ~12%): another diamond, arms 6 vs 3, computing r8.
    a.andi(Reg::R7, Reg::R5, 0x38);
    a.beq(Reg::R7, Reg::R0, "b3_else");
    a.srli(Reg::R8, Reg::R3, 8);
    a.xori(Reg::R8, Reg::R8, 0x33);
    a.andi(Reg::R8, Reg::R8, 0xfff);
    a.addi(Reg::R8, Reg::R8, 3);
    a.slli(Reg::R7, Reg::R8, 1);
    a.add(Reg::R8, Reg::R8, Reg::R7);
    a.jump("b3_join");
    a.label("b3_else").unwrap();
    a.slli(Reg::R8, Reg::R6, 2);
    a.sub(Reg::R8, Reg::R8, Reg::R6);
    a.andi(Reg::R8, Reg::R8, 0xfffff);
    a.label("b3_join").unwrap();

    // Control-independent tail consuming the diamonds' products (r6, r8);
    // only one checksum op chains across iterations.
    a.add(Reg::R9, Reg::R6, Reg::R8);
    a.srli(Reg::R7, Reg::R9, 5);
    a.xor(Reg::R9, Reg::R9, Reg::R7);
    a.xor(Reg::R13, Reg::R13, Reg::R9);

    a.addi(Reg::R10, Reg::R10, 1);
    a.blt(Reg::R10, Reg::R11, "outer");

    a.store(Reg::R13, Reg::R0, OUT as i64);
    a.halt();
    a.assemble().expect("go_like assembles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use ci_emu::run_trace;

    #[test]
    fn halts_and_produces_output() {
        let p = build(&WorkloadParams { scale: 10, seed: 1 });
        let t = run_trace(&p, 100_000).unwrap();
        assert!(t.completed());
        let store = t.insts().iter().rev().find(|d| d.addr == Some(Addr(OUT)));
        assert!(store.is_some());
    }

    #[test]
    fn all_arms_exercised() {
        let p = build(&WorkloadParams {
            scale: 200,
            seed: 1,
        });
        let t = run_trace(&p, 100_000).unwrap();
        for l in ["b1_else", "b2_skip", "b3_else", "b1_join", "b3_join"] {
            let pc = p.label(l).unwrap();
            assert!(t.insts().iter().any(|d| d.pc == pc), "{l} never reached");
        }
    }
}
