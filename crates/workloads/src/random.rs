//! Random structured-program generation for property tests.

use crate::SplitMix64;
use ci_isa::{Asm, Program, Reg};

/// Generate a random but well-structured program that is guaranteed to halt.
///
/// The generator emits straight-line ALU/memory code interleaved with
/// if/else diamonds, constant-trip-count loops (nested up to two deep) and
/// calls to randomly generated leaf functions — the control-flow shapes the
/// control-independence machinery must handle. Branch conditions test
/// computed register values, so branch outcomes (and thus mispredictions,
/// wrong paths and false data dependences) arise organically.
///
/// Every workspace simulator property-tests itself against the functional
/// emulator on these programs.
///
/// `size_hint` roughly controls static statement count (clamped to `4..=400`).
///
/// ```
/// let p = ci_workloads::random_program(123, 40);
/// let t = ci_emu::run_trace(&p, 100_000).unwrap();
/// assert!(t.completed()); // generated programs always halt
/// ```
#[must_use]
pub fn random_program(seed: u64, size_hint: usize) -> Program {
    let g = Gen {
        rng: SplitMix64::new(seed),
        a: Asm::new(),
        label_n: 0,
        funcs: Vec::new(),
    };
    g.generate(size_hint.clamp(4, 400) as i64)
}

const COMPUTE_REGS: [Reg; 8] = [
    Reg::R1,
    Reg::R2,
    Reg::R3,
    Reg::R4,
    Reg::R5,
    Reg::R6,
    Reg::R7,
    Reg::R8,
];

struct Gen {
    rng: SplitMix64,
    a: Asm,
    label_n: u32,
    funcs: Vec<String>,
}

impl Gen {
    fn fresh(&mut self, base: &str) -> String {
        self.label_n += 1;
        format!("{base}_{}", self.label_n)
    }

    fn reg(&mut self) -> Reg {
        COMPUTE_REGS[self.rng.below(COMPUTE_REGS.len() as u64) as usize]
    }

    fn generate(mut self, budget: i64) -> Program {
        // Decide on leaf functions up front so calls can reference them.
        let n_funcs = self.rng.below(3) as usize;
        for _ in 0..n_funcs {
            let name = self.fresh("fn");
            self.funcs.push(name);
        }

        // Seed some registers with data so early branches are interesting.
        for (i, r) in COMPUTE_REGS.iter().enumerate() {
            let v = self.rng.next_u64() % 1000;
            self.a.li(*r, v as i64 - 500 + i as i64);
        }

        let mut body_budget = budget;
        self.block(0, &mut body_budget, n_funcs > 0);
        self.a.halt();

        // Emit the leaf functions after the halt.
        for i in 0..self.funcs.len() {
            let name = self.funcs[i].clone();
            self.a.label(&name).expect("fresh labels are unique");
            let mut fn_budget = 3 + self.rng.below(5) as i64;
            self.leaf_body(&mut fn_budget);
            self.a.ret();
        }

        self.a.assemble().expect("generated program assembles")
    }

    /// Straight-line code plus an optional diamond; no loops or calls (used
    /// for leaf functions).
    fn leaf_body(&mut self, budget: &mut i64) {
        while *budget > 0 {
            *budget -= 1;
            if self.rng.chance(25) {
                self.diamond(0, budget, false);
            } else {
                self.simple_op();
            }
        }
    }

    fn block(&mut self, depth: u32, budget: &mut i64, allow_calls: bool) {
        while *budget > 0 {
            *budget -= 1;
            match self.rng.below(12) {
                0..=5 => self.simple_op(),
                6 | 7 => self.diamond(depth, budget, allow_calls),
                8 | 9 => {
                    if depth < 2 {
                        self.counted_loop(depth, budget, allow_calls);
                    } else {
                        self.simple_op();
                    }
                }
                10 => {
                    if allow_calls && !self.funcs.is_empty() {
                        let f =
                            self.funcs[self.rng.below(self.funcs.len() as u64) as usize].clone();
                        self.a.call(&f);
                    } else {
                        self.simple_op();
                    }
                }
                _ => self.simple_op(),
            }
        }
    }

    fn simple_op(&mut self) {
        let rd = self.reg();
        let rs1 = self.reg();
        let rs2 = self.reg();
        match self.rng.below(12) {
            0 => {
                self.a.add(rd, rs1, rs2);
            }
            1 => {
                self.a.sub(rd, rs1, rs2);
            }
            2 => {
                self.a.xor(rd, rs1, rs2);
            }
            3 => {
                self.a.and(rd, rs1, rs2);
            }
            4 => {
                self.a.or(rd, rs1, rs2);
            }
            5 => {
                self.a.mul(rd, rs1, rs2);
            }
            6 => {
                let imm = self.rng.below(64) as i64 - 32;
                self.a.addi(rd, rs1, imm);
            }
            7 => {
                let sh = self.rng.below(8) as i64;
                self.a.srli(rd, rs1, sh);
            }
            8 => {
                self.a.slt(rd, rs1, rs2);
            }
            9 => {
                let addr = self.rng.below(64) as i64;
                self.a.load(rd, Reg::R0, addr);
            }
            10 => {
                let addr = self.rng.below(64) as i64;
                self.a.store(rs1, Reg::R0, addr);
            }
            _ => {
                // Indexed memory access through a masked register.
                let base = self.reg();
                self.a.andi(Reg::R9, base, 31);
                if self.rng.chance(50) {
                    self.a.load(rd, Reg::R9, 64);
                } else {
                    self.a.store(rs1, Reg::R9, 64);
                }
            }
        }
    }

    fn diamond(&mut self, depth: u32, budget: &mut i64, allow_calls: bool) {
        let else_l = self.fresh("else");
        let join_l = self.fresh("join");
        let (ra, rb) = (self.reg(), self.reg());
        match self.rng.below(4) {
            0 => self.a.beq(ra, rb, else_l.as_str()),
            1 => self.a.bne(ra, rb, else_l.as_str()),
            2 => self.a.blt(ra, rb, else_l.as_str()),
            _ => self.a.bge(ra, rb, else_l.as_str()),
        };
        let mut then_budget = (self.rng.below(4) as i64 + 1).min(*budget);
        *budget -= then_budget;
        self.block(depth + 1, &mut then_budget, allow_calls);
        if self.rng.chance(80) {
            // Proper diamond with an else arm.
            self.a.jump(join_l.as_str());
            self.a.label(&else_l).expect("fresh");
            let mut else_budget = (self.rng.below(4) as i64 + 1).min(*budget);
            *budget -= else_budget;
            self.block(depth + 1, &mut else_budget, allow_calls);
            self.a.label(&join_l).expect("fresh");
        } else {
            // Skip-style branch (no else arm): target is the join point.
            self.a.label(&else_l).expect("fresh");
        }
    }

    fn counted_loop(&mut self, depth: u32, budget: &mut i64, allow_calls: bool) {
        let top = self.fresh("top");
        let counter = [Reg::R20, Reg::R21, Reg::R22][depth as usize % 3];
        let trips = 1 + self.rng.below(3) as i64;
        self.a.li(counter, trips);
        self.a.label(&top).expect("fresh");
        let mut body_budget = (self.rng.below(5) as i64 + 1).min(*budget);
        *budget -= body_budget;
        self.block(depth + 1, &mut body_budget, allow_calls);
        self.a.addi(counter, counter, -1);
        self.a.bne(counter, Reg::R0, top.as_str());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ci_emu::run_trace;

    #[test]
    fn many_seeds_assemble_and_halt() {
        for seed in 0..60 {
            let p = random_program(seed, 30 + (seed as usize % 70));
            let t = run_trace(&p, 200_000).unwrap_or_else(|e| panic!("seed {seed}: {e}\n{p}"));
            assert!(t.completed(), "seed {seed} did not halt");
            assert!(!t.is_empty());
        }
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(random_program(9, 50), random_program(9, 50));
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(random_program(1, 50), random_program(2, 50));
    }

    #[test]
    fn size_hint_is_respected_roughly() {
        let small = random_program(3, 10);
        let large = random_program(3, 300);
        assert!(large.len() > small.len());
    }
}
